// Cachestudy: the paper's headline use case (§2) — dimension a cache
// hierarchy from a compact lossy trace instead of the bulky exact one.
//
// The program generates an exact cache-filtered trace, compresses it with
// ATC lossy mode, then runs Cheetah-style LRU simulations over both the
// exact and the decompressed trace across a grid of cache geometries,
// printing the miss ratios side by side (a textual Figure 3).
//
//	go run ./examples/cachestudy [model]
package main

import (
	"fmt"
	"log"
	"os"

	"atc"
	"atc/internal/cheetah"
	"atc/internal/workload"
)

func main() {
	model := "429.mcf"
	if len(os.Args) > 1 {
		model = os.Args[1]
	}
	const n = 400_000
	fmt.Printf("generating %d-address cache-filtered trace for %s...\n", n, model)
	exact, err := workload.GenerateFiltered(model, n, 7)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "atc-cachestudy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	stats, err := atc.Compress(dir, exact,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(n/100),
		atc.WithBufferAddrs(n/1000),
	)
	if err != nil {
		log.Fatal(err)
	}
	bpa, _ := atc.BitsPerAddress(dir, int64(n))
	fmt.Printf("lossy compression: %.3f bits/address (%d chunks, %d imitations)\n\n",
		bpa, stats.Chunks, stats.Imitations)

	approx, err := atc.Decompress(dir)
	if err != nil {
		log.Fatal(err)
	}

	setCounts := []int{512, 2048, 8192}
	const maxAssoc = 16
	ge, err := cheetah.NewGrid(setCounts, maxAssoc)
	if err != nil {
		log.Fatal(err)
	}
	ga, err := cheetah.NewGrid(setCounts, maxAssoc)
	if err != nil {
		log.Fatal(err)
	}
	ge.AccessAll(exact)
	ga.AccessAll(approx)

	fmt.Printf("%8s %6s %12s %12s %10s\n", "sets", "assoc", "exact", "from-lossy", "abs err")
	for i := range setCounts {
		se, sa := ge.Simulators()[i], ga.Simulators()[i]
		for _, a := range []int{1, 2, 4, 8, 16} {
			e, ap := se.MissRatio(a), sa.MissRatio(a)
			d := e - ap
			if d < 0 {
				d = -d
			}
			fmt.Printf("%8d %6d %12.4f %12.4f %10.4f\n", setCounts[i], a, e, ap, d)
		}
	}
	fmt.Println("\nthe lossy trace reproduces the exact miss-ratio surface: cache")
	fmt.Println("dimensioning decisions made from it match those from the raw trace.")
}
