// Quickstart: compress a cache-filtered address trace with ATC in both
// modes, decompress it, and compare sizes — the 60-second tour of the
// public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"atc"
	"atc/internal/workload"
)

func main() {
	// 1. Get a cache-filtered address trace. Here we synthesise one with
	//    the workload suite (in real use this would come from a tracing
	//    tool: each value is a 64-bit cache block address).
	const n = 200_000
	trace, err := workload.GenerateFiltered("482.sphinx3", n, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d addresses (%d KB raw)\n", len(trace), len(trace)*8/1024)

	tmp, err := os.MkdirTemp("", "atc-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	// 2. Lossless compression (the paper's 'c' mode): bit-exact. The
	//    stream is cut into WithSegmentAddrs-sized segments (on-disk
	//    format v2), each compressed as an independent chunk by the
	//    WithWorkers pool — same output bytes for any worker count.
	//    WithSegmentAddrs(0) selects the legacy v1 single-chunk layout.
	losslessDir := filepath.Join(tmp, "lossless")
	losslessStats, err := atc.Compress(losslessDir, trace,
		atc.WithMode(atc.Lossless),
		atc.WithBufferAddrs(20_000),
		atc.WithSegmentAddrs(n/4),
		atc.WithWorkers(runtime.GOMAXPROCS(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	bpaLossless, _ := atc.BitsPerAddress(losslessDir, int64(n))

	decoded, err := atc.Decompress(losslessDir)
	if err != nil {
		log.Fatal(err)
	}
	exact := len(decoded) == len(trace)
	for i := range trace {
		if decoded[i] != trace[i] {
			exact = false
			break
		}
	}
	fmt.Printf("lossless: %.3f bits/address over %d segments, bit-exact round trip: %v\n",
		bpaLossless, losslessStats.Chunks, exact)

	// 3. Lossy compression (the paper's 'k' mode): stores one chunk per
	//    program phase and replays it with byte translations elsewhere.
	//    Chunk files are compressed on a worker pool (WithWorkers, default
	//    one worker per CPU); the output is identical for any count.
	lossyDir := filepath.Join(tmp, "lossy")
	stats, err := atc.Compress(lossyDir, trace,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(n/100),
		atc.WithBufferAddrs(n/1000),
		atc.WithWorkers(runtime.GOMAXPROCS(0)),
	)
	if err != nil {
		log.Fatal(err)
	}
	bpaLossy, _ := atc.BitsPerAddress(lossyDir, int64(n))
	fmt.Printf("lossy:    %.3f bits/address (%d intervals -> %d chunks + %d imitations)\n",
		bpaLossy, stats.Intervals, stats.Chunks, stats.Imitations)

	// 4. The lossy trace still has the original's length and footprint.
	approx, err := atc.Decompress(lossyDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lossy round trip: %d addresses, footprint %d vs exact %d distinct blocks\n",
		len(approx), footprint(approx), footprint(trace))
}

func footprint(addrs []uint64) int {
	seen := make(map[uint64]struct{}, len(addrs)/2)
	for _, a := range addrs {
		seen[a] = struct{}{}
	}
	return len(seen)
}
