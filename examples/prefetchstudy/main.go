// Prefetchstudy: evaluate an address predictor (the C/DC prefetcher of the
// paper's §5.3) on compressed traces — the Figure 5 experiment as a
// standalone program.
//
// For each selected workload the program compares the predictor's outcome
// mix (non-predicted / correct / incorrect) on the exact trace and on the
// ATC-lossy-compressed trace. If lossy compression preserves the trace's
// spatiotemporal structure, the two mixes match.
//
//	go run ./examples/prefetchstudy
package main

import (
	"fmt"
	"log"
	"os"

	"atc"
	"atc/internal/cdc"
	"atc/internal/workload"
)

func main() {
	models := []string{"462.libquantum", "456.hmmer", "429.mcf", "458.sjeng"}
	if len(os.Args) > 1 {
		models = os.Args[1:]
	}
	const n = 200_000

	fmt.Printf("%-16s  %-26s  %-26s\n", "model", "exact np/cor/inc", "lossy np/cor/inc")
	for _, model := range models {
		exact, err := workload.GenerateFiltered(model, n, 11)
		if err != nil {
			log.Fatal(err)
		}
		dir, err := os.MkdirTemp("", "atc-prefetch")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := atc.Compress(dir, exact,
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(n/100),
			atc.WithBufferAddrs(n/1000),
		); err != nil {
			log.Fatal(err)
		}
		approx, err := atc.Decompress(dir)
		os.RemoveAll(dir)
		if err != nil {
			log.Fatal(err)
		}

		pe := cdc.MustNew(cdc.PaperConfig)
		pe.AccessAll(exact)
		pa := cdc.MustNew(cdc.PaperConfig)
		pa.AccessAll(approx)

		en, ec, ei := pe.Counts().Fractions()
		an, ac, ai := pa.Counts().Fractions()
		fmt.Printf("%-16s  %7.2f%% %7.2f%% %6.2f%%  %7.2f%% %7.2f%% %6.2f%%\n",
			model, 100*en, 100*ec, 100*ei, 100*an, 100*ac, 100*ai)
	}
	fmt.Println("\npredictable traces stay predictable and random ones stay random")
	fmt.Println("after lossy compression: the compressed traces \"look like\" the originals.")
}
