// Randomtrace: reproduce the paper's Figure 8 demonstration — lossy
// compression of a stream of random 64-bit values.
//
// Random data is incompressible for any lossless method, but every
// interval of a stationary random stream has the same sorted
// byte-histograms, so ATC's phase detector stores a single chunk and
// replays it for all subsequent intervals: the compression ratio
// approaches N / L (10 in the paper's example with ten intervals).
//
//	go run ./examples/randomtrace
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"
	"runtime"

	"atc"
)

func main() {
	const (
		n = 1_000_000 // trace length (the paper uses 100 M)
		l = n / 10    // interval length: ten intervals, as in Figure 8
	)
	rng := rand.New(rand.NewSource(8))
	trace := make([]uint64, n)
	for i := range trace {
		// Full-width random values, like `cat /dev/urandom` in the paper.
		var b [8]byte
		rng.Read(b[:])
		trace[i] = binary.LittleEndian.Uint64(b[:])
	}

	dir, err := os.MkdirTemp("", "atc-randomtrace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	stats, err := atc.Compress(dir, trace,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(l),
		atc.WithBufferAddrs(l/10),
		atc.WithWorkers(runtime.GOMAXPROCS(0)),
	)
	if err != nil {
		log.Fatal(err)
	}

	bpa, err := atc.BitsPerAddress(dir, int64(n))
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := atc.Decompress(dir, atc.WithReadahead(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("input:            %d random 64-bit values (%d bytes)\n", n, n*8)
	fmt.Printf("intervals:        %d of %d values each\n", stats.Intervals, l)
	fmt.Printf("chunks stored:    %d\n", stats.Chunks)
	fmt.Printf("imitations:       %d\n", stats.Imitations)
	fmt.Printf("bits per value:   %.2f (64 would be incompressible)\n", bpa)
	fmt.Printf("compression:      %.1fx\n", 64/bpa)
	fmt.Printf("decoded length:   %d (matches input: %v)\n", len(decoded), len(decoded) == n)
	fmt.Println("\nas in the paper's Figure 8: only the first interval is stored; the")
	fmt.Println("other nine are regenerated from it plus the byte-translation records.")
}
