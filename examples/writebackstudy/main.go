// Writebackstudy: tagged traces — the paper's §2 remark in action.
//
// Cache-filtered block addresses leave the top 6 bits of every 64-bit
// record null; the paper suggests using them to distinguish demand misses
// from write-backs. This program generates such a tagged trace (the L1
// data cache tracks dirty lines and emits write-back records on dirty
// evictions), compresses it with ATC, and verifies that the demand/write-
// back structure survives lossless compression bit-exactly and lossy
// compression statistically.
//
//	go run ./examples/writebackstudy
package main

import (
	"fmt"
	"log"
	"os"

	"atc"
	"atc/internal/cachefilter"
	"atc/internal/trace"
	"atc/internal/workload"
)

func main() {
	const n = 200_000
	model, ok := workload.ByName("450.soplex") // store-heavy sparse solver
	if !ok {
		log.Fatal("model not found")
	}
	src := model.Build(31)
	tagged := cachefilter.CollectTagged(cachefilter.NewTaggedL1(), src, n)

	demand, wb := countTags(tagged)
	fmt.Printf("tagged trace: %d records (%d demand misses, %d write-backs)\n", n, demand, wb)

	// Lossless: tags survive bit-exactly.
	dir, err := os.MkdirTemp("", "atc-wb")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := atc.Compress(dir, tagged, atc.WithBufferAddrs(n/10)); err != nil {
		log.Fatal(err)
	}
	decoded, err := atc.Decompress(dir)
	if err != nil {
		log.Fatal(err)
	}
	exact := true
	for i := range tagged {
		if decoded[i] != tagged[i] {
			exact = false
			break
		}
	}
	bpa, _ := atc.BitsPerAddress(dir, int64(n))
	fmt.Printf("lossless: %.3f bits/record, tags bit-exact: %v\n", bpa, exact)

	// Lossy: the demand/write-back mix is a distribution property the
	// sorted byte-histograms capture (the tag lives in byte 7), so it
	// survives phase-based compression.
	lossyDir, err := os.MkdirTemp("", "atc-wb-lossy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(lossyDir)
	if _, err := atc.Compress(lossyDir, tagged,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(n/10),
		atc.WithBufferAddrs(n/100),
	); err != nil {
		log.Fatal(err)
	}
	approx, err := atc.Decompress(lossyDir)
	if err != nil {
		log.Fatal(err)
	}
	ad, awb := countTags(approx)
	lossyBPA, _ := atc.BitsPerAddress(lossyDir, int64(n))
	fmt.Printf("lossy:    %.3f bits/record, demand/write-back mix %d/%d (exact: %d/%d)\n",
		lossyBPA, ad, awb, demand, wb)
}

func countTags(records []uint64) (demand, writeback int) {
	for _, r := range records {
		if _, tag := trace.SplitTag(r); tag == trace.TagWriteBack {
			writeback++
		} else {
			demand++
		}
	}
	return demand, writeback
}
