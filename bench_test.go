package atc_test

// This file regenerates every table and figure of the paper as Go
// benchmarks, one per experiment, at test-budget scale (the cmd/atcbench
// tool runs the same experiments at configurable scale; DESIGN.md §4 maps
// each benchmark to its paper counterpart).
//
// Custom metrics carry the paper's numbers:
//
//	bits/addr    bits per address (Tables 1 and 3)
//	Maddr/s      decompression speed in millions of addresses/second (Table 2)
//	maxerr       largest exact-vs-lossy miss-ratio deviation (Figure 3/4)
//	ratio        compression ratio (Figure 8)

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"atc"
	"atc/internal/bytesort"
	"atc/internal/experiment"
	"atc/internal/histogram"
	"atc/internal/phase"
	"atc/internal/store"
	"atc/internal/vpc"
)

const (
	benchN = 120_000 // addresses per trace in benchmark runs
)

// benchModels is a representative subset spanning the paper's spectrum:
// streaming, pointer-chasing, code-heavy, tiny-footprint, unstable.
var benchModels = []string{
	"410.bwaves", "429.mcf", "445.gobmk", "453.povray", "462.libquantum", "403.gcc",
}

var benchCache = experiment.NewTraceCache()

func benchTable1Config() experiment.Table1Config {
	return experiment.Table1Config{Models: benchModels, N: benchN, TCgenBits: 14}
}

func BenchmarkTable1BitsPerAddress(b *testing.B) {
	var res *experiment.Table1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable1(benchTable1Config(), benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Mean.Bz2, "bz2-bits/addr")
	b.ReportMetric(res.Mean.Unshuffle, "us-bits/addr")
	b.ReportMetric(res.Mean.TCgen, "tcg-bits/addr")
	b.ReportMetric(res.Mean.BSSmall, "bs1-bits/addr")
	b.ReportMetric(res.Mean.BSBig, "bs10-bits/addr")
}

func BenchmarkTable2Decompression(b *testing.B) {
	t1, err := experiment.RunTable1(benchTable1Config(), benchCache)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *experiment.Table2Result
	for i := 0; i < b.N; i++ {
		res, err = experiment.RunTable2(benchTable1Config(), t1, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		name := map[string]string{
			"TCgen": "tcg", "bytesort small": "bs1", "bytesort big": "bs10",
		}[row.Name]
		b.ReportMetric(row.AddrsPerSecond/1e6, name+"-Maddr/s")
	}
}

func BenchmarkTable3LossyVsLossless(b *testing.B) {
	cfg := experiment.Table3Config{Models: benchModels, N: benchN}
	var res *experiment.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable3(cfg, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MeanLossless, "lossless-bits/addr")
	b.ReportMetric(res.MeanLossy, "lossy-bits/addr")
}

func BenchmarkFigure3MissRatios(b *testing.B) {
	cfg := experiment.Figure3Config{
		Models:    []string{"429.mcf", "462.libquantum", "453.povray"},
		N:         benchN,
		SetCounts: []int{256, 1024},
		MaxAssoc:  16,
	}
	var res *experiment.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunFigure3(cfg, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	maxErr := 0.0
	for _, c := range res.Curves {
		if e := c.MaxAbsError(); e > maxErr {
			maxErr = e
		}
	}
	b.ReportMetric(maxErr, "maxerr")
	if maxErr > 0.3 {
		b.Fatalf("lossy miss-ratio distortion %v too large", maxErr)
	}
}

func BenchmarkFigure4TranslationAblation(b *testing.B) {
	cfg := experiment.Figure4Config{N: benchN, Sets: 1024, MaxAssoc: 16}
	var res *experiment.Figure4Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunFigure4(cfg, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the footprint ratios: translation must track the exact
	// footprint far better than the ablated decode.
	b.ReportMetric(float64(res.TransFootprint)/float64(res.ExactFootprint), "trans-footprint")
	b.ReportMetric(float64(res.NoTransFootprint)/float64(res.ExactFootprint), "notrans-footprint")
}

func BenchmarkFigure5Predictor(b *testing.B) {
	cfg := experiment.Figure5Config{Models: []string{"462.libquantum", "456.hmmer", "458.sjeng"}, N: benchN}
	var res *experiment.Figure5Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunFigure5(cfg, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Report the worst per-class share deviation between exact and lossy.
	worst := 0.0
	for _, row := range res.Rows {
		en, ec, ei := row.Exact.Fractions()
		an, ac, ai := row.Approx.Fractions()
		for _, d := range []float64{en - an, ec - ac, ei - ai} {
			if math.Abs(d) > worst {
				worst = math.Abs(d)
			}
		}
	}
	b.ReportMetric(worst, "maxshare-err")
}

func BenchmarkFigure8RandomTrace(b *testing.B) {
	cfg := experiment.Figure8Config{N: 1_000_000}
	var res *experiment.Figure8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunFigure8(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.CompressionRatio, "ratio")
	if res.Chunks != 1 {
		b.Fatalf("chunks = %d, want 1", res.Chunks)
	}
}

func BenchmarkLongTrace(b *testing.B) {
	cfg := experiment.LongTraceConfig{
		Model:       "482.sphinx3",
		Lengths:     []int{benchN, 4 * benchN},
		IntervalLen: benchN / 25,
	}
	var res *experiment.LongTraceResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunLongTrace(cfg, benchCache)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Points[0].BPA, "short-bits/addr")
	b.ReportMetric(res.Points[len(res.Points)-1].BPA, "long-bits/addr")
}

// --- micro-benchmarks of the core pipelines ---

func benchTrace(b *testing.B, model string) []uint64 {
	return benchTraceN(b, model, benchN)
}

func benchTraceN(b *testing.B, model string, n int) []uint64 {
	b.Helper()
	addrs, err := benchCache.Get(model, n, experiment.DefaultSeed)
	if err != nil {
		b.Fatal(err)
	}
	return addrs
}

func BenchmarkBytesortCompress(b *testing.B) {
	addrs := benchTrace(b, "429.mcf")
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CompressBytesort(addrs, len(addrs)/10, bytesort.Sorted, "bsc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBytesortDecompress(b *testing.B) {
	addrs := benchTrace(b, "429.mcf")
	blob, err := experiment.CompressBytesort(addrs, len(addrs)/10, bytesort.Sorted, "bsc")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiment.DecompressBytesort(blob, bytesort.Sorted, "bsc"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVPCCompress(b *testing.B) {
	addrs := benchTrace(b, "429.mcf")
	cfg := vpc.Config{TableBits: 14}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vpc.Compress(addrs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- serial vs parallel chunk pipeline ---

// chunkedBenchTrace yields intervals with distinct sorted-histogram shapes
// so every interval becomes its own back-end-compressed chunk: the workload
// the worker pool is built for.
func chunkedBenchTrace(intervals, intervalLen int) []uint64 {
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, 0, intervals*intervalLen)
	for p := 0; p < intervals; p++ {
		// Three distribution families (uniform, bimodal, trimodal) crossed
		// with ten footprint sizes: 24 pairwise-distinguishable phases.
		footprint := 64 << uint(p%10)
		base := uint64(p) << 32
		hot := footprint / 8
		for i := 0; i < intervalLen; i++ {
			v := rng.Intn(footprint)
			if p >= 10 && i%2 == 0 {
				v = rng.Intn(hot)
			}
			if p >= 20 && i%4 == 1 {
				v = rng.Intn(4)
			}
			addrs = append(addrs, base+uint64(v))
		}
	}
	return addrs
}

func benchmarkChunkedCompress(b *testing.B, workers int) {
	const (
		intervals   = 24
		intervalLen = 10_000
	)
	addrs := chunkedBenchTrace(intervals, intervalLen)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "atc-chunkbench")
		if err != nil {
			b.Fatal(err)
		}
		stats, err := atc.Compress(dir, addrs,
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(intervalLen),
			atc.WithBufferAddrs(intervalLen/10),
			atc.WithWorkers(workers),
		)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Chunks != intervals {
			b.Fatalf("trace not chunk-heavy: %d chunks of %d intervals", stats.Chunks, intervals)
		}
		os.RemoveAll(dir)
	}
}

func BenchmarkChunkedCompressWorkers1(b *testing.B) { benchmarkChunkedCompress(b, 1) }
func BenchmarkChunkedCompressWorkers2(b *testing.B) { benchmarkChunkedCompress(b, 2) }
func BenchmarkChunkedCompressWorkers4(b *testing.B) { benchmarkChunkedCompress(b, 4) }
func BenchmarkChunkedCompressWorkers8(b *testing.B) { benchmarkChunkedCompress(b, 8) }

func benchmarkChunkedDecode(b *testing.B, readahead int) {
	const (
		intervals   = 24
		intervalLen = 10_000
	)
	addrs := chunkedBenchTrace(intervals, intervalLen)
	dir, err := os.MkdirTemp("", "atc-decbench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(intervalLen),
		atc.WithBufferAddrs(intervalLen/10),
	); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := atc.Decompress(dir, atc.WithReadahead(readahead))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
		}
	}
}

func BenchmarkChunkedDecodeSync(b *testing.B)      { benchmarkChunkedDecode(b, -1) }
func BenchmarkChunkedDecodeReadahead(b *testing.B) { benchmarkChunkedDecode(b, 2) }

// --- serial vs parallel segmented lossless (format v2) ---

const (
	segBenchSegments = 8
	segBenchAddrs    = 30_000 // per segment; 8 segments = 240k addresses
)

func segmentedBenchTrace(b *testing.B) []uint64 {
	return benchTraceN(b, "429.mcf", segBenchSegments*segBenchAddrs)
}

func benchmarkSegmentedCompress(b *testing.B, workers int) {
	addrs := segmentedBenchTrace(b)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "atc-segbench")
		if err != nil {
			b.Fatal(err)
		}
		stats, err := atc.Compress(dir, addrs,
			atc.WithMode(atc.Lossless),
			atc.WithSegmentAddrs(segBenchAddrs),
			atc.WithBufferAddrs(segBenchAddrs/10),
			atc.WithWorkers(workers),
		)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Chunks != segBenchSegments {
			b.Fatalf("segments = %d, want %d", stats.Chunks, segBenchSegments)
		}
		os.RemoveAll(dir)
	}
}

func BenchmarkSegmentedLosslessCompressWorkers1(b *testing.B) { benchmarkSegmentedCompress(b, 1) }
func BenchmarkSegmentedLosslessCompressWorkers2(b *testing.B) { benchmarkSegmentedCompress(b, 2) }
func BenchmarkSegmentedLosslessCompressWorkers4(b *testing.B) { benchmarkSegmentedCompress(b, 4) }
func BenchmarkSegmentedLosslessCompressWorkers8(b *testing.B) { benchmarkSegmentedCompress(b, 8) }

func benchmarkSegmentedDecode(b *testing.B, readahead int) {
	addrs := segmentedBenchTrace(b)
	dir, err := os.MkdirTemp("", "atc-segdecbench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if _, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossless),
		atc.WithSegmentAddrs(segBenchAddrs),
		atc.WithBufferAddrs(segBenchAddrs/10),
	); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := atc.Decompress(dir, atc.WithReadahead(readahead))
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
		}
	}
}

func BenchmarkSegmentedLosslessDecodeSync(b *testing.B)       { benchmarkSegmentedDecode(b, -1) }
func BenchmarkSegmentedLosslessDecodeReadahead4(b *testing.B) { benchmarkSegmentedDecode(b, 4) }

// --- PR 5: encode front-end pipeline and sub-span batched readahead ---

// benchmarkEncodeFrontend measures the lossy encode hot path end to end
// into a memory store (no filesystem noise): with Workers=1 the
// histogram + phase match + dispatch run on the caller's goroutine; with
// Workers>1 they pipeline behind it, so the delta is the front-end
// serial section removed from the caller.
func benchmarkEncodeFrontend(b *testing.B, workers int) {
	const (
		intervals   = 24
		intervalLen = 10_000
	)
	addrs := chunkedBenchTrace(intervals, intervalLen)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := atc.NewWriter("bench", atc.WithStore(atc.NewMemStore()),
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(intervalLen),
			atc.WithBufferAddrs(intervalLen/10),
			atc.WithWorkers(workers),
		)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.CodeSlice(addrs); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if stats := w.Stats(); stats.Chunks != intervals {
			b.Fatalf("trace not chunk-heavy: %d chunks of %d intervals", stats.Chunks, intervals)
		}
	}
}

func BenchmarkEncodeFrontendWorkers1(b *testing.B) { benchmarkEncodeFrontend(b, 1) }
func BenchmarkEncodeFrontendWorkers2(b *testing.B) { benchmarkEncodeFrontend(b, 2) }
func BenchmarkEncodeFrontendWorkers4(b *testing.B) { benchmarkEncodeFrontend(b, 4) }

// benchmarkReadaheadBatch measures a full readahead decode of a
// segmented lossless trace at a given batch size (negative = whole-span
// delivery, the pre-batching pipeline). B/op is the point: batched
// delivery streams segments through recycled BatchAddrs-sized buffers,
// so allocation no longer scales with SegmentAddrs. The "store" backend
// variants isolate the pipeline's own buffering from the back end's
// decompression working memory, on segments 16× larger.
func benchmarkReadaheadBatch(b *testing.B, backend string, segment, batch int) {
	addrs := benchTraceN(b, "429.mcf", segBenchSegments*segBenchAddrs)
	mem := atc.NewMemStore()
	w, err := atc.NewWriter("bench", atc.WithStore(mem),
		atc.WithMode(atc.Lossless),
		atc.WithBackend(backend),
		atc.WithSegmentAddrs(segment),
		atc.WithBufferAddrs(segment/10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := atc.NewReader("bench", atc.WithReadStore(mem),
			atc.WithReadahead(4), atc.WithBatchAddrs(batch))
		if err != nil {
			b.Fatal(err)
		}
		var n int
		for {
			_, err := r.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		r.Close()
		if n != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", n, len(addrs))
		}
	}
}

func BenchmarkReadaheadBatched(b *testing.B) {
	benchmarkReadaheadBatch(b, "bsc", segBenchAddrs, 0) // default batch size
}
func BenchmarkReadaheadWholeSpan(b *testing.B) {
	benchmarkReadaheadBatch(b, "bsc", segBenchAddrs, -1)
}
func BenchmarkReadaheadBatchedBigSeg(b *testing.B) {
	benchmarkReadaheadBatch(b, "store", segBenchSegments*segBenchAddrs/2, 4096)
}
func BenchmarkReadaheadWholeSpanBigSeg(b *testing.B) {
	benchmarkReadaheadBatch(b, "store", segBenchSegments*segBenchAddrs/2, -1)
}

// imitationBenchTrace repeats one distribution, so lossy mode stores a
// single chunk plus imitation records for every later interval — the
// workload where whole-span delivery paid a full interval copy per
// imitation.
func imitationBenchTrace(intervals, intervalLen int) []uint64 {
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, 0, intervals*intervalLen)
	for p := 0; p < intervals; p++ {
		for i := 0; i < intervalLen; i++ {
			addrs = append(addrs, uint64(rng.Intn(1<<16)))
		}
	}
	return addrs
}

// benchmarkReadaheadImitation decodes an imitation-heavy lossy trace:
// batched delivery translates imitations into recycled batch buffers on
// concurrent span tasks instead of one whole-interval copy per record on
// the producer goroutine.
func benchmarkReadaheadImitation(b *testing.B, batch int) {
	const (
		intervals   = 24
		intervalLen = 10_000
	)
	addrs := imitationBenchTrace(intervals, intervalLen)
	mem := atc.NewMemStore()
	w, err := atc.NewWriter("bench", atc.WithStore(mem),
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(intervalLen),
		atc.WithBufferAddrs(intervalLen/10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	if stats := w.Stats(); stats.Imitations < intervals/2 {
		b.Fatalf("trace not imitation-heavy: %d imitations of %d intervals", stats.Imitations, intervals)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := atc.NewReader("bench", atc.WithReadStore(mem),
			atc.WithReadahead(4), atc.WithBatchAddrs(batch))
		if err != nil {
			b.Fatal(err)
		}
		var n int
		for {
			_, err := r.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		r.Close()
		if n != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", n, len(addrs))
		}
	}
}

func BenchmarkReadaheadBatchedImitation(b *testing.B)   { benchmarkReadaheadImitation(b, 0) }
func BenchmarkReadaheadWholeSpanImitation(b *testing.B) { benchmarkReadaheadImitation(b, -1) }

// BenchmarkReadaheadBatchedReused is BenchmarkReadaheadBatched with one
// long-lived Reader rewound between iterations instead of reopened: the
// steady state of a consumer making repeated passes. The backend-reader
// pool is warm after the first pass, so B/op here is the pipeline's true
// per-pass churn with decompression working state recycled (the reopened
// variant pays the pool's cold fill every iteration).
func BenchmarkReadaheadBatchedReused(b *testing.B) {
	addrs := benchTraceN(b, "429.mcf", segBenchSegments*segBenchAddrs)
	mem := atc.NewMemStore()
	w, err := atc.NewWriter("bench", atc.WithStore(mem),
		atc.WithMode(atc.Lossless),
		atc.WithBackend("bsc"),
		atc.WithSegmentAddrs(segBenchAddrs),
		atc.WithBufferAddrs(segBenchAddrs/10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	r, err := atc.NewReader("bench", atc.WithReadStore(mem),
		atc.WithReadahead(4), atc.WithBatchAddrs(0))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.SetBytes(int64(len(addrs) * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Seek(0, io.SeekStart); err != nil {
			b.Fatal(err)
		}
		var n int
		for {
			_, err := r.Decode()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", n, len(addrs))
		}
	}
}

// --- PR 9: phase-table match pruning ---

// matchBenchTable fills a phase table to capacity with pairwise-distinct
// interval histograms (footprint sizes crossed with hot-subset mixtures)
// and returns a probe matching none of them: the worst case, where the
// exhaustive path pays the full 8×256 distance against every entry and the
// pruned path must reject almost all of them from summaries alone.
func matchBenchTable(b *testing.B, capacity int) (*phase.Table, *histogram.Set) {
	b.Helper()
	rng := rand.New(rand.NewSource(2009))
	t := phase.New(capacity, 0.1)
	const intervalLen = 4096
	addrs := make([]uint64, intervalLen)
	for p := 0; p < capacity; p++ {
		footprint := 16 << uint(p%24)
		hot := footprint/16 + 1
		stride := 2 + p/24
		for i := range addrs {
			v := rng.Intn(footprint)
			if p >= 24 && i%stride == 0 {
				v = rng.Intn(hot)
			}
			addrs[i] = uint64(p)<<40 + uint64(v)
		}
		t.Insert(p+1, histogram.Compute(addrs))
	}
	if t.Len() != capacity {
		b.Fatalf("table holds %d entries, want %d", t.Len(), capacity)
	}
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(48)) // footprint between table entries 32 and 64
	}
	probe := histogram.Compute(addrs)
	if _, _, ok := t.MatchExhaustive(probe); ok {
		b.Fatal("probe unexpectedly matches a table entry")
	}
	return t, probe
}

func benchmarkMatch(b *testing.B, capacity int, exhaustive bool) {
	t, probe := matchBenchTable(b, capacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ok bool
		if exhaustive {
			_, _, ok = t.MatchExhaustive(probe)
		} else {
			_, _, ok = t.Match(probe)
		}
		if ok {
			b.Fatal("unexpected match")
		}
	}
}

func BenchmarkMatchPruned256(b *testing.B)      { benchmarkMatch(b, 256, false) }
func BenchmarkMatchExhaustive256(b *testing.B)  { benchmarkMatch(b, 256, true) }
func BenchmarkMatchPruned1024(b *testing.B)     { benchmarkMatch(b, 1024, false) }
func BenchmarkMatchExhaustive1024(b *testing.B) { benchmarkMatch(b, 1024, true) }

// manyPhaseBenchTrace crosses ten footprint sizes with six hot-injection
// strides and five hot-set sizes: ~206 pairwise-distinguishable phases
// (the rest imitate), enough to fill the default 256-entry phase table.
// chunkedBenchTrace's 24 phases never exercise Match at depth; this is
// the workload where classify cost scales with table occupancy.
func manyPhaseBenchTrace(phases, intervalLen int) []uint64 {
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, 0, phases*intervalLen)
	for p := 0; p < phases; p++ {
		footprint := 64 << uint(p%10)
		stride := 2 + (p/10)%6
		hot := 4 << uint((p/60)%5)
		base := uint64(p) << 36
		for i := 0; i < intervalLen; i++ {
			v := rng.Intn(footprint)
			if i%stride == 0 {
				v = rng.Intn(hot)
			}
			addrs = append(addrs, base+uint64(v))
		}
	}
	return addrs
}

// BenchmarkEncodeFrontendManyPhases is the Workers=1 lossy encode with
// ~206 distinct phases resident in the phase table: every interval's
// classify scans deep into the table, so the summary rejection bound —
// not the backend — decides the ns/addr here.
func BenchmarkEncodeFrontendManyPhases(b *testing.B) {
	const (
		phases      = 300
		intervalLen = 2000
	)
	addrs := manyPhaseBenchTrace(phases, intervalLen)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := atc.NewWriter("bench", atc.WithStore(atc.NewMemStore()),
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(intervalLen),
			atc.WithBufferAddrs(intervalLen/10),
			atc.WithWorkers(1),
		)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.CodeSlice(addrs); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if stats := w.Stats(); stats.Chunks < 200 {
			b.Fatalf("trace not phase-diverse: %d chunks of %d intervals", stats.Chunks, phases)
		}
	}
}

// BenchmarkEncodeFrontendTable1024 is the Workers=1 front-end benchmark at
// 4× the default TableCapacity: every interval's Match scans a deeper
// table, so this is where the summary rejection bound has to hold the
// classify stage flat rather than O(capacity).
func BenchmarkEncodeFrontendTable1024(b *testing.B) {
	const (
		intervals   = 24
		intervalLen = 10_000
	)
	addrs := chunkedBenchTrace(intervals, intervalLen)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := atc.NewWriter("bench", atc.WithStore(atc.NewMemStore()),
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(intervalLen),
			atc.WithBufferAddrs(intervalLen/10),
			atc.WithWorkers(1),
			atc.WithTableCapacity(1024),
		)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.CodeSlice(addrs); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		if stats := w.Stats(); stats.Chunks != intervals {
			b.Fatalf("trace not chunk-heavy: %d chunks of %d intervals", stats.Chunks, intervals)
		}
	}
}

// TestSegmentedBPAOverhead pins the capacity cost of lossless segmentation:
// versus the legacy single chunk, the default segment size (which holds
// this whole trace in one segment) must be essentially free, and even an
// aggressive 8-way split must stay under 5% BPA overhead on a random
// trace.
func TestSegmentedBPAOverhead(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	const n = 160_000
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 28))
	}
	bpaAt := func(segment int) float64 {
		dir := t.TempDir()
		if _, err := atc.Compress(dir, addrs,
			atc.WithMode(atc.Lossless),
			atc.WithBufferAddrs(n/10),
			atc.WithSegmentAddrs(segment),
		); err != nil {
			t.Fatal(err)
		}
		bpa, err := atc.BitsPerAddress(dir, n)
		if err != nil {
			t.Fatal(err)
		}
		return bpa
	}
	single := bpaAt(0)        // legacy v1 single chunk
	defSeg := bpaAt(16 << 20) // the default segment size, spelled out
	eightWay := bpaAt(n / 8)
	if defSeg > single*1.05 {
		t.Fatalf("default segment size BPA %.4f vs single-chunk %.4f: overhead > 5%%", defSeg, single)
	}
	if eightWay > single*1.05 {
		t.Fatalf("8-way segmented BPA %.4f vs single-chunk %.4f: overhead > 5%%", eightWay, single)
	}
}

// --- archive store vs directory store (PR 3) ---

func benchmarkSegmentedArchiveCompress(b *testing.B, workers int) {
	addrs := segmentedBenchTrace(b)
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp("", "atc-arcbench")
		if err != nil {
			b.Fatal(err)
		}
		w, err := atc.CreateArchive(filepath.Join(dir, "t.atc"),
			atc.WithMode(atc.Lossless),
			atc.WithSegmentAddrs(segBenchAddrs),
			atc.WithBufferAddrs(segBenchAddrs/10),
			atc.WithWorkers(workers),
		)
		if err != nil {
			b.Fatal(err)
		}
		if err := w.CodeSlice(addrs); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		os.RemoveAll(dir)
	}
}

func BenchmarkSegmentedArchiveCompressWorkers1(b *testing.B) { benchmarkSegmentedArchiveCompress(b, 1) }
func BenchmarkSegmentedArchiveCompressWorkers4(b *testing.B) { benchmarkSegmentedArchiveCompress(b, 4) }

func benchmarkSegmentedArchiveDecode(b *testing.B, readahead int) {
	addrs := segmentedBenchTrace(b)
	dir, err := os.MkdirTemp("", "atc-arcdecbench")
	if err != nil {
		b.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "t.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless),
		atc.WithSegmentAddrs(segBenchAddrs),
		atc.WithBufferAddrs(segBenchAddrs/10),
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := atc.OpenArchive(path, atc.WithReadahead(readahead))
		if err != nil {
			b.Fatal(err)
		}
		got, err := r.DecodeAll()
		if err != nil {
			b.Fatal(err)
		}
		r.Close()
		if len(got) != len(addrs) {
			b.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
		}
	}
}

func BenchmarkSegmentedArchiveDecodeSync(b *testing.B)       { benchmarkSegmentedArchiveDecode(b, -1) }
func BenchmarkSegmentedArchiveDecodeReadahead4(b *testing.B) { benchmarkSegmentedArchiveDecode(b, 4) }

// --- random access: DecodeRange over the chunk index (PR 4) ---

// rangeBenchTrace writes the segmented benchmark workload as a directory
// or a single-file archive and returns its path.
func rangeBenchTrace(b *testing.B, archive bool) string {
	addrs := segmentedBenchTrace(b)
	dir, err := os.MkdirTemp("", "atc-rangebench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	opts := []atc.Option{
		atc.WithMode(atc.Lossless),
		atc.WithSegmentAddrs(segBenchAddrs),
		atc.WithBufferAddrs(segBenchAddrs / 10),
	}
	if !archive {
		if _, err := atc.Compress(dir, addrs, opts...); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	path := filepath.Join(dir, "t.atc")
	w, err := atc.CreateArchive(path, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return path
}

// benchmarkDecodeRange measures one mid-trace window per iteration. Cold
// reopens the Reader every time (every chunk decompresses from the
// store); warm reuses one Reader, so after the first iteration the
// window is served from the chunk cache.
func benchmarkDecodeRange(b *testing.B, archive, warm bool) {
	path := rangeBenchTrace(b, archive)
	// A window straddling two segments, mid-trace.
	from := int64(segBenchAddrs*3 - segBenchAddrs/2)
	to := from + segBenchAddrs
	var persistent *atc.Reader
	if warm {
		r, err := atc.NewReader(path, atc.WithReadahead(-1))
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		persistent = r
	}
	b.SetBytes((to - from) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := persistent
		if !warm {
			var err error
			r, err = atc.NewReader(path, atc.WithReadahead(-1))
			if err != nil {
				b.Fatal(err)
			}
		}
		got, err := r.DecodeRange(from, to)
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(got)) != to-from {
			b.Fatalf("range returned %d addrs, want %d", len(got), to-from)
		}
		if !warm {
			r.Close()
		}
	}
}

func BenchmarkDecodeRangeDirCold(b *testing.B)     { benchmarkDecodeRange(b, false, false) }
func BenchmarkDecodeRangeDirWarm(b *testing.B)     { benchmarkDecodeRange(b, false, true) }
func BenchmarkDecodeRangeArchiveCold(b *testing.B) { benchmarkDecodeRange(b, true, false) }
func BenchmarkDecodeRangeArchiveWarm(b *testing.B) { benchmarkDecodeRange(b, true, true) }

// benchmarkDecodeRangeRemote is benchmarkDecodeRange over a RemoteStore:
// the archive sits behind a local Range-speaking HTTP server and every
// chunk read goes through the remote block cache. Cold reopens the reader
// each iteration — a fresh block cache, so the window's blocks are
// fetched from the origin every time; warm reuses one reader, so after
// the first iteration both the block cache and the chunk cache are hot
// and the origin is never touched again.
func benchmarkDecodeRangeRemote(b *testing.B, warm bool) {
	path := rangeBenchTrace(b, true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, path)
	}))
	b.Cleanup(srv.Close)
	from := int64(segBenchAddrs*3 - segBenchAddrs/2)
	to := from + segBenchAddrs
	var persistent *atc.Reader
	if warm {
		r, err := atc.NewReader(srv.URL, atc.WithReadahead(-1))
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		persistent = r
	}
	b.SetBytes((to - from) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := persistent
		if !warm {
			var err error
			r, err = atc.NewReader(srv.URL, atc.WithReadahead(-1))
			if err != nil {
				b.Fatal(err)
			}
		}
		got, err := r.DecodeRange(from, to)
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(got)) != to-from {
			b.Fatalf("range returned %d addrs, want %d", len(got), to-from)
		}
		if !warm {
			r.Close()
		}
	}
}

func BenchmarkDecodeRangeRemoteCold(b *testing.B) { benchmarkDecodeRangeRemote(b, false) }
func BenchmarkDecodeRangeRemoteWarm(b *testing.B) { benchmarkDecodeRangeRemote(b, true) }

// BenchmarkDecodeRangeVsFullDecode quantifies the point of the chunk
// index: fetching one two-segment window without decoding the rest of
// the trace, versus what a front-to-back consumer would pay.
func BenchmarkDecodeRangeVsFullDecode(b *testing.B) {
	path := rangeBenchTrace(b, true)
	from := int64(segBenchAddrs*3 - segBenchAddrs/2)
	to := from + segBenchAddrs
	b.SetBytes((to - from) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := atc.OpenArchive(path, atc.WithReadahead(-1))
		if err != nil {
			b.Fatal(err)
		}
		all, err := r.DecodeAll()
		if err != nil {
			b.Fatal(err)
		}
		_ = all[from:to]
		r.Close()
	}
}

// BenchmarkSharedCacheBytes measures the hot-hit path of the
// process-wide byte-budgeted chunk cache: GetOrLoad across three trace
// views, every lookup a hit, the shape a serving replica sees once its
// working set is resident.
func BenchmarkSharedCacheBytes(b *testing.B) {
	const (
		traces   = 3
		chunks   = 64
		chunkLen = 512
	)
	c := atc.NewSharedChunkCacheBytes(int64(traces * chunks * chunkLen * 8))
	views := make([]*atc.TraceChunkCache, traces)
	payload := make([]uint64, chunkLen)
	for t := range views {
		views[t] = c.ForTrace(fmt.Sprintf("t%d", t))
		for id := 0; id < chunks; id++ {
			views[t].Put(id, payload)
		}
	}
	load := func() ([]uint64, error) { return payload, nil }
	// Thousands of lookups per op keep ns/op coarse enough for the
	// benchguard gate: a single hot hit is a few hundred nanoseconds,
	// too fine for a 10% threshold at -benchtime 3x.
	const lookups = 4096
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < lookups; j++ {
			addrs, err := views[j%traces].GetOrLoad(j%chunks, true, load)
			if err != nil || len(addrs) != chunkLen {
				b.Fatalf("GetOrLoad = %d addrs, %v", len(addrs), err)
			}
		}
	}
}

// remoteBenchTrace writes a 32-segment archive — several megabytes, so a
// sequential decode crosses enough 32 KiB remote blocks for the adaptive
// window to reach and hold its steady state.
func remoteBenchTrace(b *testing.B) (string, int64) {
	const segments = 32
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, segments*segBenchAddrs)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	dir, err := os.MkdirTemp("", "atc-remotebench")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "t.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless),
		atc.WithSegmentAddrs(segBenchAddrs),
		atc.WithBufferAddrs(segBenchAddrs/10))
	if err != nil {
		b.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return path, int64(len(addrs))
}

// benchmarkRemotePrefetch decodes the whole segmented archive
// front-to-back over a local Range-speaking origin with a cold block
// cache each iteration, and reports the origin round-trips. maxPrefetch
// 0 is the adaptive readahead (window doubles on sequential hits, up to
// 16 blocks per coalesced GET); 1 pins the pre-adaptive fixed depth-1
// behavior, one block per GET, for comparison.
func benchmarkRemotePrefetch(b *testing.B, maxPrefetch int) {
	path, total := remoteBenchTrace(b)
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		http.ServeFile(w, r, path)
	}))
	b.Cleanup(srv.Close)
	b.SetBytes(total * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rst, err := store.OpenRemote(srv.URL, store.RemoteOptions{
			BlockSize:         32768,
			CacheBlocks:       128,
			MaxPrefetchBlocks: maxPrefetch,
		})
		if err != nil {
			b.Fatal(err)
		}
		r, err := atc.NewReader("bench", atc.WithReadStore(rst), atc.WithReadahead(-1))
		if err != nil {
			b.Fatal(err)
		}
		got, err := r.DecodeRange(0, total)
		if err != nil {
			b.Fatal(err)
		}
		if int64(len(got)) != total {
			b.Fatalf("decoded %d addrs, want %d", len(got), total)
		}
		r.Close()
	}
	b.ReportMetric(float64(gets.Load())/float64(b.N), "origin-gets/op")
}

func BenchmarkRemotePrefetchAdaptive(b *testing.B) { benchmarkRemotePrefetch(b, 0) }
func BenchmarkRemotePrefetchDepth1(b *testing.B)   { benchmarkRemotePrefetch(b, 1) }
