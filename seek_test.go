package atc_test

// Property tests for the random-access API across every store backend ×
// every on-disk format mode: DecodeRange(a, b) must equal the matching
// slice of DecodeAll(), Seek must resume the stream anywhere (including
// backwards), and out-of-range requests must fail cleanly.

import (
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"atc"
)

const seekTestN = 24_000

func seekTestAddrs(t testing.TB) []uint64 {
	t.Helper()
	return generate(t, "429.mcf", seekTestN)
}

// seekTestModes are the three format shapes random access must cover.
var seekTestModes = []struct {
	name string
	opts []atc.Option
}{
	{"lossy", []atc.Option{atc.WithMode(atc.Lossy), atc.WithIntervalLen(2000), atc.WithBufferAddrs(400)}},
	{"legacy-lossless", []atc.Option{atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(-1), atc.WithBufferAddrs(400)}},
	{"segmented", []atc.Option{atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(3000), atc.WithBufferAddrs(400)}},
}

// seekTestStores builds the trace in each backend and yields an open
// function per store kind.
func seekTestStores(t *testing.T, addrs []uint64, opts []atc.Option) map[string]func() (*atc.Reader, error) {
	t.Helper()
	dir := t.TempDir()
	if _, err := atc.Compress(dir, addrs, opts...); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(t.TempDir(), "trace.atc")
	aw, err := atc.CreateArchive(arc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := aw.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}
	mem := atc.NewMemStore()
	mw, err := atc.NewWriter("mem", append(opts[:len(opts):len(opts)], atc.WithStore(mem))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := mw.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return map[string]func() (*atc.Reader, error){
		"dir":     func() (*atc.Reader, error) { return atc.NewReader(dir) },
		"archive": func() (*atc.Reader, error) { return atc.OpenArchive(arc) },
		"mem":     func() (*atc.Reader, error) { return atc.NewReader("mem", atc.WithReadStore(mem)) },
	}
}

func TestDecodeRangePropertyAllStoresAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	addrs := seekTestAddrs(t)
	n := int64(len(addrs))
	for _, mode := range seekTestModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			stores := seekTestStores(t, addrs, mode.opts)
			for name, open := range stores {
				t.Run(name, func(t *testing.T) {
					ref, err := open()
					if err != nil {
						t.Fatal(err)
					}
					want, err := ref.DecodeAll()
					if err != nil {
						t.Fatal(err)
					}
					ref.Close()
					r, err := open()
					if err != nil {
						t.Fatal(err)
					}
					defer r.Close()
					rng := rand.New(rand.NewSource(2009))
					windows := [][2]int64{{0, 0}, {0, n}, {n, n}, {n - 1, n}}
					for i := 0; i < 16; i++ {
						a := rng.Int63n(n + 1)
						b := a + rng.Int63n(n+1-a)
						windows = append(windows, [2]int64{a, b})
					}
					// One Reader serves all windows in arbitrary order —
					// forward and backward jumps alike.
					for _, w := range windows {
						got, err := r.DecodeRange(w[0], w[1])
						if err != nil {
							t.Fatalf("DecodeRange(%d, %d): %v", w[0], w[1], err)
						}
						if int64(len(got)) != w[1]-w[0] {
							t.Fatalf("DecodeRange(%d, %d) returned %d addrs", w[0], w[1], len(got))
						}
						for i, v := range got {
							if v != want[w[0]+int64(i)] {
								t.Fatalf("DecodeRange(%d, %d) diverges at offset %d", w[0], w[1], i)
							}
						}
					}
					// Interleave: stream a little, range elsewhere, stream on.
					if _, err := r.Seek(0, io.SeekStart); err != nil {
						t.Fatal(err)
					}
					for i := 0; i < 100; i++ {
						if v, err := r.Decode(); err != nil || v != want[i] {
							t.Fatalf("stream at %d: %d, %v", i, v, err)
						}
					}
					if _, err := r.DecodeRange(n/2, n/2+50); err != nil {
						t.Fatal(err)
					}
					for i := 100; i < 200; i++ {
						if v, err := r.Decode(); err != nil || v != want[i] {
							t.Fatalf("stream resumed at %d: %d, %v", i, v, err)
						}
					}
				})
			}
		})
	}
}

func TestSeekPropertyAllStoresAllModes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	addrs := seekTestAddrs(t)
	n := int64(len(addrs))
	for _, mode := range seekTestModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			stores := seekTestStores(t, addrs, mode.opts)
			for name, open := range stores {
				t.Run(name, func(t *testing.T) {
					r, err := open()
					if err != nil {
						t.Fatal(err)
					}
					defer r.Close()
					want, err := r.DecodeAll()
					if err != nil {
						t.Fatal(err)
					}
					// Random seek points — the reference Reader is reused, so
					// every seek after the DecodeAll above is backwards first.
					rng := rand.New(rand.NewSource(7))
					for i := 0; i < 12; i++ {
						at := rng.Int63n(n)
						pos, err := r.Seek(at, io.SeekStart)
						if err != nil {
							t.Fatalf("Seek(%d): %v", at, err)
						}
						if pos != at {
							t.Fatalf("Seek(%d) reported position %d", at, pos)
						}
						k := int64(50)
						if at+k > n {
							k = n - at
						}
						for j := int64(0); j < k; j++ {
							v, err := r.Decode()
							if err != nil {
								t.Fatalf("Decode after Seek(%d): %v", at, err)
							}
							if v != want[at+j] {
								t.Fatalf("Seek(%d) diverges at offset %d", at, j)
							}
						}
					}
					// Relative whence forms.
					if _, err := r.Seek(10, io.SeekStart); err != nil {
						t.Fatal(err)
					}
					if pos, err := r.Seek(5, io.SeekCurrent); err != nil || pos != 15 {
						t.Fatalf("SeekCurrent: pos %d, err %v", pos, err)
					}
					if pos, err := r.Seek(-n, io.SeekEnd); err != nil || pos != 0 {
						t.Fatalf("SeekEnd(-n): pos %d, err %v", pos, err)
					}
					// Error cases: past-EOF, before start, bad whence.
					if _, err := r.Seek(n+1, io.SeekStart); err == nil {
						t.Fatal("seek past EOF accepted")
					}
					if _, err := r.Seek(-1, io.SeekStart); err == nil {
						t.Fatal("negative seek accepted")
					}
					if _, err := r.Seek(1, io.SeekEnd); err == nil {
						t.Fatal("seek beyond end accepted")
					}
					if _, err := r.Seek(0, 42); err == nil {
						t.Fatal("bad whence accepted")
					}
					// Seeking exactly to the end is allowed and yields EOF.
					if pos, err := r.Seek(0, io.SeekEnd); err != nil || pos != n {
						t.Fatalf("Seek(end): pos %d, err %v", pos, err)
					}
					if _, err := r.Decode(); err != io.EOF {
						t.Fatalf("Decode at end = %v, want io.EOF", err)
					}
				})
			}
		})
	}
}

func TestReadAddrsAt(t *testing.T) {
	addrs := generate(t, "453.povray", 10_000)
	dir := t.TempDir()
	if _, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossy), atc.WithIntervalLen(1500), atc.WithBufferAddrs(300)); err != nil {
		t.Fatal(err)
	}
	r, err := atc.NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	want, err := r.DecodeRange(0, r.TotalAddrs())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]uint64, 256)
	n, err := r.ReadAddrsAt(buf, 4000)
	if err != nil || n != len(buf) {
		t.Fatalf("ReadAddrsAt = %d, %v", n, err)
	}
	for i, v := range buf {
		if v != want[4000+i] {
			t.Fatalf("ReadAddrsAt diverges at %d", i)
		}
	}
	// Short read at the tail ends with io.EOF.
	n, err = r.ReadAddrsAt(buf, r.TotalAddrs()-10)
	if err != io.EOF || n != 10 {
		t.Fatalf("tail ReadAddrsAt = %d, %v; want 10, io.EOF", n, err)
	}
	if n, err := r.ReadAddrsAt(buf, r.TotalAddrs()); n != 0 || err != io.EOF {
		t.Fatalf("ReadAddrsAt(end) = %d, %v; want 0, io.EOF", n, err)
	}
	if _, err := r.ReadAddrsAt(buf, -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

// TestSeekDuringReadaheadStress hammers the readahead restart path: a
// reader with an active batched readahead pipeline is seeked to random
// positions (forwards, backwards, mid-batch, mid-span) with a partial
// decode between seeks, for every mode. Each seek stops an in-flight
// pipeline — span tasks mid-stream included — and the next Decode
// restarts it at the new cursor; the decoded values must match the raw
// trace exactly. Run under -race this also shakes the producer/consumer
// handoff and the batch-buffer free list.
func TestSeekDuringReadaheadStress(t *testing.T) {
	addrs := seekTestAddrs(t)
	n := int64(len(addrs))
	for _, mode := range seekTestModes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			if _, err := atc.Compress(dir, addrs, mode.opts...); err != nil {
				t.Fatal(err)
			}
			// The reference is the decoded stream, not the raw input: lossy
			// imitation spans replay translated chunks, so only the decoded
			// form is stable across pipelines.
			want, err := atc.Decompress(dir, atc.WithReadahead(-1))
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(want)) != n {
				t.Fatalf("reference decode: %d addresses, want %d", len(want), n)
			}
			r, err := atc.NewReader(dir, atc.WithReadahead(3), atc.WithBatchAddrs(257))
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			rng := rand.New(rand.NewSource(77))
			for iter := 0; iter < 120; iter++ {
				at := rng.Int63n(n)
				if _, err := r.Seek(at, io.SeekStart); err != nil {
					t.Fatalf("iter %d: Seek(%d): %v", iter, at, err)
				}
				// Decode a burst of varying length: sometimes shorter than
				// one batch (the pipeline is stopped while producing),
				// sometimes spanning several spans.
				burst := int64(1 + rng.Intn(4000))
				for i := int64(0); i < burst && at+i < n; i++ {
					v, err := r.Decode()
					if err != nil {
						t.Fatalf("iter %d: Decode at %d: %v", iter, at+i, err)
					}
					if v != want[at+i] {
						t.Fatalf("iter %d: Seek(%d) diverges at offset %d", iter, at, i)
					}
				}
			}
			// Finish with a full tail decode to EOF: the stream must still
			// verify its trailer count after heavy seeking.
			if _, err := r.Seek(0, io.SeekStart); err != nil {
				t.Fatal(err)
			}
			got, err := r.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if int64(len(got)) != n {
				t.Fatalf("final full decode: %d addresses, want %d", len(got), n)
			}
		})
	}
}
