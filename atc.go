// Package atc is a Go implementation of ATC, the address-trace compressor
// of Pierre Michaud's "Online compression of cache-filtered address traces"
// (ISPASS 2009). It compresses traces of 64-bit values — typically cache
// block addresses that missed a first-level cache — either losslessly
// (bytesort transformation + block-sorting byte compressor) or lossily
// (phase detection over sorted byte-histograms with byte-translated
// interval reuse), reproducing the paper's `atc_open` / `atc_code` /
// `atc_decode` / `atc_close` workflow with idiomatic Go types.
//
// # Quick start
//
//	w, err := atc.NewWriter("trace-dir", atc.WithMode(atc.Lossy))   // directory layout
//	// or: atc.CreateArchive("trace.atc", atc.WithMode(atc.Lossy))  // single-file layout
//	if err != nil { ... }
//	for _, addr := range addrs {
//	    if err := w.Code(addr); err != nil { ... }
//	}
//	if err := w.Close(); err != nil { ... }
//
//	r, err := atc.NewReader("trace-dir") // auto-detects directory vs archive
//	if err != nil { ... }
//	defer r.Close()
//	for {
//	    addr, err := r.Decode()
//	    if err == io.EOF { break }
//	    if err != nil { ... }
//	    use(addr)
//	}
//
// A compressed trace is a set of named blobs — back-end-compressed chunks
// plus an INFO metadata stream, as in the paper's Figure 8 — held in a
// pluggable Store. Three layouts ship: a directory of files (the default,
// byte-identical to the paper tooling's output), a single-file .atc
// archive with a seekable table of contents (CreateArchive/OpenArchive,
// the distributable shape), and an in-memory store (NewMemStore, for
// tests and serving from RAM). NewReader auto-detects directory vs
// archive; cmd/atcpack converts between them byte-identically. Lossless
// mode is bit exact. Lossy mode preserves the trace length and the
// memory-locality structure (miss ratios, predictability) while storing
// only one chunk per program phase; see the package documentation of
// atc/internal/core for the on-disk format and DESIGN.md for the
// reproduction notes.
//
// # Concurrency
//
// Chunk files are independent, so the expensive bytesort + back-end stage
// runs on a pool of WithWorkers goroutines (default runtime.GOMAXPROCS(0);
// 1 restores fully-synchronous operation) in both modes: lossy mode hands
// each completed interval to the pool, and lossless mode cuts the stream
// into WithSegmentAddrs-sized segments (default 16 Mi addresses, on-disk
// format v2) that are compressed as independent chunks the same way.
// Interval/segment classification, chunk numbering and the INFO record
// sequence stay on the calling goroutine, so the output directory is
// byte-for-byte identical for every worker count at a fixed segment size.
// (An archive's blobs are equally byte-identical, but the file appends
// them in worker completion order; use WithWorkers(1) or pack a directory
// with atcpack when a canonical archive file matters.)
// A chunk-compression failure is deferred: it is returned by a later
// Code/CodeSlice call or, at the latest, by Close — callers that check
// every error, as the quick start does, observe it either way. Writer and
// Reader themselves are not safe for concurrent use by multiple
// goroutines. WithSegmentAddrs(0) selects the legacy v1 single-chunk
// lossless layout, which streams with bounded memory but compresses and
// decompresses on a single goroutine.
//
// Decoding symmetrically overlaps back-end decompression with consumption
// through a bounded readahead pipeline (WithReadahead, default 2 buffered
// batches; negative disables it); segmented lossless traces additionally
// decompress up to WithReadahead segments concurrently and deliver them in
// order. Reader.Close stops the readahead goroutines, so it must be called
// even on early abandonment.
//
// # Random access
//
// Decoding is driven by a chunk index built at open — a table mapping
// every interval/segment record to its absolute address range and backing
// chunk — so a Reader is not just a forward stream: Reader.Seek
// repositions it to any trace position, Reader.DecodeRange returns the
// addresses of an arbitrary window [from, to) while decompressing only
// the chunks overlapping it, and Reader.ReadAddrsAt offers the same as an
// io.ReaderAt-style call in address units. On lossy and segmented
// lossless traces these are O(chunks touched); the legacy v1 single-chunk
// lossless layout supports them too, by streaming from the nearest known
// position. cmd/atcserve serves this capability over HTTP from a
// directory, archive, or memory store.
package atc

import (
	"fmt"
	"io"

	"atc/internal/core"
	"atc/internal/obs"
	"atc/internal/store"
)

// Mode selects the compression mode.
type Mode = core.Mode

// Compression modes.
const (
	// Lossless is the paper's 'c' mode: bit-exact bytesort compression.
	Lossless = core.Lossless
	// Lossy is the paper's 'k' mode: phase-based interval reuse.
	Lossy = core.Lossy
)

// ErrCorrupt reports a malformed compressed trace or archive.
var ErrCorrupt = core.ErrCorrupt

// Store is a pluggable container of named blobs holding one compressed
// trace: a directory, a single-file archive, memory, or any custom
// implementation (a blob store, a content-addressed cache). Pass one with
// WithStore/WithReadStore; see atc/internal/store for the contract each
// method must honor.
type Store = store.Store

// NewMemStore returns an empty in-memory Store. A trace compressed into
// it (WithStore) stays readable from the same value after Writer.Close,
// so a trace can round-trip without touching the filesystem — the seed of
// an in-RAM serving tier.
func NewMemStore() Store { return store.NewMem() }

// ErrUnsupportedVersion reports a compressed trace written by a format
// version this build does not read; it wraps ErrCorrupt.
var ErrUnsupportedVersion = core.ErrUnsupportedVersion

// ErrClosed reports use of a Writer or Reader after Close. It signals a
// caller bug rather than bad data.
var ErrClosed = core.ErrClosed

// ErrOutOfRange reports a SeekTo or DecodeRange target outside the
// trace's address positions: the trace is intact, the request is not.
var ErrOutOfRange = core.ErrOutOfRange

// Stats summarises a finished compression.
type Stats struct {
	// Mode is the compression mode used.
	Mode Mode
	// TotalAddrs is the number of 64-bit values coded.
	TotalAddrs int64
	// Intervals is the number of lossy intervals (1 for lossless).
	Intervals int64
	// Chunks is the number of chunk files written.
	Chunks int64
	// Imitations is the number of intervals stored as imitation records.
	Imitations int64
}

// Option configures a Writer.
type Option func(*core.Options)

// WithMode selects Lossless (default) or Lossy compression.
func WithMode(m Mode) Option {
	return func(o *core.Options) { o.Mode = m }
}

// WithBackend selects the byte-level back end: "bsc" (default, a bzip2-class
// block-sorting compressor), "flate", or "store".
func WithBackend(name string) Option {
	return func(o *core.Options) { o.Backend = name }
}

// WithIntervalLen sets the lossy interval length L in addresses
// (default 10,000,000, the paper's value).
func WithIntervalLen(l int) Option {
	return func(o *core.Options) { o.IntervalLen = l }
}

// WithEpsilon sets the lossy matching threshold ε (default 0.1).
func WithEpsilon(eps float64) Option {
	return func(o *core.Options) { o.Epsilon = eps }
}

// WithBufferAddrs sets the bytesort buffer size B in addresses
// (default 1,000,000, the paper's "small bytesort").
func WithBufferAddrs(b int) Option {
	return func(o *core.Options) { o.BufferAddrs = b }
}

// WithSegmentAddrs cuts the lossless stream into segments of n addresses,
// each bytesort-transformed and back-end-compressed as an independent
// chunk by the WithWorkers pool (on-disk format v2). The default is 16 Mi
// addresses (128 MB of raw trace per segment); n <= 0 selects the legacy
// v1 single-chunk layout, which streams with bounded memory but offers no
// parallelism. Smaller segments parallelize better at a small
// bits-per-address cost, because each segment restarts the bytesort and
// back-end context. Lossy mode is unaffected.
func WithSegmentAddrs(n int) Option {
	return func(o *core.Options) {
		if n <= 0 {
			n = -1
		}
		o.SegmentAddrs = n
	}
}

// WithTableCapacity bounds the phase table (default 256 chunks).
func WithTableCapacity(n int) Option {
	return func(o *core.Options) { o.TableCapacity = n }
}

// WithStore writes the trace into s instead of the path-selected default
// container. The path passed to NewWriter is then informational only.
// Writer.Close finalizes the store (a single-file archive writes its
// table of contents there).
func WithStore(s Store) Option {
	return func(o *core.Options) { o.Store = s }
}

// WithWorkers sets the number of goroutines compressing completed chunks
// — lossy intervals and lossless segments (default runtime.GOMAXPROCS(0)).
// n = 1 compresses lossy chunks synchronously on the calling goroutine;
// segmented lossless runs one worker behind an unbuffered queue, capping
// streaming memory at two segment buffers while overlapping compression
// with trace production. The compressed directory is byte-for-byte
// identical for every worker count; worker errors are deferred into a
// later Code call or Close. Only the legacy single-chunk lossless layout
// (WithSegmentAddrs(0)) is unaffected by workers.
func WithWorkers(n int) Option {
	return func(o *core.Options) { o.Workers = n }
}

// Writer compresses a trace into a directory.
type Writer struct {
	c *core.Compressor
}

func newWriter(path string, archive bool, opts []Option) (*Writer, error) {
	var o core.Options
	for _, opt := range opts {
		opt(&o)
	}
	o.Archive = archive
	c, err := core.Create(path, o)
	if err != nil {
		return nil, err
	}
	return &Writer{c: c}, nil
}

// NewWriter starts a new compressed trace in directory dir (or in the
// container named by WithStore).
func NewWriter(dir string, opts ...Option) (*Writer, error) {
	return newWriter(dir, false, opts)
}

// CreateArchive starts a new compressed trace as a single-file .atc
// archive at path: header, blob payloads and a trailing seekable table of
// contents with per-blob CRC32s. The trace encoding inside is identical
// to the directory layout — cmd/atcpack converts between the two
// byte-for-byte. Close writes the table of contents; an abandoned archive
// does not open.
func CreateArchive(path string, opts ...Option) (*Writer, error) {
	return newWriter(path, true, opts)
}

// Code appends one 64-bit value to the trace.
func (w *Writer) Code(x uint64) error { return w.c.Code(x) }

// CodeSlice appends many values.
func (w *Writer) CodeSlice(xs []uint64) error { return w.c.CodeSlice(xs) }

// Close finishes the trace, writing all metadata. It must be called.
func (w *Writer) Close() error { return w.c.Close() }

// Stats reports compression counters; call after Close.
func (w *Writer) Stats() Stats {
	s := w.c.Stats()
	return Stats{
		Mode:       s.Mode,
		TotalAddrs: s.TotalAddrs,
		Intervals:  s.Intervals,
		Chunks:     s.Chunks,
		Imitations: s.Imitations,
	}
}

// ReadOption configures a Reader.
type ReadOption func(*core.DecodeOptions)

// WithReadBackend overrides the back end recorded in the trace MANIFEST.
func WithReadBackend(name string) ReadOption {
	return func(o *core.DecodeOptions) { o.Backend = name }
}

// WithoutTranslations disables byte translation during decoding — the
// ablation of the paper's Figure 4. Only meaningful for lossy traces.
func WithoutTranslations() ReadOption {
	return func(o *core.DecodeOptions) { o.IgnoreTranslations = true }
}

// WithChunkCache bounds the number of decompressed chunks cached in memory
// during decoding (default 8). Ignored when WithSharedChunkCache provides
// the cache itself.
func WithChunkCache(n int) ReadOption {
	return func(o *core.DecodeOptions) { o.ChunkCacheSize = n }
}

// ChunkCache holds decompressed chunks for a Reader, keyed by chunk ID.
// Inject one with WithSharedChunkCache; see atc/internal/core for the
// interface contract (cached slices are shared and immutable).
type ChunkCache = core.ChunkCache

// SharedChunkCache is a concurrency-safe LRU chunk cache meant to be
// shared by a pool of Readers over one trace: a hot chunk decompresses
// once per process instead of once per reader, and concurrent misses on
// the same chunk deduplicate onto a single decompression.
type SharedChunkCache = core.SharedChunkCache

// NewSharedChunkCache returns a SharedChunkCache bounding n chunks
// (minimum 1).
func NewSharedChunkCache(n int) *SharedChunkCache { return core.NewSharedChunkCache(n) }

// WithSharedChunkCache replaces the Reader's private chunk cache with a
// caller-provided one — typically one NewSharedChunkCache shared by every
// pooled Reader of the same trace, or a SharedChunkCacheBytes trace view
// (ForTrace) when many traces share one byte budget. Do not share one
// SharedChunkCache across different traces: chunk IDs would collide.
// Overrides WithChunkCache.
func WithSharedChunkCache(c ChunkCache) ReadOption {
	return func(o *core.DecodeOptions) { o.ChunkCache = c }
}

// SharedChunkCacheBytes is a process-wide byte-budgeted chunk cache:
// every Reader of every trace shares one memory cap, with entries keyed
// by (trace, chunkID), accounted at len(addrs)*8 bytes each and evicted
// LRU-by-bytes (pinned chunks survive pressure). Inject a per-trace view
// from ForTrace with WithSharedChunkCache.
type SharedChunkCacheBytes = core.SharedChunkCacheBytes

// TraceChunkCache is one trace's view of a SharedChunkCacheBytes; it
// satisfies WithSharedChunkCache and carries per-trace hit/load/eviction
// and residency counters.
type TraceChunkCache = core.TraceChunkCache

// NewSharedChunkCacheBytes returns a process-wide chunk cache holding at
// most budget decoded bytes across every trace.
func NewSharedChunkCacheBytes(budget int64) *SharedChunkCacheBytes {
	return core.NewSharedChunkCacheBytes(budget)
}

// WithReadahead bounds how many decoded batches a background pipeline
// decompresses ahead of Decode (default 2). For lossy and segmented
// lossless traces it is also the number of spans (intervals/segments)
// decoding concurrently. Negative n disables readahead and decodes
// synchronously on the calling goroutine. The decoded stream is
// identical either way.
func WithReadahead(n int) ReadOption {
	return func(o *core.DecodeOptions) { o.Readahead = n }
}

// WithBatchAddrs bounds the number of addresses per readahead batch
// (default 64 Ki addresses, 512 KB per batch). Sub-span batching caps the
// readahead pipeline's peak buffered memory at a small multiple of
// n × 8 bytes regardless of the trace's interval or segment length:
// lossless segments stream-decode directly into recycled batch buffers
// and imitation translations write into them instead of whole-interval
// copies. Negative n restores whole-span delivery (one interval or
// segment per batch). The decoded stream is identical for every value.
func WithBatchAddrs(n int) ReadOption {
	return func(o *core.DecodeOptions) { o.BatchAddrs = n }
}

// WithReadStore reads the trace from s instead of the path passed to
// NewReader (which is then informational only). The store is not closed
// by Reader.Close — it remains the caller's, so one MemStore can serve
// many concurrent Readers.
func WithReadStore(s Store) ReadOption {
	return func(o *core.DecodeOptions) { o.Store = s }
}

// Reader decompresses a trace directory.
type Reader struct {
	d *core.Decompressor
}

func newReader(path string, archive bool, opts []ReadOption) (*Reader, error) {
	var o core.DecodeOptions
	for _, opt := range opts {
		opt(&o)
	}
	o.Archive = archive
	d, err := core.Open(path, o)
	if err != nil {
		return nil, err
	}
	return &Reader{d: d}, nil
}

// NewReader opens a compressed trace for decoding. The path may name a
// trace directory, a single-file .atc archive — a stat distinguishes
// them — or an http(s) URL of an archive hosted on any server honoring
// Range requests (object storage, a CDN, cmd/atcstatic), read on demand
// through a caching ranged reader without downloading the file. It can
// also be overridden entirely by WithReadStore.
func NewReader(path string, opts ...ReadOption) (*Reader, error) {
	return newReader(path, false, opts)
}

// OpenArchive opens a single-file .atc archive for decoding. Unlike
// NewReader it does not fall back to the directory layout: anything that
// is not a valid archive fails with ErrCorrupt.
func OpenArchive(path string, opts ...ReadOption) (*Reader, error) {
	return newReader(path, true, opts)
}

// Decode returns the next value; io.EOF signals a verified end of trace.
func (r *Reader) Decode() (uint64, error) { return r.d.Decode() }

// DecodeAll decodes the remaining trace into memory.
func (r *Reader) DecodeAll() ([]uint64, error) { return r.d.DecodeAll() }

// Mode reports the stored trace's compression mode.
func (r *Reader) Mode() Mode { return r.d.Mode() }

// FormatVersion reports the trace's on-disk format version: 1 for legacy
// traces, 2 for segmented lossless.
func (r *Reader) FormatVersion() int { return r.d.FormatVersion() }

// SegmentAddrs reports the stored lossless segment length in addresses
// (0 for legacy single-chunk and lossy traces).
func (r *Reader) SegmentAddrs() int { return r.d.SegmentAddrs() }

// TotalAddrs reports the stored trace length.
func (r *Reader) TotalAddrs() int64 { return r.d.TotalAddrs() }

// IntervalLen reports the stored interval length L in addresses (lossy
// traces; 0 is never written, but lossless traces carry the default).
func (r *Reader) IntervalLen() int { return r.d.IntervalLen() }

// Epsilon reports the stored lossy matching threshold ε.
func (r *Reader) Epsilon() float64 { return r.d.Epsilon() }

// Records reports the number of interval records (lossy traces) or
// segment records (segmented lossless traces); legacy lossless traces
// have exactly one.
func (r *Reader) Records() int { return r.d.Records() }

// ChunkSpan is one entry of a trace's chunk index: the trace positions
// [Start, End) decode from chunk ChunkID, directly or (Imitation) as a
// byte-translated replay of that source chunk.
type ChunkSpan = core.ChunkSpan

// ChunkIndex returns a copy of the chunk index built at open: one entry
// per record, in trace order. It is the map Seek and DecodeRange navigate
// by, and what atcinfo -chunks prints.
func (r *Reader) ChunkIndex() []ChunkSpan { return r.d.ChunkIndex() }

// ChunkReads reports how many chunk blobs this Reader has decompressed so
// far (chunk-cache hits do not count) — an observability hook for serving
// tiers and for tests asserting that range decodes touch only the chunks
// they must.
func (r *Reader) ChunkReads() int64 { return r.d.ChunkReads() }

// DecodeTrace records per-stage wall time (admission wait, index walk,
// fetch, decompress, translate, deliver) and chunk-touch counts for one
// decode request. Attach one with SetDecodeTrace; the zero value is
// ready to use. See atc/internal/obs for the stage definitions.
type DecodeTrace = obs.Trace

// SetDecodeTrace attaches a per-request trace recorder: subsequent
// synchronous decodes (DecodeRange and friends) accumulate stage timings
// and chunk-touch counts into t. Pass nil to detach. Must not be called
// while a decode is in flight — the intended lifetime is one ranged
// request on a pooled Reader, attached before the decode and read after.
func (r *Reader) SetDecodeTrace(t *DecodeTrace) { r.d.SetTrace(t) }

// Position reports the absolute trace position, in addresses, of the next
// value Decode will return.
func (r *Reader) Position() int64 { return r.d.Position() }

// Seek repositions the stream so the next Decode returns the address at
// the given trace position. It implements the io.Seeker signature with
// offsets measured in addresses, not bytes: io.SeekStart is relative to
// the trace start, io.SeekCurrent to Position(), io.SeekEnd to
// TotalAddrs(). The resulting position must lie in [0, TotalAddrs()] —
// seeking past either end is an error (position TotalAddrs() itself is
// allowed; the next Decode then returns io.EOF). Seeking backwards is
// supported in every format; on lossy and segmented traces a seek costs
// at most one chunk decode, while legacy v1 lossless traces re-stream
// from the start when seeking backwards. Seek clears a pending io.EOF,
// so a Reader can be rewound and decoded again.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = r.d.Position()
	case io.SeekEnd:
		base = r.d.TotalAddrs()
	default:
		return r.d.Position(), fmt.Errorf("atc: invalid seek whence %d", whence)
	}
	if err := r.d.SeekTo(base + offset); err != nil {
		return r.d.Position(), err
	}
	return r.d.Position(), nil
}

// DecodeRange decodes the addresses at trace positions [from, to) —
// byte-for-byte the slice DecodeAll would have produced there —
// decompressing only the chunks overlapping the window. Touched chunks
// are pinned in the chunk cache (WithChunkCache), so a hot working set of
// ranges is served from memory. The streaming position is unaffected.
func (r *Reader) DecodeRange(from, to int64) ([]uint64, error) {
	return r.d.DecodeRange(from, to)
}

// DecodeRangeAppend is DecodeRange into a caller-provided buffer: the
// window's addresses are appended to dst and the extended slice
// returned, so a serving loop reusing one buffer pays no per-request
// window allocation.
func (r *Reader) DecodeRangeAppend(dst []uint64, from, to int64) ([]uint64, error) {
	return r.d.DecodeRangeAppend(dst, from, to)
}

// ReadAddrsAt fills p with the addresses starting at trace position off —
// io.ReaderAt semantics in address units: it returns the number of
// addresses read and io.EOF when the trace ends before p is full. The
// window decodes directly into p, so a reused caller buffer costs no
// per-call window allocation.
func (r *Reader) ReadAddrsAt(p []uint64, off int64) (int, error) {
	total := r.d.TotalAddrs()
	if off < 0 || off > total {
		return 0, fmt.Errorf("atc: read at %d outside trace [0, %d]", off, total)
	}
	end := off + int64(len(p))
	if end > total {
		end = total
	}
	got, err := r.d.DecodeRangeAppend(p[:0], off, end)
	n := len(got)
	if n > 0 && &got[0] != &p[0] {
		n = copy(p, got) // unreachable while cap(p[:0]) covers the window
	}
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Close releases open files.
func (r *Reader) Close() error { return r.d.Close() }

// Compress is a convenience helper compressing an in-memory trace.
func Compress(dir string, addrs []uint64, opts ...Option) (Stats, error) {
	w, err := NewWriter(dir, opts...)
	if err != nil {
		return Stats{}, err
	}
	if err := w.CodeSlice(addrs); err != nil {
		w.Close() // drain the worker pool; reports the same deferred error
		return Stats{}, err
	}
	if err := w.Close(); err != nil {
		return Stats{}, err
	}
	return w.Stats(), nil
}

// Decompress is a convenience helper expanding a whole compressed trace.
func Decompress(dir string, opts ...ReadOption) ([]uint64, error) {
	r, err := NewReader(dir, opts...)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.DecodeAll()
}

// BitsPerAddress reports the paper's BPA metric for a compressed trace of
// known length: total compressed bits divided by trace length. The path
// may name a trace directory (summed file sizes) or a single-file .atc
// archive (whole file size, container overhead included).
func BitsPerAddress(path string, addrs int64) (float64, error) {
	return core.BitsPerAddress(path, addrs)
}
