package atc_test

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"atc"
)

func TestPublicLosslessRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 30))
	}
	dir := t.TempDir()
	stats, err := atc.Compress(dir, addrs, atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != atc.Lossless || stats.TotalAddrs != int64(len(addrs)) {
		t.Fatalf("stats = %+v", stats)
	}
	got, err := atc.Decompress(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestPublicLossyOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 12))
	}
	dir := t.TempDir()
	stats, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(1000),
		atc.WithBufferAddrs(500),
		atc.WithEpsilon(0.1),
		atc.WithTableCapacity(16),
		atc.WithBackend("bsc"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Mode != atc.Lossy {
		t.Fatalf("mode = %v", stats.Mode)
	}
	if stats.Intervals != 10 {
		t.Fatalf("intervals = %d", stats.Intervals)
	}
	got, err := atc.Decompress(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("length %d", len(got))
	}
}

func TestPublicStreamingReader(t *testing.T) {
	dir := t.TempDir()
	addrs := []uint64{10, 20, 30, 40, 50}
	if _, err := atc.Compress(dir, addrs, atc.WithBufferAddrs(2)); err != nil {
		t.Fatal(err)
	}
	r, err := atc.NewReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Mode() != atc.Lossless || r.TotalAddrs() != 5 {
		t.Fatalf("metadata: %v %d", r.Mode(), r.TotalAddrs())
	}
	var got []uint64
	for {
		v, err := r.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, v)
	}
	if fmt.Sprint(got) != fmt.Sprint(addrs) {
		t.Fatalf("got %v", got)
	}
}

func TestPublicWithoutTranslations(t *testing.T) {
	var addrs []uint64
	for p := 0; p < 4; p++ {
		base := uint64(p) << 33
		for i := 0; i < 1000; i++ {
			addrs = append(addrs, base+uint64(i%400))
		}
	}
	dir := t.TempDir()
	stats, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossy), atc.WithIntervalLen(1000), atc.WithBufferAddrs(500))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imitations == 0 {
		t.Skip("no imitations to ablate")
	}
	with, err := atc.Decompress(dir)
	if err != nil {
		t.Fatal(err)
	}
	without, err := atc.Decompress(dir, atc.WithoutTranslations())
	if err != nil {
		t.Fatal(err)
	}
	fw := footprint(with)
	fo := footprint(without)
	if fo >= fw {
		t.Fatalf("translation ablation footprint %d >= translated %d", fo, fw)
	}
}

func footprint(addrs []uint64) int {
	m := map[uint64]struct{}{}
	for _, a := range addrs {
		m[a] = struct{}{}
	}
	return len(m)
}

func TestPublicBitsPerAddress(t *testing.T) {
	dir := t.TempDir()
	addrs := make([]uint64, 5000)
	if _, err := atc.Compress(dir, addrs, atc.WithBufferAddrs(1000)); err != nil {
		t.Fatal(err)
	}
	bpa, err := atc.BitsPerAddress(dir, int64(len(addrs)))
	if err != nil {
		t.Fatal(err)
	}
	if bpa <= 0 {
		t.Fatalf("bpa = %v", bpa)
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := atc.NewReader(t.TempDir()); err == nil {
		t.Fatal("NewReader on empty dir succeeded")
	}
	dir := t.TempDir()
	if _, err := atc.Compress(dir, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := atc.NewWriter(dir); err == nil {
		t.Fatal("NewWriter over existing trace succeeded")
	}
}

func TestPublicWorkersAndReadahead(t *testing.T) {
	// Intervals with different footprint sizes: each becomes its own chunk,
	// so the worker pool actually runs.
	rng := rand.New(rand.NewSource(12))
	var addrs []uint64
	for p := 0; p < 8; p++ {
		footprint := 64 << uint(p)
		base := uint64(p) << 32
		for i := 0; i < 1500; i++ {
			addrs = append(addrs, base+uint64(rng.Intn(footprint)))
		}
	}
	opts := func(workers int) []atc.Option {
		return []atc.Option{
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(1500),
			atc.WithBufferAddrs(400),
			atc.WithWorkers(workers),
		}
	}
	serialDir := t.TempDir()
	serialStats, err := atc.Compress(serialDir, addrs, opts(1)...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := atc.Decompress(serialDir, atc.WithReadahead(-1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		dir := t.TempDir()
		stats, err := atc.Compress(dir, addrs, opts(workers)...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats != serialStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, serialStats)
		}
		got, err := atc.Decompress(dir, atc.WithReadahead(4))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: decoded %d addrs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: decoded stream diverges at %d", workers, i)
			}
		}
	}
}

func TestPublicArchiveRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "trace.atc")
	w, err := atc.CreateArchive(path, atc.WithBufferAddrs(500), atc.WithSegmentAddrs(4000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Both the explicit archive opener and the auto-detecting reader
	// must decode the file.
	for _, open := range []func() (*atc.Reader, error){
		func() (*atc.Reader, error) { return atc.OpenArchive(path) },
		func() (*atc.Reader, error) { return atc.NewReader(path) },
	} {
		r, err := open()
		if err != nil {
			t.Fatal(err)
		}
		got, err := r.DecodeAll()
		if err != nil {
			t.Fatal(err)
		}
		r.Close()
		if len(got) != len(addrs) {
			t.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
	if bpa, err := atc.BitsPerAddress(path, int64(len(addrs))); err != nil || bpa <= 0 {
		t.Fatalf("archive BitsPerAddress = %v, %v", bpa, err)
	}
}

func TestPublicMemStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	mem := atc.NewMemStore()
	if _, err := atc.Compress("in-memory", addrs,
		atc.WithStore(mem), atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(2000), atc.WithBufferAddrs(300)); err != nil {
		t.Fatal(err)
	}
	got, err := atc.Decompress("in-memory", atc.WithReadStore(mem))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
	}
}

func TestPublicOpenArchiveRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := atc.Compress(dir, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := atc.OpenArchive(dir); err == nil {
		t.Fatal("OpenArchive on a directory trace succeeded")
	}
}

// TestPublicRemoteReader covers the URL form of NewReader: a segmented
// archive hosted behind a Range-honoring HTTP server must decode — full
// and ranged — byte-identically to the local file, with a shared chunk
// cache deduplicating decompressions across two pooled readers.
func TestPublicRemoteReader(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	addrs := make([]uint64, 30_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "trace.atc")
	w, err := atc.CreateArchive(path, atc.WithBufferAddrs(500), atc.WithSegmentAddrs(4000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, path)
	}))
	defer srv.Close()

	local, err := atc.NewReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	shared := atc.NewSharedChunkCache(16)
	var remote [2]*atc.Reader
	for i := range remote {
		r, err := atc.NewReader(srv.URL, atc.WithSharedChunkCache(shared))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		remote[i] = r
	}
	want, err := local.DecodeRange(7_000, 13_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range remote {
		got, err := r.DecodeRange(7_000, 13_000)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("remote reader %d: %d addrs, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("remote reader %d diverges at %d", i, j)
			}
		}
	}
	// The window [7000, 13000) straddles segments 1..3: three chunk
	// decompressions across the pool, the second reader fully cache-fed.
	if n := remote[0].ChunkReads() + remote[1].ChunkReads(); n != 3 {
		t.Fatalf("pooled chunk reads = %d, want 3 (shared cache)", n)
	}
}
