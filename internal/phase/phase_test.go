package phase

import (
	"math/rand"
	"testing"

	"atc/internal/histogram"
)

func mkHist(seed int64, base uint64) *histogram.Set {
	rng := rand.New(rand.NewSource(seed))
	addrs := make([]uint64, 1000)
	for i := range addrs {
		addrs[i] = base + uint64(rng.Intn(256))
	}
	return histogram.Compute(addrs)
}

func TestMatchEmptyTable(t *testing.T) {
	tab := New(4, 0.1)
	if _, _, ok := tab.Match(mkHist(1, 0)); ok {
		t.Fatal("empty table matched")
	}
}

func TestInsertAndMatchIdentical(t *testing.T) {
	tab := New(4, 0.1)
	h := mkHist(1, 0)
	tab.Insert(7, h)
	id, dist, ok := tab.Match(h)
	if !ok || id != 7 || dist != 0 {
		t.Fatalf("Match = %d, %v, %v", id, dist, ok)
	}
}

func TestMatchPrefersSmallestDistance(t *testing.T) {
	tab := New(8, 2.0) // generous threshold: everything matches
	exact := mkHist(1, 0)
	other := mkHist(2, 1<<40)
	tab.Insert(1, other)
	tab.Insert(2, exact)
	id, _, ok := tab.Match(exact)
	if !ok || id != 2 {
		t.Fatalf("matched chunk %d, want 2 (the exact one)", id)
	}
}

func TestNoMatchAboveThreshold(t *testing.T) {
	tab := New(4, 0.01)
	tab.Insert(1, mkHist(1, 0))
	// Structurally different interval: uniform over a much wider range.
	rng := rand.New(rand.NewSource(99))
	addrs := make([]uint64, 1000)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	if _, _, ok := tab.Match(histogram.Compute(addrs)); ok {
		t.Fatal("dissimilar interval matched under tight threshold")
	}
}

func TestFIFOEviction(t *testing.T) {
	tab := New(2, 2.0)
	h1, h2, h3 := mkHist(1, 0), mkHist(2, 1<<30), mkHist(3, 1<<50)
	tab.Insert(1, h1)
	tab.Insert(2, h2)
	tab.Insert(3, h3) // must evict chunk 1
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("oldest chunk not evicted")
	}
	if _, ok := tab.Lookup(2); !ok {
		t.Fatal("chunk 2 wrongly evicted")
	}
	if _, ok := tab.Lookup(3); !ok {
		t.Fatal("chunk 3 missing")
	}
	if s := tab.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert did not panic")
		}
	}()
	tab := New(4, 0.1)
	h := mkHist(1, 0)
	tab.Insert(1, h)
	tab.Insert(1, h)
}

func TestDefaults(t *testing.T) {
	tab := New(0, 0)
	if tab.Epsilon() != DefaultEpsilon {
		t.Fatalf("eps = %v", tab.Epsilon())
	}
	// Fill past DefaultCapacity to confirm the default bound.
	for i := 0; i < DefaultCapacity+10; i++ {
		tab.Insert(i, mkHist(int64(i), uint64(i)<<32))
	}
	if tab.Len() != DefaultCapacity {
		t.Fatalf("Len = %d, want %d", tab.Len(), DefaultCapacity)
	}
}

func TestStatsCounters(t *testing.T) {
	tab := New(4, 2.0)
	h := mkHist(1, 0)
	tab.Insert(1, h)
	tab.Match(h)
	tab.Match(h)
	s := tab.Stats()
	if s.Lookups != 2 || s.Matches != 2 || s.Resident != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestOffsetPhasesMatchViaSortedHistograms(t *testing.T) {
	// Two phases that differ only by a base-address offset have identical
	// *sorted* histograms, so the second must match the first — this is
	// exactly the paper's myopic-interval defence: reuse + translation.
	tab := New(16, 0.1)
	a := mkHist(42, 0)
	tab.Insert(1, a)
	b := mkHist(42, 1<<40) // same structure, different region
	if _, _, ok := tab.Match(b); !ok {
		t.Fatal("offset-shifted phase did not match; sorted histograms should be invariant to region")
	}
}

func TestPhaseReuseScenario(t *testing.T) {
	// A program alternating between two structurally different phases:
	// after both have been seen once, every later interval should match.
	uniform := func() *histogram.Set {
		rng := rand.New(rand.NewSource(42))
		addrs := make([]uint64, 1000)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(256)) // flat byte-0 histogram
		}
		return histogram.Compute(addrs)
	}
	skewed := func() *histogram.Set {
		addrs := make([]uint64, 1000)
		for i := range addrs {
			addrs[i] = 7 // single hot address: maximally skewed histogram
		}
		return histogram.Compute(addrs)
	}
	tab := New(16, 0.1)
	nextChunk := 1
	chunksCreated := 0
	for i := 0; i < 20; i++ {
		var h *histogram.Set
		if i%2 == 0 {
			h = uniform()
		} else {
			h = skewed()
		}
		if _, _, ok := tab.Match(h); !ok {
			tab.Insert(nextChunk, h)
			nextChunk++
			chunksCreated++
		}
	}
	if chunksCreated != 2 {
		t.Fatalf("created %d chunks for a 2-phase trace, want 2", chunksCreated)
	}
}

// TestInsertReturnsEvicted: the evicted entry's Set comes back to the
// caller for recycling; non-evicting inserts return nil.
func TestInsertReturnsEvicted(t *testing.T) {
	tab := New(2, 0.1)
	h1, h2, h3 := mkHist(1, 0), mkHist(2, 1<<20), mkHist(3, 2<<20)
	if ev := tab.Insert(1, h1); ev != nil {
		t.Fatalf("insert into empty table evicted %v", ev)
	}
	if ev := tab.Insert(2, h2); ev != nil {
		t.Fatalf("insert below capacity evicted %v", ev)
	}
	if ev := tab.Insert(3, h3); ev != h1 {
		t.Fatal("full-table insert did not return the oldest entry's Set")
	}
	if _, ok := tab.Lookup(1); ok {
		t.Fatal("evicted chunk still resident")
	}
	if got, ok := tab.Lookup(2); !ok || got != h2 {
		t.Fatal("surviving entry lost")
	}
}
