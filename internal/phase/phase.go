// Package phase implements the online phase classification of Section 5.2
// of the paper: a bounded in-memory table of chunk histograms against which
// each new interval is compared. The first interval always becomes a chunk;
// later intervals reuse ("imitate") the stored chunk with the smallest
// sorted-histogram distance below the threshold ε, and otherwise become
// chunks themselves. When the table is full the entry of the oldest chunk
// is evicted (FIFO), exactly as in the paper.
//
// Match does not scan the table blindly: each resident entry carries a
// histogram.Summary (per-position bucket masses of the sorted histograms)
// whose L1 distance lower-bounds the true interval distance, so most
// non-matching candidates are rejected after 8–64 float operations instead
// of the full 8×256 comparison. Candidates are visited most-recently-
// matched first — phase locality means the last phase seen is the likeliest
// next match, which both finds the eventual winner early and tightens the
// rejection bound for everyone after it. MatchExhaustive keeps the plain
// reference scan; property tests pin both paths to identical selections.
package phase

import (
	"fmt"

	"atc/internal/histogram"
)

// DefaultEpsilon is the matching threshold the paper found to give high
// compression while preserving memory locality (§5.2).
const DefaultEpsilon = 0.1

// DefaultCapacity bounds the histogram table; 256 entries of ~20 KB each
// keeps the compressor's memory modest while remembering plenty of phases.
const DefaultCapacity = 256

// pruneSlack absorbs floating-point rounding in the summary bound. The
// bound is exact in real arithmetic but is accumulated in a different
// order than the true distance, so it can exceed it by a few ulps (the
// worst case is ~256 additions of values ≤ 2, error ≲ 1e-13). Pruning
// only when the bound clears the threshold by this margin keeps the
// "never reject a winner" guarantee bit-exact; the handful of extra full
// comparisons it admits is noise.
const pruneSlack = 1e-12

// slot is one resident chunk. Slots live in a ring buffer so an entry's
// slot index is stable for its lifetime (maps and the MRU list hold slot
// indexes, never positions in insertion order).
type slot struct {
	chunkID int
	hist    *histogram.Set
	sum     histogram.Summary // pruning bound, computed once at Insert
	seq     int64             // insertion sequence; smaller = older (FIFO age)
}

// Table is the online phase table. The zero value is not usable; call New.
type Table struct {
	eps float64
	cap int
	// Ring of slots: the k-th oldest resident entry is
	// slots[(head+k)%cap]; eviction reuses the head slot and advances
	// head, so no entries ever shift.
	slots []slot
	head  int
	n     int
	seq   int64
	// byID maps chunkID → slot index so Lookup and Insert's duplicate
	// check are O(1) regardless of capacity.
	byID map[int]int
	// mru lists resident slot indexes, most recently matched (or
	// inserted) first — the visit order for Match.
	mru []int
	// qsum is Match's scratch summary for the query interval, kept here
	// so the hot path allocates nothing.
	qsum histogram.Summary
	// Stats
	lookups   int64
	matches   int64
	evictions int64
	pruned    int64
	compared  int64
}

// New returns a Table with the given capacity and matching threshold.
// Non-positive arguments select the package defaults.
func New(capacity int, eps float64) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	return &Table{
		eps:   eps,
		cap:   capacity,
		slots: make([]slot, capacity),
		byID:  make(map[int]int, capacity),
		mru:   make([]int, 0, capacity),
	}
}

// Epsilon reports the matching threshold.
func (t *Table) Epsilon() float64 { return t.eps }

// Len reports the number of chunks currently remembered.
func (t *Table) Len() int { return t.n }

// Match finds the stored chunk with the smallest distance to h, breaking
// exact ties toward the oldest entry (the selection MatchExhaustive's FIFO
// scan makes implicitly). It returns ok=false when no chunk is within the
// threshold. h must be finalized.
//
// Candidates are visited in most-recently-matched order. A candidate is
// skipped without a full comparison when its summary lower bound proves it
// cannot beat the current best (or reach ε); a candidate under full
// comparison is abandoned at the first byte position whose distance
// already disqualifies it. Neither cut can drop the winner: the bound
// never exceeds the true distance, and the winner's running maximum never
// crosses the abandon threshold — so the chunk picked, and the distance
// returned for it, are identical to MatchExhaustive's.
//
//atc:hotpath
func (t *Table) Match(h *histogram.Set) (chunkID int, dist float64, ok bool) {
	t.lookups++
	histogram.Summarize(h, &t.qsum)
	best := -1 // winning slot index
	bestDist := 0.0
	bestSeq := int64(0)
	for _, si := range t.mru {
		sl := &t.slots[si]
		// Rejection bound: D ≥ SummaryDistance at every position. With no
		// best yet a win needs D < ε, so any position bounding D ≥ ε
		// rejects; with a best it needs D < bestDist or an exact tie
		// (resolved by age below), so only a bound strictly above
		// bestDist rejects — a bound equal to bestDist still admits a tie.
		pruned := false
		for j := 0; j < histogram.Positions; j++ {
			lb := histogram.SummaryDistance(&t.qsum, &sl.sum, j)
			if best < 0 {
				if lb >= t.eps+pruneSlack {
					pruned = true
					break
				}
			} else if lb > bestDist+pruneSlack {
				pruned = true
				break
			}
		}
		if pruned {
			t.pruned++
			continue
		}
		// Full comparison, one position at a time: the running maximum d
		// only grows, so the same disqualification test abandons losers
		// early; survivors finish with d == histogram.Distance(sl.hist, h).
		t.compared++
		d := 0.0
		abandoned := false
		for j := 0; j < histogram.Positions; j++ {
			dj := histogram.PositionDistance(sl.hist, h, j)
			if dj > d {
				d = dj
			}
			if best < 0 {
				if d >= t.eps {
					abandoned = true
					break
				}
			} else if d > bestDist {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		// Completing the loop proves d < ε (no best) or d ≤ bestDist
		// (best exists); an exact tie goes to the FIFO-older entry.
		if best < 0 || d < bestDist || (d == bestDist && sl.seq < bestSeq) {
			best, bestDist, bestSeq = si, d, sl.seq
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	t.matches++
	t.touch(best)
	return t.slots[best].chunkID, bestDist, true
}

// MatchExhaustive is the reference selection: a full-distance scan of
// every resident entry in FIFO order with no pruning, exactly the loop
// Match replaced. It mutates no table state (no stats, no MRU reordering)
// so tests can interleave it freely with Match and compare picks.
func (t *Table) MatchExhaustive(h *histogram.Set) (chunkID int, dist float64, ok bool) {
	best := -1
	bestDist := 0.0
	for k := 0; k < t.n; k++ {
		sl := &t.slots[(t.head+k)%t.cap]
		d := histogram.Distance(sl.hist, h)
		if d < t.eps && (best < 0 || d < bestDist) {
			best, bestDist = (t.head+k)%t.cap, d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return t.slots[best].chunkID, bestDist, true
}

// touch moves slot index si to the front of the MRU list.
func (t *Table) touch(si int) {
	if len(t.mru) > 0 && t.mru[0] == si {
		return
	}
	for i, v := range t.mru {
		if v == si {
			copy(t.mru[1:i+1], t.mru[:i])
			t.mru[0] = si
			return
		}
	}
}

// dropMRU removes slot index si from the MRU list.
func (t *Table) dropMRU(si int) {
	for i, v := range t.mru {
		if v == si {
			copy(t.mru[i:], t.mru[i+1:])
			t.mru = t.mru[:len(t.mru)-1]
			return
		}
	}
}

// Lookup returns the stored histograms for a chunk ID, if still resident.
func (t *Table) Lookup(chunkID int) (*histogram.Set, bool) {
	si, ok := t.byID[chunkID]
	if !ok {
		return nil, false
	}
	return t.slots[si].hist, true
}

// Insert records a new chunk's histograms, evicting the oldest entry when
// the table is full. h must be finalized. Inserting a duplicate chunk ID is
// a programming error and panics. The evicted entry's histogram Set is
// returned (nil when nothing was evicted) so callers recycling Sets —
// the compressor's allocation-free front end — can reuse its storage; the
// table holds no reference to it afterwards.
//
//atc:hotpath
func (t *Table) Insert(chunkID int, h *histogram.Set) (evicted *histogram.Set) {
	if _, dup := t.byID[chunkID]; dup {
		//atc:ignore hotalloc formatting a programming-error panic; this path never runs in a correct build
		panic(fmt.Sprintf("phase: duplicate chunk id %d", chunkID))
	}
	var si int
	if t.n == t.cap {
		// Reuse the oldest entry's slot: it becomes the newest, and the
		// ring head advances past it.
		si = t.head
		sl := &t.slots[si]
		delete(t.byID, sl.chunkID)
		t.dropMRU(si)
		evicted = sl.hist
		t.head = (t.head + 1) % t.cap
		t.evictions++
	} else {
		si = (t.head + t.n) % t.cap
		t.n++
	}
	sl := &t.slots[si]
	sl.chunkID = chunkID
	sl.hist = h
	sl.seq = t.seq
	t.seq++
	histogram.Summarize(h, &sl.sum)
	t.byID[chunkID] = si
	// A fresh chunk is by definition the current phase: push it to the
	// front of the MRU visit order. len(t.mru) == n-1 here and capacity
	// is t.cap, so the reslice never allocates.
	t.mru = t.mru[:len(t.mru)+1]
	copy(t.mru[1:], t.mru[:len(t.mru)-1])
	t.mru[0] = si
	return evicted
}

// Stats reports lookup/match/eviction counters, plus how many Match
// candidates were rejected by the summary bound alone (Pruned) versus
// fully compared (Compared): Pruned+Compared sums over all Match calls'
// candidate visits.
type Stats struct {
	Lookups   int64
	Matches   int64
	Evictions int64
	Resident  int
	Pruned    int64
	Compared  int64
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() Stats {
	return Stats{
		Lookups:   t.lookups,
		Matches:   t.matches,
		Evictions: t.evictions,
		Resident:  t.n,
		Pruned:    t.pruned,
		Compared:  t.compared,
	}
}
