// Package phase implements the online phase classification of Section 5.2
// of the paper: a bounded in-memory table of chunk histograms against which
// each new interval is compared. The first interval always becomes a chunk;
// later intervals reuse ("imitate") the stored chunk with the smallest
// sorted-histogram distance below the threshold ε, and otherwise become
// chunks themselves. When the table is full the entry of the oldest chunk
// is evicted (FIFO), exactly as in the paper.
package phase

import (
	"fmt"

	"atc/internal/histogram"
)

// DefaultEpsilon is the matching threshold the paper found to give high
// compression while preserving memory locality (§5.2).
const DefaultEpsilon = 0.1

// DefaultCapacity bounds the histogram table; 256 entries of ~20 KB each
// keeps the compressor's memory modest while remembering plenty of phases.
const DefaultCapacity = 256

// Entry associates a chunk ID with the histograms of the interval it stores.
type Entry struct {
	ChunkID int
	Hist    *histogram.Set
}

// Table is the online phase table. The zero value is not usable; call New.
type Table struct {
	eps     float64
	cap     int
	entries []Entry // FIFO order: entries[0] is the oldest chunk
	// Stats
	lookups   int64
	matches   int64
	evictions int64
}

// New returns a Table with the given capacity and matching threshold.
// Non-positive arguments select the package defaults.
func New(capacity int, eps float64) *Table {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if eps <= 0 {
		eps = DefaultEpsilon
	}
	return &Table{eps: eps, cap: capacity}
}

// Epsilon reports the matching threshold.
func (t *Table) Epsilon() float64 { return t.eps }

// Len reports the number of chunks currently remembered.
func (t *Table) Len() int { return len(t.entries) }

// Match finds the stored chunk with the smallest distance to h. It returns
// ok=false when no chunk is within the threshold. h must be finalized.
//
//atc:hotpath
func (t *Table) Match(h *histogram.Set) (chunkID int, dist float64, ok bool) {
	t.lookups++
	best := -1
	bestDist := 0.0
	for i := range t.entries {
		d := histogram.Distance(t.entries[i].Hist, h)
		if d < t.eps && (best < 0 || d < bestDist) {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	t.matches++
	return t.entries[best].ChunkID, bestDist, true
}

// Lookup returns the stored histograms for a chunk ID, if still resident.
func (t *Table) Lookup(chunkID int) (*histogram.Set, bool) {
	for i := range t.entries {
		if t.entries[i].ChunkID == chunkID {
			return t.entries[i].Hist, true
		}
	}
	return nil, false
}

// Insert records a new chunk's histograms, evicting the oldest entry when
// the table is full. h must be finalized. Inserting a duplicate chunk ID is
// a programming error and panics. The evicted entry's histogram Set is
// returned (nil when nothing was evicted) so callers recycling Sets —
// the compressor's allocation-free front end — can reuse its storage; the
// table holds no reference to it afterwards.
//
//atc:hotpath
func (t *Table) Insert(chunkID int, h *histogram.Set) (evicted *histogram.Set) {
	for i := range t.entries {
		if t.entries[i].ChunkID == chunkID {
			//atc:ignore hotalloc formatting a programming-error panic; this path never runs in a correct build
			panic(fmt.Sprintf("phase: duplicate chunk id %d", chunkID))
		}
	}
	if len(t.entries) == t.cap {
		evicted = t.entries[0].Hist
		copy(t.entries, t.entries[1:])
		t.entries = t.entries[:t.cap-1]
		t.evictions++
	}
	//atc:ignore hotalloc growth is bounded by the table capacity: after the first t.cap inserts the eviction branch keeps len < cap and append never reallocates
	t.entries = append(t.entries, Entry{ChunkID: chunkID, Hist: h})
	return evicted
}

// Stats reports lookup/match/eviction counters.
type Stats struct {
	Lookups   int64
	Matches   int64
	Evictions int64
	Resident  int
}

// Stats returns a snapshot of the table counters.
func (t *Table) Stats() Stats {
	return Stats{Lookups: t.lookups, Matches: t.matches, Evictions: t.evictions, Resident: len(t.entries)}
}
