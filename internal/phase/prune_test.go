package phase

import (
	"math/rand"
	"testing"

	"atc/internal/histogram"
)

// genIntervals produces a stream of interval histograms with phase
// structure: a handful of base phases plus offset-shifted and noisy
// variants, so runs exercise exact ties, near-threshold distances, table
// churn and eviction.
func genIntervals(rng *rand.Rand, n, phases, intervalLen int) []*histogram.Set {
	bases := make([][]uint64, phases)
	for p := range bases {
		addrs := make([]uint64, intervalLen)
		base := rng.Uint64() &^ 0xFFFFFF
		spread := 1 << (4 + rng.Intn(16))
		for i := range addrs {
			addrs[i] = base + uint64(rng.Intn(spread))*8
		}
		bases[p] = addrs
	}
	out := make([]*histogram.Set, n)
	for i := range out {
		src := bases[rng.Intn(phases)]
		addrs := make([]uint64, len(src))
		offset := uint64(rng.Intn(4)) << 40 // sorted histograms are offset-invariant
		for j, a := range src {
			addrs[j] = a + offset
		}
		// Sometimes perturb a fraction of the interval so distances land
		// near (above and below) typical ε values instead of at 0.
		if rng.Intn(3) == 0 {
			k := rng.Intn(len(addrs)/4 + 1)
			for j := 0; j < k; j++ {
				addrs[rng.Intn(len(addrs))] = rng.Uint64()
			}
		}
		out[i] = histogram.Compute(addrs)
	}
	return out
}

// TestMatchEquivalentToExhaustive drives random workloads through the
// table and requires the pruned Match to return byte-identical decisions
// (chunk pick, distance, and ok) to the exhaustive FIFO reference scan at
// every step — the property the classify stage's correctness rests on:
// pruning must change cost, never output.
func TestMatchEquivalentToExhaustive(t *testing.T) {
	epsilons := []float64{0.01, 0.05, 0.1, 0.3, 1.0, 2.0}
	capacities := []int{1, 2, 7, 32}
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		eps := epsilons[trial%len(epsilons)]
		capacity := capacities[trial%len(capacities)]
		tab := New(capacity, eps)
		intervals := genIntervals(rng, 120, 1+rng.Intn(6), 400)
		nextChunk := 0
		for i, h := range intervals {
			wantID, wantDist, wantOK := tab.MatchExhaustive(h)
			gotID, gotDist, gotOK := tab.Match(h)
			if gotID != wantID || gotDist != wantDist || gotOK != wantOK {
				t.Fatalf("trial %d (eps=%v cap=%d) interval %d: Match = (%d, %v, %v), MatchExhaustive = (%d, %v, %v)",
					trial, eps, capacity, i, gotID, gotDist, gotOK, wantID, wantDist, wantOK)
			}
			if !gotOK {
				tab.Insert(nextChunk, h)
				nextChunk++
			}
		}
		if s := tab.Stats(); s.Pruned+s.Compared == 0 && s.Lookups > 0 && s.Resident > 0 {
			t.Fatalf("trial %d: no candidates visited despite %d lookups over %d resident", trial, s.Lookups, s.Resident)
		}
	}
}

// TestMatchEquivalenceExactTies forces exact-distance ties (identical
// histograms under different chunk IDs is impossible — the table forbids
// duplicate IDs, not duplicate histograms) and checks the tie goes to the
// FIFO-oldest entry on both paths even though Match visits in MRU order.
func TestMatchEquivalenceExactTies(t *testing.T) {
	tab := New(8, 2.0)
	h := mkHist(1, 0)
	dup1 := mkHist(1, 0) // identical contents, distance 0 to h
	dup2 := mkHist(1, 0)
	tab.Insert(10, dup1)
	tab.Insert(20, dup2)
	// Match something else first so MRU order differs from FIFO order.
	other := mkHist(9, 1<<20)
	tab.Match(other)
	wantID, wantDist, wantOK := tab.MatchExhaustive(h)
	gotID, gotDist, gotOK := tab.Match(h)
	if gotID != wantID || gotDist != wantDist || gotOK != wantOK {
		t.Fatalf("tie break: Match = (%d, %v, %v), exhaustive = (%d, %v, %v)",
			gotID, gotDist, gotOK, wantID, wantDist, wantOK)
	}
	if wantID != 10 {
		t.Fatalf("exact tie resolved to chunk %d, want FIFO-oldest 10", wantID)
	}
}

// TestSummaryLowerBound checks the mathematical core of the pruning rule
// on random pairs: the per-position summary distance never exceeds the
// true per-position distance (up to the pruneSlack rounding margin the
// table's rejection test allows for), and hence never exceeds the full
// interval distance.
func TestSummaryLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		na, nb := 1+rng.Intn(2000), 1+rng.Intn(2000)
		a := make([]uint64, na)
		b := make([]uint64, nb)
		for i := range a {
			a[i] = rng.Uint64() >> uint(rng.Intn(40))
		}
		for i := range b {
			b[i] = rng.Uint64() >> uint(rng.Intn(40))
		}
		ha, hb := histogram.Compute(a), histogram.Compute(b)
		var sa, sb histogram.Summary
		histogram.Summarize(ha, &sa)
		histogram.Summarize(hb, &sb)
		full := histogram.Distance(ha, hb)
		for j := 0; j < histogram.Positions; j++ {
			lb := histogram.SummaryDistance(&sa, &sb, j)
			pd := histogram.PositionDistance(ha, hb, j)
			if lb > pd+pruneSlack {
				t.Fatalf("trial %d pos %d: summary bound %v exceeds position distance %v", trial, j, lb, pd)
			}
			if lb > full+pruneSlack {
				t.Fatalf("trial %d pos %d: summary bound %v exceeds interval distance %v", trial, j, lb, full)
			}
		}
	}
}

// TestMatchPrunes checks the bound actually fires: structurally distant
// phases under a tight ε must be rejected by summaries alone for the
// overwhelming majority of candidate visits.
func TestMatchPrunes(t *testing.T) {
	tab := New(64, 0.1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		addrs := make([]uint64, 500)
		base := uint64(i) << 32
		spread := 1 << (3 + i%12)
		for j := range addrs {
			addrs[j] = base + uint64(rng.Intn(spread))
		}
		tab.Insert(i, histogram.Compute(addrs))
	}
	probe := make([]uint64, 500)
	for j := range probe {
		probe[j] = rng.Uint64()
	}
	tab.Match(histogram.Compute(probe))
	s := tab.Stats()
	if s.Pruned+s.Compared != 64 {
		t.Fatalf("visited %d candidates, want 64", s.Pruned+s.Compared)
	}
	if s.Pruned < 32 {
		t.Fatalf("only %d of 64 candidates pruned; bound is not firing", s.Pruned)
	}
}

// TestLookupInsertO1Map pins the chunkID→slot map against the ring through
// heavy churn: every resident ID resolves, every evicted ID does not, and
// eviction order stays FIFO.
func TestLookupInsertO1Map(t *testing.T) {
	tab := New(16, 2.0)
	for id := 0; id < 200; id++ {
		tab.Insert(id, mkHist(int64(id), uint64(id)<<24))
		oldest := id - 16 + 1
		if oldest < 0 {
			oldest = 0
		}
		for probe := 0; probe <= id; probe++ {
			_, ok := tab.Lookup(probe)
			if want := probe >= oldest; ok != want {
				t.Fatalf("after insert %d: Lookup(%d) = %v, want %v", id, probe, ok, want)
			}
		}
	}
	if s := tab.Stats(); s.Evictions != 200-16 {
		t.Fatalf("evictions = %d, want %d", s.Evictions, 200-16)
	}
}
