package trace

import (
	"bytes"
	"io"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	addrs := []uint64{0, 1, 0xDEADBEEF, 1 << 57, math.MaxUint64}
	var buf bytes.Buffer
	if err := WriteAll(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(addrs)*WordSize {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), len(addrs)*WordSize)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("read %d addrs, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
}

func TestLittleEndianLayout(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(0x0102030405060708); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	want := []byte{8, 7, 6, 5, 4, 3, 2, 1}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("layout = %v, want %v", buf.Bytes(), want)
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty read err = %v, want io.EOF", err)
	}
}

func TestReaderPartialRecord(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{1, 2, 3}))
	if _, err := r.Read(); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial record err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestCounts(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 10; i++ {
		if err := w.Write(uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 10 {
		t.Fatalf("writer count = %d", w.Count())
	}
	_ = w.Flush()
	r := NewReader(&buf)
	for {
		if _, err := r.Read(); err != nil {
			break
		}
	}
	if r.Count() != 10 {
		t.Fatalf("reader count = %d", r.Count())
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	addrs := []uint64{5, 4, 3, 2, 1}
	if err := WriteFile(path, addrs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("read %d addrs", len(got))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d mismatch", i)
		}
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func TestStatsBasics(t *testing.T) {
	s := ComputeStats([]uint64{10, 20, 10, 30})
	if s.Count != 4 || s.Distinct != 3 || s.Min != 10 || s.Max != 30 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestStatsEmpty(t *testing.T) {
	s := ComputeStats(nil)
	if s.Count != 0 || s.Distinct != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestStatsEntropyBounds(t *testing.T) {
	// All-identical addresses: low entropy. Varied addresses: higher.
	same := make([]uint64, 1000)
	varied := make([]uint64, 1000)
	for i := range varied {
		varied[i] = uint64(i) * 0x9E3779B97F4A7C15
	}
	sLow := ComputeStats(same)
	sHigh := ComputeStats(varied)
	if sLow.Entropy0 != 0 {
		t.Fatalf("identical addresses entropy = %f, want 0", sLow.Entropy0)
	}
	if sHigh.Entropy0 <= 6 || sHigh.Entropy0 > 8 {
		t.Fatalf("varied addresses entropy = %f, want (6,8]", sHigh.Entropy0)
	}
}

func TestStatsString(t *testing.T) {
	got := ComputeStats([]uint64{1}).String()
	if got == "" {
		t.Fatal("empty String()")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		var buf bytes.Buffer
		if err := WriteAll(&buf, addrs); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
