// Package trace provides I/O and statistics for raw address traces.
//
// A raw trace has the simplest format an address trace can have, exactly as
// in the paper: a sequence of 64-bit values, stored little endian. For
// cache-filtered traces each value is a cache-block address whose 6 most
// significant bits are zero (the paper reserves them for tags such as
// demand-miss vs write-back).
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// WordSize is the size in bytes of one trace record.
const WordSize = 8

// Writer emits 64-bit trace records to an underlying stream.
type Writer struct {
	w   *bufio.Writer
	n   int64
	err error
}

// NewWriter returns a Writer on w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// Write appends one address to the trace.
func (w *Writer) Write(addr uint64) error {
	if w.err != nil {
		return w.err
	}
	var b [WordSize]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	if _, err := w.w.Write(b[:]); err != nil {
		w.err = err
		return err
	}
	w.n++
	return nil
}

// WriteSlice appends many addresses.
func (w *Writer) WriteSlice(addrs []uint64) error {
	for _, a := range addrs {
		if err := w.Write(a); err != nil {
			return err
		}
	}
	return nil
}

// Count reports the number of addresses written.
func (w *Writer) Count() int64 { return w.n }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Reader reads 64-bit trace records from an underlying stream.
type Reader struct {
	r   *bufio.Reader
	n   int64
	err error
}

// NewReader returns a Reader on r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next address. At the end of the trace it returns io.EOF;
// a trailing partial record yields io.ErrUnexpectedEOF.
func (r *Reader) Read() (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	var b [WordSize]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			r.err = io.ErrUnexpectedEOF
		} else {
			r.err = io.EOF
		}
		return 0, r.err
	}
	r.n++
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Count reports the number of addresses read so far.
func (r *Reader) Count() int64 { return r.n }

// ReadAll slurps an entire trace stream into memory.
func ReadAll(r io.Reader) ([]uint64, error) {
	tr := NewReader(r)
	var out []uint64
	for {
		a, err := tr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// WriteAll writes an entire in-memory trace to w.
func WriteAll(w io.Writer, addrs []uint64) error {
	tw := NewWriter(w)
	if err := tw.WriteSlice(addrs); err != nil {
		return err
	}
	return tw.Flush()
}

// WriteFile stores a trace to a file.
func WriteFile(path string, addrs []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAll(f, addrs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a trace from a file.
func ReadFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// Stats summarises a trace.
type Stats struct {
	Count    int64   // number of addresses
	Distinct int64   // number of distinct addresses (the footprint)
	Min, Max uint64  // address range
	Entropy0 float64 // zeroth-order byte entropy of the raw encoding, bits/byte
}

// ComputeStats scans a trace and returns summary statistics.
func ComputeStats(addrs []uint64) Stats {
	s := Stats{}
	if len(addrs) == 0 {
		return s
	}
	s.Count = int64(len(addrs))
	s.Min, s.Max = addrs[0], addrs[0]
	seen := make(map[uint64]struct{}, len(addrs)/4+16)
	var byteHist [256]int64
	for _, a := range addrs {
		if a < s.Min {
			s.Min = a
		}
		if a > s.Max {
			s.Max = a
		}
		seen[a] = struct{}{}
		for k := 0; k < 8; k++ {
			byteHist[byte(a>>(8*uint(k)))]++
		}
	}
	s.Distinct = int64(len(seen))
	total := float64(s.Count * 8)
	for _, c := range byteHist {
		if c == 0 {
			continue
		}
		p := float64(c) / total
		s.Entropy0 -= p * math.Log2(p)
	}
	return s
}

// String renders the stats in a compact human-readable form.
func (s Stats) String() string {
	return fmt.Sprintf("count=%d distinct=%d range=[%#x,%#x] H0=%.3f bits/byte",
		s.Count, s.Distinct, s.Min, s.Max, s.Entropy0)
}
