package trace

// The paper notes that cache-filtered block addresses leave the 6 most
// significant bits of each 64-bit record null, and that "these bits may be
// used to store some extra information, e.g., whether the address
// corresponds to a demand miss or a write-back". These helpers implement
// exactly that tagging scheme.

// Tag identifies the event type carried in a trace record's top 6 bits.
type Tag uint8

const (
	// TagDemandMiss marks a demand miss (tag value 0, so untagged traces
	// read back as all-demand-miss traces).
	TagDemandMiss Tag = 0
	// TagWriteBack marks a write-back of a dirty block.
	TagWriteBack Tag = 1

	// TagBits is the width of the tag field.
	TagBits = 6
	// tagShift positions the tag in the top bits of a record.
	tagShift = 64 - TagBits
)

// addrMask extracts the block address from a tagged record.
const addrMask = (uint64(1) << tagShift) - 1

// WithTag attaches a tag to a block address. The address must fit in the
// low 58 bits, which cache-filtered block addresses always do.
func WithTag(block uint64, tag Tag) uint64 {
	return (block & addrMask) | uint64(tag)<<tagShift
}

// SplitTag separates a tagged record into its block address and tag.
func SplitTag(record uint64) (block uint64, tag Tag) {
	return record & addrMask, Tag(record >> tagShift)
}
