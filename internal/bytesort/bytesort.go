// Package bytesort implements the reversible trace transformation of
// Section 4 of the paper (Michaud, ISPASS 2009): byte-unshuffling with
// progressive stable sorting.
//
// A buffer of B 64-bit addresses is emitted as eight blocks of B bytes.
// Block 0 holds the most-significant byte of every address in sequence
// order. Before each subsequent block j is emitted, the addresses are
// stably sorted (counting sort) by the byte just emitted, so addresses
// sharing a prefix of high-order bytes are grouped together and block j
// exposes the per-region regularity that a byte-level compressor (bzip2 in
// the paper, bsc here) can exploit. Because the sort is stable, the
// transformation is reversible from the blocks alone: the histogram of
// block j-1 determines the permutation applied before block j.
//
// The package also implements plain byte-unshuffling (no sorting), the
// "us" baseline of the paper's Table 1.
//
// Stream framing: each flushed buffer becomes one segment,
//
//	u32 little-endian address count n  (0 terminates the stream)
//	8 × n bytes (blocks in order, most-significant byte first)
//
// Time and space are O(B) per segment, matching the paper's Figure 2 code.
package bytesort

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Mode selects the transformation variant.
type Mode int

const (
	// Sorted is the full bytesort transformation (unshuffle + stable sorts).
	Sorted Mode = iota
	// Unshuffle emits byte columns in sequence order without sorting.
	Unshuffle
)

// DefaultBufferAddrs mirrors the paper's "small bytesort" buffer
// (1 million addresses).
const DefaultBufferAddrs = 1 << 20

// ErrCorrupt reports malformed segment framing.
var ErrCorrupt = errors.New("bytesort: corrupt stream")

// maxSegmentAddrs bounds the per-segment address count a decoder accepts
// (1 GiB of block data). The count comes straight off the wire and sizes
// buffers, so an unchecked 32-bit value could demand a 34 GB allocation
// from a 4-byte header. Encoders buffer DefaultBufferAddrs (1 Mi) by
// default; the decoder allows 128x that for custom buffer sizes.
const maxSegmentAddrs = 1 << 27

// Encoder applies the transformation to a stream of addresses and writes
// framed segments to an underlying writer (typically a compression back
// end).
type Encoder struct {
	w       io.Writer
	mode    Mode
	buf     []uint64
	scratch []uint64
	block   []byte
	hist    [256]int32
	jb      [256]int32
	err     error
	closed  bool
}

// NewEncoder returns a bytesort Encoder with buffer capacity bufAddrs
// addresses (values < 1 are replaced with DefaultBufferAddrs).
func NewEncoder(w io.Writer, bufAddrs int) *Encoder {
	return NewEncoderMode(w, bufAddrs, Sorted)
}

// NewEncoderMode returns an Encoder for the given variant.
func NewEncoderMode(w io.Writer, bufAddrs int, mode Mode) *Encoder {
	if bufAddrs < 1 {
		bufAddrs = DefaultBufferAddrs
	}
	return &Encoder{
		w:       w,
		mode:    mode,
		buf:     make([]uint64, 0, bufAddrs),
		scratch: make([]uint64, bufAddrs),
		block:   make([]byte, bufAddrs),
	}
}

// Write adds one address; a full buffer is flushed automatically.
func (e *Encoder) Write(addr uint64) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return errors.New("bytesort: write after close")
	}
	e.buf = append(e.buf, addr)
	if len(e.buf) == cap(e.buf) {
		return e.flush()
	}
	return nil
}

// WriteSlice adds many addresses, copying in bulk up to each buffer
// boundary instead of going through per-address Write calls.
func (e *Encoder) WriteSlice(addrs []uint64) error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return errors.New("bytesort: write after close")
	}
	for len(addrs) > 0 {
		n := cap(e.buf) - len(e.buf)
		if n > len(addrs) {
			n = len(addrs)
		}
		e.buf = append(e.buf, addrs[:n]...)
		addrs = addrs[n:]
		if len(e.buf) == cap(e.buf) {
			if err := e.flush(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Flush emits any buffered addresses as a (possibly short) segment.
func (e *Encoder) Flush() error {
	if e.err != nil {
		return e.err
	}
	return e.flush()
}

// Close flushes buffered addresses and writes the zero-count terminator.
// It does not close the underlying writer.
func (e *Encoder) Close() error {
	if e.err != nil {
		return e.err
	}
	if e.closed {
		return nil
	}
	if err := e.flush(); err != nil {
		return err
	}
	var z [4]byte
	if _, err := e.w.Write(z[:]); err != nil {
		e.err = err
		return err
	}
	e.closed = true
	return nil
}

func (e *Encoder) flush() error {
	n := len(e.buf)
	if n == 0 {
		return nil
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(n))
	if _, err := e.w.Write(hdr[:]); err != nil {
		e.err = err
		return err
	}
	a := e.buf
	b := e.scratch[:n]
	for j := 0; j < 8; j++ {
		if j > 0 && e.mode == Sorted {
			// Stable counting sort of a by its current top byte (which is
			// the byte emitted in the previous round), shifting left so the
			// next original byte becomes the top byte. Mirrors sort_bytes()
			// in the paper's Figure 2.
			e.jb[0] = 0
			for c := 1; c < 256; c++ {
				e.jb[c] = e.jb[c-1] + e.hist[c-1]
			}
			for _, v := range a {
				c := v >> 56
				b[e.jb[c]] = v << 8
				e.jb[c]++
			}
			a, b = b, a[:n]
		} else if j > 0 {
			for i := range a {
				a[i] <<= 8
			}
		}
		// Unshuffle: emit the top byte of each address in current order and
		// compute its histogram for the next round's sort. Mirrors
		// unshuffle_bytes() in the paper's Figure 2.
		for c := range e.hist {
			e.hist[c] = 0
		}
		blk := e.block[:n]
		for i, v := range a {
			c := byte(v >> 56)
			blk[i] = c
			e.hist[c]++
		}
		if _, err := e.w.Write(blk); err != nil {
			e.err = err
			return err
		}
	}
	e.buf = e.buf[:0]
	return nil
}

// Decoder reverses the transformation, reading framed segments. The
// per-segment working buffers (block bytes, decoded addresses, inverse
// permutations) are reused across segments, so a long stream decodes
// with a constant working set instead of fresh allocations per segment.
type Decoder struct {
	r       io.Reader
	mode    Mode
	pending []uint64
	pos     int
	done    bool
	err     error

	blocks  []byte  // reused 8×n block buffer
	posBuf  []int32 // reused inverse-sort scratch
	permBuf []int32
}

// NewDecoder returns a Decoder for Sorted streams.
func NewDecoder(r io.Reader) *Decoder {
	return NewDecoderMode(r, Sorted)
}

// NewDecoderMode returns a Decoder for the given variant; the mode must
// match the Encoder that produced the stream.
func NewDecoderMode(r io.Reader, mode Mode) *Decoder {
	return &Decoder{r: r, mode: mode}
}

// Reset re-targets the Decoder at a new stream in the same mode,
// retaining the per-segment working buffers — pooled decode pipelines
// reuse one Decoder across chunks so steady-state decoding allocates no
// inverse-sort scratch.
func (d *Decoder) Reset(r io.Reader) {
	d.r = r
	d.pending = d.pending[:0]
	d.pos = 0
	d.done = false
	d.err = nil
}

// Read returns the next decoded address, or io.EOF after the terminator
// (or clean end of stream).
func (d *Decoder) Read() (uint64, error) {
	if d.err != nil {
		return 0, d.err
	}
	for d.pos >= len(d.pending) {
		if d.done {
			d.err = io.EOF
			return 0, io.EOF
		}
		if err := d.readSegment(); err != nil {
			d.err = err
			return 0, err
		}
	}
	v := d.pending[d.pos]
	d.pos++
	return v, nil
}

// ReadSlice fills dst with decoded addresses, copying in bulk from each
// inverted segment. It returns the number of addresses written and
// io.EOF only when the stream ended before dst was full (n may then
// still be positive); a full dst returns a nil error. A caller looping
// on ReadSlice with a reused buffer decodes the stream with no
// per-address call overhead and no per-batch allocation.
//
//atc:hotpath
func (d *Decoder) ReadSlice(dst []uint64) (int, error) {
	if d.err != nil {
		return 0, d.err
	}
	n := 0
	for n < len(dst) {
		if d.pos >= len(d.pending) {
			if d.done {
				d.err = io.EOF
				return n, io.EOF
			}
			if err := d.readSegment(); err != nil {
				d.err = err
				return n, err
			}
			continue
		}
		c := copy(dst[n:], d.pending[d.pos:])
		d.pos += c
		n += c
	}
	return n, nil
}

// ReadAll decodes every remaining address.
func (d *Decoder) ReadAll() ([]uint64, error) {
	var out []uint64
	for {
		v, err := d.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

func (d *Decoder) readSegment() error {
	var hdr [4]byte
	if _, err := io.ReadFull(d.r, hdr[:]); err != nil {
		if err == io.EOF {
			// Clean end without explicit terminator: accept.
			d.done = true
			return nil
		}
		return fmt.Errorf("%w: short segment header", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	if n == 0 {
		d.done = true
		return nil
	}
	if n > maxSegmentAddrs {
		return fmt.Errorf("%w: segment of %d addresses exceeds limit %d", ErrCorrupt, n, maxSegmentAddrs)
	}
	if cap(d.blocks) < 8*n {
		d.blocks = make([]byte, 8*n)
	}
	blocks := d.blocks[:8*n]
	if _, err := io.ReadFull(d.r, blocks); err != nil {
		return fmt.Errorf("%w: short segment body (%d addresses)", ErrCorrupt, n)
	}
	if cap(d.pending) < n {
		d.pending = make([]uint64, n)
	}
	if d.mode == Sorted && cap(d.posBuf) < n {
		d.posBuf = make([]int32, n)
		d.permBuf = make([]int32, n)
	}
	addrs := d.pending[:n]
	inverseSegmentInto(addrs, blocks, n, d.mode, d.posBuf[:cap(d.posBuf)], d.permBuf[:cap(d.permBuf)])
	d.pending = addrs
	d.pos = 0
	return nil
}

// inverseSegment reconstructs n addresses from their eight byte blocks.
func inverseSegment(blocks []byte, n int, mode Mode) ([]uint64, error) {
	addrs := make([]uint64, n)
	var pos, perm []int32
	if mode == Sorted {
		pos = make([]int32, n)
		perm = make([]int32, n)
	}
	inverseSegmentInto(addrs, blocks, n, mode, pos, perm)
	return addrs, nil
}

// inverseSegmentInto reconstructs n addresses into addrs (len n; cleared
// here, so a reused buffer is fine). pos and perm are scratch of at
// least n entries for Sorted mode (unused for Unshuffle).
func inverseSegmentInto(addrs []uint64, blocks []byte, n int, mode Mode, pos, perm []int32) {
	for i := range addrs {
		addrs[i] = 0
	}
	if mode == Unshuffle {
		for j := 0; j < 8; j++ {
			blk := blocks[j*n : (j+1)*n]
			for i := 0; i < n; i++ {
				addrs[i] = addrs[i]<<8 | uint64(blk[i])
			}
		}
		return
	}
	// pos[e]: index of sequence element e within the current block order.
	pos = pos[:n]
	perm = perm[:n]
	for i := range pos {
		pos[i] = int32(i)
	}
	var start [256]int32
	for j := 0; j < 8; j++ {
		blk := blocks[j*n : (j+1)*n]
		if j > 0 {
			// The order of block j is the stable counting sort of block
			// j-1's order by block j-1's values: rebuild that permutation
			// from the previous block's histogram.
			prev := blocks[(j-1)*n : j*n]
			var hist [256]int32
			for _, c := range prev {
				hist[c]++
			}
			start[0] = 0
			for c := 1; c < 256; c++ {
				start[c] = start[c-1] + hist[c-1]
			}
			for i := 0; i < n; i++ {
				c := prev[i]
				perm[i] = start[c]
				start[c]++
			}
			for e := range pos {
				pos[e] = perm[pos[e]]
			}
		}
		for e := 0; e < n; e++ {
			addrs[e] = addrs[e]<<8 | uint64(blk[pos[e]])
		}
	}
}

// TransformBuffer applies one in-memory transformation pass and returns the
// concatenated eight blocks; exported for tests and analysis tools.
func TransformBuffer(addrs []uint64, mode Mode) []byte {
	var sink sliceWriter
	e := NewEncoderMode(&sink, len(addrs), mode)
	_ = e.WriteSlice(addrs)
	_ = e.Flush()
	if len(sink.b) < 4 {
		return nil
	}
	return sink.b[4:] // strip the count header
}

// InverseBuffer reverses TransformBuffer.
func InverseBuffer(blocks []byte, mode Mode) ([]uint64, error) {
	if len(blocks)%8 != 0 {
		return nil, fmt.Errorf("%w: block length %d not a multiple of 8", ErrCorrupt, len(blocks))
	}
	n := len(blocks) / 8
	if n == 0 {
		return nil, nil
	}
	return inverseSegment(blocks, n, mode)
}

type sliceWriter struct{ b []byte }

func (s *sliceWriter) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
