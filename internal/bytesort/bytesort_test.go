package bytesort

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperExample16 is the sixteen-address example of the paper's Figure 1,
// expressed as 32-bit values left-aligned into 64-bit words so the four
// significant bytes occupy the four most-significant byte positions.
var paperExample16 = []uint64{
	0x00000000 << 32, 0xFF000007 << 32, 0x0001C000 << 32, 0xFF000006 << 32,
	0x00018000 << 32, 0xFF000005 << 32, 0x00014000 << 32, 0xFF000004 << 32,
	0x00010000 << 32, 0xFF000003 << 32, 0x0000C000 << 32, 0xFF000002 << 32,
	0x00008000 << 32, 0xFF000001 << 32, 0x00004000 << 32, 0xFF000000 << 32,
}

func TestPaperFigure1FirstBlocks(t *testing.T) {
	blocks := TransformBuffer(paperExample16, Sorted)
	n := len(paperExample16)
	if len(blocks) != 8*n {
		t.Fatalf("blocks length = %d, want %d", len(blocks), 8*n)
	}
	// Block 1 (first byte column in the paper's 32-bit example): the
	// most-significant byte in sequence order: 00 FF 00 FF ...
	want0 := make([]byte, n)
	for i := range want0 {
		if i%2 == 1 {
			want0[i] = 0xFF
		}
	}
	if !bytes.Equal(blocks[:n], want0) {
		t.Fatalf("block 0 = %x, want %x", blocks[:n], want0)
	}
	// Block 2 of the paper: after sorting by the first byte, the 00-prefixed
	// addresses in stable (original) order come first — second bytes
	// 00 01 01 01 01 00 00 00 — then the FF-prefixed ones, all 00.
	want1 := []byte{0x00, 0x01, 0x01, 0x01, 0x01, 0x00, 0x00, 0x00, 0, 0, 0, 0, 0, 0, 0, 0}
	if !bytes.Equal(blocks[n:2*n], want1) {
		t.Fatalf("block 1 = %x, want %x", blocks[n:2*n], want1)
	}
}

func TestPaperFigure1RoundTrip(t *testing.T) {
	blocks := TransformBuffer(paperExample16, Sorted)
	got, err := InverseBuffer(blocks, Sorted)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(paperExample16) {
		t.Fatalf("inverse length %d", len(got))
	}
	for i := range got {
		if got[i] != paperExample16[i] {
			t.Fatalf("addr %d = %#x, want %#x", i, got[i], paperExample16[i])
		}
	}
}

func TestSectionFourExample(t *testing.T) {
	// The running example of §4.1: F200..F2FF interleaved with A100..A17F.
	// After bytesort, the low-byte block must contain 00..7F then 00..FF
	// (the A1 region grouped before the F2 region).
	var addrs []uint64
	k := 0
	for i := 0; i < 256; i++ {
		addrs = append(addrs, uint64(0xF200+i)<<48)
		if i%2 == 1 && k < 128 {
			addrs = append(addrs, uint64(0xA100+k)<<48)
			k++
		}
	}
	blocks := TransformBuffer(addrs, Sorted)
	n := len(addrs)
	low := blocks[n : 2*n] // second byte column (the interesting one here)
	// First 128 entries: the A1 region's low bytes 00..7F in order.
	for i := 0; i < 128; i++ {
		if low[i] != byte(i) {
			t.Fatalf("low[%d] = %#x, want %#x (A1 region not grouped)", i, low[i], byte(i))
		}
	}
	// Then the F2 region's low bytes 00..FF in order.
	for i := 0; i < 256; i++ {
		if low[128+i] != byte(i) {
			t.Fatalf("low[%d] = %#x, want %#x (F2 region not grouped)", 128+i, low[128+i], byte(i))
		}
	}
	got, err := InverseBuffer(blocks, Sorted)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestUnshuffleLayout(t *testing.T) {
	addrs := []uint64{0x0102030405060708, 0x1112131415161718}
	blocks := TransformBuffer(addrs, Unshuffle)
	want := []byte{
		0x01, 0x11, 0x02, 0x12, 0x03, 0x13, 0x04, 0x14,
		0x05, 0x15, 0x06, 0x16, 0x07, 0x17, 0x08, 0x18,
	}
	if !bytes.Equal(blocks, want) {
		t.Fatalf("unshuffle = %x, want %x", blocks, want)
	}
}

func TestUnshuffleRoundTrip(t *testing.T) {
	addrs := []uint64{1, 2, 3, 0xFFFFFFFFFFFFFFFF, 0, 42}
	got, err := InverseBuffer(TransformBuffer(addrs, Unshuffle), Unshuffle)
	if err != nil {
		t.Fatal(err)
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d mismatch", i)
		}
	}
}

func TestStreamingRoundTripMultipleSegments(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 30))
	}
	for _, mode := range []Mode{Sorted, Unshuffle} {
		var buf bytes.Buffer
		e := NewEncoderMode(&buf, 777, mode) // forces many segments + short tail
		if err := e.WriteSlice(addrs); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := NewDecoderMode(&buf, mode).ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(addrs) {
			t.Fatalf("mode %d: got %d addrs, want %d", mode, len(got), len(addrs))
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("mode %d: addr %d mismatch", mode, i)
			}
		}
	}
}

func TestDecoderAcceptsCleanEOFWithoutTerminator(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, 100)
	_ = e.WriteSlice([]uint64{1, 2, 3})
	_ = e.Flush() // note: Flush, not Close — no terminator
	got, err := NewDecoder(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d addrs", len(got))
	}
}

func TestDecoderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, 100)
	_ = e.WriteSlice([]uint64{1, 2, 3, 4, 5})
	_ = e.Close()
	data := buf.Bytes()
	_, err := NewDecoder(bytes.NewReader(data[:len(data)-10])).ReadAll()
	if err == nil {
		t.Fatal("truncated stream decoded without error")
	}
}

func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, 100)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty stream: %v, %v", got, err)
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, 10)
	_ = e.Close()
	if err := e.Write(1); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestReadAfterEOF(t *testing.T) {
	var buf bytes.Buffer
	e := NewEncoder(&buf, 10)
	_ = e.Close()
	d := NewDecoder(&buf)
	if _, err := d.Read(); err != io.EOF {
		t.Fatalf("first read err = %v", err)
	}
	if _, err := d.Read(); err != io.EOF {
		t.Fatalf("second read err = %v", err)
	}
}

func TestInverseBufferBadLength(t *testing.T) {
	if _, err := InverseBuffer(make([]byte, 7), Sorted); err == nil {
		t.Fatal("non-multiple-of-8 length accepted")
	}
}

func TestStabilityPreservesOrderWithinRegion(t *testing.T) {
	// Addresses with identical high bytes must keep their relative order in
	// every sorted block (stable sort invariant from the paper).
	addrs := []uint64{
		0xAA00000000000005, 0xAA00000000000001, 0xAA00000000000003,
		0xBB00000000000002, 0xAA00000000000004,
	}
	blocks := TransformBuffer(addrs, Sorted)
	n := len(addrs)
	// The final block is the least-significant byte after all sorts. All AA
	// addresses come first (AA < BB) in original relative order.
	last := blocks[7*n:]
	want := []byte{5, 1, 3, 4, 2}
	if !bytes.Equal(last, want) {
		t.Fatalf("final block = %v, want %v", last, want)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64, bufSize uint16) bool {
		bs := int(bufSize%512) + 1
		for _, mode := range []Mode{Sorted, Unshuffle} {
			var buf bytes.Buffer
			e := NewEncoderMode(&buf, bs, mode)
			if err := e.WriteSlice(addrs); err != nil {
				return false
			}
			if err := e.Close(); err != nil {
				return false
			}
			got, err := NewDecoderMode(&buf, mode).ReadAll()
			if err != nil {
				return false
			}
			if len(got) != len(addrs) {
				return false
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressibilityImprovement(t *testing.T) {
	// The whole point: byte columns of structured addresses are more
	// repetitive than the interleaved layout. Verify the transform output
	// has long runs for a strided trace.
	addrs := make([]uint64, 4096)
	for i := range addrs {
		addrs[i] = 0x00007F0000000000 + uint64(i)*64
	}
	blocks := TransformBuffer(addrs, Sorted)
	n := len(addrs)
	// Top 5 byte columns must be constant runs.
	for j := 0; j < 5; j++ {
		col := blocks[j*n : (j+1)*n]
		for i := 1; i < n; i++ {
			if col[i] != col[0] {
				t.Fatalf("column %d not constant at %d", j, i)
			}
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63())
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEncoder(io.Discard.(io.Writer), len(addrs))
		_ = e.WriteSlice(addrs)
		_ = e.Close()
	}
}

func BenchmarkDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Int63())
	}
	var buf bytes.Buffer
	e := NewEncoder(&buf, len(addrs))
	_ = e.WriteSlice(addrs)
	_ = e.Close()
	data := buf.Bytes()
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewDecoder(bytes.NewReader(data)).ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
