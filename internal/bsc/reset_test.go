package bsc

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// TestReaderReset decodes a sequence of unrelated streams through one
// Reader via Reset and requires byte-identity with fresh-reader decodes —
// no state may leak across streams, including after error and mid-stream
// abandonment.
func TestReaderReset(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payloads := make([][]byte, 8)
	for i := range payloads {
		n := rng.Intn(200_000)
		p := make([]byte, n)
		switch i % 3 {
		case 0: // compressible: few distinct values, long runs
			for j := range p {
				p[j] = byte(rng.Intn(4))
			}
		case 1: // incompressible
			rng.Read(p)
		case 2: // structured
			for j := range p {
				p[j] = byte(j >> 6)
			}
		}
		payloads[i] = p
	}
	r := NewReader(nil)
	for round := 0; round < 3; round++ {
		for i, p := range payloads {
			comp, err := CompressSize(p, 64<<10)
			if err != nil {
				t.Fatalf("compress %d: %v", i, err)
			}
			if err := r.Reset(bytes.NewReader(comp)); err != nil {
				t.Fatalf("reset: %v", err)
			}
			got, err := io.ReadAll(r)
			if err != nil {
				t.Fatalf("round %d payload %d: read: %v", round, i, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("round %d payload %d: decode mismatch (%d vs %d bytes)", round, i, len(got), len(p))
			}
			if r.CompressedBytesRead() != int64(len(comp)) {
				t.Fatalf("round %d payload %d: counted %d compressed bytes, want %d", round, i, r.CompressedBytesRead(), len(comp))
			}
		}
		// Abandon a stream halfway; the next Reset must fully recover.
		comp, err := Compress(payloads[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Reset(bytes.NewReader(comp)); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 100)
		if _, err := io.ReadFull(r, buf); err != nil && len(payloads[1]) >= 100 {
			t.Fatalf("partial read: %v", err)
		}
		// Poison with a corrupt stream; Reset must clear the error state.
		if err := r.Reset(bytes.NewReader([]byte("BSC1\x01junk"))); err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(r); err == nil {
			t.Fatal("corrupt stream decoded without error")
		}
	}
}

// TestReaderResetAmortisedZeroAlloc pins the point of the reusable state:
// once a Reader has decoded a stream, re-decoding streams of the same
// shape through Reset performs no per-stream allocations.
func TestReaderResetAmortisedZeroAlloc(t *testing.T) {
	p := make([]byte, 150_000)
	for j := range p {
		p[j] = byte(j >> 4)
	}
	comp, err := CompressSize(p, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(nil)
	src := bytes.NewReader(comp)
	out := make([]byte, len(p)+1)
	decode := func() {
		src.Reset(comp)
		if err := r.Reset(src); err != nil {
			t.Fatal(err)
		}
		n, err := io.ReadFull(r, out[:len(p)])
		if err != nil || n != len(p) {
			t.Fatalf("decode: n=%d err=%v", n, err)
		}
		if _, err := r.Read(out[len(p):]); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	}
	decode() // warm up the scratch buffers
	if allocs := testing.AllocsPerRun(5, decode); allocs > 1 {
		t.Fatalf("decode through Reset allocates %.0f objects per stream, want ≤1", allocs)
	}
}
