// Package bsc implements a block-sorting compressor in the style of bzip2:
// each block of input is Burrows–Wheeler transformed, move-to-front and
// zero-run coded, then entropy coded with a canonical Huffman code. It is
// the byte-level back end this reproduction uses where the paper uses bzip2
// (the Go standard library ships only a bzip2 reader, no writer).
//
// The stream format is self-framing:
//
//	magic "BSC1" (4 bytes)
//	repeated blocks:
//	    u8   1 (block marker)
//	    u32  original length (little endian)
//	    u32  IEEE CRC-32 of the original bytes
//	    u32  BWT primary index
//	    258 × 5-bit Huffman code lengths (bit packed)
//	    Huffman-coded RUNA/RUNB/MTF symbols, terminated by EOB
//	    (zero padding to the next byte boundary)
//	u8 0 (end-of-stream marker)
//
// Writer implements io.WriteCloser, Reader implements io.Reader, so the
// package composes with any byte stream.
package bsc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"atc/internal/bitio"
	"atc/internal/bwt"
	"atc/internal/huffman"
	"atc/internal/mtf"
)

const (
	magic = "BSC1"
	// DefaultBlockSize matches bzip2 -9 (900 KB blocks).
	DefaultBlockSize = 900 * 1000
	// MaxBlockSize bounds memory use for hostile streams.
	MaxBlockSize = 16 << 20

	lenBits = 5 // bits per Huffman code length in the header (max length 20)
)

var (
	// ErrCorrupt reports a malformed or truncated stream.
	ErrCorrupt = errors.New("bsc: corrupt stream")
	// ErrChecksum reports a CRC mismatch on a decompressed block.
	ErrChecksum = errors.New("bsc: checksum mismatch")
)

// Writer compresses data written to it and emits the compressed stream to
// the underlying writer. Close must be called to flush the final block and
// the end-of-stream marker.
type Writer struct {
	w         io.Writer
	buf       []byte
	blockSize int
	wroteHdr  bool
	closed    bool
	err       error
}

// NewWriter returns a Writer with the default block size.
func NewWriter(w io.Writer) *Writer {
	return NewWriterSize(w, DefaultBlockSize)
}

// NewWriterSize returns a Writer with the given block size in bytes.
// Sizes outside [1, MaxBlockSize] are clamped.
func NewWriterSize(w io.Writer, blockSize int) *Writer {
	if blockSize < 1 {
		blockSize = 1
	}
	if blockSize > MaxBlockSize {
		blockSize = MaxBlockSize
	}
	return &Writer{w: w, blockSize: blockSize, buf: make([]byte, 0, blockSize)}
}

// Write buffers p, compressing complete blocks as they fill.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		return 0, errors.New("bsc: write after close")
	}
	total := 0
	for len(p) > 0 {
		room := w.blockSize - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == w.blockSize {
			if err := w.flushBlock(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

func (w *Writer) writeHeader() error {
	if w.wroteHdr {
		return nil
	}
	if _, err := io.WriteString(w.w, magic); err != nil {
		w.err = err
		return err
	}
	w.wroteHdr = true
	return nil
}

func (w *Writer) flushBlock() error {
	if err := w.writeHeader(); err != nil {
		return err
	}
	if len(w.buf) == 0 {
		return nil
	}
	if err := compressBlock(w.w, w.buf); err != nil {
		w.err = err
		return err
	}
	w.buf = w.buf[:0]
	return nil
}

// Close flushes any buffered data and writes the end-of-stream marker.
// It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if _, err := w.w.Write([]byte{0}); err != nil {
		w.err = err
		return err
	}
	w.closed = true
	return nil
}

// compressBlock writes one framed compressed block.
func compressBlock(w io.Writer, block []byte) error {
	transformed, primary := bwt.Transform(block)
	syms := mtf.Encode(transformed)
	freqs := make([]int64, mtf.NumSyms)
	for _, s := range syms {
		freqs[s]++
	}
	lengths, err := huffman.BuildLengths(freqs, huffman.MaxBits)
	if err != nil {
		return fmt.Errorf("bsc: %w", err)
	}
	cb, err := huffman.NewCodebook(lengths)
	if err != nil {
		return fmt.Errorf("bsc: %w", err)
	}

	var hdr [13]byte
	hdr[0] = 1
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(block)))
	binary.LittleEndian.PutUint32(hdr[5:9], crc32.ChecksumIEEE(block))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(primary))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	bw := bitio.NewWriter(w)
	for _, l := range lengths {
		if err := bw.WriteBits(uint64(l), lenBits); err != nil {
			return err
		}
	}
	enc := huffman.NewEncoder(cb, bw)
	for _, s := range syms {
		if err := enc.WriteSymbol(int(s)); err != nil {
			return err
		}
	}
	return bw.Close()
}

// Reader decompresses a bsc stream.
//
// All consumption of the underlying stream — framing headers and the bit
// stream alike — goes through a single buffered reader, and the bit reader
// consumes it strictly byte-at-a-time, so block boundaries stay in sync.
//
// A Reader owns all of its block-decode working state (symbol buffer,
// Huffman tables, MTF and BWT scratch, the block buffer itself) and
// Reset re-targets it at a new stream while keeping that state, so one
// Reader can decompress any number of streams with amortised-zero
// allocation — this is what the decode pipeline's per-Decompressor
// reader pool relies on.
type Reader struct {
	raw     *byteCounter
	br      *bufio.Reader
	pending []byte // decompressed bytes not yet delivered; aliases block
	done    bool
	started bool
	err     error

	// Reusable per-block decode state. pending aliases block, and
	// nextBlock only runs once pending is fully drained, so overwriting
	// these between blocks never clobbers undelivered bytes.
	bit     bitio.Reader
	dec     huffman.Decoder
	hdr     [12]byte // framing scratch: magic, block markers, block headers
	lengths [mtf.NumSyms]uint8
	syms    []uint16
	mtfOut  []byte  // MTF+run decode output (the BWT last column)
	block   []byte  // reconstructed block (bwt.InverseInto dst)
	next    []int32 // bwt.InverseInto successor-table scratch
}

// byteCounter counts bytes consumed from the underlying reader so callers
// can attribute input consumption (used by the Table 2 instrumentation).
type byteCounter struct {
	r io.Reader
	n int64
}

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// NewReader returns a Reader decompressing from r.
func NewReader(r io.Reader) *Reader {
	bc := &byteCounter{r: r}
	return &Reader{raw: bc, br: bufio.NewReader(bc)}
}

// Reset discards all stream state — position, error, byte counter — and
// restarts the Reader on src, retaining the decode working buffers. After
// Reset the Reader behaves exactly like NewReader(src). It always returns
// nil; the error return satisfies xcompress.ResetReader.
func (r *Reader) Reset(src io.Reader) error {
	r.raw.r = src
	r.raw.n = 0
	r.br.Reset(r.raw)
	r.pending = nil
	r.done = false
	r.started = false
	r.err = nil
	return nil
}

// CompressedBytesRead reports how many compressed bytes have been consumed
// from the underlying reader (including buffered read-ahead).
func (r *Reader) CompressedBytesRead() int64 { return r.raw.n }

func (r *Reader) readHeader() error {
	m := r.hdr[:4]
	if _, err := io.ReadFull(r.br, m); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("%w: short magic", ErrCorrupt)
	}
	if string(m) != magic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, m)
	}
	r.started = true
	return nil
}

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	for len(r.pending) == 0 {
		if r.done {
			r.err = io.EOF
			return 0, io.EOF
		}
		if !r.started {
			if err := r.readHeader(); err != nil {
				r.err = err
				return 0, err
			}
		}
		if err := r.nextBlock(); err != nil {
			r.err = err
			return 0, err
		}
	}
	n := copy(p, r.pending)
	r.pending = r.pending[n:]
	return n, nil
}

func (r *Reader) nextBlock() error {
	marker, err := r.br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing block marker", ErrCorrupt)
	}
	if marker == 0 {
		r.done = true
		return nil
	}
	if marker != 1 {
		return fmt.Errorf("%w: bad block marker %d", ErrCorrupt, marker)
	}
	if _, err := io.ReadFull(r.br, r.hdr[:]); err != nil {
		return fmt.Errorf("%w: short block header", ErrCorrupt)
	}
	origLen := binary.LittleEndian.Uint32(r.hdr[0:4])
	wantCRC := binary.LittleEndian.Uint32(r.hdr[4:8])
	primary := binary.LittleEndian.Uint32(r.hdr[8:12])
	if origLen > MaxBlockSize {
		return fmt.Errorf("%w: block length %d too large", ErrCorrupt, origLen)
	}
	r.bit.Reset(r.br)
	for i := range r.lengths {
		v, err := r.bit.ReadBits(lenBits)
		if err != nil {
			return fmt.Errorf("%w: short length table", ErrCorrupt)
		}
		r.lengths[i] = uint8(v)
	}
	if err := r.dec.Reset(r.lengths[:], &r.bit); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	// Every symbol before EOB contributes at least one decoded byte (an
	// MTF symbol exactly one, a RUNA/RUNB run digit one or more), so a
	// valid block's symbol stream holds at most origLen symbols plus the
	// EOB — preallocating that bound makes the loop allocation-free and
	// turns an over-long hostile stream into an early corruption error
	// instead of an unbounded allocation.
	maxSyms := int(origLen) + 1
	if cap(r.syms) < maxSyms {
		r.syms = make([]uint16, 0, maxSyms)
	}
	r.syms = r.syms[:0]
	for {
		s, err := r.dec.ReadSymbol()
		if err != nil {
			return fmt.Errorf("%w: symbol stream: %v", ErrCorrupt, err)
		}
		if len(r.syms) == maxSyms {
			return fmt.Errorf("%w: symbol stream exceeds block length %d", ErrCorrupt, origLen)
		}
		r.syms = append(r.syms, uint16(s))
		if s == mtf.EOB {
			break
		}
	}
	transformed, _, err := mtf.DecodeInto(r.mtfOut, r.syms)
	if transformed != nil {
		r.mtfOut = transformed
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if uint32(len(transformed)) != origLen {
		return fmt.Errorf("%w: block length mismatch (%d != %d)", ErrCorrupt, len(transformed), origLen)
	}
	block, next, err := bwt.InverseInto(r.block, r.next, transformed, int(primary))
	r.next = next
	if block != nil {
		r.block = block
	}
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(block) != wantCRC {
		return ErrChecksum
	}
	r.pending = block
	// NOTE: the bit reader may have buffered bits past the block's padding;
	// bitio reads byte-at-a-time from the shared counter, and compressBlock
	// byte-aligns its output, so the next block starts exactly at the next
	// byte. bitio.Reader only consumes whole bytes, so no realignment of the
	// underlying stream is needed.
	return nil
}

// Compress is a convenience helper compressing a whole buffer.
func Compress(data []byte) ([]byte, error) {
	return CompressSize(data, DefaultBlockSize)
}

// CompressSize compresses a whole buffer with the given block size.
func CompressSize(data []byte, blockSize int) ([]byte, error) {
	var buf writerBuffer
	w := NewWriterSize(&buf, blockSize)
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// Decompress is a convenience helper expanding a whole buffer.
func Decompress(data []byte) ([]byte, error) {
	r := NewReader(&sliceReader{b: data})
	return io.ReadAll(r)
}

type writerBuffer struct{ b []byte }

func (w *writerBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b []byte
	i int
}

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}
