package bsc

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte, blockSize int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterSize(&buf, blockSize)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := io.ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: got %d bytes, want %d", len(got), len(data))
	}
	return buf.Bytes()
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil, DefaultBlockSize)
}

func TestRoundTripText(t *testing.T) {
	roundTrip(t, []byte("the quick brown fox jumps over the lazy dog"), DefaultBlockSize)
}

func TestRoundTripMultipleBlocks(t *testing.T) {
	data := bytes.Repeat([]byte("block sorting compressors like repeated text. "), 100)
	compressed := roundTrip(t, data, 256) // forces many blocks
	if len(compressed) >= len(data) {
		t.Logf("note: tiny blocks inflate (in=%d out=%d); expected with 256-byte blocks", len(data), len(compressed))
	}
}

func TestRoundTripBlockBoundaryExact(t *testing.T) {
	// Data exactly filling N blocks.
	data := bytes.Repeat([]byte{1, 2, 3, 4}, 64) // 256 bytes
	roundTrip(t, data, 128)
	roundTrip(t, data, 256)
	roundTrip(t, data, 255)
}

func TestRoundTripBinary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	roundTrip(t, data, 32<<10)
}

func TestCompressionRatioOnRepetitive(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 10000) // 80 KB
	compressed := roundTrip(t, data, DefaultBlockSize)
	if len(compressed) > len(data)/20 {
		t.Fatalf("repetitive data compressed to %d bytes (>5%% of %d); BWT pipeline ineffective", len(compressed), len(data))
	}
}

func TestConvenienceHelpers(t *testing.T) {
	data := []byte("convenience round trip")
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompress(c)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d, data) {
		t.Fatal("helper round trip mismatch")
	}
}

func TestWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestDoubleCloseIsIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_, _ = w.Write([]byte("data"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Fatal("second Close wrote more data")
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Decompress([]byte("NOPE...."))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	c, err := Compress([]byte("some data that will be truncated"))
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{3, 5, 10, len(c) - 1} {
		if cut >= len(c) {
			continue
		}
		_, err := Decompress(c[:cut])
		if err == nil {
			t.Fatalf("truncation at %d of %d not detected", cut, len(c))
		}
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	data := bytes.Repeat([]byte("corruption canary "), 200)
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	// Flip bits in the middle of the stream. Any of CRC/structure checks may
	// fire, but silent wrong output is a failure.
	detected := 0
	for _, pos := range []int{len(c) / 2, len(c)/2 + 7, len(c) - 10} {
		mutated := append([]byte(nil), c...)
		mutated[pos] ^= 0x41
		got, err := Decompress(mutated)
		if err != nil {
			detected++
			continue
		}
		if bytes.Equal(got, data) {
			// Flip landed in dont-care padding; acceptable.
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("no corruption detected for any mutation")
	}
}

func TestEmptyWriteProducesValidStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(NewReader(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty stream decoded to %d bytes", len(got))
	}
}

func TestSmallReads(t *testing.T) {
	data := bytes.Repeat([]byte("tiny reads "), 500)
	c, err := Compress(data)
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(c))
	var got []byte
	one := make([]byte, 1)
	for {
		n, err := r.Read(one)
		if n > 0 {
			got = append(got, one[0])
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, data) {
		t.Fatal("byte-at-a-time read mismatch")
	}
}

func TestCompressedBytesRead(t *testing.T) {
	c, err := Compress([]byte("count me"))
	if err != nil {
		t.Fatal(err)
	}
	r := NewReader(bytes.NewReader(c))
	if _, err := io.ReadAll(r); err != nil {
		t.Fatal(err)
	}
	if got := r.CompressedBytesRead(); got != int64(len(c)) {
		t.Fatalf("CompressedBytesRead = %d, want %d", got, len(c))
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte, bs uint16) bool {
		blockSize := int(bs%4096) + 1
		c, err := CompressSize(data, blockSize)
		if err != nil {
			return false
		}
		d, err := Decompress(c)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(d) == 0
		}
		return bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUncompressibleDataSurvives(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	data := make([]byte, 300_000)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	compressed := roundTrip(t, data, DefaultBlockSize)
	// Random bytes should roughly break even (within ~6% overhead).
	if len(compressed) > len(data)+len(data)/16 {
		t.Fatalf("random data expanded to %d bytes from %d", len(compressed), len(data))
	}
}

func BenchmarkCompress(b *testing.B) {
	data := bytes.Repeat([]byte("benchmark data with some repetition in it. "), 5000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := bytes.Repeat([]byte("benchmark data with some repetition in it. "), 5000)
	c, err := Compress(data)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}
