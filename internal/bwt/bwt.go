// Package bwt implements the Burrows–Wheeler transform and its inverse.
//
// The transform uses the virtual-sentinel convention: conceptually a unique
// smallest symbol is appended to the input, rotations of the extended string
// are sorted, and the last column is emitted. The sentinel itself is not
// written to the output; its row index (the "primary index") is returned
// alongside the n transformed bytes. This matches the suffix order produced
// by a plain suffix array, so the forward transform reduces to suffix
// sorting, done here with a Manber–Myers prefix-doubling sort that is
// O(n log n) worst case (no pathological behaviour on repetitive inputs,
// which BWT blocks frequently are).
package bwt

import (
	"errors"
	"fmt"
)

// ErrBadPrimary is returned by Inverse when the primary index is out of range.
var ErrBadPrimary = errors.New("bwt: primary index out of range")

// ErrCorrupt reports transform data whose inverse cycle is inconsistent
// with the claimed primary index: the input was damaged in transit or the
// primary belongs to a different block.
var ErrCorrupt = errors.New("bwt: corrupt transform data")

// Transform computes the BWT of data. It returns the n output bytes and the
// primary index p in [1, n] (row of the virtual sentinel in the sorted
// rotation matrix). Transforming an empty slice returns (nil, 0).
// The output slice is freshly allocated; data is not modified.
func Transform(data []byte) (out []byte, primary int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	sa := suffixArray(data)
	out = make([]byte, n)
	// Row 0 is the rotation that starts with the sentinel; its last column
	// entry is the final byte of the input.
	out[0] = data[n-1]
	w := 1
	for k, s := range sa {
		if s == 0 {
			// This row's last column is the sentinel: record its position.
			primary = k + 1
			continue
		}
		out[w] = data[s-1]
		w++
	}
	return out, primary
}

// Inverse reconstructs the original data from a BWT output and primary index.
func Inverse(out []byte, primary int) ([]byte, error) {
	s, _, err := InverseInto(nil, nil, out, primary)
	return s, err
}

// InverseInto is Inverse with caller-owned working storage: dst receives
// the reconstructed bytes and next is the (n+1)-entry successor table the
// cycle walk needs — both are grown only when too small, so a caller
// recycling them (the bsc Reader's pooled decode state) inverts block
// after block without allocating. It returns the reconstructed slice
// (aliasing dst's storage unless grown) and the possibly-grown scratch,
// which the caller should retain even on error.
func InverseInto(dst []byte, next []int32, out []byte, primary int) ([]byte, []int32, error) {
	n := len(out)
	if n == 0 {
		if primary != 0 {
			return nil, next, ErrBadPrimary
		}
		return nil, next, nil
	}
	if primary < 1 || primary > n {
		return nil, next, fmt.Errorf("%w: %d not in [1,%d]", ErrBadPrimary, primary, n)
	}
	// realByte maps an index in the (n+1)-row column (sentinel at `primary`)
	// to the stored byte.
	realByte := func(i int) byte {
		if i < primary {
			return out[i]
		}
		return out[i-1]
	}
	var cnt [256]int
	for _, b := range out {
		cnt[b]++
	}
	// start[c]: first row in the F column holding byte c (row 0 is the
	// sentinel, hence the +1 initialisation).
	var start [256]int
	sum := 1
	for c := 0; c < 256; c++ {
		start[c] = sum
		sum += cnt[c]
	}
	if cap(next) < n+1 {
		next = make([]int32, n+1)
	}
	next = next[:n+1]
	var occ [256]int
	for i := 0; i <= n; i++ {
		if i == primary {
			continue
		}
		c := realByte(i)
		next[i] = int32(start[c] + occ[c])
		occ[c]++
	}
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	s := dst[:n]
	i := 0
	for k := n - 1; k >= 0; k-- {
		if i == primary {
			return nil, next, fmt.Errorf("%w: cycle hit sentinel early (wrong primary?)", ErrCorrupt)
		}
		s[k] = realByte(i)
		i = int(next[i])
	}
	if i != primary {
		return nil, next, fmt.Errorf("%w: cycle did not terminate at sentinel (wrong primary?)", ErrCorrupt)
	}
	return s, next, nil
}

// suffixArray computes the suffix array of data using Manber–Myers prefix
// doubling with counting sorts, O(n log n) time and O(n) auxiliary space.
func suffixArray(data []byte) []int32 {
	n := len(data)
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	// Initial ranks are the byte values; initial order by counting sort.
	var cnt [257]int32
	for _, b := range data {
		cnt[int(b)+1]++
	}
	for c := 1; c < 257; c++ {
		cnt[c] += cnt[c-1]
	}
	for i := 0; i < n; i++ {
		b := data[i]
		sa[cnt[b]] = int32(i)
		cnt[b]++
	}
	r := int32(0)
	for i := 0; i < n; i++ {
		if i > 0 && data[sa[i]] != data[sa[i-1]] {
			r++
		}
		rank[sa[i]] = r
	}
	maxRank := r
	if int(maxRank) == n-1 {
		return sa
	}

	count := make([]int32, n+1)
	sa2 := make([]int32, n)
	for k := 1; k < n; k *= 2 {
		// Sort by second key (rank[i+k], -1 if out of range): suffixes with
		// i+k >= n have the smallest second key and come first; others are
		// appended in the order of the previous sa pass restricted to
		// positions >= k (a counting-sort-free stable pass).
		w := 0
		for i := n - k; i < n; i++ {
			sa2[w] = int32(i)
			w++
		}
		for _, s := range sa {
			if int(s) >= k {
				sa2[w] = s - int32(k)
				w++
			}
		}
		// Stable counting sort of sa2 by first key rank[i].
		for i := range count[:maxRank+2] {
			count[i] = 0
		}
		for i := 0; i < n; i++ {
			count[rank[i]+1]++
		}
		for c := int32(1); c <= maxRank+1; c++ {
			count[c] += count[c-1]
		}
		for _, s := range sa2 {
			sa[count[rank[s]]] = s
			count[rank[s]]++
		}
		// Recompute ranks.
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		r = 0
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			a1, a2 := key(sa[i-1])
			b1, b2 := key(sa[i])
			if a1 != b1 || a2 != b2 {
				r++
			}
			tmp[sa[i]] = r
		}
		rank, tmp = tmp, rank
		maxRank = r
		if int(maxRank) == n-1 {
			break
		}
	}
	return sa
}
