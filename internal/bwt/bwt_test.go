package bwt

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTransformKnown(t *testing.T) {
	// Worked example: "ab" with sentinel.
	// Rotations of "ab$": "$ab"(L=b), "ab$"(L=$), "b$a"(L=a).
	// out = [b a], primary = 1.
	out, p := Transform([]byte("ab"))
	if !bytes.Equal(out, []byte("ba")) || p != 1 {
		t.Fatalf("Transform(ab) = %q, %d; want \"ba\", 1", out, p)
	}
}

func TestTransformBanana(t *testing.T) {
	in := []byte("banana")
	out, p := Transform(in)
	got, err := Inverse(out, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, in) {
		t.Fatalf("round trip = %q, want %q", got, in)
	}
	// BWT of banana$ is well known: "annb$aa" -> without sentinel "annbaa", p=4.
	if !bytes.Equal(out, []byte("annbaa")) || p != 4 {
		t.Fatalf("Transform(banana) = %q, %d; want \"annbaa\", 4", out, p)
	}
}

func TestEmpty(t *testing.T) {
	out, p := Transform(nil)
	if out != nil || p != 0 {
		t.Fatalf("Transform(nil) = %v, %d", out, p)
	}
	got, err := Inverse(nil, 0)
	if err != nil || got != nil {
		t.Fatalf("Inverse(nil,0) = %v, %v", got, err)
	}
}

func TestSingleByte(t *testing.T) {
	out, p := Transform([]byte{7})
	got, err := Inverse(out, p)
	if err != nil || !bytes.Equal(got, []byte{7}) {
		t.Fatalf("single byte round trip failed: %v %v", got, err)
	}
}

func TestAllSameByte(t *testing.T) {
	in := bytes.Repeat([]byte{'x'}, 1000)
	out, p := Transform(in)
	got, err := Inverse(out, p)
	if err != nil || !bytes.Equal(got, in) {
		t.Fatalf("run of identical bytes failed to round trip: %v", err)
	}
}

func TestRepetitivePatterns(t *testing.T) {
	cases := [][]byte{
		bytes.Repeat([]byte("ab"), 500),
		bytes.Repeat([]byte("abc"), 333),
		bytes.Repeat([]byte{0, 0, 1}, 400),
		append(bytes.Repeat([]byte{255}, 100), bytes.Repeat([]byte{0}, 100)...),
	}
	for i, in := range cases {
		out, p := Transform(in)
		got, err := Inverse(out, p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !bytes.Equal(got, in) {
			t.Fatalf("case %d: round trip mismatch", i)
		}
	}
}

func TestOutputIsPermutation(t *testing.T) {
	in := []byte("the quick brown fox jumps over the lazy dog")
	out, _ := Transform(in)
	a := append([]byte(nil), in...)
	b := append([]byte(nil), out...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	if !bytes.Equal(a, b) {
		t.Fatal("BWT output is not a permutation of the input")
	}
}

func TestInverseBadPrimary(t *testing.T) {
	out, _ := Transform([]byte("hello"))
	if _, err := Inverse(out, 0); err == nil {
		t.Fatal("primary=0 accepted for nonempty data")
	}
	if _, err := Inverse(out, len(out)+1); err == nil {
		t.Fatal("primary > n accepted")
	}
}

func TestInverseWrongPrimaryDetected(t *testing.T) {
	// With a wrong (but in-range) primary the walk usually either hits the
	// sentinel early or ends elsewhere; it must not silently return garbage
	// of the wrong length.
	in := []byte("mississippi")
	out, p := Transform(in)
	for q := 1; q <= len(out); q++ {
		got, err := Inverse(out, q)
		if q == p {
			if err != nil || !bytes.Equal(got, in) {
				t.Fatalf("correct primary %d failed: %v", q, err)
			}
			continue
		}
		if err == nil && bytes.Equal(got, in) {
			t.Fatalf("wrong primary %d reproduced the input", q)
		}
	}
}

func TestSuffixArrayAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200) + 1
		data := make([]byte, n)
		alpha := rng.Intn(4) + 2 // small alphabets stress tie-breaking
		for i := range data {
			data[i] = byte(rng.Intn(alpha))
		}
		got := suffixArray(data)
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		sort.Slice(want, func(a, b int) bool {
			return bytes.Compare(data[want[a]:], data[want[b]:]) < 0
		})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: sa[%d] = %d, want %d (data=%v)", trial, i, got[i], want[i], data)
			}
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		out, p := Transform(data)
		got, err := Inverse(out, p)
		if err != nil {
			return false
		}
		if len(data) == 0 {
			return len(got) == 0
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := make([]byte, 1<<18)
	for i := range in {
		in[i] = byte(rng.Intn(256))
	}
	out, p := Transform(in)
	got, err := Inverse(out, p)
	if err != nil || !bytes.Equal(got, in) {
		t.Fatal("large random block failed to round trip")
	}
}

func TestLargeRepetitive(t *testing.T) {
	// Worst case for comparison sorts; must stay fast with doubling sort.
	in := bytes.Repeat([]byte("aaaaaaab"), 1<<15)
	out, p := Transform(in)
	got, err := Inverse(out, p)
	if err != nil || !bytes.Equal(got, in) {
		t.Fatal("large repetitive block failed to round trip")
	}
}

func BenchmarkTransform1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := make([]byte, 1<<20)
	for i := range in {
		in[i] = byte(rng.Intn(64))
	}
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(in)
	}
}

func BenchmarkInverse1MB(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	in := make([]byte, 1<<20)
	for i := range in {
		in[i] = byte(rng.Intn(64))
	}
	out, p := Transform(in)
	b.SetBytes(int64(len(in)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Inverse(out, p); err != nil {
			b.Fatal(err)
		}
	}
}
