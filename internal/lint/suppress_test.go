package lint_test

import (
	"strings"
	"testing"

	"atc/internal/lint"
	"atc/internal/lint/linttest"
)

// TestSuppressionHygiene runs the badignore fixture, which mixes a valid
// suppression (must silence its finding), a typoed analyzer name and a
// reasonless directive (both must surface as atcvet diagnostics alongside
// the finding they failed to suppress), and a function-wide doc-comment
// suppression.
func TestSuppressionHygiene(t *testing.T) {
	got := linttest.Diagnostics(t, "testdata/src/badignore", lint.Suite()...)

	wantSubstrings := []string{
		`names unknown analyzer "errcorupt"`,    // typo rejected
		`//atc:ignore errcorrupt has no reason`, // reason mandatory
	}
	for _, want := range wantSubstrings {
		if !containsSubstring(got, want) {
			t.Errorf("diagnostics missing %q; got:\n%s", want, strings.Join(got, "\n"))
		}
	}

	// The two invalid directives each leave their errors.New finding live:
	// exactly two errcorrupt findings survive (parseTypo, parseNoReason);
	// parseValid's and parseFuncWide's are suppressed.
	count := 0
	for _, line := range got {
		if strings.Contains(line, "[errcorrupt]") {
			count++
		}
	}
	if count != 2 {
		t.Errorf("want 2 surviving errcorrupt findings (invalid directives suppress nothing), got %d:\n%s",
			count, strings.Join(got, "\n"))
	}
}

func containsSubstring(lines []string, sub string) bool {
	for _, l := range lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}
