package lint_test

import (
	"testing"

	"atc/internal/lint"
	"atc/internal/lint/linttest"
)

// Each analyzer has a fixture package demonstrating at least one true
// positive, the clean idioms it must not flag, and one annotated
// suppression.

func TestErrCorruptFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/errcorrupt", lint.ErrCorruptAnalyzer)
}

func TestUntrustedLenFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/untrustedlen", lint.UntrustedLenAnalyzer)
}

func TestHotAllocFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/hotalloc", lint.HotAllocAnalyzer)
}

func TestPoolReturnFixture(t *testing.T) {
	linttest.Run(t, "testdata/src/poolreturn", lint.PoolReturnAnalyzer)
}
