package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// UntrustedLenAnalyzer generalizes the 2^48 plausibility caps PR 2 added by
// hand: every length or count parsed from the wire (INFO/TOC/MANIFEST
// fields, block headers) must be bounds-checked before it sizes an
// allocation. Without the check, a 4-byte corrupt header can demand a
// multi-gigabyte make before the first content byte is read.
//
// The analysis is an intra-procedural taint walk over functions on the
// decode path (same scope rule as errcorrupt). Taint sources are direct
// encoding/binary integer decodes (Uint16/32/64, ReadUvarint/ReadVarint),
// calls to functions annotated //atc:wire, and reads of struct fields
// annotated //atc:wire. A tainted value is sanitized by a comparison that
// upper-bounds it: `if n > max { return ... }` (guard exits), `if n > max
// { n = max }` (clamp), an equality pin against an untrusted-free value
// that exits on mismatch, or use under `if n <= max { ... }`. Builtin
// min() against an untainted bound also sanitizes. Sinks are make sizes
// and io.CopyN limits.
var UntrustedLenAnalyzer = &Analyzer{
	Name: "untrustedlen",
	Doc: "wire-derived lengths must be bounds-checked before they size an " +
		"allocation (make, io.CopyN) on the decode path",
	Run: runUntrustedLen,
}

func runUntrustedLen(pass *Pass) error {
	wireFuncs, wireFields := collectWireAnnotations(pass)
	eachFuncDecl(pass.Files, func(_ *ast.File, fn *ast.FuncDecl) {
		if !onDecodePath(pass.Pkg.Path(), fn) {
			return
		}
		w := &taintWalker{
			pass:       pass,
			wireFuncs:  wireFuncs,
			wireFields: wireFields,
			tainted:    map[*types.Var]bool{},
		}
		w.stmt(fn.Body)
	})
	return nil
}

// collectWireAnnotations finds //atc:wire on function declarations (the
// function's results are wire-derived) and on struct fields (reads of the
// field are wire-derived).
func collectWireAnnotations(pass *Pass) (map[*types.Func]bool, map[*types.Var]bool) {
	funcs := map[*types.Func]bool{}
	fields := map[*types.Var]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if _, ok := funcHasDirective(fn, "wire"); ok {
					if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
						funcs[obj] = true
					}
				}
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				tagged := false
				for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
					for _, d := range parseDirectives(cg) {
						if d.name == "wire" {
							tagged = true
						}
					}
				}
				if !tagged {
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pass.Info.Defs[name].(*types.Var); ok {
						fields[obj] = true
					}
				}
			}
			return true
		})
	}
	return funcs, fields
}

// taintWalker tracks which local variables currently hold unbounded
// wire-derived integers, in source order. It is deliberately flow-coarse:
// loops are walked once, branches share the surrounding state, and a
// sanitizing guard removes taint for everything after it. That trades
// soundness corners for near-zero false positives on real decoder code.
type taintWalker struct {
	pass       *Pass
	wireFuncs  map[*types.Func]bool
	wireFields map[*types.Var]bool
	tainted    map[*types.Var]bool
}

func (w *taintWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, st := range s.List {
			w.stmt(st)
		}
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Cond)
		w.ifStmt(s)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Cond)
		w.stmt(s.Body)
		w.stmt(s.Post)
	case *ast.RangeStmt:
		w.scanExpr(s.X)
		if w.taintedExpr(s.X) {
			w.taintLHS(s.Key)
			w.taintLHS(s.Value)
		}
		w.stmt(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.scanExpr(s.Tag)
		for _, c := range s.Body.List {
			for _, st := range c.(*ast.CaseClause).Body {
				w.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			for _, st := range c.(*ast.CaseClause).Body {
				w.stmt(st)
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm)
			for _, st := range cc.Body {
				w.stmt(st)
			}
		}
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
						w.scanExpr(rhs)
					}
					w.setTaint(name, rhs != nil && w.taintedExpr(rhs))
				}
			}
		}
	case *ast.ExprStmt:
		w.scanExpr(s.X)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.scanExpr(r)
		}
	case *ast.DeferStmt:
		w.scanExpr(s.Call)
	case *ast.GoStmt:
		w.scanExpr(s.Call)
	case *ast.SendStmt:
		w.scanExpr(s.Chan)
		w.scanExpr(s.Value)
	case *ast.IncDecStmt:
		w.scanExpr(s.X)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	}
}

// assign updates taint for v := expr / v = expr forms and scans the RHS for
// sinks. A multi-value `v, err := source()` taints the first variable.
func (w *taintWalker) assign(s *ast.AssignStmt) {
	for _, r := range s.Rhs {
		w.scanExpr(r)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i, lhs := range s.Lhs {
			w.taintOrClear(lhs, w.taintedExpr(s.Rhs[i]))
		}
		return
	}
	if len(s.Rhs) == 1 {
		// Tuple assignment: taint the first result of a source call, leave
		// the rest (usually an error) alone.
		t := w.taintedExpr(s.Rhs[0])
		for i, lhs := range s.Lhs {
			w.taintOrClear(lhs, t && i == 0)
		}
	}
}

func (w *taintWalker) taintOrClear(lhs ast.Expr, tainted bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return // field/index writes are not tracked
	}
	w.setTaint(id, tainted)
}

func (w *taintWalker) taintLHS(e ast.Expr) {
	if e == nil {
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		w.setTaint(id, true)
	}
}

func (w *taintWalker) setTaint(id *ast.Ident, tainted bool) {
	obj := w.pass.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok {
		if tainted {
			w.tainted[v] = true
		} else {
			delete(w.tainted, v)
		}
	}
}

// ifStmt applies sanitizer semantics around an if statement's body.
func (w *taintWalker) ifStmt(s *ast.IfStmt) {
	boundedInside, boundedAfterIfExit := w.condBounds(s.Cond)

	// Variables upper-bounded by the condition are clean inside the body.
	restore := map[*types.Var]bool{}
	for _, v := range boundedInside {
		if w.tainted[v] {
			restore[v] = true
			delete(w.tainted, v)
		}
	}
	assigned := assignedVars(w.pass, s.Body)
	w.stmt(s.Body)
	for v := range restore {
		w.tainted[v] = true
	}
	w.stmt(s.Else)

	// `if n > max { return err }` and `if n > max { n = max }` both leave n
	// bounded for the rest of the function.
	if terminates(s.Body) {
		for _, v := range boundedAfterIfExit {
			delete(w.tainted, v)
		}
	}
	for _, v := range boundedAfterIfExit {
		if assigned[v] {
			delete(w.tainted, v)
		}
	}
}

// condBounds classifies the comparisons in a condition. For a comparison
// with exactly one tainted side t and one untainted side u it returns:
//
//   - boundedInside: t's variables, when the condition implies t ≤ u holds
//     in the body (t < u, t <= u, t == u and mirrored forms);
//   - boundedAfterIfExit: t's variables, when the body running means t was
//     out of bounds (t > u, t >= u, t != u and mirrored forms) — so taint
//     clears after the if only if the body exits or reassigns.
//
// Conditions joined with && / || contribute all their comparisons; this
// over-approximates sanitization slightly, which is the right direction for
// a linter gating CI.
func (w *taintWalker) condBounds(cond ast.Expr) (boundedInside, boundedAfterIfExit []*types.Var) {
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		e = ast.Unparen(e)
		be, ok := e.(*ast.BinaryExpr)
		if !ok {
			return
		}
		switch be.Op {
		case token.LAND, token.LOR:
			walk(be.X)
			walk(be.Y)
			return
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
		default:
			return
		}
		xt, yt := w.taintedExpr(be.X), w.taintedExpr(be.Y)
		if xt == yt {
			return // both tainted or neither: no bound established
		}
		tSide := be.X
		op := be.Op
		if yt {
			tSide = be.Y
			// Mirror the operator so taint is notionally on the left.
			switch op {
			case token.LSS:
				op = token.GTR
			case token.LEQ:
				op = token.GEQ
			case token.GTR:
				op = token.LSS
			case token.GEQ:
				op = token.LEQ
			}
		}
		vars := taintedVarsIn(w, tSide)
		switch op {
		case token.LSS, token.LEQ, token.EQL:
			boundedInside = append(boundedInside, vars...)
		case token.GTR, token.GEQ, token.NEQ:
			boundedAfterIfExit = append(boundedAfterIfExit, vars...)
		}
	}
	walk(cond)
	return boundedInside, boundedAfterIfExit
}

// taintedVarsIn lists the currently tainted variables referenced by e.
func taintedVarsIn(w *taintWalker, e ast.Expr) []*types.Var {
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := w.pass.Info.Uses[id].(*types.Var); ok && w.tainted[v] {
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// assignedVars collects variables assigned anywhere in a block (the clamp
// pattern `if n > max { n = max }`).
func assignedVars(pass *Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok {
					out[v] = true
				}
			}
		}
		return true
	})
	return out
}

// terminates reports whether a block's final statement exits the function
// or the enclosing loop: return, panic, break, continue, goto.
func terminates(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// taintedExpr reports whether e produces an unbounded wire-derived value.
func (w *taintWalker) taintedExpr(e ast.Expr) bool {
	if e == nil {
		return false
	}
	switch e := e.(type) {
	case *ast.Ident:
		v, ok := w.pass.Info.Uses[e].(*types.Var)
		return ok && w.tainted[v]
	case *ast.ParenExpr:
		return w.taintedExpr(e.X)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ,
			token.LAND, token.LOR:
			return false // comparisons yield bools, not sizes
		}
		return w.taintedExpr(e.X) || w.taintedExpr(e.Y)
	case *ast.UnaryExpr:
		return w.taintedExpr(e.X)
	case *ast.StarExpr:
		return w.taintedExpr(e.X)
	case *ast.SelectorExpr:
		if sel, ok := w.pass.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && w.wireFields[v] {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return w.taintedCall(e)
	}
	return false
}

// taintedCall reports whether a call (or conversion) yields wire-derived
// data: binary integer decodes, //atc:wire functions, conversions of
// tainted operands, and min/max where every operand is tainted (min against
// an untainted bound is a sanitizer).
func (w *taintWalker) taintedCall(call *ast.CallExpr) bool {
	// Conversions propagate taint: int(n), uint64(n).
	if tv, ok := w.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return w.taintedExpr(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, ok := w.pass.Info.Uses[id].(*types.Builtin); ok && (id.Name == "min" || id.Name == "max") {
			for _, a := range call.Args {
				if !w.taintedExpr(a) {
					return false
				}
			}
			return len(call.Args) > 0
		}
	}
	f := calleeFunc(w.pass.Info, call)
	if f == nil {
		return false
	}
	if w.wireFuncs[f] {
		return true
	}
	if f.Pkg() != nil && f.Pkg().Path() == "encoding/binary" {
		switch f.Name() {
		case "Uint16", "Uint32", "Uint64", "ReadUvarint", "ReadVarint":
			return true
		}
	}
	return false
}

// scanExpr hunts for sinks inside an expression tree: make sizes and
// io.CopyN limits fed by tainted values.
func (w *taintWalker) scanExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "make" {
				for _, sz := range call.Args[1:] {
					if w.taintedExpr(sz) {
						w.pass.Reportf(call.Pos(),
							"make sized by unchecked wire-derived value %s; bound it against a maximum (reject with ErrCorrupt) before allocating", exprString(w.pass, sz))
					}
				}
			}
			return true
		}
		if calleeIs(w.pass.Info, call, "io.CopyN") && len(call.Args) == 3 && w.taintedExpr(call.Args[2]) {
			w.pass.Reportf(call.Pos(),
				"io.CopyN limit is an unchecked wire-derived value %s; bound it before copying", exprString(w.pass, call.Args[2]))
		}
		return true
	})
}
