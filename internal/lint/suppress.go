package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// An ignoreSpan is one //atc:ignore directive resolved to the region it
// suppresses: the directive's own line plus the following line (for a
// directive placed above the flagged statement), or a whole function body
// when the directive sits in the function's doc comment.
type ignoreSpan struct {
	analyzers []string // analyzer names covered; never empty
	fromLine  int
	toLine    int
	file      *token.File
}

func (s ignoreSpan) covers(f *token.File, line int, analyzer string) bool {
	if f != s.file || line < s.fromLine || line > s.toLine {
		return false
	}
	for _, a := range s.analyzers {
		if a == analyzer {
			return true
		}
	}
	return false
}

// applySuppressions filters diagnostics through //atc:ignore directives and
// appends a diagnostic for every malformed or unknown-analyzer directive.
// Directive-hygiene diagnostics carry the pseudo-analyzer name "atcvet" and
// cannot themselves be ignored: a typoed suppression must fail loudly, not
// silently widen.
func applySuppressions(pkg *Package, analyzers []*Analyzer, raw []Diagnostic) []Diagnostic {
	// Directives validate against the full suite, not just the analyzers in
	// this run: a fixture or a partial run must not misreport a legitimate
	// //atc:ignore for a sibling analyzer as unknown.
	known := byName(append(Suite(), analyzers...))
	var spans []ignoreSpan
	var bad []Diagnostic

	addDirective(pkg, known, &spans, &bad)

	var kept []Diagnostic
	for _, d := range raw {
		pos := pkg.Fset.Position(d.Pos)
		f := pkg.Fset.File(d.Pos)
		suppressed := false
		for _, s := range spans {
			if s.covers(f, pos.Line, d.Analyzer) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return append(kept, bad...)
}

// addDirective scans every comment in the package for //atc:ignore
// directives, recording valid spans and reporting invalid directives.
func addDirective(pkg *Package, known map[string]*Analyzer, spans *[]ignoreSpan, bad *[]Diagnostic) {
	report := func(pos token.Pos, format string, args ...any) {
		*bad = append(*bad, Diagnostic{Analyzer: "atcvet", Pos: pos, Message: fmt.Sprintf(format, args...)})
	}
	for _, file := range pkg.Files {
		tf := pkg.Fset.File(file.Pos())
		// Function-doc directives suppress the whole body.
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, d := range parseDirectives(fn.Doc) {
				if d.name != "ignore" {
					continue
				}
				names, ok := parseIgnoreArgs(d.args, known, d.pos, report)
				if !ok {
					continue
				}
				*spans = append(*spans, ignoreSpan{
					analyzers: names,
					fromLine:  tf.Line(fn.Pos()),
					toLine:    tf.Line(fn.End()),
					file:      tf,
				})
			}
		}
		// Line directives suppress their own line and the next one.
		for _, cg := range file.Comments {
			for _, d := range parseDirectives(cg) {
				if d.name != "ignore" {
					continue
				}
				if inFuncDoc(file, d.pos) {
					continue // handled above as a whole-function span
				}
				names, ok := parseIgnoreArgs(d.args, known, d.pos, report)
				if !ok {
					continue
				}
				line := tf.Line(d.pos)
				*spans = append(*spans, ignoreSpan{
					analyzers: names,
					fromLine:  line,
					toLine:    line + 1,
					file:      tf,
				})
			}
		}
	}
}

// parseIgnoreArgs validates "analyzer[,analyzer...] reason" directive
// arguments. Both an unknown analyzer name and a missing reason invalidate
// the directive.
func parseIgnoreArgs(args string, known map[string]*Analyzer, pos token.Pos, report func(token.Pos, string, ...any)) ([]string, bool) {
	list, reason, _ := strings.Cut(args, " ")
	if list == "" {
		report(pos, "//atc:ignore needs an analyzer name and a reason")
		return nil, false
	}
	names := strings.Split(list, ",")
	for _, n := range names {
		if _, ok := known[n]; !ok {
			report(pos, "//atc:ignore names unknown analyzer %q", n)
			return nil, false
		}
	}
	if strings.TrimSpace(reason) == "" {
		report(pos, "//atc:ignore %s has no reason; explain the exception", list)
		return nil, false
	}
	return names, true
}

// inFuncDoc reports whether pos falls inside some function's doc comment.
func inFuncDoc(file *ast.File, pos token.Pos) bool {
	for _, decl := range file.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Doc != nil {
			if pos >= fn.Doc.Pos() && pos <= fn.Doc.End() {
				return true
			}
		}
	}
	return false
}
