package lint

import (
	"go/ast"
	"go/types"
)

// HotAllocAnalyzer keeps the annotated hot paths allocation-free. PR 5's
// benchmarks made "zero allocations per address" a load-bearing property of
// the encode front end (ComputeInto, AddSlice, CodeSlice, Table.Match) and
// the batched decode producers (ReadSlice, the span batchers); this
// analyzer stops the property rotting silently.
//
// A function opts in with //atc:hotpath in its doc comment. Inside one, the
// analyzer flags the allocating constructs:
//
//   - make/new and &composite literals, unless inside an init-once guard
//     (an if whose condition tests nil, cap() or len() — the "grow only
//     when too small" idiom);
//   - any call into package fmt (Sprintf and friends allocate their
//     result, and every operand is boxed);
//   - function literals (closures capture and escape);
//   - append calls whose destination is not an explicit reslice
//     (x[:0], x[:n]) — appends that may grow need a capacity proof, which
//     the analyzer cannot see, so they carry an //atc:ignore with the
//     proof as the reason;
//   - string<->[]byte conversions (they copy);
//   - implicit conversions of non-pointer concrete values to interface
//     parameters (boxing).
var HotAllocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc: "//atc:hotpath functions must not allocate: no make/new outside " +
		"init-once guards, no fmt calls, no closures, no growing append, no boxing",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	eachFuncDecl(pass.Files, func(_ *ast.File, fn *ast.FuncDecl) {
		if _, hot := funcHasDirective(fn, "hotpath"); !hot {
			return
		}
		h := &hotWalker{pass: pass}
		h.walk(fn.Body, false)
	})
	return nil
}

type hotWalker struct {
	pass *Pass
}

// walk visits nodes; guarded reports whether an ancestor if-condition
// establishes an init-once context (nil/cap/len test), which excuses
// make/new.
func (h *hotWalker) walk(n ast.Node, guarded bool) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.IfStmt:
		h.walkExpr(n.Cond, guarded)
		g := guarded || initOnceCond(n.Cond)
		h.walk(n.Init, guarded)
		h.walk(n.Body, g)
		h.walk(n.Else, g)
		return
	case *ast.BlockStmt:
		for _, st := range n.List {
			h.walk(st, guarded)
		}
		return
	case *ast.ForStmt:
		h.walk(n.Init, guarded)
		h.walkExpr(n.Cond, guarded)
		h.walk(n.Post, guarded)
		h.walk(n.Body, guarded)
		return
	case *ast.RangeStmt:
		h.walkExpr(n.X, guarded)
		h.walk(n.Body, guarded)
		return
	case *ast.SwitchStmt:
		h.walk(n.Init, guarded)
		h.walkExpr(n.Tag, guarded)
		for _, c := range n.Body.List {
			for _, st := range c.(*ast.CaseClause).Body {
				h.walk(st, guarded)
			}
		}
		return
	case *ast.TypeSwitchStmt:
		h.walk(n.Init, guarded)
		h.walk(n.Assign, guarded)
		for _, c := range n.Body.List {
			for _, st := range c.(*ast.CaseClause).Body {
				h.walk(st, guarded)
			}
		}
		return
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			cc := c.(*ast.CommClause)
			h.walk(cc.Comm, guarded)
			for _, st := range cc.Body {
				h.walk(st, guarded)
			}
		}
		return
	case *ast.AssignStmt:
		for _, e := range n.Rhs {
			h.walkExpr(e, guarded)
		}
		for _, e := range n.Lhs {
			h.walkExpr(e, guarded)
		}
		return
	case *ast.ExprStmt:
		h.walkExpr(n.X, guarded)
		return
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			h.walkExpr(e, guarded)
		}
		return
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						h.walkExpr(v, guarded)
					}
				}
			}
		}
		return
	case *ast.DeferStmt:
		h.walkExpr(n.Call, guarded)
		return
	case *ast.GoStmt:
		h.pass.Reportf(n.Pos(), "hot path spawns a goroutine; move concurrency setup out of the hot loop")
		h.walkExpr(n.Call, guarded)
		return
	case *ast.SendStmt:
		h.walkExpr(n.Chan, guarded)
		h.walkExpr(n.Value, guarded)
		return
	case *ast.LabeledStmt:
		h.walk(n.Stmt, guarded)
		return
	case ast.Stmt:
		return
	}
}

// walkExpr flags allocating constructs inside one expression.
func (h *hotWalker) walkExpr(e ast.Expr, guarded bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.pass.Reportf(n.Pos(), "hot path builds a closure; closures capture and allocate")
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "&" {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && !guarded {
					h.pass.Reportf(n.Pos(), "hot path allocates via &composite literal outside an init-once guard")
				}
			}
		case *ast.CallExpr:
			h.checkCall(n, guarded)
		}
		return true
	})
}

func (h *hotWalker) checkCall(call *ast.CallExpr, guarded bool) {
	info := h.pass.Info
	// Conversions: string <-> []byte copy.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if isStringByteConversion(info, call) {
			h.pass.Reportf(call.Pos(), "hot path converts between string and []byte, which copies")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				if !guarded {
					h.pass.Reportf(call.Pos(), "hot path calls %s outside an init-once guard (if x == nil / if cap(x) < n)", id.Name)
				}
			case "append":
				if len(call.Args) > 0 {
					if _, reslice := ast.Unparen(call.Args[0]).(*ast.SliceExpr); !reslice && !guarded {
						h.pass.Reportf(call.Pos(), "hot path append may grow its backing array; reslice (x[:0]) or record a capacity proof in an //atc:ignore reason")
					}
				}
			}
			return
		}
	}
	f := calleeFunc(info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		h.pass.Reportf(call.Pos(), "hot path calls fmt.%s, which allocates", f.Name())
		return
	}
	h.checkBoxing(call)
}

// checkBoxing flags arguments whose concrete non-pointer values convert
// implicitly to interface parameters — each such call boxes the value.
func (h *hotWalker) checkBoxing(call *ast.CallExpr) {
	info := h.pass.Info
	sigTV, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := sigTV.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			st, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = st.Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at, ok := info.Types[arg]
		if !ok || at.IsNil() {
			continue
		}
		switch at.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // no boxing: already a pointer-shaped value
		}
		h.pass.Reportf(arg.Pos(), "hot path boxes %s into an interface argument", exprString(h.pass, arg))
	}
}

// isStringByteConversion reports a string([]byte) or []byte(string)
// conversion.
func isStringByteConversion(info *types.Info, call *ast.CallExpr) bool {
	to, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	from, ok := info.Types[call.Args[0]]
	if !ok {
		return false
	}
	return (isString(to.Type) && isByteSlice(from.Type)) || (isByteSlice(to.Type) && isString(from.Type))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// initOnceCond reports whether an if condition is an init-once guard: it
// mentions nil or calls cap()/len(), the "allocate only when missing or too
// small" idiom.
func initOnceCond(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "nil" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				found = true
			}
		}
		return !found
	})
	return found
}
