package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ErrCorruptAnalyzer enforces the decoder's total failure surface: on the
// decode path every constructed error must wrap a sentinel with %w — usually
// store.ErrCorrupt, or a client-error sentinel like core.ErrOutOfRange — so
// callers can classify failures with errors.Is. A bare errors.New or a
// fmt.Errorf without %w on the decode path turns hostile input into an
// unclassifiable error, which is how corrupt traces become wrong answers
// instead of refused ones.
var ErrCorruptAnalyzer = &Analyzer{
	Name: "errcorrupt",
	Doc: "decode-path errors must wrap a sentinel: flag errors.New and " +
		"fmt.Errorf without %w in functions on the untrusted-input decode path",
	Run: runErrCorrupt,
}

// decodePathPkgs are import-path suffixes whose decode-ish functions are in
// scope without annotation. Everything else opts in with //atc:decodepath.
var decodePathPkgs = []string{
	"internal/core",
	"internal/store",
	"internal/bytesort",
	"internal/bitio",
	"internal/vpc",
	"internal/huffman",
	"internal/bwt",
	"internal/mtf",
	"internal/bsc",
	"internal/xcompress",
}

// decodeNameRe matches function names that parse or decode wire data:
// readers, decoders, openers, parsers, seekers and the materialize/load
// family the chunk cache uses. Encode-side code (Code, Write, Compress) is
// deliberately out of scope — its errors describe local I/O, not hostile
// input.
var decodeNameRe = regexp.MustCompile(`^(Read|read|Decode|decode|Parse|parse|Open|open|Seek|seek|Load|load|Next|next|Inverse|inverse|Materialize|materialize|Unpack|unpack|Uncompress|uncompress|Decompress|decompress|Peek|peek|Lookup)`)

// onDecodePath reports whether fn is in errcorrupt/untrustedlen scope.
func onDecodePath(pkgPath string, fn *ast.FuncDecl) bool {
	if _, ok := funcHasDirective(fn, "decodepath"); ok {
		return true
	}
	for _, suffix := range decodePathPkgs {
		if strings.HasSuffix(pkgPath, suffix) {
			return decodeNameRe.MatchString(fn.Name.Name)
		}
	}
	return false
}

func runErrCorrupt(pass *Pass) error {
	eachFuncDecl(pass.Files, func(_ *ast.File, fn *ast.FuncDecl) {
		if !onDecodePath(pass.Pkg.Path(), fn) {
			return
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case calleeIs(pass.Info, call, "errors.New"):
				pass.Reportf(call.Pos(),
					"decode-path error does not wrap a sentinel: use fmt.Errorf(\"%%w: ...\", store.ErrCorrupt) so errors.Is can classify it")
			case calleeIs(pass.Info, call, "fmt.Errorf"):
				checkErrorf(pass, call)
			}
			return true
		})
	})
	return nil
}

// checkErrorf verifies a decode-path fmt.Errorf wraps something: the format
// must be a string literal containing %w, and the %w operand must not itself
// be a freshly built errors.New (wrapping a throwaway error is the same hole
// with extra steps).
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		pass.Reportf(call.Pos(), "decode-path fmt.Errorf has a non-literal format; cannot verify it wraps a sentinel (%%w)")
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	idx := wrapVerbIndexes(format)
	if len(idx) == 0 {
		pass.Reportf(call.Pos(), "decode-path fmt.Errorf does not wrap a sentinel: no %%w in format %s", lit.Value)
		return
	}
	for _, i := range idx {
		if i+1 >= len(call.Args) {
			continue // fmt vet territory: missing operand
		}
		if inner, ok := ast.Unparen(call.Args[i+1]).(*ast.CallExpr); ok && calleeIs(pass.Info, inner, "errors.New") {
			pass.Reportf(call.Pos(), "decode-path fmt.Errorf wraps a fresh errors.New, not a shared sentinel")
		}
	}
}

// wrapVerbIndexes returns the operand indexes (0-based) of every %w verb in
// a Printf-style format string.
func wrapVerbIndexes(format string) []int {
	var out []int
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		if i+1 >= len(format) {
			break
		}
		i++
		if format[i] == '%' {
			continue
		}
		// Skip flags, width and precision to reach the verb.
		for i < len(format) && strings.ContainsRune("+-# 0123456789.", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == 'w' {
			out = append(out, arg)
		}
		arg++
	}
	return out
}
