// Package untrustedlen is the fixture for the untrustedlen analyzer:
// wire-derived sizes must be bounded before they size an allocation.
package untrustedlen

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt mirrors store.ErrCorrupt for the fixture.
var ErrCorrupt = errors.New("corrupt")

const maxCount = 1 << 20

// readUnbounded trusts a 4-byte header to size an allocation.
//
//atc:decodepath
func readUnbounded(r io.Reader, hdr []byte) ([]byte, error) {
	n := int(binary.LittleEndian.Uint32(hdr))
	buf := make([]byte, n) // want `unchecked wire-derived value n`
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// readScaled hides the tainted count inside an arithmetic expression and a
// grow guard — the guard lower-bounds the allocation, it does not bound the
// wire value.
//
//atc:decodepath
func readScaled(hdr []byte, scratch []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	if cap(scratch) < 8*n {
		scratch = make([]byte, 8*n) // want `unchecked wire-derived value 8 \* n`
	}
	return scratch[:8*n]
}

// readGuarded bounds the count first: clean.
//
//atc:decodepath
func readGuarded(r io.Reader, hdr []byte) ([]byte, error) {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > maxCount {
		return nil, fmt.Errorf("%w: implausible count %d", ErrCorrupt, n)
	}
	buf := make([]byte, n)
	_, err := io.ReadFull(r, buf)
	return buf, err
}

// readClamped uses the clamp idiom: clean.
//
//atc:decodepath
func readClamped(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n > maxCount {
		n = maxCount
	}
	return make([]byte, n)
}

// readMinClamp bounds through the min builtin: clean.
//
//atc:decodepath
func readMinClamp(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	return make([]byte, min(n, maxCount))
}

// readPinned is bounded by an equality pin that exits on mismatch: clean.
//
//atc:decodepath
func readPinned(hdr []byte, payload []byte) ([]byte, error) {
	n := int(binary.LittleEndian.Uint32(hdr))
	if n != len(payload) {
		return nil, fmt.Errorf("%w: count %d does not match payload %d", ErrCorrupt, n, len(payload))
	}
	out := make([]byte, n)
	copy(out, payload)
	return out, nil
}

// wireCount models core's readCount helper: its result is declared
// wire-derived, so callers must bound it themselves.
//
//atc:wire
func wireCount(r io.ByteReader) (int64, error) {
	v, err := binary.ReadUvarint(r)
	return int64(v), err
}

// useWireFunc consumes an //atc:wire function without a bound.
//
//atc:decodepath
func useWireFunc(r io.ByteReader) ([]byte, error) {
	n, err := wireCount(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // want `unchecked wire-derived value n`
}

// header models a decoded struct with an annotated wire field.
type header struct {
	total int64 //atc:wire
}

// decodePrealloc sizes a slice straight from the wire field.
//
//atc:decodepath
func (h *header) decodePrealloc() []uint64 {
	return make([]uint64, 0, h.total) // want `unchecked wire-derived value h\.total`
}

// decodeBounded clamps the field first: clean.
//
//atc:decodepath
func (h *header) decodeBounded() []uint64 {
	n := h.total
	if n > maxCount {
		n = maxCount
	}
	return make([]uint64, 0, n)
}

// readSuppressed records its exception: the suppression round-trip.
//
//atc:decodepath
func readSuppressed(hdr []byte) []byte {
	n := int(binary.LittleEndian.Uint32(hdr))
	//atc:ignore untrustedlen header produced by this process moments earlier, not wire input
	return make([]byte, n)
}
