// Package errcorrupt is the analysistest-style fixture for the errcorrupt
// analyzer. It compiles but deliberately violates the decode-path error
// convention; flagged lines carry want comments.
package errcorrupt

import (
	"errors"
	"fmt"
)

// ErrCorrupt mirrors store.ErrCorrupt for the fixture.
var ErrCorrupt = errors.New("corrupt")

// parseHeader is on the decode path by annotation and constructs errors
// every wrong way.
//
//atc:decodepath
func parseHeader(b []byte) error {
	if len(b) < 4 {
		return errors.New("short header") // want `does not wrap a sentinel`
	}
	if b[0] != 'A' {
		return fmt.Errorf("bad magic %q", b[0]) // want `no %w in format`
	}
	if b[1] == 0 {
		return fmt.Errorf("%w: zero version", errors.New("boom")) // want `wraps a fresh errors.New` `does not wrap a sentinel`
	}
	return nil
}

// parseNonLiteral cannot be verified: the format string is computed.
//
//atc:decodepath
func parseNonLiteral(b []byte, format string) error {
	if len(b) == 0 {
		return fmt.Errorf(format, len(b)) // want `non-literal format`
	}
	return nil
}

// decodeClean wraps the sentinel and propagates wrapped errors: no
// diagnostics.
//
//atc:decodepath
func decodeClean(b []byte) error {
	if len(b) < 2 {
		return fmt.Errorf("%w: truncated at %d bytes", ErrCorrupt, len(b))
	}
	if err := parseHeader(b); err != nil {
		return fmt.Errorf("header: %w", err)
	}
	return nil
}

// buildReport is not on the decode path: bare errors are fine here.
func buildReport() error {
	return errors.New("no trace configured")
}

// parseLegacy demonstrates the suppression round-trip: the violation is
// acknowledged with a reason.
//
//atc:decodepath
func parseLegacy(b []byte) error {
	if len(b) == 0 {
		//atc:ignore errcorrupt seed-format reader; caller wraps ErrCorrupt at the trace layer
		return errors.New("legacy empty input")
	}
	return nil
}
