// Package poolreturn is the fixture for the poolreturn analyzer: a value
// from a pool getter must reach the matching put on every path.
package poolreturn

import (
	"errors"
	"io"
	"sync"
)

var errBoom = errors.New("boom")

// freeList is a bounded free list in the style of the decoder's batch
// buffers.
type freeList struct{ ch chan []byte }

// get takes a buffer from the free list, or allocates.
//
//atc:pool put=put
func (f *freeList) get() []byte {
	select {
	case b := <-f.ch:
		return b[:0]
	default:
		return make([]byte, 0, 64)
	}
}

// put returns a buffer to the free list.
func (f *freeList) put(b []byte) {
	select {
	case f.ch <- b:
	default:
	}
}

// leakyEarlyReturn drops the buffer on the error path.
func leakyEarlyReturn(f *freeList, fail bool) error {
	buf := f.get()
	if fail {
		return errBoom // want `return without releasing buf`
	}
	f.put(buf)
	return nil
}

// deferredPut releases on every path via defer: clean.
func deferredPut(f *freeList, fail bool) error {
	buf := f.get()
	defer f.put(buf)
	if fail {
		return errBoom
	}
	return nil
}

// transferred hands the buffer to another function, which takes ownership:
// clean by the analyzer's transfer rule.
func transferred(f *freeList, w io.Writer) error {
	buf := f.get()
	if _, err := w.Write(buf); err != nil {
		return err
	}
	f.put(buf)
	return nil
}

// returned escapes the buffer to the caller: clean.
func returned(f *freeList) []byte {
	return f.get()
}

var bufPool sync.Pool

// syncPoolLeak drops a sync.Pool value on the error path — the native
// Get/Put pairing needs no annotation.
func syncPoolLeak(fail bool) error {
	x := bufPool.Get()
	if fail {
		return errBoom // want `missing Put on this path`
	}
	bufPool.Put(x)
	return nil
}

// acknowledgedDrop records why the buffer is dropped.
func acknowledgedDrop(f *freeList, fail bool) error {
	buf := f.get()
	if fail {
		//atc:ignore poolreturn dropped deliberately: the free list refills from steady state and failure is terminal
		return errBoom
	}
	f.put(buf)
	return nil
}
