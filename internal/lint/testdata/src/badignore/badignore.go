// Package badignore exercises directive hygiene: a typoed or reasonless
// //atc:ignore must fail loudly instead of silently suppressing nothing.
// suppress_test asserts on the raw diagnostics rather than want comments,
// since the findings land on the directive lines themselves.
package badignore

import "errors"

// parseTypo names an analyzer that does not exist: the directive is
// rejected and the finding it meant to cover still fires.
//
//atc:decodepath
func parseTypo(b []byte) error {
	if len(b) == 0 {
		//atc:ignore errcorupt misspelled analyzer name
		return errors.New("empty")
	}
	return nil
}

// parseNoReason omits the mandatory reason.
//
//atc:decodepath
func parseNoReason(b []byte) error {
	if len(b) == 0 {
		//atc:ignore errcorrupt
		return errors.New("empty")
	}
	return nil
}

// parseValid round-trips a correct suppression: no diagnostics at all.
//
//atc:decodepath
func parseValid(b []byte) error {
	if len(b) == 0 {
		//atc:ignore errcorrupt fixture exercising the happy path of suppression
		return errors.New("empty")
	}
	return nil
}

// parseFuncWide suppresses for the whole function from the doc comment.
//
//atc:decodepath
//atc:ignore errcorrupt seed-era parser kept verbatim for golden-trace compatibility
func parseFuncWide(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty")
	}
	return errors.New("tail")
}
