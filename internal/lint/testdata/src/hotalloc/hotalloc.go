// Package hotalloc is the fixture for the hotalloc analyzer: functions
// annotated //atc:hotpath must not allocate.
package hotalloc

import "fmt"

type state struct {
	buf     []byte
	scratch []uint64
}

func sink(x any) { _ = x }

// Accumulate is a clean hot loop: arithmetic, indexing, no allocation.
//
//atc:hotpath
func (s *state) Accumulate(addrs []uint64) uint64 {
	var total uint64
	for _, a := range addrs {
		total += a & 0xff
	}
	return total
}

// Describe allocates every way the analyzer knows about.
//
//atc:hotpath
func (s *state) Describe(n int) string {
	tmp := make([]byte, n) // want `calls make outside an init-once guard`
	_ = tmp
	return fmt.Sprintf("%d", n) // want `calls fmt.Sprintf, which allocates`
}

// Grow allocates only under a capacity guard: clean.
//
//atc:hotpath
func (s *state) Grow(n int) {
	if cap(s.buf) < n {
		s.buf = make([]byte, n)
	}
	s.buf = s.buf[:n]
}

// Lazily allocates under a nil guard: clean.
//
//atc:hotpath
func (s *state) Lazily() {
	if s.scratch == nil {
		s.scratch = make([]uint64, 16)
	}
}

// AppendGrow may grow its backing array.
//
//atc:hotpath
func AppendGrow(xs []uint64, v uint64) []uint64 {
	return append(xs, v) // want `append may grow its backing array`
}

// AppendReuse reslices to zero first: clean.
//
//atc:hotpath
func (s *state) AppendReuse(v uint64) {
	s.scratch = append(s.scratch[:0], v)
}

// MakeClosure captures and escapes.
//
//atc:hotpath
func MakeClosure(n int) func() int {
	return func() int { return n } // want `builds a closure`
}

// Box converts a concrete value to an interface argument.
//
//atc:hotpath
func Box(v uint64) {
	sink(v) // want `boxes v into an interface argument`
}

// Stringify copies through a string conversion.
//
//atc:hotpath
func Stringify(b []byte) string {
	return string(b) // want `converts between string and \[\]byte`
}

// AppendProved carries its capacity proof in the suppression reason.
//
//atc:hotpath
func (s *state) AppendProved(v uint64) {
	//atc:ignore hotalloc scratch is preallocated to interval capacity by the constructor
	s.scratch = append(s.scratch, v)
}

// cold is unannotated: allocations are fine.
func cold(n int) []byte {
	return append(make([]byte, 0, n), fmt.Sprintf("%d", n)...)
}
