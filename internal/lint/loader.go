package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// A Package is one type-checked package ready for analysis.
type Package struct {
	Path  string // import path
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// LoadPatterns loads and type-checks the packages matching the given `go
// list` patterns, rooted at dir. It shells out to `go list -export -deps
// -json`, which both resolves the patterns and has the compiler produce
// export data for every dependency — the same artifacts a `go vet` driver
// hands a vettool — then parses and type-checks only the matched packages
// themselves. This keeps the loader dependency-free: no go/packages, just
// the go command plus the stdlib importer.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json=Dir,ImportPath,Name,GoFiles,Export,DepOnly,Standard,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		listed = append(listed, lp)
	}

	// Export data for every listed package (targets and deps alike) feeds
	// one shared importer, so a target importing a sibling target resolves
	// from the same map.
	exports := make(map[string]string)
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}
	fset := token.NewFileSet()
	imp := newExportImporter(fset, exports, nil)

	var pkgs []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := TypeCheckFiles(fset, lp.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// VetImporter returns the importer a `go vet -vettool` backend needs:
// packageFile maps package paths to gc export-data files (vet's PackageFile
// field) and importMap translates source-level import paths first (vet's
// vendor-resolution ImportMap; may be nil).
func VetImporter(fset *token.FileSet, packageFile, importMap map[string]string) types.Importer {
	return newExportImporter(fset, packageFile, importMap)
}

// newExportImporter returns a types.Importer that resolves import paths
// through importMap (vet's vendor-resolution map; may be nil) and reads gc
// export data from the files named in exports.
func newExportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	return mappedImporter{imp: gc, importMap: importMap}
}

// mappedImporter applies an import-path translation map (as supplied by the
// go vet driver for vendored builds) in front of another importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

// TypeCheckFiles parses and type-checks one package from its file list.
// Imports resolve through imp; parse or type errors abort the load, since
// analyzers assume complete type information.
func TypeCheckFiles(fset *token.FileSet, path string, filenames []string, imp types.Importer) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
