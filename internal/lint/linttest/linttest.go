// Package linttest is the fixture harness for the atcvet analyzers — the
// stdlib stand-in for golang.org/x/tools/go/analysis/analysistest. A
// fixture is an ordinary compilable package under internal/lint/testdata;
// lines that should be flagged carry a trailing
//
//	// want `regexp` [`regexp` ...]
//
// comment. Run loads the fixture with the same go-list loader the atcvet
// driver uses, applies the analyzers, and fails the test on any diagnostic
// without a matching want (or want without a matching diagnostic).
package linttest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"atc/internal/lint"
)

// wantRe extracts the backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

type expectation struct {
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package rooted at dir (relative paths resolve from
// the test's working directory) and checks analyzers' diagnostics against
// the fixture's want comments.
func Run(t *testing.T, dir string, analyzers ...*lint.Analyzer) {
	t.Helper()
	pkgs, err := lint.LoadPatterns(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	diags, err := lint.RunPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", dir, err)
	}

	wants := collectWants(t, pkg)

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// collectWants parses every `// want ...` comment into per-line
// expectations.
func collectWants(t *testing.T, pkg *lint.Package) map[string][]*expectation {
	t.Helper()
	wants := map[string][]*expectation{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q (patterns must be backquoted)", key, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], &expectation{re: re, raw: m[1]})
				}
			}
		}
	}
	return wants
}

// Diagnostics runs analyzers over one fixture and returns the rendered
// "file:line:col: [analyzer] message" lines — for tests asserting on raw
// output rather than want comments.
func Diagnostics(t *testing.T, dir string, analyzers ...*lint.Analyzer) []string {
	t.Helper()
	pkgs, err := lint.LoadPatterns(dir, ".")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	var out []string
	for _, pkg := range pkgs {
		diags, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			t.Fatalf("running analyzers on %s: %v", dir, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Analyzer, d.Message))
		}
	}
	return out
}
