package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PoolReturnAnalyzer enforces the PR 3/5 buffer-recycling discipline: a
// value obtained from a free-list or pool getter must reach the matching
// put on every path out of the function — including early error returns,
// which is where the discipline historically leaks.
//
// Getters are recognized two ways: sync.Pool's Get method, and any
// function or method annotated
//
//	//atc:pool put=<name>
//
// where <name> is the matching put (a method on the same receiver type, or
// a package function). After `x := getter()`, each return statement is
// checked in source order; the value counts as released once it was passed
// to the put, deferred to it, returned, sent on a channel, stored into a
// field/map/global, or handed to any other function (ownership transfer —
// the analysis is intra-procedural and trusts the callee). A return
// reached while x is still held is reported.
var PoolReturnAnalyzer = &Analyzer{
	Name: "poolreturn",
	Doc: "pool/free-list Gets must reach their Put on every path out of " +
		"the function, including error returns",
	Run: runPoolReturn,
}

func runPoolReturn(pass *Pass) error {
	getters := collectPoolGetters(pass)
	eachFuncDecl(pass.Files, func(_ *ast.File, fn *ast.FuncDecl) {
		checkPoolUse(pass, fn, getters)
	})
	return nil
}

// collectPoolGetters maps annotated getter functions to their declared put
// names.
func collectPoolGetters(pass *Pass) map[*types.Func]string {
	out := map[*types.Func]string{}
	eachFuncDecl(pass.Files, func(_ *ast.File, fn *ast.FuncDecl) {
		args, ok := funcHasDirective(fn, "pool")
		if !ok {
			return
		}
		putName := ""
		for _, field := range strings.Fields(args) {
			if v, found := strings.CutPrefix(field, "put="); found {
				putName = v
			}
		}
		if putName == "" {
			pass.Reportf(fn.Pos(), "//atc:pool directive needs put=<name>")
			return
		}
		if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
			out[obj] = putName
		}
	})
	return out
}

// poolAcquire is one tracked `x := getter()` acquisition.
type poolAcquire struct {
	v        *types.Var // the acquired value
	putName  string     // releasing call name
	released bool
}

// checkPoolUse walks one function in source order, tracking acquisitions
// and verifying each return.
func checkPoolUse(pass *Pass, fn *ast.FuncDecl, getters map[*types.Func]string) {
	var acquired []*poolAcquire

	release := func(v *types.Var) {
		for _, a := range acquired {
			if a.v == v {
				a.released = true
			}
		}
	}

	// exprVars lists the tracked variables referenced in e.
	exprVars := func(e ast.Expr) []*types.Var {
		var out []*types.Var
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := pass.Info.Uses[id].(*types.Var); ok {
					for _, a := range acquired {
						if a.v == v {
							out = append(out, v)
						}
					}
				}
			}
			return true
		})
		return out
	}

	// handleCall releases values that flow into any call: either the
	// matching put, or an ownership transfer to another function.
	handleCall := func(call *ast.CallExpr) {
		if isBuiltinCall(pass.Info, call) {
			return // len/cap/append of the value is not a transfer
		}
		for _, arg := range call.Args {
			for _, v := range exprVars(arg) {
				release(v)
			}
		}
		// Method puts with the value as receiver argument (rare) need no
		// special case: the value appears in Args or not at all.
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// x := getter(...)
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if putName, ok := getterPut(pass.Info, call, getters); ok && len(n.Lhs) >= 1 {
						if id, ok := ast.Unparen(n.Lhs[0]).(*ast.Ident); ok {
							if v, ok := objOf(pass.Info, id).(*types.Var); ok {
								acquired = append(acquired, &poolAcquire{v: v, putName: putName})
								return true
							}
						}
						// Result dropped or stored into a field: out of
						// scope for the tracker (fields persist past the
						// function).
					}
				}
			}
			// Storing a tracked value into a field/map/global escapes it.
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if _, isIdent := ast.Unparen(n.Lhs[i]).(*ast.Ident); !isIdent {
					for _, v := range exprVars(rhs) {
						release(v)
					}
				}
			}
		case *ast.CallExpr:
			handleCall(n)
		case *ast.SendStmt:
			for _, v := range exprVars(n.Value) {
				release(v)
			}
		case *ast.DeferStmt:
			handleCall(n.Call)
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				for _, v := range exprVars(r) {
					release(v)
				}
			}
			for _, a := range acquired {
				if !a.released {
					pass.Reportf(n.Pos(),
						"return without releasing %s to the pool (missing %s on this path)", a.v.Name(), a.putName)
				}
			}
		}
		return true
	})
}

// getterPut resolves the put name when call invokes a recognized getter.
func getterPut(info *types.Info, call *ast.CallExpr, getters map[*types.Func]string) (string, bool) {
	f := calleeFunc(info, call)
	if f == nil {
		return "", false
	}
	if name, ok := getters[f]; ok {
		return name, true
	}
	// sync.Pool.Get pairs with Put natively.
	if f.Name() == "Get" && f.Pkg() != nil && f.Pkg().Path() == "sync" {
		if recv := f.Signature().Recv(); recv != nil {
			if named, ok := derefType(recv.Type()).(*types.Named); ok && named.Obj().Name() == "Pool" {
				return "Put", true
			}
		}
	}
	return "", false
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func isBuiltinCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}
