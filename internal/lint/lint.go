// Package lint implements atcvet, the repo's static-analysis suite.
//
// PRs 2–5 built three load-bearing conventions that nothing machine-checked:
// every error on an untrusted-input decode path wraps store.ErrCorrupt, every
// length or count parsed from the wire is bounds-checked before it sizes an
// allocation, and the encode/decode hot paths stay allocation-free with
// pooled buffers returned on all paths. This package turns each convention
// into an analyzer:
//
//   - errcorrupt   — decode-path errors must wrap a sentinel (%w)
//   - untrustedlen — wire-derived sizes must be bounded before make/alloc
//   - hotalloc     — //atc:hotpath functions must not allocate
//   - poolreturn   — pool/free-list Gets must reach their Put on every path
//
// The framework deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Diagnostic) but is built on the standard library only —
// the module has no external dependencies, and the analyses here are all
// intra-package, which the stdlib type checker covers. cmd/atcvet drives the
// suite either standalone (loading packages via `go list -export`) or as a
// `go vet -vettool` backend speaking the vet config-file protocol.
//
// Findings are suppressed per line or per function with
//
//	//atc:ignore <analyzer>[,<analyzer>...] <reason>
//
// where the reason is mandatory: an exception without a recorded "why" is
// exactly the silent convention-drift the suite exists to stop.
package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis and its entry point.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //atc:ignore
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package and a
// sink for its diagnostics — the stdlib-shaped subset of analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Suite is the full atcvet analyzer set, in reporting order.
func Suite() []*Analyzer {
	return []*Analyzer{ErrCorruptAnalyzer, UntrustedLenAnalyzer, HotAllocAnalyzer, PoolReturnAnalyzer}
}

// byName maps analyzer names for directive validation.
func byName(as []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(as))
	for _, a := range as {
		m[a.Name] = a
	}
	return m
}

// RunPackage applies analyzers to one loaded package and returns the
// surviving diagnostics sorted by position: suppressions (//atc:ignore) are
// applied, and a malformed or unknown-analyzer directive is itself reported
// as a diagnostic from the "atcvet" pseudo-analyzer so a typo cannot
// silently disable a gate.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var raw []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			report:   func(d Diagnostic) { raw = append(raw, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	kept := applySuppressions(pkg, analyzers, raw)
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// A directive is one parsed //atc:<name> comment.
type directive struct {
	name string // "ignore", "hotpath", "decodepath", "pool", "wire"
	args string // raw text after the name, space-trimmed
	pos  token.Pos
}

// parseDirectives extracts //atc: directives from a comment group.
func parseDirectives(cg *ast.CommentGroup) []directive {
	if cg == nil {
		return nil
	}
	var out []directive
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//atc:")
		if !ok {
			continue
		}
		name, args, _ := strings.Cut(text, " ")
		out = append(out, directive{name: name, args: strings.TrimSpace(args), pos: c.Pos()})
	}
	return out
}

// funcHasDirective reports whether fn's doc comment carries the named
// directive, returning its arguments.
func funcHasDirective(fn *ast.FuncDecl, name string) (string, bool) {
	for _, d := range parseDirectives(fn.Doc) {
		if d.name == name {
			return d.args, true
		}
	}
	return "", false
}

// eachFuncDecl visits every function declaration with a body.
func eachFuncDecl(files []*ast.File, f func(file *ast.File, fn *ast.FuncDecl)) {
	for _, file := range files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				f(file, fn)
			}
		}
	}
}

// calleeFunc resolves the called function object, or nil for builtins,
// conversions and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// calleeIs reports whether call invokes the function with the given
// fully-qualified name, e.g. "errors.New" or "fmt.Errorf".
func calleeIs(info *types.Info, call *ast.CallExpr, full string) bool {
	f := calleeFunc(info, call)
	return f != nil && f.FullName() == full
}

// exprString renders an expression for a diagnostic message.
func exprString(p *Pass, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, p.Fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}
