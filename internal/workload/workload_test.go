package workload

import (
	"sort"
	"testing"

	"atc/internal/cachefilter"
	"atc/internal/trace"
)

func TestModelsCount(t *testing.T) {
	if len(Models()) != 22 {
		t.Fatalf("have %d models, want 22 (the paper's SPEC subset)", len(Models()))
	}
}

func TestModelNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Models() {
		if seen[m.Name] {
			t.Fatalf("duplicate model %q", m.Name)
		}
		seen[m.Name] = true
		if m.Description == "" {
			t.Errorf("model %q lacks a description", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("429.mcf"); !ok {
		t.Fatal("full-name lookup failed")
	}
	if m, ok := ByName("429"); !ok || m.Name != "429.mcf" {
		t.Fatal("prefix lookup failed")
	}
	if _, ok := ByName("999.nothing"); ok {
		t.Fatal("bogus lookup succeeded")
	}
}

func TestDeterminism(t *testing.T) {
	a, err := GenerateFiltered("462.libquantum", 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFiltered("462.libquantum", 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c, err := GenerateFiltered("462.libquantum", 5000, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestAllModelsProduceTraces(t *testing.T) {
	const n = 3000
	for _, m := range Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			addrs, err := GenerateFiltered(m.Name, n, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(addrs) != n {
				t.Fatalf("got %d filtered addresses", len(addrs))
			}
			s := trace.ComputeStats(addrs)
			// Cache-filtered block addresses must have top 6 bits clear.
			if s.Max>>58 != 0 {
				t.Fatalf("max block address %#x has nonzero top bits", s.Max)
			}
			if s.Distinct < 2 {
				t.Fatalf("trace is degenerate: %d distinct blocks", s.Distinct)
			}
		})
	}
}

func TestStreamingModelsAreRegular(t *testing.T) {
	// Streaming models interleave sweeps over a few arrays, so consecutive
	// misses follow a small set of recurring deltas (the property that
	// makes them trivially compressible). Require the 8 most common deltas
	// to cover the bulk of all steps.
	for _, name := range []string{"462.libquantum", "470.lbm", "410.bwaves"} {
		addrs, err := GenerateFiltered(name, 20_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		deltas := map[int64]int{}
		for i := 1; i < len(addrs); i++ {
			deltas[int64(addrs[i])-int64(addrs[i-1])]++
		}
		counts := make([]int, 0, len(deltas))
		for _, c := range deltas {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i := 0; i < len(counts) && i < 8; i++ {
			top += counts[i]
		}
		frac := float64(top) / float64(len(addrs)-1)
		if frac < 0.8 {
			t.Errorf("%s: top-8 deltas cover only %.2f of steps; expected streaming regularity", name, frac)
		}
	}
}

func TestRandomModelsAreIrregular(t *testing.T) {
	// Hash/pointer-dominated models must have a large footprint relative
	// to the trace length.
	for _, name := range []string{"429.mcf", "458.sjeng", "473.astar"} {
		addrs, err := GenerateFiltered(name, 20_000, 7)
		if err != nil {
			t.Fatal(err)
		}
		s := trace.ComputeStats(addrs)
		if float64(s.Distinct) < 0.5*float64(s.Count) {
			t.Errorf("%s: %d distinct of %d; expected an irregular, high-footprint trace",
				name, s.Distinct, s.Count)
		}
	}
}

func TestPovrayTinyFootprint(t *testing.T) {
	addrs, err := GenerateFiltered("453.povray", 10_000, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(addrs)
	if s.Distinct > 4096 {
		t.Fatalf("povray footprint = %d blocks; the model should stay tiny", s.Distinct)
	}
}

func TestMixEmitsAllKinds(t *testing.T) {
	m, _ := ByName("400.perlbench")
	src := m.Build(1)
	kinds := map[cachefilter.Kind]int{}
	for i := 0; i < 100_000; i++ {
		kinds[src.Next().Kind]++
	}
	if kinds[cachefilter.Instr] == 0 || kinds[cachefilter.Load] == 0 || kinds[cachefilter.Store] == 0 {
		t.Fatalf("kind mix = %v; expected instruction, load and store traffic", kinds)
	}
}

func TestPhasedModelsSwitchRegions(t *testing.T) {
	// The phased models must visit clearly different regions over time.
	m, _ := ByName("471.omnetpp")
	src := m.Build(3)
	f := cachefilter.NewL1()
	first := cachefilter.Collect(f, src, 5000)
	// Skip deep into the next phase.
	for i := 0; i < 4_100_000; i++ {
		src.Next()
	}
	second := cachefilter.Collect(f, src, 5000)
	f1 := trace.ComputeStats(first)
	f2 := trace.ComputeStats(second)
	if f1.Min == f2.Min && f1.Max == f2.Max {
		t.Fatal("phases cover identical ranges; schedule seems inert")
	}
}

func TestPRNGUniformity(t *testing.T) {
	r := newPRNG(1)
	var buckets [16]int
	for i := 0; i < 160_000; i++ {
		buckets[r.intn(16)]++
	}
	for b, c := range buckets {
		if c < 8_000 || c > 12_000 {
			t.Fatalf("bucket %d has %d of 160000; PRNG badly skewed", b, c)
		}
	}
}

func TestPRNGDeterminism(t *testing.T) {
	a, b := newPRNG(99), newPRNG(99)
	for i := 0; i < 1000; i++ {
		if a.next() != b.next() {
			t.Fatal("same-seed PRNGs diverged")
		}
	}
}

func TestZipfSkew(t *testing.T) {
	r := newPRNG(5)
	counts := make([]int, 1000)
	for i := 0; i < 200_000; i++ {
		counts[r.zipfIndex(1000, 2.0)]++
	}
	top, bottom := 0, 0
	for i := 0; i < 100; i++ {
		top += counts[i]
	}
	for i := 900; i < 1000; i++ {
		bottom += counts[i]
	}
	if top < 5*bottom {
		t.Fatalf("zipf skew too weak: top decile %d vs bottom %d", top, bottom)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := newPRNG(6)
	p := r.perm(257)
	seen := make([]bool, 257)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate %d in perm", v)
		}
		seen[v] = true
	}
}

func TestPointerChaseVisitsAllNodes(t *testing.T) {
	pc := newPointerChase(newPRNG(7), 0, 1000, 64)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[pc.Next().Addr] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("chase visited %d of 1000 nodes in one cycle", len(seen))
	}
}

func BenchmarkGenerateFiltered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateFiltered("429.mcf", 10_000, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
