// Package workload provides deterministic synthetic workload models that
// stand in for the paper's Pin-collected SPEC CPU2006 traces (§4.2), which
// cannot be regenerated offline. Each model emits an unbounded stream of
// raw memory accesses (instruction fetches, loads and stores over a
// realistic 48-bit address-space layout); feeding the stream through the
// L1 cache filter of internal/cachefilter yields cache-filtered block
// address traces with the qualitative properties the paper's evaluation
// spans: streaming, loop nests, pointer chasing, hash probing, tiny
// working sets and unstable multi-phase behaviour.
package workload

import (
	"atc/internal/cachefilter"
)

// Address-space layout used by all models: distinct high-order bytes per
// region, as in real processes, which is precisely the structure the
// bytesort transformation exploits.
const (
	codeBase  = 0x0000_4000_0000
	heapBase  = 0x0000_7000_0000
	heap2Base = 0x0001_2000_0000
	mmapBase  = 0x00C0_0000_0000
	stackBase = 0x7FFF_8000_0000
)

// sequential walks [base, base+size) with the given stride, wrapping, and
// emits accesses of the given kind.
type sequential struct {
	base, size, stride uint64
	pos                uint64
	kind               cachefilter.Kind
}

func newSequential(base, size, stride uint64, kind cachefilter.Kind) *sequential {
	if stride == 0 {
		stride = 8
	}
	return &sequential{base: base, size: size, stride: stride, kind: kind}
}

func (s *sequential) Next() cachefilter.Access {
	a := cachefilter.Access{Addr: s.base + s.pos, Kind: s.kind}
	s.pos += s.stride
	if s.pos >= s.size {
		s.pos = 0
	}
	return a
}

// randomUniform emits uniformly random aligned accesses within a region.
type randomUniform struct {
	base, size uint64
	align      uint64
	kind       cachefilter.Kind
	rng        *prng
}

func newRandomUniform(rng *prng, base, size, align uint64, kind cachefilter.Kind) *randomUniform {
	if align == 0 {
		align = 8
	}
	return &randomUniform{base: base, size: size, align: align, kind: kind, rng: rng}
}

func (r *randomUniform) Next() cachefilter.Access {
	off := r.rng.uint64n(r.size/r.align) * r.align
	return cachefilter.Access{Addr: r.base + off, Kind: r.kind}
}

// zipfStream emits skewed accesses: a few hot blocks, a long cold tail.
type zipfStream struct {
	base  uint64
	n     int // number of 64-byte blocks in the region
	skew  float64
	kind  cachefilter.Kind
	rng   *prng
	remap []int32 // shuffles block indices so hot blocks scatter in space
}

func newZipf(rng *prng, base uint64, blocks int, skew float64, kind cachefilter.Kind) *zipfStream {
	return &zipfStream{base: base, n: blocks, skew: skew, kind: kind, rng: rng, remap: rng.perm(blocks)}
}

func (z *zipfStream) Next() cachefilter.Access {
	idx := z.remap[z.rng.zipfIndex(z.n, z.skew)]
	off := uint64(idx)*64 + z.rng.uint64n(8)*8
	return cachefilter.Access{Addr: z.base + off, Kind: z.kind}
}

// pointerChase walks a random permutation cycle over n nodes; each step
// reads one node, modelling linked-list / graph traversal.
type pointerChase struct {
	base     uint64
	nodeSize uint64
	next     []int32
	cur      int32
	kind     cachefilter.Kind
}

func newPointerChase(rng *prng, base uint64, nodes int, nodeSize uint64) *pointerChase {
	if nodeSize == 0 {
		nodeSize = 64
	}
	// Build a single cycle from a permutation (cycle through a shuffled
	// order) so the walk visits every node before repeating.
	order := rng.perm(nodes)
	next := make([]int32, nodes)
	for i := 0; i < nodes; i++ {
		next[order[i]] = order[(i+1)%nodes]
	}
	return &pointerChase{base: base, nodeSize: nodeSize, next: next, kind: cachefilter.Load}
}

func (p *pointerChase) Next() cachefilter.Access {
	a := cachefilter.Access{Addr: p.base + uint64(p.cur)*p.nodeSize, Kind: p.kind}
	p.cur = p.next[p.cur]
	return a
}

// loopNest models numeric kernels: it sweeps several arrays in lockstep
// (A[i], B[i], C[i], ...), re-running the sweep forever, with a write to
// the last array.
type loopNest struct {
	bases  []uint64
	length uint64 // elements per array
	elem   uint64 // element size
	i      uint64
	arr    int
}

func newLoopNest(bases []uint64, length, elem uint64) *loopNest {
	if elem == 0 {
		elem = 8
	}
	return &loopNest{bases: bases, length: length, elem: elem}
}

func (l *loopNest) Next() cachefilter.Access {
	kind := cachefilter.Load
	if l.arr == len(l.bases)-1 {
		kind = cachefilter.Store
	}
	a := cachefilter.Access{Addr: l.bases[l.arr] + l.i*l.elem, Kind: kind}
	l.arr++
	if l.arr == len(l.bases) {
		l.arr = 0
		l.i++
		if l.i == l.length {
			l.i = 0
		}
	}
	return a
}

// stencil3D sweeps a 3-D grid accessing the 6 neighbours of each cell plus
// the cell itself, modelling structured-grid solvers (zeusmp, lbm-like).
type stencil3D struct {
	base    uint64
	nx, ny  uint64
	nz      uint64
	elem    uint64
	x, y, z uint64
	phase   int
}

func newStencil3D(base uint64, nx, ny, nz, elem uint64) *stencil3D {
	if elem == 0 {
		elem = 8
	}
	return &stencil3D{base: base, nx: nx, ny: ny, nz: nz, elem: elem}
}

func (s *stencil3D) addrOf(x, y, z uint64) uint64 {
	return s.base + ((z*s.ny+y)*s.nx+x)*s.elem
}

func (s *stencil3D) Next() cachefilter.Access {
	var a uint64
	kind := cachefilter.Load
	switch s.phase {
	case 0:
		a = s.addrOf(s.x, s.y, s.z)
	case 1:
		a = s.addrOf((s.x+1)%s.nx, s.y, s.z)
	case 2:
		a = s.addrOf((s.x+s.nx-1)%s.nx, s.y, s.z)
	case 3:
		a = s.addrOf(s.x, (s.y+1)%s.ny, s.z)
	case 4:
		a = s.addrOf(s.x, s.y, (s.z+1)%s.nz)
	case 5:
		a = s.addrOf(s.x, s.y, s.z)
		kind = cachefilter.Store
	}
	s.phase++
	if s.phase == 6 {
		s.phase = 0
		s.x++
		if s.x == s.nx {
			s.x = 0
			s.y++
			if s.y == s.ny {
				s.y = 0
				s.z++
				if s.z == s.nz {
					s.z = 0
				}
			}
		}
	}
	return cachefilter.Access{Addr: a, Kind: kind}
}

// codeStream models instruction fetch: hot loops of sequential fetches
// with occasional calls to other functions picked from a working set with
// Zipf-ish popularity.
type codeStream struct {
	base      uint64
	functions int    // number of functions
	funcSize  uint64 // bytes per function
	rng       *prng
	curFunc   int
	pos       uint64
	loopStart uint64
	loopEnd   uint64
	loopsLeft int
	skew      float64
}

func newCodeStream(rng *prng, base uint64, functions int, funcSize uint64, skew float64) *codeStream {
	cs := &codeStream{base: base, functions: functions, funcSize: funcSize, rng: rng, skew: skew}
	cs.enterFunction()
	return cs
}

func (c *codeStream) enterFunction() {
	c.curFunc = c.rng.zipfIndex(c.functions, c.skew)
	c.pos = 0
	// Pick a loop body inside the function.
	bodyLen := uint64(64 + c.rng.intn(512))
	if bodyLen > c.funcSize/2 {
		bodyLen = c.funcSize / 2
	}
	maxStart := c.funcSize - 2*bodyLen
	if maxStart == 0 {
		maxStart = 1
	}
	c.loopStart = c.rng.uint64n(maxStart)
	c.loopEnd = c.loopStart + bodyLen
	c.loopsLeft = 4 + c.rng.intn(60)
}

func (c *codeStream) Next() cachefilter.Access {
	a := cachefilter.Access{
		Addr: c.base + uint64(c.curFunc)*c.funcSize + c.pos,
		Kind: cachefilter.Instr,
	}
	c.pos += 4 // one instruction
	if c.pos >= c.loopEnd {
		c.loopsLeft--
		if c.loopsLeft > 0 {
			c.pos = c.loopStart
		} else if c.pos >= c.funcSize || c.rng.intn(8) == 0 {
			c.enterFunction()
		} else {
			// Fall through to straight-line code, then a fresh loop.
			c.loopStart = c.pos
			c.loopEnd = c.pos + uint64(64+c.rng.intn(256))
			if c.loopEnd > c.funcSize {
				c.enterFunction()
			} else {
				c.loopsLeft = 1 + c.rng.intn(30)
			}
		}
	}
	return a
}

// mix interleaves several streams with fixed weights, in deterministic
// bursts. Real programs interleave their access streams in program order
// (an inner loop does one thing many times before the next), so the
// schedule is a fixed weighted round-robin of bursts with small
// deterministic length jitter — not a per-access coin flip, which would
// destroy the repetition that makes real traces compressible and
// predictable. The PRNG is only used once, to derive the jitter pattern.
type mix struct {
	streams  []cachefilter.Source
	schedule []uint8 // stream index per burst slot, repeating
	burst    []int16 // burst length per slot
	slot     int
	left     int
}

const mixBurstLen = 24 // raw accesses per burst before switching streams

func newMix(rng *prng, streams []cachefilter.Source, weights []int) *mix {
	m := &mix{streams: streams}
	// Spread each stream's weight evenly across the schedule (error
	// diffusion), so slot order is deterministic and well mixed.
	total := 0
	for _, w := range weights {
		total += w
	}
	credit := make([]int, len(weights))
	for s := 0; s < total; s++ {
		best, bestCredit := 0, -1<<30
		for i := range weights {
			credit[i] += weights[i]
			if credit[i] > bestCredit {
				best, bestCredit = i, credit[i]
			}
		}
		credit[best] -= total
		m.schedule = append(m.schedule, uint8(best))
		// Deterministic per-slot jitter keeps bursts from perfect lockstep.
		m.burst = append(m.burst, int16(mixBurstLen+rng.intn(mixBurstLen/2+1)))
	}
	m.left = int(m.burst[0])
	return m
}

func (m *mix) Next() cachefilter.Access {
	if m.left <= 0 {
		m.slot = (m.slot + 1) % len(m.schedule)
		m.left = int(m.burst[m.slot])
	}
	m.left--
	return m.streams[m.schedule[m.slot]].Next()
}

// phased cycles through a schedule of sub-streams, switching after a fixed
// number of raw accesses; this is what gives traces their repeating-phase
// structure (or, with a non-repeating schedule, their instability).
type phased struct {
	schedule []phaseSpec
	idx      int
	left     int64
}

type phaseSpec struct {
	src   cachefilter.Source
	steps int64
}

func newPhased(schedule []phaseSpec) *phased {
	p := &phased{schedule: schedule}
	p.left = schedule[0].steps
	return p
}

func (p *phased) Next() cachefilter.Access {
	if p.left <= 0 {
		p.idx = (p.idx + 1) % len(p.schedule)
		p.left = p.schedule[p.idx].steps
	}
	p.left--
	return p.schedule[p.idx].src.Next()
}

// withCode adds an instruction stream to a data stream with the typical
// ~3:1 fetch:data ratio of real programs.
type withCode struct {
	code cachefilter.Source
	data cachefilter.Source
	step int
	per  int // code fetches per data access
}

func newWithCode(code, data cachefilter.Source, per int) *withCode {
	if per <= 0 {
		per = 3
	}
	return &withCode{code: code, data: data, per: per}
}

func (w *withCode) Next() cachefilter.Access {
	w.step++
	if w.step%(w.per+1) == 0 {
		return w.data.Next()
	}
	return w.code.Next()
}
