package workload

// prng is a SplitMix64 pseudo-random generator. The workload models must be
// deterministic across platforms and Go releases (experiments are seeded),
// so the package carries its own generator rather than relying on
// math/rand's unspecified stream.
type prng struct {
	state uint64
}

func newPRNG(seed uint64) *prng {
	return &prng{state: seed ^ 0x9E3779B97F4A7C15}
}

// next returns the next 64 random bits.
func (p *prng) next() uint64 {
	p.state += 0x9E3779B97F4A7C15
	z := p.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform value in [0, n). n must be positive.
func (p *prng) intn(n int) int {
	return int(p.next() % uint64(n))
}

// uint64n returns a uniform value in [0, n). n must be positive.
func (p *prng) uint64n(n uint64) uint64 {
	return p.next() % n
}

// float returns a uniform value in [0, 1).
func (p *prng) float() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// perm returns a random permutation of [0, n).
func (p *prng) perm(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := p.intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// zipfIndex returns an approximately Zipf-distributed index in [0, n):
// small indices are much more likely. skew > 0; larger is more skewed.
func (p *prng) zipfIndex(n int, skew float64) int {
	// Inverse-power transform: floor(n * u^s) concentrates mass near zero
	// for s > 1. It is not an exact Zipf law but reproduces the hot/cold
	// behaviour the workloads need, with no math.Pow in the hot path for
	// the common skews via repeated multiplication.
	u := p.float()
	v := u
	// v = u^ceil(skew) cheaply; fractional part folded via one more mul.
	k := int(skew)
	for i := 1; i < k; i++ {
		v *= u
	}
	if frac := skew - float64(k); frac > 0 {
		v *= 1 - frac*(1-u) // first-order approximation of u^frac
	}
	idx := int(v * float64(n))
	if idx >= n {
		idx = n - 1
	}
	return idx
}
