package workload

import (
	"fmt"
	"strings"

	"atc/internal/cachefilter"
)

// Model is a named synthetic workload standing in for one of the paper's
// SPEC CPU2006 benchmarks.
type Model struct {
	// Name is the SPEC-style identifier, e.g. "429.mcf".
	Name string
	// Description summarises the memory behaviour being modelled.
	Description string
	// Build constructs the raw access stream for a seed.
	Build func(seed uint64) cachefilter.Source
}

// Models returns the 22 workload models in the paper's Table 1 order.
func Models() []Model { return models }

// ByName finds a model by full name ("429.mcf") or numeric prefix ("429").
func ByName(name string) (Model, bool) {
	for _, m := range models {
		if m.Name == name || strings.SplitN(m.Name, ".", 2)[0] == name {
			return m, true
		}
	}
	return Model{}, false
}

// GenerateFiltered builds the named model and runs it through the paper's
// L1 filter (32 KB 4-way LRU I and D caches, 64-byte blocks) until n
// filtered block addresses have been produced.
func GenerateFiltered(name string, n int, seed uint64) ([]uint64, error) {
	m, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown model %q", name)
	}
	src := m.Build(seed)
	return cachefilter.Collect(cachefilter.NewL1(), src, n), nil
}

const mb = 1 << 20

// seedFor decorrelates the per-model streams derived from one user seed.
func seedFor(seed uint64, salt uint64) uint64 {
	return seed*0x9E3779B97F4A7C15 + salt*0xC2B2AE3D27D4EB4F + 1
}

var models = []Model{
	{
		Name:        "400.perlbench",
		Description: "interpreter: hot opcode dispatch code, hash tables, string buffers",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 400))
			code := newCodeStream(newPRNG(seedFor(seed, 4001)), codeBase, 400, 8192, 2.5)
			hash := newZipf(newPRNG(seedFor(seed, 4002)), heapBase, 4*mb/64, 1.6, cachefilter.Load)
			strbuf := newSequential(heap2Base, 2*mb, 8, cachefilter.Store)
			chase := newPointerChase(newPRNG(seedFor(seed, 4003)), mmapBase, 30_000, 64)
			data := newMix(r, []cachefilter.Source{hash, strbuf, chase}, []int{4, 3, 3})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "401.bzip2",
		Description: "block compression: sequential input, random access inside work block",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 401))
			code := newCodeStream(newPRNG(seedFor(seed, 4011)), codeBase, 60, 8192, 2.0)
			input := newSequential(heapBase, 128*mb, 8, cachefilter.Load)
			// Sorting workspace: random probes across a multi-MB block.
			work := newRandomUniform(newPRNG(seedFor(seed, 4012)), heap2Base, mb, 8, cachefilter.Load)
			out := newSequential(mmapBase, 64*mb, 8, cachefilter.Store)
			data := newMix(r, []cachefilter.Source{input, work, out}, []int{2, 6, 2})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "403.gcc",
		Description: "compiler: unstable, every phase touches fresh IR in new regions",
		Build: func(seed uint64) cachefilter.Source {
			// A long, non-repeating schedule of distinct working sets models
			// gcc's pass-by-pass instability: lossy compression should find
			// few reusable phases (paper: low lossy gain on 403).
			var schedule []phaseSpec
			for p := uint64(0); p < 48; p++ {
				rp := newPRNG(seedFor(seed, 40300+p))
				base := heapBase + p*48*mb
				// Sizes and stream weights vary per pass, so the sorted
				// byte-histograms of successive phases genuinely differ —
				// lossy compression should find few reusable phases here.
				randMB := uint64(1 + p%8)
				seqMB := uint64(4 + p%7)
				nodes := 8_000 + int(p%11)*5_000
				work := newMix(rp, []cachefilter.Source{
					newRandomUniform(newPRNG(seedFor(seed, 40400+p)), base, randMB*mb, 8, cachefilter.Load),
					newSequential(base+24*mb, seqMB*mb, 8, cachefilter.Load),
					newPointerChase(newPRNG(seedFor(seed, 40500+p)), base+36*mb, nodes, 64),
				}, []int{int(2 + p%6), int(2 + p%4), int(1 + p%5)})
				code := newCodeStream(newPRNG(seedFor(seed, 40600+p)), codeBase+p*4*mb, 100+int(p%7)*80, 8192, 1.8)
				schedule = append(schedule, phaseSpec{src: newWithCode(code, work, 2), steps: 400_000})
			}
			return newPhased(schedule)
		},
	},
	{
		Name:        "410.bwaves",
		Description: "blast-wave solver: lockstep sweeps over large dense arrays",
		Build: func(seed uint64) cachefilter.Source {
			code := newCodeStream(newPRNG(seedFor(seed, 4101)), codeBase, 12, 4096, 2.0)
			arrays := []uint64{heapBase, heapBase + 256*mb, heapBase + 512*mb, heapBase + 768*mb, heap2Base}
			data := newLoopNest(arrays, 8*mb, 8)
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "429.mcf",
		Description: "network simplex: pointer chasing over a huge arc/node graph",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 429))
			code := newCodeStream(newPRNG(seedFor(seed, 4291)), codeBase, 25, 4096, 2.2)
			nodes := newPointerChase(newPRNG(seedFor(seed, 4292)), heapBase, 50_000, 64)
			arcs := newPointerChase(newPRNG(seedFor(seed, 4293)), mmapBase, 80_000, 64)
			scan := newSequential(heap2Base, 24*mb, 64, cachefilter.Load)
			data := newMix(r, []cachefilter.Source{nodes, arcs, scan}, []int{4, 4, 2})
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "433.milc",
		Description: "lattice QCD: regular strided sweeps over large lattices",
		Build: func(seed uint64) cachefilter.Source {
			code := newCodeStream(newPRNG(seedFor(seed, 4331)), codeBase, 20, 4096, 2.0)
			arrays := []uint64{heapBase, heapBase + 384*mb, heap2Base, heap2Base + 384*mb}
			data := newLoopNest(arrays, 12*mb, 8)
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "434.zeusmp",
		Description: "astrophysics CFD: 3-D stencil sweeps over structured grids",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 434))
			code := newCodeStream(newPRNG(seedFor(seed, 4341)), codeBase, 30, 8192, 2.0)
			g1 := newStencil3D(heapBase, 256, 256, 64, 8)
			g2 := newStencil3D(heap2Base, 256, 256, 64, 8)
			data := newMix(r, []cachefilter.Source{g1, g2}, []int{6, 4})
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "435.gromacs",
		Description: "molecular dynamics: neighbour-list gathers with partial locality",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 435))
			code := newCodeStream(newPRNG(seedFor(seed, 4351)), codeBase, 45, 8192, 2.2)
			positions := newZipf(newPRNG(seedFor(seed, 4352)), heapBase, 4*mb/64, 1.2, cachefilter.Load)
			forces := newSequential(heap2Base, 24*mb, 8, cachefilter.Store)
			neigh := newRandomUniform(newPRNG(seedFor(seed, 4353)), mmapBase, 4*mb, 8, cachefilter.Load)
			data := newMix(r, []cachefilter.Source{positions, forces, neigh}, []int{4, 2, 4})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "444.namd",
		Description: "molecular dynamics: blocked pair lists, tiled force loops",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 444))
			code := newCodeStream(newPRNG(seedFor(seed, 4441)), codeBase, 35, 8192, 2.0)
			// Tiled access: sequential runs inside random tiles.
			tiles := newZipf(newPRNG(seedFor(seed, 4442)), heapBase, 8*mb/64, 1.1, cachefilter.Load)
			sweep := newSequential(heap2Base, 48*mb, 8, cachefilter.Load)
			data := newMix(r, []cachefilter.Source{tiles, sweep}, []int{5, 5})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "445.gobmk",
		Description: "game tree search: heavy irregular code, pattern hash probes",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 445))
			code := newCodeStream(newPRNG(seedFor(seed, 4451)), codeBase, 700, 8192, 1.9)
			hash := newRandomUniform(newPRNG(seedFor(seed, 4452)), heapBase, 2*mb, 8, cachefilter.Load)
			board := newZipf(newPRNG(seedFor(seed, 4453)), heap2Base, 4*mb/64, 2.0, cachefilter.Load)
			stack := newSequential(stackBase, 512*1024, 16, cachefilter.Store)
			data := newMix(r, []cachefilter.Source{hash, board, stack}, []int{4, 4, 2})
			return newWithCode(code, data, 3)
		},
	},
	{
		Name:        "447.dealII",
		Description: "adaptive FEM: mesh refinement keeps shifting the working set",
		Build: func(seed uint64) cachefilter.Source {
			var schedule []phaseSpec
			for p := uint64(0); p < 40; p++ {
				base := heapBase + p*64*mb
				rp := newPRNG(seedFor(seed, 44700+p))
				// The refined mesh grows and the solver mix shifts every
				// refinement step: distinct histogram structure per phase.
				work := newMix(rp, []cachefilter.Source{
					newPointerChase(newPRNG(seedFor(seed, 44800+p)), base, 10_000+int(p)*4_000, 64),
					newSequential(base+32*mb, uint64(2+p%9)*mb, 8, cachefilter.Load),
				}, []int{int(3 + p%6), int(2 + p%5)})
				code := newCodeStream(newPRNG(seedFor(seed, 44900+p)), codeBase, 120, 8192, 2.0)
				schedule = append(schedule, phaseSpec{src: newWithCode(code, work, 2), steps: 500_000})
			}
			return newPhased(schedule)
		},
	},
	{
		Name:        "450.soplex",
		Description: "simplex LP: sparse matrix column walks, price scans",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 450))
			code := newCodeStream(newPRNG(seedFor(seed, 4501)), codeBase, 60, 8192, 2.0)
			cols := newZipf(newPRNG(seedFor(seed, 4502)), heapBase, 8*mb/64, 1.3, cachefilter.Load)
			price := newSequential(heap2Base, 64*mb, 8, cachefilter.Load)
			update := newSequential(mmapBase, 32*mb, 8, cachefilter.Store)
			data := newMix(r, []cachefilter.Source{cols, price, update}, []int{5, 3, 2})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "453.povray",
		Description: "ray tracer: tiny hot working set, almost everything hits L1",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 453))
			code := newCodeStream(newPRNG(seedFor(seed, 4531)), codeBase, 16, 4096, 3.0)
			// Misses come from a slightly-over-L1 periodic sweep, so the
			// filtered trace is almost perfectly repetitive, plus a thin
			// tail of skewed scene lookups.
			sweep := newSequential(heapBase, 96<<10, 64, cachefilter.Load)
			scene := newZipf(newPRNG(seedFor(seed, 4532)), heap2Base, (64<<10)/64, 2.5, cachefilter.Load)
			data := newMix(r, []cachefilter.Source{sweep, scene}, []int{9, 1})
			return newWithCode(code, data, 3)
		},
	},
	{
		Name:        "456.hmmer",
		Description: "profile HMM search: small tables swept with regular strides",
		Build: func(seed uint64) cachefilter.Source {
			code := newCodeStream(newPRNG(seedFor(seed, 4561)), codeBase, 10, 4096, 2.5)
			dp := newLoopNest([]uint64{heapBase, heapBase + 16*mb, heapBase + 32*mb}, 2*mb, 8)
			return newWithCode(code, dp, 1)
		},
	},
	{
		Name:        "458.sjeng",
		Description: "chess search: transposition-table probes all over a big table",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 458))
			code := newCodeStream(newPRNG(seedFor(seed, 4581)), codeBase, 220, 8192, 1.8)
			tt := newRandomUniform(newPRNG(seedFor(seed, 4582)), heapBase, 4*mb, 16, cachefilter.Load)
			board := newZipf(newPRNG(seedFor(seed, 4583)), heap2Base, mb/64, 2.0, cachefilter.Load)
			data := newMix(r, []cachefilter.Source{tt, board}, []int{7, 3})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "462.libquantum",
		Description: "quantum simulation: pure streaming over one huge vector",
		Build: func(seed uint64) cachefilter.Source {
			code := newCodeStream(newPRNG(seedFor(seed, 4621)), codeBase, 4, 2048, 3.0)
			data := newSequential(heapBase, 512*mb, 16, cachefilter.Load)
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "464.h264ref",
		Description: "video encoder: motion search in local 2-D windows, frame sweeps",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 464))
			code := newCodeStream(newPRNG(seedFor(seed, 4641)), codeBase, 90, 8192, 2.0)
			frame := newSequential(heapBase, 48*mb, 8, cachefilter.Load)
			window := newRandomUniform(newPRNG(seedFor(seed, 4642)), heap2Base, mb, 8, cachefilter.Load)
			recon := newSequential(mmapBase, 48*mb, 8, cachefilter.Store)
			data := newMix(r, []cachefilter.Source{frame, window, recon}, []int{3, 5, 2})
			return newWithCode(code, data, 2)
		},
	},
	{
		Name:        "470.lbm",
		Description: "lattice Boltzmann: streaming stencil over parallel distributions",
		Build: func(seed uint64) cachefilter.Source {
			code := newCodeStream(newPRNG(seedFor(seed, 4701)), codeBase, 6, 4096, 3.0)
			// Two lattices (source/destination) plus obstacle flags.
			arrays := []uint64{heapBase, heapBase + 512*mb, heap2Base}
			data := newLoopNest(arrays, 16*mb, 8)
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "471.omnetpp",
		Description: "discrete event simulation: heap-allocated event objects, queue churn",
		Build: func(seed uint64) cachefilter.Source {
			// Alternating event-processing phases over two module sets gives
			// the trace visible phase structure.
			mkPhase := func(salt uint64, base uint64) cachefilter.Source {
				rp := newPRNG(seedFor(seed, salt))
				code := newCodeStream(newPRNG(seedFor(seed, salt+1)), codeBase, 300, 8192, 1.9)
				events := newPointerChase(newPRNG(seedFor(seed, salt+2)), base, 60_000, 128)
				queue := newZipf(newPRNG(seedFor(seed, salt+3)), base+128*mb, 2*mb/64, 1.5, cachefilter.Load)
				data := newMix(rp, []cachefilter.Source{events, queue}, []int{6, 4})
				return newWithCode(code, data, 2)
			}
			return newPhased([]phaseSpec{
				{src: mkPhase(47100, heapBase), steps: 800_000},
				{src: mkPhase(47200, mmapBase), steps: 800_000},
			})
		},
	},
	{
		Name:        "473.astar",
		Description: "path finding: open-list updates and random map probes",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 473))
			code := newCodeStream(newPRNG(seedFor(seed, 4731)), codeBase, 40, 8192, 2.1)
			grid := newRandomUniform(newPRNG(seedFor(seed, 4732)), heapBase, 6*mb, 8, cachefilter.Load)
			open := newPointerChase(newPRNG(seedFor(seed, 4733)), heap2Base, 60_000, 64)
			data := newMix(r, []cachefilter.Source{grid, open}, []int{5, 5})
			return newWithCode(code, data, 1)
		},
	},
	{
		Name:        "482.sphinx3",
		Description: "speech recognition: acoustic model streaming plus hash lookups",
		Build: func(seed uint64) cachefilter.Source {
			// Alternates between scoring (streaming) and search (random)
			// phases.
			rA := newPRNG(seedFor(seed, 48201))
			codeA := newCodeStream(newPRNG(seedFor(seed, 48202)), codeBase, 30, 8192, 2.0)
			score := newMix(rA, []cachefilter.Source{
				newSequential(heapBase, 256*mb, 8, cachefilter.Load),
				newSequential(heapBase+256*mb, 64*mb, 8, cachefilter.Load),
			}, []int{7, 3})
			phaseA := newWithCode(codeA, score, 1)

			rB := newPRNG(seedFor(seed, 48203))
			codeB := newCodeStream(newPRNG(seedFor(seed, 48204)), codeBase+16*mb, 80, 8192, 2.0)
			search := newMix(rB, []cachefilter.Source{
				newRandomUniform(newPRNG(seedFor(seed, 48205)), heap2Base, 3*mb, 8, cachefilter.Load),
				newZipf(newPRNG(seedFor(seed, 48206)), mmapBase, 2*mb/64, 1.5, cachefilter.Load),
			}, []int{6, 4})
			phaseB := newWithCode(codeB, search, 2)

			return newPhased([]phaseSpec{
				{src: phaseA, steps: 1_200_000},
				{src: phaseB, steps: 600_000},
			})
		},
	},
	{
		Name:        "483.xalancbmk",
		Description: "XSLT processor: DOM pointer chasing, string tables, hot dispatch",
		Build: func(seed uint64) cachefilter.Source {
			r := newPRNG(seedFor(seed, 483))
			code := newCodeStream(newPRNG(seedFor(seed, 4831)), codeBase, 500, 8192, 1.9)
			dom := newPointerChase(newPRNG(seedFor(seed, 4832)), heapBase, 70_000, 128)
			strings := newZipf(newPRNG(seedFor(seed, 4833)), heap2Base, 4*mb/64, 1.4, cachefilter.Load)
			out := newSequential(mmapBase, 32*mb, 8, cachefilter.Store)
			data := newMix(r, []cachefilter.Source{dom, strings, out}, []int{5, 3, 2})
			return newWithCode(code, data, 2)
		},
	},
}
