package cdc

import (
	"math/rand"
	"testing"
)

func TestValidation(t *testing.T) {
	if _, err := New(Config{CZoneBlockBits: 10, IndexEntries: 0, GHBEntries: 10}); err == nil {
		t.Fatal("zero index entries accepted")
	}
	if _, err := New(Config{CZoneBlockBits: 10, IndexEntries: 10, GHBEntries: 0}); err == nil {
		t.Fatal("zero GHB entries accepted")
	}
}

func TestConstantStridePredicted(t *testing.T) {
	p := MustNew(PaperConfig)
	// Constant stride 1 inside one zone: after warm-up, every address is
	// predicted correctly.
	for i := uint64(0); i < 100; i++ {
		p.Access(i)
	}
	c := p.Counts()
	if c.Total() != 100 {
		t.Fatalf("total = %d", c.Total())
	}
	// The first few accesses cannot be predicted (need 3 addresses for the
	// key plus one occurrence of the pair); after that, all correct.
	if c.Correct < 90 {
		t.Fatalf("correct = %d of 100 on a constant stride", c.Correct)
	}
	if c.Incorrect > 2 {
		t.Fatalf("incorrect = %d on a constant stride", c.Incorrect)
	}
}

func TestStride2DeltaPattern(t *testing.T) {
	p := MustNew(PaperConfig)
	// Alternating deltas +1, +3 within a zone: a 2-delta correlator locks on.
	a := uint64(0)
	for i := 0; i < 200; i++ {
		p.Access(a)
		if i%2 == 0 {
			a += 1
		} else {
			a += 3
		}
	}
	c := p.Counts()
	if c.Correct < 180 {
		t.Fatalf("correct = %d of 200 on an alternating-delta pattern", c.Correct)
	}
}

func TestRandomMostlyUnpredicted(t *testing.T) {
	p := MustNew(PaperConfig)
	rng := rand.New(rand.NewSource(1))
	const n = 20_000
	for i := 0; i < n; i++ {
		p.Access(uint64(rng.Int63()) & ((1 << 40) - 1))
	}
	c := p.Counts()
	if c.Total() != n {
		t.Fatalf("total = %d", c.Total())
	}
	// Random 40-bit addresses nearly never share a zone history: the
	// predictor should almost always abstain.
	if float64(c.NonPredicted) < 0.95*n {
		t.Fatalf("non-predicted = %d of %d on random addresses", c.NonPredicted, n)
	}
}

func TestZoneSeparation(t *testing.T) {
	p := MustNew(PaperConfig)
	// Two interleaved zones, each with its own constant stride: the zone
	// split must keep both predictable.
	zoneA := uint64(0)
	zoneB := uint64(1) << PaperConfig.CZoneBlockBits * 2 // far apart
	a, b := zoneA, zoneB
	for i := 0; i < 200; i++ {
		p.Access(a)
		p.Access(b)
		a++
		b += 2
	}
	c := p.Counts()
	if c.Correct < 360 {
		t.Fatalf("correct = %d of 400 on two interleaved strided zones", c.Correct)
	}
}

func TestPendingClearedAfterCheck(t *testing.T) {
	p := MustNew(PaperConfig)
	// Warm up a stride, then jump away; the stale prediction must be
	// charged once (incorrect), not repeatedly.
	for i := uint64(0); i < 10; i++ {
		p.Access(i)
	}
	base := p.Counts()
	p.Access(500) // breaks the stride within the same zone
	c := p.Counts()
	gotIncorrect := c.Incorrect - base.Incorrect
	if gotIncorrect != 1 {
		t.Fatalf("stride break charged %d incorrect, want 1", gotIncorrect)
	}
}

func TestFractions(t *testing.T) {
	var c Counts
	n, cr, ic := c.Fractions()
	if n != 0 || cr != 0 || ic != 0 {
		t.Fatal("empty fractions nonzero")
	}
	c = Counts{NonPredicted: 1, Correct: 2, Incorrect: 1}
	n, cr, ic = c.Fractions()
	if n != 0.25 || cr != 0.5 || ic != 0.25 {
		t.Fatalf("fractions = %v %v %v", n, cr, ic)
	}
}

func TestGHBWraparound(t *testing.T) {
	// More zone history than GHB entries: old links must expire without
	// panics or false chains.
	p := MustNew(Config{CZoneBlockBits: 10, IndexEntries: 4, GHBEntries: 8})
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		p.Access(uint64(rng.Intn(1 << 20)))
	}
	if p.Counts().Total() != 10_000 {
		t.Fatalf("total = %d", p.Counts().Total())
	}
}

func TestIndexAliasingIsSafe(t *testing.T) {
	// Tiny index table: zones alias constantly; behaviour must stay sane
	// (every access classified exactly once).
	p := MustNew(Config{CZoneBlockBits: 4, IndexEntries: 2, GHBEntries: 16})
	for i := uint64(0); i < 5000; i++ {
		p.Access(i * 17)
	}
	if p.Counts().Total() != 5000 {
		t.Fatalf("total = %d", p.Counts().Total())
	}
}

func BenchmarkAccess(b *testing.B) {
	p := MustNew(PaperConfig)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 24))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Access(addrs[i&(1<<16-1)])
	}
}
