// Package cdc implements the address predictor the paper uses in Figure 5
// to judge whether lossy-compressed traces "look like" the originals: a
// predictor based on the C/DC prefetcher of Nesbit, Dhodapkar and Smith
// (PACT 2004), with 64-Kbyte CZones, a 256-entry index table, a 256-entry
// global history buffer (GHB), and a 2-delta correlation key.
//
// For each incoming block address, the predictor first checks the pending
// prediction for the address's CZone (counting a correct, incorrect, or —
// if no prediction was made — non-predicted outcome), then inserts the
// address into the GHB and tries to predict the *next* address in the same
// CZone: the last two deltas of the zone form the correlation key, the
// zone's history chain is searched for the key's most recent previous
// occurrence, and the delta that followed it there is applied to the
// current address.
package cdc

import "fmt"

// Config parameterises the predictor.
type Config struct {
	// CZoneBlockBits is log2 of the CZone size in blocks. The paper's
	// 64-Kbyte zones over 64-byte blocks give 1024 blocks = 10 bits.
	CZoneBlockBits uint
	// IndexEntries is the CZone index table size (paper: 256).
	IndexEntries int
	// GHBEntries is the global history buffer size (paper: 256).
	GHBEntries int
}

// PaperConfig reproduces the configuration of the paper's §5.3.
var PaperConfig = Config{CZoneBlockBits: 10, IndexEntries: 256, GHBEntries: 256}

func (c Config) validate() error {
	if c.IndexEntries <= 0 || c.GHBEntries <= 0 {
		return fmt.Errorf("cdc: nonpositive table sizes %+v", c)
	}
	return nil
}

// Counts tallies prediction outcomes, one per trace address.
type Counts struct {
	NonPredicted int64
	Correct      int64
	Incorrect    int64
}

// Total returns the number of classified addresses.
func (c Counts) Total() int64 { return c.NonPredicted + c.Correct + c.Incorrect }

// Fractions returns the three outcome shares (0 if no addresses seen).
func (c Counts) Fractions() (nonPred, correct, incorrect float64) {
	t := c.Total()
	if t == 0 {
		return 0, 0, 0
	}
	return float64(c.NonPredicted) / float64(t),
		float64(c.Correct) / float64(t),
		float64(c.Incorrect) / float64(t)
}

type indexEntry struct {
	zone       uint64
	headPos    int64 // absolute GHB position of the zone's most recent address
	pending    uint64
	valid      bool
	hasPending bool
}

type ghbEntry struct {
	addr    uint64
	prevPos int64 // absolute position of previous address in same zone, -1 none
}

// Predictor is a C/DC address predictor. Create one with New.
type Predictor struct {
	cfg    Config
	table  []indexEntry
	ghb    []ghbEntry
	wpos   int64 // absolute write position (total pushes)
	counts Counts
}

// New builds a Predictor.
func New(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Predictor{
		cfg:   cfg,
		table: make([]indexEntry, cfg.IndexEntries),
		ghb:   make([]ghbEntry, cfg.GHBEntries),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(cfg Config) *Predictor {
	p, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Counts returns the outcome counters.
func (p *Predictor) Counts() Counts { return p.counts }

func (p *Predictor) zoneOf(block uint64) uint64 {
	return block >> p.cfg.CZoneBlockBits
}

func (p *Predictor) slotOf(zone uint64) int {
	h := zone * 0x9E3779B97F4A7C15
	return int(h % uint64(p.cfg.IndexEntries))
}

// live reports whether an absolute GHB position still holds its entry.
func (p *Predictor) live(pos int64) bool {
	return pos >= 0 && pos > p.wpos-int64(p.cfg.GHBEntries) && pos < p.wpos
}

func (p *Predictor) at(pos int64) ghbEntry {
	return p.ghb[pos%int64(p.cfg.GHBEntries)]
}

// Access classifies one block address and prepares the next prediction for
// its CZone.
func (p *Predictor) Access(block uint64) {
	zone := p.zoneOf(block)
	e := &p.table[p.slotOf(zone)]
	if !e.valid || e.zone != zone {
		// New (or aliased) zone: no pending prediction applies.
		p.counts.NonPredicted++
		*e = indexEntry{zone: zone, headPos: -1, valid: true}
	} else if e.hasPending {
		if e.pending == block {
			p.counts.Correct++
		} else {
			p.counts.Incorrect++
		}
		e.hasPending = false
	} else {
		p.counts.NonPredicted++
	}

	// Push into the GHB, linking to the zone's previous address.
	prev := int64(-1)
	if p.live(e.headPos) {
		prev = e.headPos
	}
	p.ghb[p.wpos%int64(p.cfg.GHBEntries)] = ghbEntry{addr: block, prevPos: prev}
	e.headPos = p.wpos
	p.wpos++

	// Predict the zone's next address via 2-delta correlation.
	if pred, ok := p.predict(e.headPos); ok {
		e.pending = pred
		e.hasPending = true
	}
}

// predict walks the zone chain rooted at head (the newest entry) and
// returns the predicted next address if the last two deltas recur earlier
// in the chain.
func (p *Predictor) predict(head int64) (uint64, bool) {
	// Need at least three addresses for two deltas.
	p0 := head
	e0 := p.at(p0)
	p1 := e0.prevPos
	if !p.live(p1) {
		return 0, false
	}
	e1 := p.at(p1)
	p2 := e1.prevPos
	if !p.live(p2) {
		return 0, false
	}
	e2 := p.at(p2)
	d1 := int64(e0.addr) - int64(e1.addr)
	d2 := int64(e1.addr) - int64(e2.addr)

	// Slide a triple (x[k], x[k+1], x[k+2]) down the chain, starting one
	// step older than the key itself, looking for the same delta pair.
	// x[k-1] is the address that followed x[k]; its delta gives the
	// prediction.
	xPrev := e1 // x[k-1] candidate, one newer than x[k]
	pk := p2
	for p.live(pk) {
		ek := p.at(pk)
		pk1 := ek.prevPos
		if !p.live(pk1) {
			return 0, false
		}
		ek1 := p.at(pk1)
		pk2 := ek1.prevPos
		if !p.live(pk2) {
			return 0, false
		}
		ek2 := p.at(pk2)
		f1 := int64(ek.addr) - int64(ek1.addr)
		f2 := int64(ek1.addr) - int64(ek2.addr)
		if f1 == d1 && f2 == d2 {
			followDelta := int64(xPrev.addr) - int64(ek.addr)
			pred := uint64(int64(e0.addr) + followDelta)
			return pred, true
		}
		xPrev = ek
		pk = pk1
	}
	return 0, false
}

// AccessAll classifies a whole trace.
func (p *Predictor) AccessAll(blocks []uint64) {
	for _, b := range blocks {
		p.Access(b)
	}
}
