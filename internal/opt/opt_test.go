package opt

import (
	"math/rand"
	"testing"

	"atc/internal/cache"
	"atc/internal/cheetah"
)

func TestValidation(t *testing.T) {
	if _, err := Simulate(nil, 0); err == nil {
		t.Fatal("capacity 0 accepted")
	}
	if _, err := SimulateSetAssociative(nil, 3, 2); err == nil {
		t.Fatal("non-power-of-two sets accepted")
	}
	if _, err := SimulateSetAssociative(nil, 4, 0); err == nil {
		t.Fatal("zero ways accepted")
	}
}

func TestEmptyTrace(t *testing.T) {
	r, err := Simulate(nil, 4)
	if err != nil || r.Accesses != 0 || r.MissRatio() != 0 {
		t.Fatalf("empty trace: %+v, %v", r, err)
	}
}

func TestColdMissesOnly(t *testing.T) {
	blocks := []uint64{1, 2, 3, 1, 2, 3}
	r, err := Simulate(blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 3 {
		t.Fatalf("misses = %d, want 3 (cold only, everything fits)", r.Misses)
	}
}

// TestBeladyClassic is the textbook OPT example: with capacity 3 and a
// cyclic over-capacity pattern, OPT keeps the soonest-reused blocks.
func TestBeladyClassic(t *testing.T) {
	// Reference string: 1 2 3 4 1 2 5 1 2 3 4 5, capacity 3.
	// Textbook OPT result: 7 misses (also known as Belady's anomaly demo).
	blocks := []uint64{1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5}
	r, err := Simulate(blocks, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Misses != 7 {
		t.Fatalf("OPT misses = %d, want 7", r.Misses)
	}
}

func TestCyclicPatternOPTBeatsLRU(t *testing.T) {
	// Cyclic scan of W+1 blocks with capacity W: LRU misses 100%, OPT
	// keeps W-1 blocks resident and misses far less.
	const W = 8
	var blocks []uint64
	for round := 0; round < 50; round++ {
		for b := uint64(0); b <= W; b++ {
			blocks = append(blocks, b)
		}
	}
	optRes, err := Simulate(blocks, W)
	if err != nil {
		t.Fatal(err)
	}
	lru := cache.MustNew(cache.Config{SizeBytes: W * 64, Ways: W, BlockBytes: 64})
	for _, b := range blocks {
		lru.AccessBlock(b)
	}
	if lru.Stats().MissRatio() != 1.0 {
		t.Fatalf("LRU cyclic miss ratio = %v, want 1.0", lru.Stats().MissRatio())
	}
	if optRes.MissRatio() > 0.4 {
		t.Fatalf("OPT cyclic miss ratio = %v, want far below LRU's 1.0", optRes.MissRatio())
	}
}

// TestOPTNeverWorseThanLRU is the defining property, checked on random
// traces for both the fully-associative and set-associative variants.
func TestOPTNeverWorseThanLRU(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 5000 + rng.Intn(5000)
		universe := 64 + rng.Intn(512)
		blocks := make([]uint64, n)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(universe))
		}
		// Fully associative, capacity 64 = 1 set x 64 ways.
		optRes, err := Simulate(blocks, 64)
		if err != nil {
			t.Fatal(err)
		}
		lru := cheetah.MustNew(1, 64)
		lru.AccessAll(blocks)
		if optRes.Misses > lru.Misses(64) {
			t.Fatalf("trial %d: OPT %d misses > LRU %d", trial, optRes.Misses, lru.Misses(64))
		}
		// Set associative: 16 sets x 4 ways.
		optSA, err := SimulateSetAssociative(blocks, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		lruSA := cheetah.MustNew(16, 4)
		lruSA.AccessAll(blocks)
		if optSA.Misses > lruSA.Misses(4) {
			t.Fatalf("trial %d: set-assoc OPT %d misses > LRU %d", trial, optSA.Misses, lruSA.Misses(4))
		}
	}
}

// TestOPTAgainstBruteForce validates the heap implementation against a
// direct O(N*C) Belady simulation on small traces.
func TestOPTAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 200 + rng.Intn(300)
		blocks := make([]uint64, n)
		for i := range blocks {
			blocks[i] = uint64(rng.Intn(24))
		}
		capacity := 2 + rng.Intn(8)
		got, err := Simulate(blocks, capacity)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceOPT(blocks, capacity)
		if got.Misses != want {
			t.Fatalf("trial %d: heap OPT %d misses, brute force %d (cap=%d)", trial, got.Misses, want, capacity)
		}
	}
}

func bruteForceOPT(blocks []uint64, capacity int) int64 {
	resident := map[uint64]bool{}
	var misses int64
	for i, b := range blocks {
		if resident[b] {
			continue
		}
		misses++
		if len(resident) >= capacity {
			// Evict the block used farthest in the future (ties: any).
			evict, evictAt := uint64(0), -1
			for r := range resident {
				at := len(blocks) // "never" sentinel
				for j := i + 1; j < len(blocks); j++ {
					if blocks[j] == r {
						at = j
						break
					}
				}
				if at > evictAt {
					evict, evictAt = r, at
				}
			}
			delete(resident, evict)
		}
		resident[b] = true
	}
	return misses
}

func TestCurveMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blocks := make([]uint64, 20000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1000))
	}
	caps := []int{16, 64, 256, 1024}
	curve, err := Curve(blocks, caps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i] > curve[i-1]+1e-12 {
			t.Fatalf("OPT curve not monotone: %v", curve)
		}
	}
}

func BenchmarkSimulate(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	blocks := make([]uint64, 1<<17)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1 << 14))
	}
	b.SetBytes(int64(len(blocks) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(blocks, 4096); err != nil {
			b.Fatal(err)
		}
	}
}
