// Package opt simulates a cache under Belady's optimal replacement (MIN),
// the other half of the Cheetah simulator the paper uses (Sugumar &
// Abraham, "Efficient simulation of caches under optimal replacement").
// OPT miss ratios bound what any replacement policy can achieve, so
// comparing a trace's LRU surface (internal/cheetah) against its OPT
// surface separates capacity misses from replacement-policy losses — a
// standard use of cache-filtered traces.
//
// The simulator is offline (OPT requires future knowledge): it takes the
// whole trace, precomputes each reference's next-use time, and evicts the
// block whose next use is farthest in the future. A fully-associative
// variant and a set-associative variant are provided; both run in
// O(N log A) using a priority queue keyed by next-use time with lazy
// deletion.
package opt

import (
	"container/heap"
	"fmt"
)

// Result reports an OPT simulation.
type Result struct {
	Accesses int64
	Misses   int64
}

// MissRatio returns Misses/Accesses (0 for an empty trace).
func (r Result) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

const never = int64(1) << 62 // next-use time for blocks never used again

// nextUse computes, for each position i in the trace, the position of the
// next reference to the same block (or `never`).
func nextUse(blocks []uint64) []int64 {
	next := make([]int64, len(blocks))
	last := make(map[uint64]int64, len(blocks)/4+16)
	for i := len(blocks) - 1; i >= 0; i-- {
		b := blocks[i]
		if p, ok := last[b]; ok {
			next[i] = p
		} else {
			next[i] = never
		}
		last[b] = int64(i)
	}
	return next
}

// entry is a resident block with its next-use time.
type entry struct {
	block uint64
	next  int64
}

// maxHeap orders entries by descending next-use time (farthest first).
type maxHeap []entry

func (h maxHeap) Len() int            { return len(h) }
func (h maxHeap) Less(i, j int) bool  { return h[i].next > h[j].next }
func (h maxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *maxHeap) Push(x interface{}) { *h = append(*h, x.(entry)) }
func (h *maxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// set simulates one cache set under OPT with lazy heap deletion: stale
// heap entries (whose next-use time no longer matches the resident state)
// are discarded when popped.
type set struct {
	capacity int
	resident map[uint64]int64 // block -> current next-use time
	h        maxHeap
}

func newSet(capacity int) *set {
	return &set{capacity: capacity, resident: make(map[uint64]int64, capacity)}
}

// access processes one reference; returns true on hit.
func (s *set) access(block uint64, next int64) bool {
	if _, ok := s.resident[block]; ok {
		s.resident[block] = next
		heap.Push(&s.h, entry{block, next})
		return true
	}
	if len(s.resident) >= s.capacity {
		// Evict the resident block with the farthest next use.
		for {
			top := heap.Pop(&s.h).(entry)
			cur, ok := s.resident[top.block]
			if ok && cur == top.next {
				delete(s.resident, top.block)
				break
			}
			// Stale entry: the block was re-referenced (or evicted); skip.
		}
	}
	s.resident[block] = next
	heap.Push(&s.h, entry{block, next})
	return false
}

// Simulate runs OPT over a block-address trace for a fully-associative
// cache of the given capacity in blocks.
func Simulate(blocks []uint64, capacity int) (Result, error) {
	if capacity <= 0 {
		return Result{}, fmt.Errorf("opt: nonpositive capacity %d", capacity)
	}
	next := nextUse(blocks)
	s := newSet(capacity)
	var res Result
	for i, b := range blocks {
		res.Accesses++
		if !s.access(b, next[i]) {
			res.Misses++
		}
	}
	return res, nil
}

// SimulateSetAssociative runs OPT independently per set (sets a power of
// two, indexing by the low block-address bits as in internal/cache).
//
// Per-set OPT is the standard Cheetah formulation; note it is optimal for
// each set in isolation, which equals global OPT for set-associative
// hardware since blocks cannot move between sets.
func SimulateSetAssociative(blocks []uint64, sets, ways int) (Result, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return Result{}, fmt.Errorf("opt: set count %d not a positive power of two", sets)
	}
	if ways <= 0 {
		return Result{}, fmt.Errorf("opt: nonpositive ways %d", ways)
	}
	// Next-use must be computed per set stream; using global positions is
	// fine because only the relative order within a set matters.
	next := nextUsePerSet(blocks, uint64(sets-1))
	table := make([]*set, sets)
	var res Result
	for i, b := range blocks {
		idx := b & uint64(sets-1)
		s := table[idx]
		if s == nil {
			s = newSet(ways)
			table[idx] = s
		}
		res.Accesses++
		if !s.access(b, next[i]) {
			res.Misses++
		}
	}
	return res, nil
}

// nextUsePerSet computes next-use times; identical to nextUse since a
// block always maps to the same set, the global next reference is also
// the next reference within the set.
func nextUsePerSet(blocks []uint64, _ uint64) []int64 {
	return nextUse(blocks)
}

// Curve computes OPT miss ratios for a range of fully-associative
// capacities in one call (one pass per capacity).
func Curve(blocks []uint64, capacities []int) ([]float64, error) {
	out := make([]float64, len(capacities))
	for i, c := range capacities {
		r, err := Simulate(blocks, c)
		if err != nil {
			return nil, err
		}
		out[i] = r.MissRatio()
	}
	return out, nil
}
