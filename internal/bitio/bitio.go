// Package bitio provides bit-granular reading and writing on top of
// byte-oriented io.Reader and io.Writer streams.
//
// Bits are packed most-significant-bit first within each byte, which is the
// conventional layout for canonical Huffman codes: the first bit written
// occupies the top bit of the first byte. Writers must be flushed (via Close
// or Flush) to emit a final partial byte, which is zero-padded.
package bitio

import (
	"bufio"
	"errors"
	"io"
)

// ErrTooManyBits is returned when a single read or write requests more than
// 64 bits.
var ErrTooManyBits = errors.New("bitio: bit count out of range [0,64]")

// Writer writes bits to an underlying io.Writer, buffering them into bytes.
// The zero value is not usable; use NewWriter.
type Writer struct {
	w     *bufio.Writer
	acc   uint64 // bit accumulator, top bits are pending output
	nacc  uint   // number of valid bits in acc (always < 8 after a write)
	count int64  // total bits written
	err   error
}

// NewWriter returns a Writer emitting bits to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// WriteBits writes the low n bits of v, most significant first.
// n must be in [0,64].
func (w *Writer) WriteBits(v uint64, n uint) error {
	if w.err != nil {
		return w.err
	}
	if n > 64 {
		w.err = ErrTooManyBits
		return w.err
	}
	if n == 0 {
		return nil
	}
	w.count += int64(n)
	if n < 64 {
		v &= (1 << n) - 1
	}
	// Accumulate; emit full bytes as they form.
	for n > 0 {
		take := 8 - w.nacc
		if take > n {
			take = n
		}
		// Bits of v to take: the top `take` of the remaining n.
		chunk := v >> (n - take)
		w.acc = (w.acc << take) | (chunk & ((1 << take) - 1))
		w.nacc += take
		n -= take
		if w.nacc == 8 {
			if werr := w.w.WriteByte(byte(w.acc)); werr != nil {
				w.err = werr
				return werr
			}
			w.acc, w.nacc = 0, 0
		}
	}
	return nil
}

// WriteBit writes a single bit (any nonzero b is treated as 1).
func (w *Writer) WriteBit(b uint) error {
	if b != 0 {
		b = 1
	}
	return w.WriteBits(uint64(b), 1)
}

// BitsWritten reports the total number of bits written so far,
// excluding any zero padding added by Flush or Close.
func (w *Writer) BitsWritten() int64 { return w.count }

// Flush pads the current byte with zero bits and flushes the underlying
// buffered writer. Writing may continue after a Flush; subsequent bits
// start on a byte boundary.
func (w *Writer) Flush() error {
	if w.err != nil {
		return w.err
	}
	if w.nacc > 0 {
		pad := 8 - w.nacc
		w.acc <<= pad
		if err := w.w.WriteByte(byte(w.acc)); err != nil {
			w.err = err
			return err
		}
		w.acc, w.nacc = 0, 0
	}
	if err := w.w.Flush(); err != nil {
		w.err = err
		return err
	}
	return nil
}

// Close flushes pending bits. It does not close the underlying writer.
func (w *Writer) Close() error { return w.Flush() }

// Reader reads bits from an underlying io.Reader.
// The zero value is not usable; use NewReader.
type Reader struct {
	r     io.ByteReader
	acc   uint64 // bit accumulator; low nacc bits are valid, MSB-first order
	nacc  uint
	count int64
	err   error
}

// NewReader returns a Reader consuming bits from r. If r already implements
// io.ByteReader it is used directly — no read-ahead happens beyond single
// bytes, so a Reader can share an underlying stream with other framing
// logic. Otherwise r is wrapped in a bufio.Reader (which does read ahead).
func NewReader(r io.Reader) *Reader {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{r: br}
}

// Reset re-points the Reader at a new byte source, discarding any
// buffered bits, error state and counters. It gives reusers of a Reader
// value the same behaviour as a fresh NewReader(src).
func (r *Reader) Reset(src io.Reader) {
	br, ok := src.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(src)
	}
	*r = Reader{r: br}
}

// ReadBits reads n bits (MSB first) and returns them in the low n bits of
// the result. n must be in [0,64]. At end of stream it returns io.EOF if no
// bits were consumed, io.ErrUnexpectedEOF otherwise.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if r.err != nil {
		return 0, r.err
	}
	if n > 64 {
		return 0, ErrTooManyBits
	}
	var v uint64
	got := uint(0)
	for got < n {
		if r.nacc == 0 {
			b, err := r.r.ReadByte()
			if err != nil {
				if err == io.EOF && got > 0 {
					err = io.ErrUnexpectedEOF
				}
				r.err = err
				return 0, err
			}
			r.acc = uint64(b)
			r.nacc = 8
		}
		take := n - got
		if take > r.nacc {
			take = r.nacc
		}
		shift := r.nacc - take
		chunk := (r.acc >> shift) & ((1 << take) - 1)
		v = (v << take) | chunk
		r.nacc -= take
		got += take
	}
	r.count += int64(n)
	return v, nil
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() (uint, error) {
	v, err := r.ReadBits(1)
	return uint(v), err
}

// BitsRead reports the total number of bits successfully read.
func (r *Reader) BitsRead() int64 { return r.count }

// AlignByte discards bits up to the next byte boundary.
func (r *Reader) AlignByte() {
	r.acc, r.nacc = 0, 0
}
