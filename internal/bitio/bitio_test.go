package bitio

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		if err := w.WriteBit(b); err != nil {
			t.Fatalf("WriteBit: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.BitsWritten(); got != int64(len(bits)) {
		t.Fatalf("BitsWritten = %d, want %d", got, len(bits))
	}
	r := NewReader(&buf)
	for i, want := range bits {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("ReadBit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
}

func TestMSBFirstPacking(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// 0b1010_1100 written as two nibbles.
	if err := w.WriteBits(0b1010, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0b1100, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); len(got) != 1 || got[0] != 0b1010_1100 {
		t.Fatalf("packed byte = %08b, want 10101100", got[0])
	}
}

func TestZeroPadding(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBits(0b111, 3); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes(); len(got) != 1 || got[0] != 0b1110_0000 {
		t.Fatalf("padded byte = %08b, want 11100000", got[0])
	}
}

func TestWriteBitsMasksHighBits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	// Only low 4 bits of 0xFF should be used.
	if err := w.WriteBits(0xFF, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteBits(0x0, 4); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := buf.Bytes()[0]; got != 0xF0 {
		t.Fatalf("byte = %02x, want f0", got)
	}
}

func TestTooManyBits(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBits(0, 65); err != ErrTooManyBits {
		t.Fatalf("WriteBits(65) err = %v, want ErrTooManyBits", err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadBits(65); err != ErrTooManyBits {
		t.Fatalf("ReadBits(65) err = %v, want ErrTooManyBits", err)
	}
}

func TestEOFBehaviour(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	if _, err := r.ReadBits(1); err != io.EOF {
		t.Fatalf("empty read err = %v, want io.EOF", err)
	}
	r = NewReader(bytes.NewReader([]byte{0xAB}))
	if _, err := r.ReadBits(4); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBits(8); err != io.ErrUnexpectedEOF {
		t.Fatalf("partial read err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestZeroBitOps(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteBits(123, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("zero-bit write produced %d bytes", buf.Len())
	}
	r := NewReader(&buf)
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("ReadBits(0) = %d, %v", v, err)
	}
}

func TestFull64BitValues(t *testing.T) {
	vals := []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000000, 0x0123456789ABCDEF}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, v := range vals {
		if err := w.WriteBits(v, 64); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	for i, want := range vals {
		got, err := r.ReadBits(64)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d = %#x, want %#x", i, got, want)
		}
	}
}

func TestAlignByte(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBits(0b101, 3)
	_ = w.Flush() // pad to byte boundary
	_ = w.WriteBits(0xCD, 8)
	_ = w.Close()

	r := NewReader(&buf)
	if v, _ := r.ReadBits(3); v != 0b101 {
		t.Fatalf("prefix = %03b", v)
	}
	r.AlignByte()
	if v, _ := r.ReadBits(8); v != 0xCD {
		t.Fatalf("aligned byte = %#x, want 0xcd", v)
	}
}

func TestFlushThenContinue(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBits(0xA, 4)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	_ = w.WriteBits(0xB, 4)
	_ = w.Close()
	want := []byte{0xA0, 0xB0}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("bytes = %x, want %x", buf.Bytes(), want)
	}
}

// Property: any sequence of (value, width) writes reads back identically.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		type item struct {
			v uint64
			n uint
		}
		items := make([]item, count)
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for i := range items {
			width := uint(rng.Intn(64) + 1)
			v := rng.Uint64()
			if width < 64 {
				v &= (1 << width) - 1
			}
			items[i] = item{v, width}
			if err := w.WriteBits(v, width); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		r := NewReader(&buf)
		for _, it := range items {
			got, err := r.ReadBits(it.n)
			if err != nil || got != it.v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitsReadCounter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	_ = w.WriteBits(0xFFFF, 16)
	_ = w.Close()
	r := NewReader(&buf)
	_, _ = r.ReadBits(7)
	_, _ = r.ReadBits(9)
	if r.BitsRead() != 16 {
		t.Fatalf("BitsRead = %d, want 16", r.BitsRead())
	}
}

func BenchmarkWriterWriteBits(b *testing.B) {
	w := NewWriter(io.Discard)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		_ = w.WriteBits(uint64(i), 64)
	}
}
