// Package cache models a set-associative cache with LRU replacement. It is
// the building block for the level-1 filter that produces cache-filtered
// address traces (the paper's experimental setup: 32 KB, 4-way, 64-byte
// blocks, LRU) and for validating the cheetah stack-distance simulator.
package cache

import "fmt"

// Config describes a cache geometry.
type Config struct {
	// SizeBytes is the total capacity in bytes.
	SizeBytes int
	// Ways is the associativity.
	Ways int
	// BlockBytes is the cache line size in bytes (power of two).
	BlockBytes int
}

// L1Config is the paper's level-1 configuration: 32 KB, 4-way, 64-byte
// blocks, LRU.
var L1Config = Config{SizeBytes: 32 << 10, Ways: 4, BlockBytes: 64}

// Sets computes the number of sets implied by the configuration.
func (c Config) Sets() int {
	return c.SizeBytes / (c.Ways * c.BlockBytes)
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("cache: nonpositive geometry %+v", c)
	}
	if c.BlockBytes&(c.BlockBytes-1) != 0 {
		return fmt.Errorf("cache: block size %d not a power of two", c.BlockBytes)
	}
	sets := c.Sets()
	if sets <= 0 || sets*c.Ways*c.BlockBytes != c.SizeBytes {
		return fmt.Errorf("cache: size %d not divisible into %d-way sets of %d-byte blocks",
			c.SizeBytes, c.Ways, c.BlockBytes)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache activity.
type Stats struct {
	Accesses int64
	Hits     int64
	Misses   int64
}

// MissRatio returns Misses/Accesses (0 for an untouched cache).
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// line is one resident block with its dirty state.
type line struct {
	tag   uint64
	dirty bool
}

// Cache is a set-associative LRU cache. Create one with New.
type Cache struct {
	cfg       Config
	setMask   uint64
	blockBits uint
	// sets[s] holds lines in LRU order: index 0 is most recently used.
	// Tags are full block addresses; len <= Ways.
	sets  [][]line
	stats Stats
}

// New builds a cache; the configuration must validate.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		setMask: uint64(sets - 1),
		sets:    make([][]line, sets),
	}
	for b := cfg.BlockBytes; b > 1; b >>= 1 {
		c.blockBits++
	}
	for i := range c.sets {
		c.sets[i] = make([]line, 0, cfg.Ways)
	}
	return c, nil
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Cache {
	c, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
	c.stats = Stats{}
}

// Access performs one byte-address access, returning true on hit. On a miss
// the block is filled, evicting the LRU way if the set is full.
func (c *Cache) Access(byteAddr uint64) bool {
	return c.AccessBlock(byteAddr >> c.blockBits)
}

// BlockAddr converts a byte address to its block address.
func (c *Cache) BlockAddr(byteAddr uint64) uint64 { return byteAddr >> c.blockBits }

// AccessBlock performs one (read) access by block address.
func (c *Cache) AccessBlock(block uint64) bool {
	hit, _, _ := c.AccessBlockWrite(block, false)
	return hit
}

// AccessBlockWrite performs one access by block address, marking the line
// dirty when write is true. On a miss that evicts a dirty line, the
// victim's block address is returned with writeback=true — the write-back
// events the paper suggests tagging in a trace's 6 spare top bits.
func (c *Cache) AccessBlockWrite(block uint64, write bool) (hit bool, victim uint64, writeback bool) {
	c.stats.Accesses++
	set := c.sets[block&c.setMask]
	for i := range set {
		if set[i].tag == block {
			// Hit: move to MRU position, accumulating the dirty state.
			l := set[i]
			l.dirty = l.dirty || write
			copy(set[1:i+1], set[:i])
			set[0] = l
			c.stats.Hits++
			return true, 0, false
		}
	}
	c.stats.Misses++
	if len(set) < c.cfg.Ways {
		set = append(set, line{})
	} else {
		lru := set[len(set)-1]
		if lru.dirty {
			victim, writeback = lru.tag, true
		}
	}
	copy(set[1:], set)
	set[0] = line{tag: block, dirty: write}
	c.sets[block&c.setMask] = set
	return false, victim, writeback
}

// Contains reports whether a block is resident (without touching LRU state).
func (c *Cache) Contains(block uint64) bool {
	for _, l := range c.sets[block&c.setMask] {
		if l.tag == block {
			return true
		}
	}
	return false
}
