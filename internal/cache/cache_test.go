package cache

import (
	"math/rand"
	"testing"
)

func TestConfigSets(t *testing.T) {
	if got := L1Config.Sets(); got != 128 {
		t.Fatalf("L1 sets = %d, want 128 (32KB / (4*64B))", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, Ways: 1, BlockBytes: 64},
		{SizeBytes: 1024, Ways: 0, BlockBytes: 64},
		{SizeBytes: 1024, Ways: 1, BlockBytes: 63},       // not power of two
		{SizeBytes: 1000, Ways: 1, BlockBytes: 64},       // not divisible
		{SizeBytes: 3 * 64 * 4, Ways: 4, BlockBytes: 64}, // 3 sets: not pow2
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
	if err := L1Config.Validate(); err != nil {
		t.Fatalf("L1Config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := MustNew(L1Config)
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1004) {
		t.Fatal("same-block access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped single-set cache: 1 set, 2 ways.
	cfg := Config{SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64}
	c := MustNew(cfg)
	c.AccessBlock(1)
	c.AccessBlock(2)
	c.AccessBlock(1) // 1 is now MRU, 2 is LRU
	c.AccessBlock(3) // evicts 2
	if !c.Contains(1) {
		t.Fatal("block 1 (MRU) was evicted")
	}
	if c.Contains(2) {
		t.Fatal("block 2 (LRU) survived eviction")
	}
	if !c.Contains(3) {
		t.Fatal("block 3 missing after fill")
	}
}

func TestSetIndexing(t *testing.T) {
	// Blocks mapping to different sets must not evict each other.
	cfg := Config{SizeBytes: 4 * 64, Ways: 1, BlockBytes: 64} // 4 sets, direct mapped
	c := MustNew(cfg)
	for b := uint64(0); b < 4; b++ {
		c.AccessBlock(b)
	}
	for b := uint64(0); b < 4; b++ {
		if !c.Contains(b) {
			t.Fatalf("block %d evicted despite distinct sets", b)
		}
	}
	// Block 4 maps to set 0 and evicts block 0 only.
	c.AccessBlock(4)
	if c.Contains(0) || !c.Contains(1) {
		t.Fatal("conflict eviction wrong")
	}
}

func TestWorkingSetFitsAfterWarmup(t *testing.T) {
	c := MustNew(L1Config)
	blocks := make([]uint64, 512) // 32KB / 64B = 512 blocks: exactly capacity
	for i := range blocks {
		blocks[i] = uint64(i)
	}
	// Sequential blocks spread uniformly over sets: the whole set fits.
	for _, b := range blocks {
		c.AccessBlock(b)
	}
	miss0 := c.Stats().Misses
	for round := 0; round < 3; round++ {
		for _, b := range blocks {
			c.AccessBlock(b)
		}
	}
	if c.Stats().Misses != miss0 {
		t.Fatalf("steady-state misses: %d extra", c.Stats().Misses-miss0)
	}
}

func TestThrashingBeyondCapacity(t *testing.T) {
	c := MustNew(L1Config)
	// 2x capacity, sequential: LRU thrashes, every access misses.
	n := 1024
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			c.AccessBlock(uint64(i))
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Fatalf("cyclic over-capacity scan got %d hits under LRU, want 0", s.Hits)
	}
}

func TestReset(t *testing.T) {
	c := MustNew(L1Config)
	c.Access(123456)
	c.Reset()
	if s := c.Stats(); s.Accesses != 0 {
		t.Fatalf("stats after reset = %+v", s)
	}
	if c.Access(123456) {
		t.Fatal("hit after reset")
	}
}

func TestMissRatio(t *testing.T) {
	var s Stats
	if s.MissRatio() != 0 {
		t.Fatal("empty stats miss ratio != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRatio() != 0.25 {
		t.Fatalf("miss ratio = %v", s.MissRatio())
	}
}

func TestRandomLoopHitRatioApproximation(t *testing.T) {
	// The paper's motivating example (§5): random accesses over N blocks
	// with a cache of C block capacity give hit ratio ~ C/N (for N >> C,
	// fully-associative intuition; set-associative is close).
	c := MustNew(Config{SizeBytes: 64 * 256, Ways: 8, BlockBytes: 64}) // C=256 blocks
	const N = 2048
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400_000; i++ {
		c.AccessBlock(uint64(rng.Intn(N)))
	}
	hitRatio := 1 - c.Stats().MissRatio()
	want := 256.0 / N
	if hitRatio < want*0.8 || hitRatio > want*1.2 {
		t.Fatalf("hit ratio = %.4f, want ~%.4f", hitRatio, want)
	}
}

func BenchmarkAccess(b *testing.B) {
	c := MustNew(L1Config)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AccessBlock(addrs[i&(1<<16-1)])
	}
}
