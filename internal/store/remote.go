package store

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// RemoteStore opens a single-file .atc archive held behind an HTTP(S) URL
// — an object-storage bucket, a CDN, any server honoring `Range` requests
// (S3-compatible semantics) — without downloading it. All reads go through
// a caching RangeReaderAt: block-aligned ranged GETs, a bounded LRU block
// cache, adjacent-read coalescing and in-flight deduplication, so a
// serving tier in front of object storage touches the origin once per
// block, not once per read.
//
// The store is read-only: Create and Remove fail exactly as they do on any
// archive opened for reading. The archive's TOC is fetched and fully
// validated at open (footer + TOC are one or two ranged GETs), after which
// every blob is served through the shared block cache.
//
// Consistency: the object's size and ETag are captured at open. Every
// later response is checked against them — and an `If-Match` header asks
// the server to enforce it — so an object replaced mid-session surfaces as
// ErrCorrupt instead of a silent splice of old and new bytes.
type RemoteStore struct {
	*ArchiveStore
	ra *RangeReaderAt
}

// ErrRemote reports a failed remote fetch — a transport error or an HTTP
// error status. It does not implicate the stored bytes; corruption and
// mid-session object replacement surface as ErrCorrupt instead.
var ErrRemote = errors.New("atc: remote store fetch failed")

// errTransient marks an ErrRemote worth retrying (5xx, transport hiccups).
// It wraps ErrRemote so callers classifying with errors.Is see one class.
var errTransient = fmt.Errorf("%w (transient)", ErrRemote)

// Remote tuning defaults; see RemoteOptions.
const (
	DefaultRemoteBlockSize   = 256 << 10 // 256 KiB per ranged GET
	DefaultRemoteCacheBlocks = 64        // 16 MiB cached at the default block size
	DefaultRemoteRetries     = 2         // 3 attempts in total
	DefaultRemoteRetryDelay  = 100 * time.Millisecond
	DefaultRemoteMaxPrefetch = 16 // adaptive readahead window cap, in blocks
)

// RemoteOptions tunes OpenRemote. The zero value selects the defaults.
type RemoteOptions struct {
	// BlockSize is the fetch granularity in bytes: every ranged GET is
	// aligned to and sized in whole blocks (the final block of the object
	// may be short). Default DefaultRemoteBlockSize.
	BlockSize int
	// CacheBlocks bounds the LRU block cache, in blocks. Default
	// DefaultRemoteCacheBlocks.
	CacheBlocks int
	// Retries is the number of additional attempts after a transient
	// failure (HTTP 5xx or a transport error). Default
	// DefaultRemoteRetries.
	Retries int
	// RetryDelay is the backoff before the first retry, doubling per
	// attempt. Default DefaultRemoteRetryDelay.
	RetryDelay time.Duration
	// Client overrides the HTTP client (timeouts, proxies, auth
	// round-trippers for private buckets). Default http.DefaultClient.
	Client *http.Client
	// DisablePrefetch turns off sequential block readahead: by default a
	// read continuing the previous read's frontier triggers a background
	// fetch of the blocks after it, overlapping origin latency with
	// decompression of the current one. Prefetched blocks land in the
	// same LRU and are counted hit or wasted (evicted untouched) on
	// atc_remote_prefetch_total.
	DisablePrefetch bool
	// MaxPrefetchBlocks caps the adaptive readahead window: sustained
	// sequential reads double the number of blocks speculated ahead
	// (1, 2, 4, …, issued as one coalesced ranged GET) up to this cap,
	// and any non-sequential read or wasted prefetch halves it. 1 pins
	// the pre-adaptive fixed depth-1 behavior. Default
	// DefaultRemoteMaxPrefetch.
	MaxPrefetchBlocks int
}

// IsRemoteURL reports whether path names a remote archive — an http(s)
// URL rather than a filesystem path. Open-style entry points use it to
// route a path to OpenRemote.
func IsRemoteURL(path string) bool {
	return strings.HasPrefix(path, "http://") || strings.HasPrefix(path, "https://")
}

// OpenRemote opens the single-file archive at url for reading. The
// object's size and ETag are probed up front (HEAD, with a one-byte
// ranged-GET fallback for servers that refuse HEAD) and the archive TOC is
// validated exactly as OpenArchive would.
func OpenRemote(url string, opts RemoteOptions) (*RemoteStore, error) {
	if !IsRemoteURL(url) {
		return nil, fmt.Errorf("%w: not an http(s) URL: %q", ErrRemote, url)
	}
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultRemoteBlockSize
	}
	if opts.CacheBlocks <= 0 {
		opts.CacheBlocks = DefaultRemoteCacheBlocks
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = DefaultRemoteRetries
	}
	if opts.RetryDelay <= 0 {
		opts.RetryDelay = DefaultRemoteRetryDelay
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	size, etag, err := probeRemote(opts.Client, url, opts.Retries, opts.RetryDelay)
	if err != nil {
		return nil, err
	}
	ra := &RangeReaderAt{
		url:         url,
		client:      opts.Client,
		size:        size,
		etag:        etag,
		blockSize:   int64(opts.BlockSize),
		retries:     opts.Retries,
		retryDelay:  opts.RetryDelay,
		noPrefetch:  opts.DisablePrefetch,
		maxPrefetch: int64(opts.MaxPrefetchBlocks),
		cache:       blockLRU{cap: opts.CacheBlocks, m: map[int64]*list.Element{}},
		inflight:    map[int64]*blockFetch{},
	}
	ast, err := OpenArchiveReaderAt(ra, size)
	if err != nil {
		return nil, err
	}
	ast.path = url
	return &RemoteStore{ArchiveStore: ast, ra: ra}, nil
}

// URL reports the archive's remote location.
func (s *RemoteStore) URL() string { return s.ra.url }

// ReaderStats reports the underlying RangeReaderAt's fetch counters.
func (s *RemoteStore) ReaderStats() RemoteStats { return s.ra.Stats() }

// Close releases the store. No connection state is pinned per store — the
// HTTP client's idle pool is shared — so this only finalizes the embedded
// archive bookkeeping.
func (s *RemoteStore) Close() error { return s.ArchiveStore.Close() }

// RemoteSize probes the size of a remote object without opening it as an
// archive — one HEAD (or one-byte ranged GET). It backs StoreSize-style
// metrics for http(s) trace paths.
func RemoteSize(url string) (int64, error) {
	if !IsRemoteURL(url) {
		return 0, fmt.Errorf("%w: not an http(s) URL: %q", ErrRemote, url)
	}
	size, _, err := probeRemote(http.DefaultClient, url, DefaultRemoteRetries, DefaultRemoteRetryDelay)
	return size, err
}

// RemoteStats counts a RangeReaderAt's traffic.
type RemoteStats struct {
	// Fetches is the number of HTTP requests issued (including retries
	// and the open-time probe's ranged fallback, excluding HEAD).
	Fetches int64
	// BytesFetched is the payload bytes successfully fetched.
	BytesFetched int64
	// BlockHits is the number of block lookups served from the cache.
	BlockHits int64
	// Retries is the number of transient failures retried with backoff.
	Retries int64
	// Prefetches is the number of background block fetches launched by
	// the sequential-readahead heuristic.
	Prefetches int64
	// PrefetchHits is the number of prefetched blocks a later read used
	// (from the cache, or deduplicated onto the fetch in flight).
	PrefetchHits int64
	// PrefetchWasted is the number of prefetched blocks evicted without
	// ever being read.
	PrefetchWasted int64
	// PrefetchDepth is the current adaptive readahead window, in blocks:
	// doubled (up to the configured cap) on each sustained sequential
	// read, halved on a non-sequential read or a wasted prefetch.
	PrefetchDepth int64
}

// RangeReaderAt is a caching io.ReaderAt over one remote object. Reads are
// decomposed into aligned blocks; missing adjacent blocks coalesce into a
// single ranged GET, concurrent fetches of one block deduplicate onto a
// single request, and fetched blocks land in a bounded LRU. It is safe for
// concurrent use — the access pattern of the archive decoder's readahead
// fan-out.
type RangeReaderAt struct {
	url        string
	client     *http.Client
	size       int64
	etag       string
	blockSize  int64
	retries    int
	retryDelay time.Duration
	noPrefetch bool
	// maxPrefetch caps the adaptive readahead window in blocks (0 means
	// DefaultRemoteMaxPrefetch, resolved lazily so zero-value readers in
	// tests behave like the default).
	maxPrefetch int64

	mu       sync.Mutex
	cache    blockLRU
	inflight map[int64]*blockFetch
	// prevLast is the last block the previous ReadAt touched (valid once
	// hasRead is set): a read starting at or adjacent to that frontier
	// AND advancing past it is "sequential" and prefetches the blocks
	// after its own end. Requiring progress keeps repeated reads inside
	// one block (a bufio draining it) from re-triggering speculation.
	prevLast int64
	hasRead  bool
	// prefDepth is the adaptive readahead window in blocks (0 reads as
	// 1): each sequential read speculates prefDepth blocks ahead and
	// doubles it up to maxPrefetch; a non-sequential read or a wasted
	// prefetch halves it, so the window tracks how committed the consumer
	// actually is to the sequential pattern. Guarded by mu.
	prefDepth int64

	fetches        atomic.Int64
	bytesFetched   atomic.Int64
	blockHits      atomic.Int64
	retried        atomic.Int64
	prefetches     atomic.Int64
	prefetchHits   atomic.Int64
	prefetchWasted atomic.Int64
}

// blockFetch is one in-flight block: done closes once data/err are set, so
// readers needing a block another goroutine is already fetching wait here
// instead of issuing a duplicate request.
type blockFetch struct {
	done chan struct{}
	data []byte
	err  error
	// prefetch marks a speculative background fetch. The first reader to
	// dedupe onto it (or hit the cached result) clears the flag and
	// counts a prefetch hit; eviction with the flag still set counts it
	// wasted. Mutated only under RangeReaderAt.mu.
	prefetch bool
}

// Size reports the remote object's length captured at open.
func (r *RangeReaderAt) Size() int64 { return r.size }

// ETag reports the validator captured at open ("" when the server sent
// none; consistency then degrades to size checks).
func (r *RangeReaderAt) ETag() string { return r.etag }

// depthLocked resolves the current readahead window; callers hold mu.
func (r *RangeReaderAt) depthLocked() int64 {
	if r.prefDepth < 1 {
		return 1
	}
	return r.prefDepth
}

// maxDepth resolves the configured window cap (immutable after open).
func (r *RangeReaderAt) maxDepth() int64 {
	if r.maxPrefetch > 0 {
		return r.maxPrefetch
	}
	return DefaultRemoteMaxPrefetch
}

// Stats reports fetch counters.
func (r *RangeReaderAt) Stats() RemoteStats {
	r.mu.Lock()
	depth := r.depthLocked()
	r.mu.Unlock()
	return RemoteStats{
		PrefetchDepth:  depth,
		Fetches:        r.fetches.Load(),
		BytesFetched:   r.bytesFetched.Load(),
		BlockHits:      r.blockHits.Load(),
		Retries:        r.retried.Load(),
		Prefetches:     r.prefetches.Load(),
		PrefetchHits:   r.prefetchHits.Load(),
		PrefetchWasted: r.prefetchWasted.Load(),
	}
}

// ReadAt implements io.ReaderAt over the block cache.
func (r *RangeReaderAt) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("%w: negative read offset %d", ErrRemote, off)
	}
	if off >= r.size {
		if len(p) == 0 {
			return 0, nil
		}
		return 0, io.EOF
	}
	short := false
	if off+int64(len(p)) > r.size {
		p = p[:r.size-off]
		short = true
	}
	if len(p) == 0 {
		return 0, nil
	}
	first := off / r.blockSize
	last := (off + int64(len(p)) - 1) / r.blockSize
	// blocks gathers each needed block's payload; cache references are
	// taken under the lock and stay valid after eviction (payloads are
	// immutable once fetched).
	blocks := make([][]byte, last-first+1)
	type waiter struct {
		i int
		f *blockFetch
	}
	var waits []waiter
	var runs [][2]int64 // inclusive block ranges this call claimed to fetch
	r.mu.Lock()
	sequential := r.hasRead && first <= r.prevLast+1 && last > r.prevLast
	// Adapt the readahead window to how committed the consumer is to the
	// sequential pattern: sustained sequential reads double it (capped),
	// any departure halves it.
	var depth int64
	if sequential {
		depth = r.depthLocked()
		if next := depth * 2; next <= r.maxDepth() {
			r.prefDepth = next
		} else {
			r.prefDepth = r.maxDepth()
		}
	} else if r.hasRead {
		r.prefDepth = r.depthLocked() / 2
	}
	r.prevLast = last
	r.hasRead = true
	for b := first; b <= last; b++ {
		i := int(b - first)
		if data, pref, ok := r.cache.get(b); ok {
			r.blockHits.Add(1)
			metRemoteBlockHits.Inc()
			if pref {
				r.prefetchHits.Add(1)
				metRemotePrefetchHit.Inc()
			}
			blocks[i] = data
			continue
		}
		if f, ok := r.inflight[b]; ok {
			if f.prefetch {
				f.prefetch = false
				r.prefetchHits.Add(1)
				metRemotePrefetchHit.Inc()
			}
			waits = append(waits, waiter{i, f})
			continue
		}
		// Claim this block and every adjacent unclaimed miss up to the
		// read's end: the run is served by one coalesced ranged GET.
		start := b
		for {
			r.inflight[b] = &blockFetch{done: make(chan struct{})}
			if b == last {
				break
			}
			if _, cached := r.cache.m[b+1]; cached {
				break
			}
			if _, busy := r.inflight[b+1]; busy {
				break
			}
			b++
		}
		runs = append(runs, [2]int64{start, b})
	}
	r.mu.Unlock()
	if sequential {
		r.maybePrefetch(last+1, depth)
	}
	for _, run := range runs {
		metRemoteRunBlocks.Observe(float64(run[1] - run[0] + 1))
	}
	// Fetch the claimed runs. Every claimed block must be resolved even
	// after a failure — other readers may be parked on its done channel —
	// so later runs are failed explicitly rather than skipped.
	var fetchErr error
	for _, run := range runs {
		if fetchErr != nil {
			r.failRun(run[0], run[1], fetchErr)
			continue
		}
		if err := r.fetchRun(run[0], run[1], first, blocks); err != nil {
			fetchErr = err
		}
	}
	if fetchErr != nil {
		return 0, fetchErr
	}
	for _, w := range waits {
		<-w.f.done
		if w.f.err != nil {
			return 0, w.f.err
		}
		r.blockHits.Add(1) // deduplicated onto another reader's fetch
		metRemoteBlockHits.Inc()
		blocks[w.i] = w.f.data
	}
	// Assemble the caller's window from the gathered blocks.
	n := 0
	for i, data := range blocks {
		blockOff := (first + int64(i)) * r.blockSize
		lo := int64(0)
		if off > blockOff {
			lo = off - blockOff
		}
		hi := int64(len(data))
		if end := off + int64(len(p)) - blockOff; end < hi {
			hi = end
		}
		if lo > hi {
			lo = hi
		}
		n += copy(p[n:], data[lo:hi])
	}
	if n != len(p) {
		return n, fmt.Errorf("%w: remote read at %d assembled %d of %d bytes", ErrCorrupt, off, n, len(p))
	}
	if short {
		return n, io.EOF
	}
	return n, nil
}

// maybePrefetch launches a background fetch of up to depth blocks
// starting at b after a sequential read, so the next ReadAts find them
// cached (or dedupe onto the fetch in flight) instead of paying a full
// origin round trip per block. The first contiguous run of missing
// blocks inside the window is claimed and fetched as one coalesced
// ranged GET; already-cached, already-in-flight and past-EOF blocks are
// skipped. A failed prefetch is discarded silently — the demand fetch
// that would have needed it retries from scratch with full error
// reporting.
func (r *RangeReaderAt) maybePrefetch(b, depth int64) {
	if r.noPrefetch || b*r.blockSize >= r.size {
		return
	}
	nblocks := (r.size + r.blockSize - 1) / r.blockSize
	end := b + depth
	if end > nblocks {
		end = nblocks
	}
	var start, stop int64 = -1, -1
	r.mu.Lock()
	for blk := b; blk < end; blk++ {
		_, cached := r.cache.m[blk]
		_, busy := r.inflight[blk]
		if cached || busy {
			if start >= 0 {
				break // one contiguous run per GET; stop at the first gap
			}
			continue
		}
		if start < 0 {
			start = blk
		}
		stop = blk
	}
	// Hysteresis: top up only once at least half the window has drained.
	// Without it a consumer keeping pace with the readahead would extend
	// the frontier by one block per read — a 1-block GET per read, the
	// request rate adaptivity exists to avoid. With it, steady state is
	// one half-window coalesced GET per half-window consumed.
	if start < 0 || (stop-start+1)*2 < depth {
		r.mu.Unlock()
		return
	}
	fetches := make([]*blockFetch, stop-start+1)
	for i := range fetches {
		fetches[i] = &blockFetch{done: make(chan struct{}), prefetch: true}
		r.inflight[start+int64(i)] = fetches[i]
	}
	r.mu.Unlock()
	r.prefetches.Add(int64(len(fetches)))
	metRemotePrefetchDepth.Observe(float64(len(fetches)))
	go func() {
		off := start * r.blockSize
		length := (stop+1)*r.blockSize - off
		if off+length > r.size {
			length = r.size - off
		}
		data, err := r.fetchRange(off, length)
		r.mu.Lock()
		for i, f := range fetches {
			blk := start + int64(i)
			delete(r.inflight, blk)
			if err != nil {
				f.err = err
			} else {
				lo := int64(i) * r.blockSize
				hi := lo + r.blockSize
				if hi > int64(len(data)) {
					hi = int64(len(data))
				}
				f.data = data[lo:hi]
				// A reader that deduped onto this fetch already cleared
				// f.prefetch and took the hit; only a still-speculative
				// block enters the cache flagged.
				r.noteWasted(r.cache.put(blk, f.data, f.prefetch))
			}
			close(f.done)
		}
		r.mu.Unlock()
	}()
}

// noteWasted tallies prefetched blocks evicted before any read used them
// and halves the adaptive window — speculation outran the consumer.
// Always called with mu held.
func (r *RangeReaderAt) noteWasted(n int) {
	if n > 0 {
		r.prefetchWasted.Add(int64(n))
		metRemotePrefetchWasted.Add(int64(n))
		r.prefDepth = r.depthLocked() / 2
	}
}

// fetchRun fetches blocks [start, end] in one ranged GET, resolves their
// in-flight registrations, inserts them into the LRU and fills the calling
// ReadAt's assembly slots.
func (r *RangeReaderAt) fetchRun(start, end, first int64, blocks [][]byte) error {
	off := start * r.blockSize
	length := (end+1)*r.blockSize - off
	if off+length > r.size {
		length = r.size - off
	}
	data, err := r.fetchRange(off, length)
	r.mu.Lock()
	for b := start; b <= end; b++ {
		f := r.inflight[b]
		delete(r.inflight, b)
		if err != nil {
			f.err = err
		} else {
			lo := (b - start) * r.blockSize
			hi := lo + r.blockSize
			if hi > int64(len(data)) {
				hi = int64(len(data))
			}
			f.data = data[lo:hi]
			r.noteWasted(r.cache.put(b, f.data, false))
			if i := int(b - first); i >= 0 && i < len(blocks) {
				blocks[i] = f.data
			}
		}
		close(f.done)
	}
	r.mu.Unlock()
	return err
}

// failRun resolves claimed-but-unfetched blocks with err so waiters on
// them never hang after an earlier run in the same ReadAt failed.
func (r *RangeReaderAt) failRun(start, end int64, err error) {
	r.mu.Lock()
	for b := start; b <= end; b++ {
		f := r.inflight[b]
		delete(r.inflight, b)
		f.err = err
		close(f.done)
	}
	r.mu.Unlock()
}

// fetchRange GETs the byte range [off, off+n), retrying transient failures
// (5xx, transport errors) with doubling backoff. Validation failures — a
// changed ETag, an inconsistent total size, a server ignoring Range — are
// permanent and surface immediately.
func (r *RangeReaderAt) fetchRange(off, n int64) ([]byte, error) {
	delay := r.retryDelay
	for attempt := 0; ; attempt++ {
		data, err := r.fetchOnce(off, n)
		if err == nil || !errors.Is(err, errTransient) || attempt >= r.retries {
			return data, err
		}
		r.retried.Add(1)
		metRemoteRetries.Inc()
		time.Sleep(delay)
		delay *= 2
	}
}

// fetchOnce issues one ranged GET and validates the response against the
// identity captured at open.
func (r *RangeReaderAt) fetchOnce(off, n int64) ([]byte, error) {
	start := time.Now()
	defer func() { metRemoteFetchSec.ObserveDuration(time.Since(start)) }()
	req, err := http.NewRequest(http.MethodGet, r.url, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRemote, err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", off, off+n-1))
	if r.etag != "" {
		// Ask the server to enforce the open-time identity: S3 (and
		// net/http's ServeContent) answer 412 when the object changed.
		req.Header.Set("If-Match", r.etag)
	}
	r.fetches.Add(1)
	metRemoteFetches.Inc()
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: GET %s: %v", errTransient, r.url, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusPartialContent:
	case resp.StatusCode == http.StatusOK:
		return nil, fmt.Errorf("%w: %s ignored the Range request (an S3-compatible ranged-read server is required)", ErrRemote, r.url)
	case resp.StatusCode == http.StatusPreconditionFailed:
		return nil, fmt.Errorf("%w: remote archive %s changed mid-session (ETag %s no longer matches)", ErrCorrupt, r.url, r.etag)
	case resp.StatusCode == http.StatusRequestedRangeNotSatisfiable:
		return nil, fmt.Errorf("%w: remote archive %s shrank mid-session (range [%d,+%d) unsatisfiable)", ErrCorrupt, r.url, off, n)
	case resp.StatusCode >= 500:
		return nil, fmt.Errorf("%w: GET %s: %s", errTransient, r.url, resp.Status)
	default:
		return nil, fmt.Errorf("%w: GET %s: %s", ErrRemote, r.url, resp.Status)
	}
	if etag := resp.Header.Get("Etag"); etag != "" && r.etag != "" && etag != r.etag {
		return nil, fmt.Errorf("%w: remote archive %s changed mid-session (ETag %s, had %s)", ErrCorrupt, r.url, etag, r.etag)
	}
	gotOff, total, err := parseContentRange(resp.Header.Get("Content-Range"))
	if err != nil {
		return nil, err
	}
	if gotOff != off || total != r.size {
		return nil, fmt.Errorf("%w: remote archive %s served range at %d of %d bytes, want %d of %d (object replaced mid-session?)",
			ErrCorrupt, r.url, gotOff, total, off, r.size)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(resp.Body, data); err != nil {
		return nil, fmt.Errorf("%w: GET %s: short body: %v", errTransient, r.url, err)
	}
	r.bytesFetched.Add(n)
	metRemoteBytes.Add(n)
	return data, nil
}

// parseContentRange parses a "bytes a-b/total" Content-Range header. The
// total is required — "*" would leave mid-session size validation blind.
func parseContentRange(h string) (off, total int64, err error) {
	span, ok := strings.CutPrefix(h, "bytes ")
	if !ok {
		return 0, 0, fmt.Errorf("%w: remote response Content-Range %q unparseable", ErrCorrupt, h)
	}
	rng, totalStr, ok := strings.Cut(span, "/")
	if !ok {
		return 0, 0, fmt.Errorf("%w: remote response Content-Range %q unparseable", ErrCorrupt, h)
	}
	offStr, _, ok := strings.Cut(rng, "-")
	if !ok {
		return 0, 0, fmt.Errorf("%w: remote response Content-Range %q unparseable", ErrCorrupt, h)
	}
	off, err = strconv.ParseInt(offStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: remote response Content-Range %q unparseable", ErrCorrupt, h)
	}
	total, err = strconv.ParseInt(totalStr, 10, 64)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: remote response Content-Range total %q unparseable", ErrCorrupt, totalStr)
	}
	return off, total, nil
}

// probeRemote learns the object's size and ETag: HEAD when the server
// supports it, else a one-byte ranged GET whose Content-Range carries the
// total. Transient failures retry like data fetches.
func probeRemote(client *http.Client, url string, retries int, delay time.Duration) (int64, string, error) {
	for attempt := 0; ; attempt++ {
		size, etag, err := probeOnce(client, url)
		if err == nil || !errors.Is(err, errTransient) || attempt >= retries {
			return size, etag, err
		}
		time.Sleep(delay)
		delay *= 2
	}
}

func probeOnce(client *http.Client, url string) (int64, string, error) {
	if resp, err := client.Head(url); err == nil {
		etag := resp.Header.Get("Etag")
		size := resp.ContentLength
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK && size >= 0:
			return size, etag, nil
		case resp.StatusCode >= 500:
			return 0, "", fmt.Errorf("%w: HEAD %s: %s", errTransient, url, resp.Status)
		}
		// HEAD refused or size-less: fall through to the ranged probe.
	}
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return 0, "", fmt.Errorf("%w: %v", ErrRemote, err)
	}
	req.Header.Set("Range", "bytes=0-0")
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", fmt.Errorf("%w: GET %s: %v", errTransient, url, err)
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusPartialContent:
	case resp.StatusCode >= 500:
		return 0, "", fmt.Errorf("%w: GET %s: %s", errTransient, url, resp.Status)
	case resp.StatusCode == http.StatusOK:
		return 0, "", fmt.Errorf("%w: %s does not support Range requests (an S3-compatible ranged-read server is required)", ErrRemote, url)
	default:
		return 0, "", fmt.Errorf("%w: GET %s: %s", ErrRemote, url, resp.Status)
	}
	_, total, err := parseContentRange(resp.Header.Get("Content-Range"))
	if err != nil {
		return 0, "", err
	}
	return total, resp.Header.Get("Etag"), nil
}

// blockLRU is the bounded block cache; all access is under RangeReaderAt.mu.
type blockLRU struct {
	cap int
	ll  list.List
	m   map[int64]*list.Element
}

type lruBlock struct {
	id   int64
	data []byte
	// prefetched marks a speculative block no read has used yet; see
	// blockFetch.prefetch for the hit/wasted accounting protocol.
	prefetched bool
}

// get returns a cached block and marks it most recently used. The second
// result reports (and clears) the block's untouched-prefetch flag.
//
//atc:hotpath
func (c *blockLRU) get(id int64) ([]byte, bool, bool) {
	e, ok := c.m[id]
	if !ok {
		return nil, false, false
	}
	c.ll.MoveToFront(e)
	blk := e.Value.(*lruBlock)
	pref := blk.prefetched
	blk.prefetched = false
	return blk.data, pref, true
}

// put inserts a block, evicting from the least recently used end. It
// returns the number of evicted blocks whose prefetched flag was never
// cleared — speculative fetches that turned out wasted.
func (c *blockLRU) put(id int64, data []byte, prefetched bool) (wasted int) {
	if e, ok := c.m[id]; ok {
		c.ll.MoveToFront(e)
		blk := e.Value.(*lruBlock)
		blk.data = data
		blk.prefetched = blk.prefetched && prefetched
		return 0
	}
	c.m[id] = c.ll.PushFront(&lruBlock{id: id, data: data, prefetched: prefetched})
	for len(c.m) > c.cap {
		e := c.ll.Back()
		blk := e.Value.(*lruBlock)
		if blk.prefetched {
			wasted++
		}
		delete(c.m, blk.id)
		c.ll.Remove(e)
	}
	return wasted
}
