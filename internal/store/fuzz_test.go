package store

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// FuzzTOC throws arbitrary bytes at the archive opener — which parses the
// header, footer and table of contents — and, when a mutated archive still
// opens, at every blob read. The invariant is the corrupt-input contract
// of the whole decoder stack: any outcome is either success or an error
// (ErrCorrupt for structural damage), never a panic, a hang, or an
// out-of-bounds read.
//
// CI runs this for a short smoke window (go test -fuzz=FuzzTOC
// -fuzztime=10s ./internal/store); the corpus seeds cover a valid archive,
// an empty one, and each structural region so mutations start near the
// interesting boundaries.
func FuzzTOC(f *testing.F) {
	// Seed 1: a realistic archive with several blobs.
	valid := buildSeedArchive(f, map[string][]byte{
		"MANIFEST": []byte("atc 1\nmode lossless\nbackend store\n"),
		"INFO.bsc": bytes.Repeat([]byte{7, 0, 9}, 50),
		"1.bsc":    bytes.Repeat([]byte{0xFE}, 300),
		"2.bsc":    {},
	})
	f.Add(valid)
	// Seed 2: the smallest valid archive (no blobs).
	f.Add(buildSeedArchive(f, nil))
	// Seed 3-5: structurally truncated variants.
	f.Add(valid[:archiveHeaderLen])
	f.Add(valid[:len(valid)-archiveFooterLen])
	f.Add(valid[:len(valid)-1])

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := OpenArchiveReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			// Every rejection must carry the corruption sentinel so
			// callers can distinguish damage from I/O trouble.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("open rejected input without ErrCorrupt: %v", err)
			}
			return
		}
		// The TOC validated: every listed blob must be readable to its
		// declared size or fail cleanly with a CRC error.
		names, err := s.List()
		if err != nil {
			t.Fatalf("List on opened archive: %v", err)
		}
		for _, name := range names {
			b, err := s.Open(name)
			if err != nil {
				t.Fatalf("Open(%q) on validated TOC: %v", name, err)
			}
			got, err := io.ReadAll(b)
			if err != nil && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("blob %q read: %v", name, err)
			}
			if err == nil && int64(len(got)) != b.Size() {
				t.Fatalf("blob %q: read %d bytes, Size says %d", name, len(got), b.Size())
			}
			b.Close()
		}
	})
}

func buildSeedArchive(f *testing.F, blobs map[string][]byte) []byte {
	f.Helper()
	path := filepath.Join(f.TempDir(), "seed.atc")
	s, err := CreateArchive(path)
	if err != nil {
		f.Fatal(err)
	}
	for name, data := range blobs {
		if err := WriteBlob(s, name, data); err != nil {
			f.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	return data
}
