package store

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rangeHost serves one in-memory object with manually implemented single-
// range semantics, instrumented for the tests: request/range capture, an
// injectable run of 503s, a gate that parks requests (to prove
// singleflight), and mutable payload/ETag (to prove mid-session change
// detection).
type rangeHost struct {
	mu       sync.Mutex
	data     []byte
	etag     string
	noHead   bool
	failures int // next N data GETs answer 503

	requests atomic.Int64 // data GETs served (not HEAD)
	ranges   []string     // Range headers seen on data GETs
	gate     chan struct{}
}

func (h *rangeHost) set(data []byte, etag string) {
	h.mu.Lock()
	h.data = data
	h.etag = etag
	h.mu.Unlock()
}

func (h *rangeHost) seenRanges() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.ranges...)
}

func (h *rangeHost) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	data, etag := h.data, h.etag
	h.mu.Unlock()
	if r.Method == http.MethodHead {
		if h.noHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		if etag != "" {
			w.Header().Set("Etag", etag)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		return
	}
	h.mu.Lock()
	h.requests.Add(1)
	h.ranges = append(h.ranges, r.Header.Get("Range"))
	fail := h.failures > 0
	if fail {
		h.failures--
	}
	h.mu.Unlock()
	if h.gate != nil {
		<-h.gate
	}
	if fail {
		http.Error(w, "injected", http.StatusServiceUnavailable)
		return
	}
	if im := r.Header.Get("If-Match"); im != "" && etag != "" && im != etag {
		w.WriteHeader(http.StatusPreconditionFailed)
		return
	}
	rng := r.Header.Get("Range")
	if rng == "" {
		if etag != "" {
			w.Header().Set("Etag", etag)
		}
		w.Write(data)
		return
	}
	span, ok := strings.CutPrefix(rng, "bytes=")
	if !ok {
		w.WriteHeader(http.StatusBadRequest)
		return
	}
	loStr, hiStr, _ := strings.Cut(span, "-")
	lo, _ := strconv.ParseInt(loStr, 10, 64)
	hi, _ := strconv.ParseInt(hiStr, 10, 64)
	if lo >= int64(len(data)) {
		w.WriteHeader(http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if hi >= int64(len(data)) {
		hi = int64(len(data)) - 1
	}
	if etag != "" {
		w.Header().Set("Etag", etag)
	}
	w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", lo, hi, len(data)))
	w.WriteHeader(http.StatusPartialContent)
	w.Write(data[lo : hi+1])
}

func testObject(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 7)
	}
	return data
}

func newRemoteReader(t *testing.T, h *rangeHost, blockSize, cacheBlocks, retries int) (*RangeReaderAt, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	h.mu.Lock()
	size, etag := int64(len(h.data)), h.etag
	h.mu.Unlock()
	return &RangeReaderAt{
		url:        srv.URL,
		client:     srv.Client(),
		size:       size,
		etag:       etag,
		blockSize:  int64(blockSize),
		retries:    retries,
		retryDelay: time.Millisecond,
		// These tests pin exact demand-fetch request counts; sequential
		// readahead has its own tests (prefetch_test.go).
		noPrefetch: true,
		cache:      blockLRU{cap: cacheBlocks, m: map[int64]*list.Element{}},
		inflight:   map[int64]*blockFetch{},
	}, srv
}

func TestRangeReaderAtBasic(t *testing.T) {
	data := testObject(10_000)
	h := &rangeHost{data: data, etag: `"v1"`}
	ra, _ := newRemoteReader(t, h, 1024, 64, 0)

	got := make([]byte, 3000)
	if n, err := ra.ReadAt(got, 500); err != nil || n != 3000 {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(got, data[500:3500]) {
		t.Fatal("ReadAt bytes diverge")
	}
	// Blocks 0..3 were fetched in one coalesced GET with an aligned start.
	if n := h.requests.Load(); n != 1 {
		t.Fatalf("requests = %d, want 1 coalesced fetch", n)
	}
	if rngs := h.seenRanges(); len(rngs) != 1 || rngs[0] != "bytes=0-4095" {
		t.Fatalf("ranges = %v, want [bytes=0-4095]", rngs)
	}
	// Same window again: all cache hits, no new requests.
	if _, err := ra.ReadAt(got, 500); err != nil {
		t.Fatal(err)
	}
	if n := h.requests.Load(); n != 1 {
		t.Fatalf("requests after cached re-read = %d, want 1", n)
	}
	// Tail read past EOF returns the short count with io.EOF.
	tail := make([]byte, 100)
	n, err := ra.ReadAt(tail, int64(len(data))-40)
	if n != 40 || err != io.EOF {
		t.Fatalf("tail ReadAt = %d, %v, want 40, EOF", n, err)
	}
	if !bytes.Equal(tail[:40], data[len(data)-40:]) {
		t.Fatal("tail bytes diverge")
	}
	if _, err := ra.ReadAt(tail, int64(len(data))); err != io.EOF {
		t.Fatalf("ReadAt at EOF err = %v, want EOF", err)
	}
	if _, err := ra.ReadAt(tail, -1); !errors.Is(err, ErrRemote) {
		t.Fatalf("negative offset err = %v, want ErrRemote", err)
	}
}

func TestRangeReaderAtCoalescing(t *testing.T) {
	data := testObject(64 << 10)
	h := &rangeHost{data: data}
	ra, _ := newRemoteReader(t, h, 4096, 64, 0)

	// Warm one block in the middle; the next read spanning it must split
	// into two runs around the cached block, not refetch it.
	one := make([]byte, 10)
	if _, err := ra.ReadAt(one, 3*4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6*4096)
	if _, err := ra.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data[4096:7*4096]) {
		t.Fatal("bytes diverge")
	}
	want := []string{"bytes=12288-16383", "bytes=4096-12287", "bytes=16384-28671"}
	rngs := h.seenRanges()
	if len(rngs) != 3 {
		t.Fatalf("ranges = %v, want 3 fetches (runs split around the cached block)", rngs)
	}
	for i, w := range want {
		if rngs[i] != w {
			t.Fatalf("ranges = %v, want %v", rngs, want)
		}
	}
}

func TestRangeReaderAtSingleflight(t *testing.T) {
	data := testObject(8192)
	h := &rangeHost{data: data, gate: make(chan struct{})}
	ra, _ := newRemoteReader(t, h, 4096, 64, 0)

	const readers = 8
	var wg sync.WaitGroup
	errs := make([]error, readers)
	bufs := make([][]byte, readers)
	for i := 0; i < readers; i++ {
		i := i
		bufs[i] = make([]byte, 1000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = ra.ReadAt(bufs[i], 100)
		}()
	}
	// Let every goroutine reach the fetch-or-wait decision, then open the
	// gate: only the single claimed fetch should have been issued.
	for h.requests.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)
	close(h.gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
		if !bytes.Equal(bufs[i], data[100:1100]) {
			t.Fatalf("reader %d bytes diverge", i)
		}
	}
	if n := h.requests.Load(); n != 1 {
		t.Fatalf("requests = %d, want 1 (singleflight)", n)
	}
}

func TestRangeReaderAtLRU(t *testing.T) {
	data := testObject(16 << 10)
	h := &rangeHost{data: data}
	ra, _ := newRemoteReader(t, h, 1024, 2, 0)

	read := func(block int64) {
		t.Helper()
		buf := make([]byte, 10)
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
	}
	read(0) // cache: {0}
	read(1) // cache: {0,1}
	read(0) // touch 0 — 1 is now least recently used
	read(2) // evicts 1 (LRU), not 0 (FIFO would)
	before := h.requests.Load()
	read(0)
	if n := h.requests.Load(); n != before {
		t.Fatalf("block 0 refetched after eviction pass: %d -> %d requests (FIFO, want LRU)", before, n)
	}
	read(1)
	if n := h.requests.Load(); n != before+1 {
		t.Fatalf("block 1 should have been evicted: requests %d -> %d", before, n)
	}
}

func TestRangeReaderAtRetry(t *testing.T) {
	data := testObject(4096)
	h := &rangeHost{data: data, failures: 2}
	ra, _ := newRemoteReader(t, h, 1024, 8, 2)

	buf := make([]byte, 100)
	if _, err := ra.ReadAt(buf, 0); err != nil {
		t.Fatalf("ReadAt with 2 injected 503s and 2 retries: %v", err)
	}
	if !bytes.Equal(buf, data[:100]) {
		t.Fatal("bytes diverge after retries")
	}
	if n := h.requests.Load(); n != 3 {
		t.Fatalf("requests = %d, want 3 (two 503s then success)", n)
	}
	// With retries exhausted the error is ErrRemote and non-nil.
	h.mu.Lock()
	h.failures = 5
	h.mu.Unlock()
	if _, err := ra.ReadAt(buf, 2048); !errors.Is(err, ErrRemote) {
		t.Fatalf("exhausted retries err = %v, want ErrRemote", err)
	}
}

func TestRangeReaderAtETagChange(t *testing.T) {
	data := testObject(8192)
	h := &rangeHost{data: data, etag: `"v1"`}
	ra, _ := newRemoteReader(t, h, 1024, 8, 0)

	buf := make([]byte, 100)
	if _, err := ra.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// The object is replaced mid-session: the next uncached read must fail
	// as ErrCorrupt (the server rejects If-Match with 412).
	h.set(testObject(8192), `"v2"`)
	if _, err := ra.ReadAt(buf, 4096); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ETag change err = %v, want ErrCorrupt", err)
	}
}

func TestRangeReaderAtSizeChange(t *testing.T) {
	// No ETag: consistency degrades to Content-Range total validation, so
	// a replaced (resized) object still fails as ErrCorrupt.
	data := testObject(8192)
	h := &rangeHost{data: data}
	ra, _ := newRemoteReader(t, h, 1024, 8, 0)

	buf := make([]byte, 100)
	if _, err := ra.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	h.set(testObject(4000), "")
	if _, err := ra.ReadAt(buf, 2048); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("size change err = %v, want ErrCorrupt", err)
	}
}

// readBlob fetches a blob's full contents through a store's Open path.
func readBlob(t *testing.T, s Store, name string) []byte {
	t.Helper()
	b, err := s.Open(name)
	if err != nil {
		t.Fatalf("Open %s: %v", name, err)
	}
	defer b.Close()
	data, err := io.ReadAll(b)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return data
}

func TestOpenRemoteArchive(t *testing.T) {
	// End to end over a real archive: OpenRemote must list and read blobs
	// byte-identically to the local archive.
	blobs := map[string][]byte{
		"MANIFEST":    []byte("mode=lossless\n"),
		"INFO.bytes":  testObject(100),
		"0.lossless":  testObject(70_000),
		"1.lossless":  testObject(33_333),
		"10.lossless": testObject(5),
	}
	raw := writeTestArchive(t, blobs)
	local, err := openBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	defer local.Close()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// http.ServeContent implements Range with no ETag (like a bare
		// static server): the reader must cope without a validator.
		http.ServeContent(w, r, "t.atc", time.Time{}, bytes.NewReader(raw))
	}))
	defer srv.Close()

	rs, err := OpenRemote(srv.URL, RemoteOptions{BlockSize: 8 << 10, CacheBlocks: 16, Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	names, err := rs.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 5 {
		t.Fatalf("List = %v", names)
	}
	for _, name := range names {
		want := readBlob(t, local, name)
		got := readBlob(t, rs, name)
		if !bytes.Equal(got, want) {
			t.Fatalf("blob %s diverges: %d vs %d bytes", name, len(got), len(want))
		}
	}
	// Writes must be refused: this store is read-only by construction.
	if _, err := rs.Create("new"); err == nil {
		t.Fatal("Create on a RemoteStore succeeded")
	}
	if err := rs.Remove("MANIFEST"); err == nil {
		t.Fatal("Remove on a RemoteStore succeeded")
	}
	if rs.URL() != srv.URL {
		t.Fatalf("URL = %q", rs.URL())
	}
	if st := rs.ReaderStats(); st.Fetches == 0 || st.BytesFetched == 0 {
		t.Fatalf("stats = %+v, want nonzero traffic", st)
	}
}

func TestOpenRemoteProbeFallback(t *testing.T) {
	// A server refusing HEAD must still open via the ranged-GET probe.
	raw := writeTestArchive(t, map[string][]byte{
		"MANIFEST":   []byte("mode=lossless\n"),
		"0.lossless": testObject(10_000),
	})
	h := &rangeHost{noHead: true}
	h.set(raw, `"v1"`)
	srv := httptest.NewServer(h)
	defer srv.Close()

	rs, err := OpenRemote(srv.URL, RemoteOptions{Client: srv.Client()})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	if got := readBlob(t, rs, "0.lossless"); !bytes.Equal(got, testObject(10_000)) {
		t.Fatal("blob bytes diverge through the fallback probe")
	}
	if rs.ra.ETag() != `"v1"` || rs.ra.Size() != int64(len(raw)) {
		t.Fatalf("probe captured etag=%q size=%d", rs.ra.ETag(), rs.ra.Size())
	}
}

func TestOpenRemoteErrors(t *testing.T) {
	if _, err := OpenRemote("ftp://host/x.atc", RemoteOptions{}); !errors.Is(err, ErrRemote) {
		t.Fatalf("non-http URL err = %v, want ErrRemote", err)
	}
	notFound := httptest.NewServer(http.NotFoundHandler())
	defer notFound.Close()
	if _, err := OpenRemote(notFound.URL, RemoteOptions{Client: notFound.Client()}); !errors.Is(err, ErrRemote) {
		t.Fatalf("404 err = %v, want ErrRemote", err)
	}
	// A server answering 200 to ranged requests cannot back a RemoteStore.
	full := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		w.Write(testObject(100))
	}))
	defer full.Close()
	if _, err := OpenRemote(full.URL, RemoteOptions{Client: full.Client()}); !errors.Is(err, ErrRemote) {
		t.Fatalf("no-Range server err = %v, want ErrRemote", err)
	}
}

func TestParseContentRange(t *testing.T) {
	off, total, err := parseContentRange("bytes 100-199/5000")
	if err != nil || off != 100 || total != 5000 {
		t.Fatalf("parseContentRange = %d, %d, %v", off, total, err)
	}
	for _, bad := range []string{"", "bytes */5000", "bytes 100-199/*", "100-199/5000", "bytes x-y/z"} {
		if _, _, err := parseContentRange(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("parseContentRange(%q) err = %v, want ErrCorrupt", bad, err)
		}
	}
}

func TestIsRemoteURL(t *testing.T) {
	for url, want := range map[string]bool{
		"http://h/x.atc":  true,
		"https://h/x.atc": true,
		"/tmp/x.atc":      false,
		"httpx://h":       false,
	} {
		if got := IsRemoteURL(url); got != want {
			t.Errorf("IsRemoteURL(%q) = %v, want %v", url, got, want)
		}
	}
}
