package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

// ArchiveStore packs a whole compressed trace into one seekable .atc file:
//
//	header   8 bytes: magic "ATCA", format version, 3 reserved zero bytes
//	blobs    payloads back to back, in blob Close order
//	TOC      uvarint blob count, then per blob: uvarint name length, name,
//	         uvarint payload offset, uvarint payload length, 4-byte
//	         little-endian CRC32 (IEEE) of the payload
//	footer   20 bytes: u64 LE TOC offset, u32 LE TOC length, u32 LE CRC32
//	         of the TOC bytes, end magic "atcE"
//
// The trailing table of contents makes the file append-friendly to write
// and one-seek cheap to open: read the fixed-size footer, read the TOC,
// and every blob is addressable through io.ReaderAt with no per-blob
// open(2) — exactly what the segmented-lossless readahead fan-out needs.
//
// Write phase: Create returns a writer that buffers its blob in memory and
// appends it to the file under the store lock on Close, so the
// chunk-compression worker pool can build many blobs concurrently while
// the file itself only ever grows by whole blobs. Close writes the TOC and
// footer; an archive without them does not open.
//
// Read phase: OpenArchive parses and fully validates the TOC up front
// (bounds, overlaps, duplicate names, TOC checksum) and serves each Open
// as an independent io.SectionReader, safe for concurrent use. A blob read
// sequentially to its end additionally has its payload CRC verified.
type ArchiveStore struct {
	path string

	mu        sync.Mutex
	f         *os.File
	off       int64 // write phase: next payload offset
	entries   []tocEntry
	index     map[string]int
	writing   bool
	finalized bool

	// read phase
	r     io.ReaderAt
	rsize int64
	rc    io.Closer
}

// Archive format constants. The archive format version is independent of
// the trace format version in MANIFEST/INFO: the container can evolve
// without touching the trace encoding, and vice versa.
const (
	archiveMagic    = "ATCA"
	archiveEndMagic = "atcE"
	archiveVersion  = 1

	archiveHeaderLen = 8
	archiveFooterLen = 20

	// maxArchiveBlobs bounds the TOC count field before it sizes an
	// allocation; a corrupt count must not demand memory up front. The TOC
	// length itself re-bounds it (every entry takes ≥ 8 encoded bytes;
	// parseTOC divides by that minimum).
	maxArchiveBlobs = 1 << 24
)

type tocEntry struct {
	name   string
	off    int64
	length int64
	crc    uint32
}

// CreateArchive starts a new single-file archive at path. An existing
// non-empty file is refused, mirroring Create's "already contains a
// compressed trace" check for directories; an existing empty file (e.g.
// from os.CreateTemp) is adopted.
func CreateArchive(path string) (*ArchiveStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atc: create archive: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("atc: create archive: %w", err)
	}
	if fi.Size() > 0 {
		f.Close()
		return nil, fmt.Errorf("atc: %s already contains data", path)
	}
	var hdr [archiveHeaderLen]byte
	copy(hdr[:], archiveMagic)
	hdr[4] = archiveVersion
	if _, err := f.WriteAt(hdr[:], 0); err != nil {
		f.Close()
		os.Remove(path)
		return nil, fmt.Errorf("atc: create archive: %w", err)
	}
	return &ArchiveStore{
		path:    path,
		f:       f,
		off:     archiveHeaderLen,
		index:   map[string]int{},
		writing: true,
	}, nil
}

// Path reports the backing file path.
func (s *ArchiveStore) Path() string { return s.path }

// SpillThreshold is the in-memory cap per in-flight archive blob: a blob
// growing past it is spilled to an anonymous temp file while it is being
// written, so archiving a trace with a huge chunk (a legacy v1 lossless
// stream holds the whole compressed trace in one blob) costs bounded RAM
// instead of the full compressed size per concurrent writer. It is a
// variable so tests can force tiny spills; writers snapshot it at Create.
var SpillThreshold int64 = 8 << 20

// Create implements Store. The returned writer buffers the blob — in
// memory up to SpillThreshold, then in a temp file — and appends it to
// the archive when closed; until then the archive is unchanged, so a
// failed blob leaves no partial bytes behind.
func (s *ArchiveStore) Create(name string) (io.WriteCloser, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.writing || s.finalized {
		return nil, fmt.Errorf("atc: archive %s is not open for writing", s.path)
	}
	if _, dup := s.index[name]; dup {
		return nil, fmt.Errorf("atc: archive blob %q already exists", name)
	}
	return &archiveWriter{s: s, name: name, spillAt: SpillThreshold}, nil
}

// archiveWriter accumulates one blob. Small blobs stay in buf; once n
// crosses spillAt the accumulated bytes move to a temp file and all
// further writes go there. The running CRC32 covers both paths, so Close
// never has to re-read the payload to checksum it.
type archiveWriter struct {
	s       *ArchiveStore
	name    string
	buf     bytes.Buffer
	spill   *os.File // non-nil once the blob exceeded spillAt
	spillAt int64
	crc     uint32
	n       int64
	closed  bool
}

func (w *archiveWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	if w.spill == nil && w.n+int64(len(p)) > w.spillAt {
		f, err := os.CreateTemp("", "atc-blob-*")
		if err != nil {
			return 0, fmt.Errorf("atc: archive blob spill: %w", err)
		}
		// Unlink immediately: the kernel reclaims the space when the file
		// closes, so an abandoned writer cannot leak a temp file.
		os.Remove(f.Name())
		if _, err := f.Write(w.buf.Bytes()); err != nil {
			f.Close()
			return 0, fmt.Errorf("atc: archive blob spill: %w", err)
		}
		w.spill = f
		w.buf = bytes.Buffer{}
	}
	var n int
	var err error
	if w.spill != nil {
		n, err = w.spill.Write(p)
	} else {
		n, err = w.buf.Write(p)
	}
	w.crc = crc32.Update(w.crc, crc32.IEEETable, p[:n])
	w.n += int64(n)
	return n, err
}

func (w *archiveWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.spill != nil {
		defer w.spill.Close() // already unlinked; Close reclaims the space
	}
	s := w.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.writing || s.finalized {
		return fmt.Errorf("atc: archive %s closed before blob %q", s.path, w.name)
	}
	if _, dup := s.index[w.name]; dup {
		return fmt.Errorf("atc: archive blob %q already exists", w.name)
	}
	if w.spill != nil {
		if _, err := w.spill.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("atc: archive write: %w", err)
		}
		copied, err := io.Copy(io.NewOffsetWriter(s.f, s.off), w.spill)
		if err != nil {
			return fmt.Errorf("atc: archive write: %w", err)
		}
		if copied != w.n {
			return fmt.Errorf("atc: archive write: spilled blob %q is %d bytes, wrote %d", w.name, w.n, copied)
		}
	} else if _, err := s.f.WriteAt(w.buf.Bytes(), s.off); err != nil {
		return fmt.Errorf("atc: archive write: %w", err)
	}
	s.index[w.name] = len(s.entries)
	s.entries = append(s.entries, tocEntry{
		name:   w.name,
		off:    s.off,
		length: w.n,
		crc:    w.crc,
	})
	s.off += w.n
	return nil
}

// Open implements Store. During the read phase each call returns an
// independent section of the shared io.ReaderAt (concurrent-safe); during
// the write phase committed blobs are readable back from the file, which
// lets the trace's own writer check for a pre-existing MANIFEST.
func (s *ArchiveStore) Open(name string) (Blob, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[name]
	if !ok {
		return nil, notExist(name)
	}
	e := s.entries[i]
	var r io.ReaderAt = s.r
	if s.writing {
		r = s.f
	}
	return &archiveBlob{
		sr:   io.NewSectionReader(r, e.off, e.length),
		want: e.crc,
	}, nil
}

// archiveBlob reads one blob. Sequential reads feed a running CRC32; when
// the final byte has been consumed the checksum is verified, so a full
// read of a bit-rotted payload fails with ErrCorrupt instead of silently
// handing corrupt bytes to the decoder. ReadAt is raw random access.
type archiveBlob struct {
	sr      *io.SectionReader
	want    uint32
	crc     uint32
	read    int64
	checked bool
}

func (b *archiveBlob) Read(p []byte) (int, error) {
	n, err := b.sr.Read(p)
	if n > 0 {
		b.crc = crc32.Update(b.crc, crc32.IEEETable, p[:n])
		b.read += int64(n)
	}
	if b.read == b.sr.Size() && !b.checked {
		b.checked = true
		if b.crc != b.want {
			return n, fmt.Errorf("%w: blob CRC mismatch (have %08x, want %08x)", ErrCorrupt, b.crc, b.want)
		}
	}
	return n, err
}

func (b *archiveBlob) ReadAt(p []byte, off int64) (int, error) { return b.sr.ReadAt(p, off) }

func (b *archiveBlob) Size() int64 { return b.sr.Size() }

func (b *archiveBlob) Close() error { return nil }

// List implements Store: blob names in archive (TOC) order.
func (s *ArchiveStore) List() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, len(s.entries))
	for i, e := range s.entries {
		names[i] = e.name
	}
	return names, nil
}

// Size implements Store: the archive file size — header, payloads and TOC
// all count toward bits per address, keeping the metric honest about
// container overhead.
func (s *ArchiveStore) Size() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.writing {
		return s.rsize, nil
	}
	// Write phase: payload so far plus the TOC and footer this archive
	// would close with now.
	return s.off + int64(len(s.encodeTOC())) + archiveFooterLen, nil
}

// Remove implements Store (write phase only). The payload bytes of a
// removed blob become dead space unless it was the most recently appended
// blob, in which case the tail is reclaimed.
func (s *ArchiveStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.writing || s.finalized {
		return fmt.Errorf("atc: archive %s is not open for writing", s.path)
	}
	i, ok := s.index[name]
	if !ok {
		return notExist(name)
	}
	e := s.entries[i]
	if e.off+e.length == s.off {
		s.off = e.off
	}
	s.entries = append(s.entries[:i], s.entries[i+1:]...)
	delete(s.index, name)
	for n, j := range s.index {
		if j > i {
			s.index[n] = j - 1
		}
	}
	return nil
}

// encodeTOC serializes the table of contents; callers hold s.mu.
func (s *ArchiveStore) encodeTOC() []byte {
	var buf bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	put(uint64(len(s.entries)))
	for _, e := range s.entries {
		put(uint64(len(e.name)))
		buf.WriteString(e.name)
		put(uint64(e.off))
		put(uint64(e.length))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], e.crc)
		buf.Write(crc[:])
	}
	return buf.Bytes()
}

// Close implements Store. For a written archive it appends the TOC and
// footer — the step that makes the file openable — and closes it; for a
// read archive it releases the underlying file.
func (s *ArchiveStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finalized {
		return nil
	}
	s.finalized = true
	if !s.writing {
		if s.rc != nil {
			return s.rc.Close()
		}
		return nil
	}
	// A failed finalize leaves a file with no footer — dead weight that
	// neither opens nor can be re-created over ("already contains data")
	// — so every error path below removes it, like Abort would have.
	fail := func(op string, err error) error {
		s.f.Close()
		os.Remove(s.path)
		return fmt.Errorf("atc: archive %s: %w", op, err)
	}
	// A Remove of the tail blob rolls s.off back but leaves its payload
	// bytes in the file; truncate so the footer lands exactly at EOF (the
	// opener requires it).
	if err := s.f.Truncate(s.off); err != nil {
		return fail("truncate", err)
	}
	toc := s.encodeTOC()
	var footer [archiveFooterLen]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(s.off))
	binary.LittleEndian.PutUint32(footer[8:12], uint32(len(toc)))
	binary.LittleEndian.PutUint32(footer[12:16], crc32.ChecksumIEEE(toc))
	copy(footer[16:20], archiveEndMagic)
	if _, err := s.f.WriteAt(toc, s.off); err != nil {
		return fail("TOC write", err)
	}
	if _, err := s.f.WriteAt(footer[:], s.off+int64(len(toc))); err != nil {
		return fail("footer write", err)
	}
	if err := s.f.Close(); err != nil {
		os.Remove(s.path)
		return fmt.Errorf("atc: archive close: %w", err)
	}
	return nil
}

// Abort discards a half-written archive: the file is closed and removed.
func (s *ArchiveStore) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writing && !s.finalized {
		s.finalized = true
		s.f.Close()
		os.Remove(s.path)
	}
}

// OpenArchive opens a single-file archive for reading and validates its
// table of contents.
func OpenArchive(path string) (*ArchiveStore, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: missing archive: %v", ErrCorrupt, err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("atc: open archive: %w", err)
	}
	s, err := OpenArchiveReaderAt(f, fi.Size())
	if err != nil {
		f.Close()
		return nil, err
	}
	s.path = path
	s.rc = f
	return s, nil
}

// OpenArchiveReaderAt opens an archive held behind any random-access
// reader — a file, an mmap, a byte slice, a blob-store range reader. The
// whole TOC is validated before the store is returned: every later
// per-blob failure mode (out of bounds, overlap, duplicate) is rejected
// here, with ErrCorrupt, so decode goroutines can trust the extents.
func OpenArchiveReaderAt(r io.ReaderAt, size int64) (*ArchiveStore, error) {
	if size < archiveHeaderLen+archiveFooterLen {
		return nil, fmt.Errorf("%w: archive truncated (%d bytes)", ErrCorrupt, size)
	}
	var hdr [archiveHeaderLen]byte
	if _, err := r.ReadAt(hdr[:], 0); err != nil {
		return nil, fmt.Errorf("%w: archive header unreadable: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != archiveMagic {
		return nil, fmt.Errorf("%w: not an atc archive (bad magic)", ErrCorrupt)
	}
	if hdr[4] != archiveVersion {
		return nil, fmt.Errorf("%w: unsupported archive version %d (this build reads %d)",
			ErrCorrupt, hdr[4], archiveVersion)
	}
	var footer [archiveFooterLen]byte
	if _, err := r.ReadAt(footer[:], size-archiveFooterLen); err != nil {
		return nil, fmt.Errorf("%w: archive footer unreadable: %v", ErrCorrupt, err)
	}
	if string(footer[16:20]) != archiveEndMagic {
		return nil, fmt.Errorf("%w: archive footer missing (truncated file?)", ErrCorrupt)
	}
	tocOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	tocLen := int64(binary.LittleEndian.Uint32(footer[8:12]))
	tocCRC := binary.LittleEndian.Uint32(footer[12:16])
	if tocOff < archiveHeaderLen || tocOff+tocLen != size-archiveFooterLen {
		return nil, fmt.Errorf("%w: archive TOC extent [%d,+%d) inconsistent with file size %d",
			ErrCorrupt, tocOff, tocLen, size)
	}
	toc := make([]byte, tocLen)
	if _, err := r.ReadAt(toc, tocOff); err != nil {
		return nil, fmt.Errorf("%w: archive TOC unreadable: %v", ErrCorrupt, err)
	}
	if crc32.ChecksumIEEE(toc) != tocCRC {
		return nil, fmt.Errorf("%w: archive TOC checksum mismatch", ErrCorrupt)
	}
	entries, index, err := parseTOC(toc, tocOff)
	if err != nil {
		return nil, err
	}
	return &ArchiveStore{
		entries: entries,
		index:   index,
		r:       r,
		rsize:   size,
	}, nil
}

// parseTOC decodes and validates the table of contents. Every field is
// untrusted: counts are bounded before they size allocations, extents must
// lie inside the payload region [header, tocOff), and no two blobs may
// overlap. It is the FuzzTOC target, so it must never panic.
func parseTOC(toc []byte, tocOff int64) ([]tocEntry, map[string]int, error) {
	rd := bytes.NewReader(toc)
	count, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: archive TOC truncated (count)", ErrCorrupt)
	}
	// Every entry takes at least 8 encoded bytes (1-byte name length,
	// 1-byte name, 1-byte offset, 1-byte length, 4-byte CRC), so a count
	// the TOC cannot physically hold is rejected before it sizes the
	// entries slice and index map below.
	if count > maxArchiveBlobs || count > uint64(len(toc))/8 {
		return nil, nil, fmt.Errorf("%w: implausible archive blob count %d", ErrCorrupt, count)
	}
	entries := make([]tocEntry, 0, count)
	index := make(map[string]int, count)
	for i := uint64(0); i < count; i++ {
		nameLen, err := binary.ReadUvarint(rd)
		if err != nil || nameLen > uint64(rd.Len()) {
			return nil, nil, fmt.Errorf("%w: archive TOC truncated (name)", ErrCorrupt)
		}
		nameBuf := make([]byte, nameLen)
		if _, err := io.ReadFull(rd, nameBuf); err != nil {
			return nil, nil, fmt.Errorf("%w: archive TOC truncated (name)", ErrCorrupt)
		}
		name := string(nameBuf)
		if !validName(name) {
			return nil, nil, errBadName(name)
		}
		off, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: archive TOC truncated (offset)", ErrCorrupt)
		}
		length, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: archive TOC truncated (length)", ErrCorrupt)
		}
		var crc [4]byte
		if _, err := io.ReadFull(rd, crc[:]); err != nil {
			return nil, nil, fmt.Errorf("%w: archive TOC truncated (crc)", ErrCorrupt)
		}
		// Bounds: the extent must sit inside [header, tocOff) without
		// wrapping. Comparing in uint64 first rejects values that would
		// overflow the int64 sum.
		if off < archiveHeaderLen || off > uint64(tocOff) || length > uint64(tocOff)-off {
			return nil, nil, fmt.Errorf("%w: blob %q extent [%d,+%d) outside archive payload",
				ErrCorrupt, name, off, length)
		}
		if _, dup := index[name]; dup {
			return nil, nil, fmt.Errorf("%w: duplicate blob name %q in archive", ErrCorrupt, name)
		}
		index[name] = len(entries)
		entries = append(entries, tocEntry{
			name:   name,
			off:    int64(off),
			length: int64(length),
			crc:    binary.LittleEndian.Uint32(crc[:]),
		})
	}
	if rd.Len() != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes after archive TOC entries", ErrCorrupt, rd.Len())
	}
	// Overlap check: sorted by offset, each blob must end before the next
	// begins (zero-length blobs may share an offset).
	byOff := append([]tocEntry(nil), entries...)
	sort.Slice(byOff, func(i, j int) bool {
		if byOff[i].off != byOff[j].off {
			return byOff[i].off < byOff[j].off
		}
		return byOff[i].length < byOff[j].length
	})
	for i := 1; i < len(byOff); i++ {
		prev, cur := byOff[i-1], byOff[i]
		if prev.off+prev.length > cur.off {
			return nil, nil, fmt.Errorf("%w: blobs %q and %q overlap in archive",
				ErrCorrupt, prev.name, cur.name)
		}
	}
	return entries, index, nil
}
