// Package store abstracts the container a compressed trace lives in.
//
// The paper's tooling (and this repo's seed) hard-coded one layout: a
// filesystem directory holding MANIFEST, INFO.<backend> and numbered chunk
// files. That layout is one Store implementation among three:
//
//   - DirStore — the historical directory layout, byte-identical to what
//     the seed wrote, so golden v1/v2 traces keep decoding and the
//     byte-identity tests keep passing.
//   - ArchiveStore — a single seekable .atc file: fixed header, blob
//     payloads back to back, and a trailing table of contents with one
//     offset/length/CRC32 record per blob. Blobs are served from an
//     io.ReaderAt, so concurrent segment readahead needs no per-chunk
//     open(2) calls and the file can sit behind any random-access medium.
//   - MemStore — blobs in a map, for tests and in-memory serving tiers.
//
// The compressor and decompressor in atc/internal/core speak only this
// package's Store interface; nothing above the store layer knows whether a
// trace is a directory, an archive file, or bytes in memory.
package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"sort"
	"strings"
)

// ErrCorrupt reports a malformed compressed trace or archive. It is the
// canonical corruption sentinel for the whole module: atc/internal/core
// aliases it, so errors.Is(err, ErrCorrupt) matches across layers.
var ErrCorrupt = errors.New("atc: corrupt compressed trace")

// Blob is one named payload read back from a Store. Sequential reads and
// random-access ReadAt may be mixed; implementations are safe for the
// concurrent use pattern of the decode readahead fan-out (each goroutine
// holds its own Blob).
type Blob interface {
	io.Reader
	io.ReaderAt
	io.Closer
	// Size reports the blob's payload length in bytes.
	Size() int64
}

// Store is a container of named blobs backing one compressed trace.
//
// The write phase creates blobs (concurrently — chunk-compression workers
// call Create from multiple goroutines) and finishes with Close, which
// finalizes the container (an ArchiveStore writes its table of contents
// there; DirStore and MemStore need no finalization). The read phase opens
// blobs by name; Open may be called concurrently.
type Store interface {
	// Create starts a new blob. The blob becomes readable once the
	// returned writer is closed. Create may be called from multiple
	// goroutines at once.
	Create(name string) (io.WriteCloser, error)
	// Open returns the named blob for reading, or an error wrapping
	// fs.ErrNotExist when no such blob exists.
	Open(name string) (Blob, error)
	// List reports the stored blob names in a stable order.
	List() ([]string, error)
	// Size reports the container's total size in bytes — the quantity the
	// paper's bits-per-address metric divides. For an ArchiveStore this
	// includes the header and table of contents; for a DirStore it is the
	// summed file sizes.
	Size() (int64, error)
	// Remove deletes a blob (write phase only for archives).
	Remove(name string) error
	// Close finalizes a written container or releases a read one.
	Close() error
}

// aborter is implemented by stores that can undo their own creation after
// a failed trace write (remove the archive file, remove a directory the
// store itself created). The compressor calls it on create-path failures.
type aborter interface {
	Abort()
}

// Abort undoes the creation of a store when it supports doing so.
func Abort(s Store) {
	if a, ok := s.(aborter); ok {
		a.Abort()
	}
}

// validName reports whether name is acceptable as a blob name: non-empty,
// no path separators, no parent-directory escapes. Every implementation
// enforces it so a corrupt TOC cannot direct a DirStore unpack outside its
// directory.
func validName(name string) bool {
	if name == "" || name == "." || name == ".." {
		return false
	}
	if strings.ContainsAny(name, "/\\") {
		return false
	}
	return true
}

// errBadName builds the shared invalid-name error.
func errBadName(name string) error {
	return fmt.Errorf("%w: invalid blob name %q", ErrCorrupt, name)
}

// notExist builds the shared missing-blob error.
func notExist(name string) error {
	return fmt.Errorf("blob %q: %w", name, fs.ErrNotExist)
}

// ReadBlob reads a whole named blob into memory.
func ReadBlob(s Store, name string) ([]byte, error) {
	b, err := s.Open(name)
	if err != nil {
		return nil, err
	}
	defer b.Close()
	return io.ReadAll(b)
}

// WriteBlob stores data as a complete named blob.
func WriteBlob(s Store, name string, data []byte) error {
	w, err := s.Create(name)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// CopyAll copies every blob of src into dst in List order — the engine of
// the atcpack dir↔archive converter. It does not Close dst.
func CopyAll(dst, src Store) error {
	names, err := src.List()
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := copyBlob(dst, src, name); err != nil {
			return fmt.Errorf("copying blob %q: %w", name, err)
		}
	}
	return nil
}

func copyBlob(dst, src Store, name string) error {
	b, err := src.Open(name)
	if err != nil {
		return err
	}
	defer b.Close()
	w, err := dst.Create(name)
	if err != nil {
		return err
	}
	if _, err := io.Copy(w, b); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Equal reports whether two stores hold the same blob names with
// byte-identical contents — atcpack's -verify check.
func Equal(a, b Store) (bool, error) {
	an, err := a.List()
	if err != nil {
		return false, err
	}
	bn, err := b.List()
	if err != nil {
		return false, err
	}
	sort.Strings(an)
	sort.Strings(bn)
	if len(an) != len(bn) {
		return false, nil
	}
	for i, name := range an {
		if bn[i] != name {
			return false, nil
		}
		same, err := blobsEqual(a, b, name)
		if err != nil || !same {
			return same, err
		}
	}
	return true, nil
}

// blobsEqual streams both copies of one blob through fixed-size buffers,
// so verifying a trace with a multi-gigabyte single-chunk blob runs in
// constant memory.
func blobsEqual(a, b Store, name string) (bool, error) {
	ab, err := a.Open(name)
	if err != nil {
		return false, err
	}
	defer ab.Close()
	bb, err := b.Open(name)
	if err != nil {
		return false, err
	}
	defer bb.Close()
	if ab.Size() != bb.Size() {
		return false, nil
	}
	const bufLen = 256 << 10
	abuf := make([]byte, bufLen)
	bbuf := make([]byte, bufLen)
	for {
		n, aerr := io.ReadFull(ab, abuf)
		m, berr := io.ReadFull(bb, bbuf)
		k := min(n, m)
		if !bytes.Equal(abuf[:k], bbuf[:k]) {
			return false, nil
		}
		// Real errors (a CRC mismatch, an I/O failure) outrank a length
		// difference: surface them rather than reporting "not equal".
		if aerr != nil && aerr != io.EOF && aerr != io.ErrUnexpectedEOF {
			return false, aerr
		}
		if berr != nil && berr != io.EOF && berr != io.ErrUnexpectedEOF {
			return false, berr
		}
		if n != m {
			return false, nil
		}
		if aerr != nil || berr != nil { // both at EOF with equal content
			return aerr != nil && berr != nil, nil
		}
	}
}
