package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// eachStore runs a subtest against a freshly created store of every kind.
// reopen converts a written store into its read form (a fresh handle for
// archives, the same value otherwise).
func eachStore(t *testing.T, fn func(t *testing.T, create func() Store, reopen func(Store) Store)) {
	t.Helper()
	t.Run("dir", func(t *testing.T) {
		fn(t, func() Store {
			s, err := CreateDir(filepath.Join(t.TempDir(), "trace"))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, func(s Store) Store { return s })
	})
	t.Run("mem", func(t *testing.T) {
		fn(t, func() Store { return NewMem() }, func(s Store) Store { return s })
	})
	t.Run("archive", func(t *testing.T) {
		fn(t, func() Store {
			s, err := CreateArchive(filepath.Join(t.TempDir(), "trace.atc"))
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, func(s Store) Store {
			r, err := OpenArchive(s.(*ArchiveStore).Path())
			if err != nil {
				t.Fatal(err)
			}
			return r
		})
	})
}

func TestStoreRoundTrip(t *testing.T) {
	blobs := map[string][]byte{
		"MANIFEST": []byte("atc 1\nmode lossless\nbackend store\n"),
		"INFO.bsc": bytes.Repeat([]byte{0xAB, 0x00, 0x17}, 1000),
		"1.bsc":    {},
		"2.bsc":    bytes.Repeat([]byte("chunk two "), 123),
	}
	eachStore(t, func(t *testing.T, create func() Store, reopen func(Store) Store) {
		s := create()
		for name, data := range blobs {
			if err := WriteBlob(s, name, data); err != nil {
				t.Fatalf("write %s: %v", name, err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		r := reopen(s)
		names, err := r.List()
		if err != nil {
			t.Fatal(err)
		}
		sort.Strings(names)
		if len(names) != len(blobs) {
			t.Fatalf("List = %v, want %d names", names, len(blobs))
		}
		var payload int64
		for name, want := range blobs {
			got, err := ReadBlob(r, name)
			if err != nil {
				t.Fatalf("read %s: %v", name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("blob %s: got %d bytes, want %d", name, len(got), len(want))
			}
			b, err := r.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			if b.Size() != int64(len(want)) {
				t.Fatalf("blob %s: Size = %d, want %d", name, b.Size(), len(want))
			}
			// Random access must agree with sequential reads.
			if len(want) > 4 {
				at := make([]byte, 3)
				if _, err := b.ReadAt(at, 2); err != nil {
					t.Fatalf("blob %s: ReadAt: %v", name, err)
				}
				if !bytes.Equal(at, want[2:5]) {
					t.Fatalf("blob %s: ReadAt mismatch", name)
				}
			}
			b.Close()
			payload += int64(len(want))
		}
		size, err := r.Size()
		if err != nil {
			t.Fatal(err)
		}
		if size < payload {
			t.Fatalf("Size = %d < summed payloads %d", size, payload)
		}
		if _, err := r.Open("no-such-blob"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Open missing = %v, want fs.ErrNotExist", err)
		}
	})
}

func TestStoreRejectsBadNames(t *testing.T) {
	eachStore(t, func(t *testing.T, create func() Store, _ func(Store) Store) {
		s := create()
		for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
			if _, err := s.Create(name); err == nil {
				t.Fatalf("Create(%q) succeeded", name)
			}
			if _, err := s.Open(name); err == nil {
				t.Fatalf("Open(%q) succeeded", name)
			}
		}
	})
}

func TestStoreRemove(t *testing.T) {
	eachStore(t, func(t *testing.T, create func() Store, _ func(Store) Store) {
		s := create()
		if err := WriteBlob(s, "a", []byte("aaa")); err != nil {
			t.Fatal(err)
		}
		if err := WriteBlob(s, "b", []byte("bbb")); err != nil {
			t.Fatal(err)
		}
		if err := s.Remove("b"); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Open("b"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Open removed blob = %v, want fs.ErrNotExist", err)
		}
		if err := s.Remove("b"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("Remove missing = %v, want fs.ErrNotExist", err)
		}
		if got, err := ReadBlob(s, "a"); err != nil || string(got) != "aaa" {
			t.Fatalf("blob a after Remove(b): %q, %v", got, err)
		}
	})
}

func TestArchiveRemoveReclaimsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.atc")
	s, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "keep", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "tail", bytes.Repeat([]byte("y"), 1000)); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("tail"); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "next", []byte("z")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() > 300 {
		t.Fatalf("archive is %d bytes; removing the tail blob did not reclaim its space", fi.Size())
	}
	r, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, err := ReadBlob(r, "keep"); err != nil || len(got) != 100 {
		t.Fatalf("keep after tail reclaim: %d bytes, %v", len(got), err)
	}
	if got, err := ReadBlob(r, "next"); err != nil || string(got) != "z" {
		t.Fatalf("next after tail reclaim: %q, %v", got, err)
	}
}

func TestArchiveRefusesDuplicateBlob(t *testing.T) {
	s, err := CreateArchive(filepath.Join(t.TempDir(), "t.atc"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := WriteBlob(s, "a", []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "a", []byte("two")); err == nil {
		t.Fatal("duplicate blob accepted")
	}
}

func TestArchiveRefusesNonEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.atc")
	if err := os.WriteFile(path, []byte("precious user data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := CreateArchive(path); err == nil {
		t.Fatal("CreateArchive over a non-empty file succeeded")
	}
	// The refused file is untouched.
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "precious user data" {
		t.Fatalf("existing file was modified: %q, %v", data, err)
	}
}

func TestArchiveAdoptsEmptyFile(t *testing.T) {
	f, err := os.CreateTemp(t.TempDir(), "t-*.atc")
	if err != nil {
		t.Fatal(err)
	}
	path := f.Name()
	f.Close()
	s, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "a", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, _ := ReadBlob(r, "a"); string(got) != "data" {
		t.Fatalf("blob = %q", got)
	}
}

func TestArchiveAbortRemovesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.atc")
	s, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBlob(s, "a", []byte("half-written")); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("Abort left the archive file behind (stat err = %v)", err)
	}
}

// writeTestArchive builds a small valid archive and returns its bytes.
func writeTestArchive(t *testing.T, blobs map[string][]byte) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "t.atc")
	s, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(blobs))
	for name := range blobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := WriteBlob(s, name, blobs[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func testBlobs() map[string][]byte {
	return map[string][]byte{
		"MANIFEST": []byte("atc 1\nmode lossless\nbackend store\n"),
		"1.store":  bytes.Repeat([]byte{1, 2, 3, 4}, 64),
		"INFO.bsc": []byte("metadata"),
	}
}

// openBytes parses archive bytes through the same validated path
// OpenArchive uses.
func openBytes(data []byte) (*ArchiveStore, error) {
	return OpenArchiveReaderAt(bytes.NewReader(data), int64(len(data)))
}

// --- corrupt-archive hardening (satellite task) -------------------------
//
// Every mutation below must fail with an ErrCorrupt-wrapped error — never
// a panic, never a silent mis-read.

func TestArchiveCorruptTruncations(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	// Every strict prefix of the archive is corrupt: the footer either
	// disappears, lands on payload bytes, or points past the file.
	for _, n := range []int{0, 1, archiveHeaderLen - 1, archiveHeaderLen,
		len(data) / 2, len(data) - archiveFooterLen, len(data) - 1} {
		if _, err := openBytes(data[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
}

func TestArchiveCorruptTruncatedTOC(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	// Snip bytes out of the middle of the TOC while keeping the footer:
	// the TOC extent no longer matches the file size.
	cut := append([]byte{}, data[:len(data)-archiveFooterLen-4]...)
	cut = append(cut, data[len(data)-archiveFooterLen:]...)
	if _, err := openBytes(cut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptBadMagic(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	bad := append([]byte{}, data...)
	copy(bad, "NOPE")
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("header magic: err = %v, want ErrCorrupt", err)
	}
	bad = append([]byte{}, data...)
	copy(bad[len(bad)-4:], "NOPE")
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("footer magic: err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptUnsupportedVersion(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	bad := append([]byte{}, data...)
	bad[4] = 99
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptTOCChecksum(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	// Flip one byte inside the TOC without fixing the footer CRC.
	bad := append([]byte{}, data...)
	bad[len(bad)-archiveFooterLen-1] ^= 0xFF
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptBlobCRC(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	// Flip a payload byte of blob "1.store" (offset region, after the
	// header). The TOC still validates — only the full sequential read of
	// that blob must fail.
	bad := append([]byte{}, data...)
	bad[archiveHeaderLen+len(testBlobs()["MANIFEST"])+10] ^= 0xFF
	s, err := openBytes(bad)
	if err != nil {
		t.Fatalf("corrupt payload must not fail open (TOC is intact): %v", err)
	}
	sawCorrupt := false
	for _, name := range []string{"MANIFEST", "1.store", "INFO.bsc"} {
		if _, err := ReadBlob(s, name); errors.Is(err, ErrCorrupt) {
			sawCorrupt = true
		}
	}
	if !sawCorrupt {
		t.Fatal("bit-rotted payload read back without a CRC error")
	}
}

// rewriteTOC rebuilds an archive's TOC and footer from the given entries,
// with self-consistent checksums, so extent-level corruption (overlap,
// out of bounds) is the only thing wrong with the result.
func rewriteTOC(t *testing.T, data []byte, entries []tocEntry) []byte {
	t.Helper()
	footer := data[len(data)-archiveFooterLen:]
	tocOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	s := &ArchiveStore{entries: entries}
	toc := s.encodeTOC()
	out := append([]byte{}, data[:tocOff]...)
	out = append(out, toc...)
	var newFooter [archiveFooterLen]byte
	binary.LittleEndian.PutUint64(newFooter[0:8], uint64(tocOff))
	binary.LittleEndian.PutUint32(newFooter[8:12], uint32(len(toc)))
	binary.LittleEndian.PutUint32(newFooter[12:16], crc32.ChecksumIEEE(toc))
	copy(newFooter[16:20], archiveEndMagic)
	return append(out, newFooter[:]...)
}

func TestArchiveCorruptOverlappingExtents(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	s, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	entries := append([]tocEntry{}, s.entries...)
	// Make the second blob start inside the first.
	entries[1].off = entries[0].off + 1
	entries[1].length = entries[0].length
	bad := rewriteTOC(t, data, entries)
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("overlap: err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptOutOfBoundsExtents(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	s, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, mutate := range []func(e *tocEntry){
		func(e *tocEntry) { e.length = 1 << 40 },               // runs past the TOC
		func(e *tocEntry) { e.off = int64(len(data)) * 2 },     // starts past EOF
		func(e *tocEntry) { e.off = 0 },                        // inside the header
		func(e *tocEntry) { e.off = -1 },                       // encodes as 2^64-1: wraps
		func(e *tocEntry) { e.off = 1<<63 - 1; e.length = 10 }, // off+len overflows int64
	} {
		entries := append([]tocEntry{}, s.entries...)
		mutate(&entries[0])
		bad := rewriteTOC(t, data, entries)
		if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("out-of-bounds extent: err = %v, want ErrCorrupt", err)
		}
	}
}

func TestArchiveCorruptDuplicateNames(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	s, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	entries := append([]tocEntry{}, s.entries...)
	entries[1].name = entries[0].name
	bad := rewriteTOC(t, data, entries)
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("duplicate names: err = %v, want ErrCorrupt", err)
	}
}

func TestArchiveCorruptTraversalNames(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	s, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"../../etc/passwd", "a/b", ""} {
		entries := append([]tocEntry{}, s.entries...)
		entries[0].name = name
		bad := rewriteTOC(t, data, entries)
		if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("name %q: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestArchiveCorruptImplausibleCount(t *testing.T) {
	data := writeTestArchive(t, testBlobs())
	footer := data[len(data)-archiveFooterLen:]
	tocOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	// A TOC that is just a huge count varint: must be rejected by the
	// count bound, not by attempting a huge allocation.
	var toc [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(toc[:], 1<<60)
	bad := append([]byte{}, data[:tocOff]...)
	bad = append(bad, toc[:n]...)
	var newFooter [archiveFooterLen]byte
	binary.LittleEndian.PutUint64(newFooter[0:8], uint64(tocOff))
	binary.LittleEndian.PutUint32(newFooter[8:12], uint32(n))
	binary.LittleEndian.PutUint32(newFooter[12:16], crc32.ChecksumIEEE(toc[:n]))
	copy(newFooter[16:20], archiveEndMagic)
	bad = append(bad, newFooter[:]...)
	if _, err := openBytes(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCopyAllAndEqual(t *testing.T) {
	src := NewMem()
	for i := 0; i < 10; i++ {
		if err := WriteBlob(src, fmt.Sprintf("%d.bsc", i), bytes.Repeat([]byte{byte(i)}, i*100)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "copy.atc")
	dst, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := CopyAll(dst, src); err != nil {
		t.Fatal(err)
	}
	if err := dst.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	equal, err := Equal(src, r)
	if err != nil {
		t.Fatal(err)
	}
	if !equal {
		t.Fatal("archive copy does not Equal its source")
	}
	// List order survives the copy (decode readahead relies on stable
	// chunk naming, not order, but tooling output should be stable).
	srcNames, _ := src.List()
	dstNames, _ := r.List()
	if fmt.Sprint(srcNames) != fmt.Sprint(dstNames) {
		t.Fatalf("List order changed: %v vs %v", srcNames, dstNames)
	}
}

func TestArchiveBlobReaderAtConcurrent(t *testing.T) {
	blobs := map[string][]byte{}
	for i := 0; i < 8; i++ {
		blobs[fmt.Sprintf("%d.bin", i)] = bytes.Repeat([]byte{byte(i + 1)}, 4096)
	}
	data := writeTestArchive(t, blobs)
	s, err := openBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			name := fmt.Sprintf("%d.bin", i)
			b, err := s.Open(name)
			if err != nil {
				done <- err
				return
			}
			defer b.Close()
			got, err := io.ReadAll(b)
			if err != nil {
				done <- err
				return
			}
			if !bytes.Equal(got, blobs[name]) {
				done <- fmt.Errorf("blob %s mismatch", name)
				return
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestArchiveSpillLargeBlobs forces the spill-to-temp path and pins its
// one observable guarantee: an archive written through spilled blobs is
// byte-identical to one written fully in memory, and reads back clean
// (payload CRCs included).
func TestArchiveSpillLargeBlobs(t *testing.T) {
	old := SpillThreshold
	defer func() { SpillThreshold = old }()

	blobs := map[string][]byte{
		"small":    []byte("tiny payload"),
		"exact":    bytes.Repeat([]byte{0xAB}, 64),
		"big":      bytes.Repeat([]byte("spill me "), 400), // 3600 B, far past the test threshold
		"MANIFEST": []byte("atc 1\nmode lossless\nbackend store\n"),
	}
	writeArchive := func(threshold int64) string {
		t.Helper()
		SpillThreshold = threshold
		path := filepath.Join(t.TempDir(), "spill.atc")
		s, err := CreateArchive(path)
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic append order, with the big blob written through
		// many small Writes so the spill happens mid-blob.
		for _, name := range []string{"small", "exact", "big", "MANIFEST"} {
			w, err := s.Create(name)
			if err != nil {
				t.Fatal(err)
			}
			data := blobs[name]
			for len(data) > 0 {
				k := 100
				if k > len(data) {
					k = len(data)
				}
				if _, err := w.Write(data[:k]); err != nil {
					t.Fatal(err)
				}
				data = data[k:]
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}

	unspilled := writeArchive(1 << 30) // everything in memory
	spilled := writeArchive(64)        // "exact" sits at the bound; "big" spills

	a, err := os.ReadFile(unspilled)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(spilled)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("spilled archive differs from in-memory archive (%d vs %d bytes)", len(b), len(a))
	}

	s, err := OpenArchive(spilled)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for name, want := range blobs {
		got, err := ReadBlob(s, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: read back %d bytes, want %d", name, len(got), len(want))
		}
	}
}

// TestArchiveSpillConcurrentWriters exercises spilling from many
// goroutines at once — the chunk-compression worker-pool pattern.
func TestArchiveSpillConcurrentWriters(t *testing.T) {
	old := SpillThreshold
	SpillThreshold = 128
	defer func() { SpillThreshold = old }()

	path := filepath.Join(t.TempDir(), "conc.atc")
	s, err := CreateArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	errc := make(chan error, writers)
	for i := 0; i < writers; i++ {
		go func(i int) {
			w, err := s.Create(fmt.Sprintf("blob-%d", i))
			if err != nil {
				errc <- err
				return
			}
			payload := bytes.Repeat([]byte{byte(i)}, 1000+i*137)
			if _, err := w.Write(payload); err != nil {
				errc <- err
				return
			}
			errc <- w.Close()
		}(i)
	}
	for i := 0; i < writers; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := OpenArchive(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < writers; i++ {
		got, err := ReadBlob(r, fmt.Sprintf("blob-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte(i)}, 1000+i*137)
		if !bytes.Equal(got, want) {
			t.Fatalf("blob-%d corrupted (%d bytes, want %d)", i, len(got), len(want))
		}
	}
}
