package store

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// DirStore is the historical compressed-trace layout: one file per blob in
// a flat directory. It is byte-identical to what the pre-store code wrote,
// so every golden v1/v2 trace and byte-identity test keeps passing.
type DirStore struct {
	dir string
	// made records whether CreateDir created the directory, so Abort can
	// remove it (while still empty) after a failed trace create without
	// ever deleting a directory the caller owned beforehand.
	made bool
}

// OpenDir returns a DirStore reading an existing trace directory. Missing
// directories surface as missing blobs on Open, matching the historical
// error shape.
func OpenDir(dir string) *DirStore {
	return &DirStore{dir: dir}
}

// CreateDir returns a DirStore writing into dir, creating it if needed.
func CreateDir(dir string) (*DirStore, error) {
	made := false
	if _, err := os.Stat(dir); err != nil {
		made = true
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("atc: create dir: %w", err)
	}
	return &DirStore{dir: dir, made: made}, nil
}

// Dir reports the backing directory path.
func (s *DirStore) Dir() string { return s.dir }

// Create implements Store.
func (s *DirStore) Create(name string) (io.WriteCloser, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	return os.Create(filepath.Join(s.dir, name))
}

// fileBlob adapts an *os.File (which already has Read/ReadAt/Close) with
// the stat-derived size.
type fileBlob struct {
	*os.File
	size int64
}

func (b *fileBlob) Size() int64 { return b.size }

// Open implements Store.
func (s *DirStore) Open(name string) (Blob, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	f, err := os.Open(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err // wraps fs.ErrNotExist for missing files
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &fileBlob{File: f, size: fi.Size()}, nil
}

// List implements Store: regular files in directory order.
func (s *DirStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	return names, nil
}

// Size implements Store: the summed sizes of all files in the directory.
func (s *DirStore) Size() (int64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			return 0, err
		}
		total += fi.Size()
	}
	return total, nil
}

// Remove implements Store.
func (s *DirStore) Remove(name string) error {
	if !validName(name) {
		return errBadName(name)
	}
	err := os.Remove(filepath.Join(s.dir, name))
	if err != nil && os.IsNotExist(err) {
		return fmt.Errorf("%v: %w", err, fs.ErrNotExist)
	}
	return err
}

// Close implements Store; directories need no finalization.
func (s *DirStore) Close() error { return nil }

// Abort removes the directory after a failed trace create — but only if
// CreateDir made it, and os.Remove keeps it safe: a non-empty directory
// (pre-existing user files) is left alone.
func (s *DirStore) Abort() {
	if s.made {
		os.Remove(s.dir)
	}
}
