package store

import (
	"bytes"
	"io"
	"sync"
)

// MemStore holds blobs in memory. It backs tests and the future serving
// tier (decode straight from RAM, no filesystem). A MemStore written by a
// compressor remains fully readable after Close, so one store value can
// carry a trace from Compress to Decompress without touching disk.
type MemStore struct {
	mu    sync.RWMutex
	blobs map[string][]byte
	order []string
}

// NewMem returns an empty in-memory store.
func NewMem() *MemStore {
	return &MemStore{blobs: map[string][]byte{}}
}

// Create implements Store. The blob is committed atomically when the
// returned writer is closed; concurrent Creates of distinct names are safe.
func (s *MemStore) Create(name string) (io.WriteCloser, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	return &memWriter{s: s, name: name}, nil
}

type memWriter struct {
	s      *MemStore
	name   string
	buf    bytes.Buffer
	closed bool
}

func (w *memWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, io.ErrClosedPipe
	}
	return w.buf.Write(p)
}

func (w *memWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.s.mu.Lock()
	defer w.s.mu.Unlock()
	if _, exists := w.s.blobs[w.name]; !exists {
		w.s.order = append(w.s.order, w.name)
	}
	w.s.blobs[w.name] = w.buf.Bytes()
	return nil
}

// memBlob serves one committed blob; bytes.Reader provides Read and ReadAt.
type memBlob struct {
	*bytes.Reader
}

func (b *memBlob) Close() error { return nil }

func (b *memBlob) Size() int64 { return b.Reader.Size() }

// Open implements Store.
func (s *MemStore) Open(name string) (Blob, error) {
	if !validName(name) {
		return nil, errBadName(name)
	}
	s.mu.RLock()
	data, ok := s.blobs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, notExist(name)
	}
	return &memBlob{Reader: bytes.NewReader(data)}, nil
}

// List implements Store: names in creation order.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]string(nil), s.order...), nil
}

// Size implements Store: summed payload bytes (an in-memory trace has no
// container overhead).
func (s *MemStore) Size() (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, b := range s.blobs {
		total += int64(len(b))
	}
	return total, nil
}

// Remove implements Store.
func (s *MemStore) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[name]; !ok {
		return notExist(name)
	}
	delete(s.blobs, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// Close implements Store; the blobs stay readable (see the type comment).
func (s *MemStore) Close() error { return nil }

// Abort resets the store after a failed trace create.
func (s *MemStore) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs = map[string][]byte{}
	s.order = nil
}
