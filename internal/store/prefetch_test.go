package store

// Tests of RangeReaderAt's sequential block readahead: the heuristic
// (advance past the previous read's frontier), the background fetch, its
// dedup with demand reads, and the hit/wasted accounting.

import (
	"testing"
	"time"
)

// newPrefetchReader builds a reader with prefetch enabled (the helper
// shared with the demand-fetch tests disables it).
func newPrefetchReader(t *testing.T, h *rangeHost, blockSize, cacheBlocks int) *RangeReaderAt {
	t.Helper()
	ra, _ := newRemoteReader(t, h, blockSize, cacheBlocks, 0)
	ra.noPrefetch = false
	return ra
}

// waitFor polls until cond holds, failing the test after a deadline —
// prefetches complete on a background goroutine.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func (r *RangeReaderAt) blockResident(b int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, cached := r.cache.m[b]
	return cached
}

func TestPrefetchSequentialReads(t *testing.T) {
	data := testObject(8 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)

	read := func(block int64) {
		t.Helper()
		buf := make([]byte, 1024)
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
	}
	read(0) // first read ever: no frontier yet, no speculation
	if n := ra.Stats().Prefetches; n != 0 {
		t.Fatalf("prefetches after first read = %d, want 0", n)
	}
	read(0) // same block again: no progress, no speculation
	if n := ra.Stats().Prefetches; n != 0 {
		t.Fatalf("prefetches after repeated read = %d, want 0", n)
	}
	read(1) // advances the frontier: block 2 fetches in the background
	waitFor(t, "prefetch of block 2", func() bool { return ra.blockResident(2) })
	st := ra.Stats()
	if st.Prefetches != 1 {
		t.Fatalf("prefetches = %d, want 1", st.Prefetches)
	}
	before := h.requests.Load()
	hitsBefore := metRemotePrefetchHit.Value()
	read(2) // served by the prefetched block: no new origin request
	if n := h.requests.Load(); n != before {
		t.Fatalf("read of prefetched block issued a request: %d -> %d", before, n)
	}
	st = ra.Stats()
	if st.PrefetchHits != 1 {
		t.Fatalf("prefetch hits = %d, want 1", st.PrefetchHits)
	}
	if d := metRemotePrefetchHit.Value() - hitsBefore; d != 1 {
		t.Fatalf("atc_remote_prefetch_total{result=hit} advanced by %d, want 1", d)
	}
	// read(2) advanced the frontier again with a doubled window: blocks 3
	// and 4 speculate as one coalesced run. A jump backwards must not
	// speculate (and halves the window).
	waitFor(t, "prefetch of blocks 3 and 4", func() bool { return ra.blockResident(3) && ra.blockResident(4) })
	read(0)
	if n := ra.Stats().Prefetches; n != 3 {
		t.Fatalf("prefetches after backwards jump = %d, want 3", n)
	}
}

func TestPrefetchDedupesOntoDemandRead(t *testing.T) {
	data := testObject(8 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)

	buf := make([]byte, 1024)
	if _, err := ra.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadAt(buf, 1024); err != nil {
		t.Fatal(err)
	}
	// The prefetch of block 2 is now in flight or landed. A demand read
	// must either dedupe onto it or hit the cached result — never issue
	// its own fetch — and count the speculation as a hit either way. It
	// also advances the frontier, speculating blocks 3 and 4 (the window
	// doubled) as one coalesced run.
	if _, err := ra.ReadAt(buf, 2048); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "requests to settle", func() bool { return h.requests.Load() == 4 })
	st := ra.Stats()
	if st.Prefetches != 3 || st.PrefetchHits != 1 {
		t.Fatalf("prefetches/hits = %d/%d, want 3/1", st.Prefetches, st.PrefetchHits)
	}
	if n := h.requests.Load(); n != 4 {
		t.Fatalf("requests = %d, want 4 (two demand reads + two prefetch runs)", n)
	}
}

func TestPrefetchWastedOnEviction(t *testing.T) {
	data := testObject(16 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 2)

	read := func(block int64) {
		t.Helper()
		buf := make([]byte, 1024)
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
	}
	wastedBefore := metRemotePrefetchWasted.Value()
	read(0)
	read(1) // speculates block 2 into the 2-block cache
	waitFor(t, "prefetch of block 2", func() bool { return ra.Stats().Prefetches == 1 && !ra.inflightBlock(2) })
	// Jump away: demand blocks churn the tiny LRU until the untouched
	// speculative block falls off the cold end.
	read(8)
	read(10)
	read(12)
	waitFor(t, "wasted accounting", func() bool { return ra.Stats().PrefetchWasted >= 1 })
	st := ra.Stats()
	if st.PrefetchHits != 0 {
		t.Fatalf("prefetch hits = %d, want 0", st.PrefetchHits)
	}
	if d := metRemotePrefetchWasted.Value() - wastedBefore; d < 1 {
		t.Fatalf("atc_remote_prefetch_total{result=wasted} advanced by %d, want >= 1", d)
	}
}

func (r *RangeReaderAt) inflightBlock(b int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, busy := r.inflight[b]
	return busy
}

func TestPrefetchStopsAtEOF(t *testing.T) {
	data := testObject(2 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)

	buf := make([]byte, 1024)
	if _, err := ra.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.ReadAt(buf, 1024); err != nil { // last block: nothing beyond it
		t.Fatal(err)
	}
	if st := ra.Stats(); st.Prefetches != 0 {
		t.Fatalf("prefetches past EOF = %d, want 0", st.Prefetches)
	}
	if n := h.requests.Load(); n != 2 {
		t.Fatalf("requests = %d, want 2", n)
	}
}

func TestPrefetchDisabled(t *testing.T) {
	data := testObject(8 << 10)
	h := &rangeHost{data: data}
	ra, _ := newRemoteReader(t, h, 1024, 64, 0) // helper sets noPrefetch

	buf := make([]byte, 1024)
	for b := int64(0); b < 4; b++ {
		if _, err := ra.ReadAt(buf, b*1024); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if st := ra.Stats(); st.Prefetches != 0 {
		t.Fatalf("prefetches with readahead disabled = %d, want 0", st.Prefetches)
	}
	if n := h.requests.Load(); n != 4 {
		t.Fatalf("requests = %d, want 4 demand fetches only", n)
	}
}

func TestPrefetchAdaptiveRampUp(t *testing.T) {
	data := testObject(64 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)

	read := func(block int64) {
		t.Helper()
		buf := make([]byte, 1024)
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
	}
	read(0)
	if d := ra.Stats().PrefetchDepth; d != 1 {
		t.Fatalf("initial prefetch depth = %d, want 1", d)
	}
	// Each sustained sequential read doubles the window up to the cap.
	want := []int64{2, 4, 8, 16, 16, 16}
	for i, block := range []int64{1, 2, 3, 4, 5, 6} {
		read(block)
		if d := ra.Stats().PrefetchDepth; d != want[i] {
			t.Fatalf("prefetch depth after %d sequential reads = %d, want %d", i+2, d, want[i])
		}
	}
	// Drain the rest of the object sequentially: with the window at the
	// cap, consumed blocks come out of coalesced readahead runs, so the
	// origin sees far fewer requests than blocks.
	for block := int64(7); block < 48; block++ {
		read(block)
	}
	if n := h.requests.Load(); n >= 24 {
		t.Fatalf("requests for 48 sequential blocks = %d, want < 24 (adaptive coalescing)", n)
	}
}

func TestPrefetchAdaptiveRampDown(t *testing.T) {
	data := testObject(64 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)

	read := func(block int64) {
		t.Helper()
		buf := make([]byte, 1024)
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
	}
	for block := int64(0); block <= 5; block++ {
		read(block)
	}
	if d := ra.Stats().PrefetchDepth; d != 16 {
		t.Fatalf("ramped prefetch depth = %d, want 16", d)
	}
	// Each departure from the sequential pattern halves the window.
	for i, block := range []int64{30, 40, 50} {
		read(block)
		if d, want := ra.Stats().PrefetchDepth, int64(16>>(i+1)); d != want {
			t.Fatalf("prefetch depth after %d jumps = %d, want %d", i+1, d, want)
		}
	}
	// A wasted prefetch (speculative block evicted unread) halves it too.
	ra.mu.Lock()
	ra.prefDepth = 8
	ra.noteWasted(1)
	d := ra.depthLocked()
	ra.mu.Unlock()
	if d != 4 {
		t.Fatalf("prefetch depth after wasted prefetch = %d, want 4", d)
	}
}

func TestPrefetchFixedDepthCap(t *testing.T) {
	data := testObject(16 << 10)
	h := &rangeHost{data: data}
	ra := newPrefetchReader(t, h, 1024, 64)
	ra.maxPrefetch = 1 // MaxPrefetchBlocks: 1 pins the pre-adaptive behavior

	buf := make([]byte, 1024)
	for block := int64(0); block < 8; block++ {
		if _, err := ra.ReadAt(buf, block*1024); err != nil {
			t.Fatal(err)
		}
		if d := ra.Stats().PrefetchDepth; d != 1 {
			t.Fatalf("prefetch depth with cap 1 = %d, want 1", d)
		}
	}
}
