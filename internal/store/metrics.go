package store

import "atc/internal/obs"

// Registry-backed remote-read metrics on obs.Default(). Process-wide
// across every RangeReaderAt; the per-instance RemoteStats accessor stays
// authoritative for per-trace views (atcserve exposes those as labeled
// func metrics). Registered at package init so the series exist at zero
// even in a local-only process — a scrape can always tell "no remote
// traffic" from "not instrumented".
var (
	metRemoteFetches = obs.Default().Counter("atc_remote_fetches_total",
		"ranged GETs issued to remote origins (including retries)")
	metRemoteBytes = obs.Default().Counter("atc_remote_fetch_bytes_total",
		"payload bytes fetched from remote origins")
	metRemoteRetries = obs.Default().Counter("atc_remote_retries_total",
		"transient remote failures retried with backoff")
	metRemoteBlockHits = obs.Default().Counter("atc_remote_block_hits_total",
		"block reads served from the block cache or deduplicated onto an in-flight fetch")
	metRemoteFetchSec = obs.Default().Histogram("atc_remote_fetch_seconds",
		"remote ranged-GET latency (per attempt, success or failure)", obs.DurationBuckets)
	metRemoteRunBlocks = obs.Default().Histogram("atc_remote_run_blocks",
		"blocks per coalesced fetch run", obs.CountBuckets)
	metRemotePrefetchHit = obs.Default().Counter("atc_remote_prefetch_total",
		"sequential-readahead block prefetches by outcome", obs.Label{Key: "result", Value: "hit"})
	metRemotePrefetchWasted = obs.Default().Counter("atc_remote_prefetch_total",
		"sequential-readahead block prefetches by outcome", obs.Label{Key: "result", Value: "wasted"})
	metRemotePrefetchDepth = obs.Default().Histogram("atc_remote_prefetch_depth_blocks",
		"blocks launched per adaptive sequential-readahead run", obs.CountBuckets)
)
