package core

import (
	"errors"
	"sync"
	"testing"
)

func TestFIFOChunkCache(t *testing.T) {
	c := newFIFOChunkCache(2)
	c.Put(1, []uint64{1})
	c.Put(2, []uint64{2})
	c.Put(1, []uint64{9}) // duplicate Put must not double-insert or evict
	if a, ok := c.Get(1); !ok || a[0] != 1 {
		t.Fatalf("Get(1) = %v, %v", a, ok)
	}
	c.Put(3, []uint64{3}) // evicts 1 — oldest insertion, even though just read
	if _, ok := c.Get(1); ok {
		t.Fatal("FIFO kept the read-touched entry; eviction must be insertion-ordered")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("entry 2 missing")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("entry 3 missing")
	}
}

func TestSharedChunkCacheLRU(t *testing.T) {
	c := NewSharedChunkCache(2)
	c.Put(1, []uint64{1})
	c.Put(2, []uint64{2})
	c.Get(1)              // touch: 2 is now least recently used
	c.Put(3, []uint64{3}) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU evicted the recently used entry instead of the stale one")
	}
	if a, ok := c.Get(1); !ok || a[0] != 1 {
		t.Fatalf("Get(1) = %v, %v", a, ok)
	}
	st := c.Stats()
	if st.Resident != 2 {
		t.Fatalf("Resident = %d, want 2", st.Resident)
	}
	if NewSharedChunkCache(0).cap != 1 {
		t.Fatal("capacity floor not applied")
	}
}

func TestSharedChunkCacheSingleflight(t *testing.T) {
	c := NewSharedChunkCache(8)
	var mu sync.Mutex
	loads := 0
	gate := make(chan struct{})
	const readers = 16
	var wg sync.WaitGroup
	results := make([][]uint64, readers)
	for i := 0; i < readers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i], _ = c.GetOrLoad(7, true, func() ([]uint64, error) {
				mu.Lock()
				loads++
				mu.Unlock()
				<-gate
				return []uint64{42}, nil
			})
		}()
	}
	close(gate)
	wg.Wait()
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1 (singleflight)", loads)
	}
	for i, r := range results {
		if len(r) != 1 || r[0] != 42 {
			t.Fatalf("reader %d got %v", i, r)
		}
	}
	st := c.Stats()
	if st.Loads != 1 || st.Hits != readers-1 {
		t.Fatalf("stats = %+v, want 1 load and %d hits", st, readers-1)
	}
}

func TestSharedChunkCacheLoadError(t *testing.T) {
	c := NewSharedChunkCache(8)
	boom := errors.New("boom")
	if _, err := c.GetOrLoad(1, true, func() ([]uint64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Failed loads are not cached: the next call retries and can succeed.
	a, err := c.GetOrLoad(1, true, func() ([]uint64, error) { return []uint64{5}, nil })
	if err != nil || a[0] != 5 {
		t.Fatalf("retry after failed load = %v, %v", a, err)
	}
}

func TestSharedChunkCacheUnpinnedLoad(t *testing.T) {
	c := NewSharedChunkCache(8)
	loads := 0
	load := func() ([]uint64, error) { loads++; return []uint64{1}, nil }
	if _, err := c.GetOrLoad(3, false, load); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(3); ok {
		t.Fatal("unpinned load entered the cache")
	}
	if _, err := c.GetOrLoad(3, false, load); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (unpinned loads bypass insertion)", loads)
	}
}

// TestSharedCacheExactlyOncePerPool is the tentpole's core guarantee: a
// pool of Decompressors sharing one SharedChunkCache and hammering the
// same hot window decompresses each touched chunk exactly once across the
// whole pool — under the race detector, with every reader running
// concurrently.
func TestSharedCacheExactlyOncePerPool(t *testing.T) {
	addrs := rangeTrace()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossless, BufferAddrs: 200, SegmentAddrs: 1500}); err != nil {
		t.Fatal(err)
	}
	shared := NewSharedChunkCache(32)
	const readers = 8
	pool := make([]*Decompressor, readers)
	for i := range pool {
		d, err := Open(dir, DecodeOptions{ChunkCache: shared})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		pool[i] = d
	}
	// The hot window [2000, 5000) straddles segments 1, 2 and 3 (1500
	// addresses each: spans [1500,3000), [3000,4500), [4500,6000)).
	const from, to = 2000, 5000
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, readers*rounds)
	for _, d := range pool {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got, err := d.DecodeRange(from, to)
				if err != nil {
					errs <- err
					return
				}
				for j, v := range got {
					if v != addrs[from+j] {
						errs <- errors.New("decoded window diverges")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	var total int64
	for _, d := range pool {
		total += d.ChunkReads()
	}
	if total != 3 {
		t.Fatalf("pool-wide chunk reads = %d, want 3 (one per chunk under the window, exactly once across %d readers x %d rounds)",
			total, readers, rounds)
	}
	if st := shared.Stats(); st.Loads != 3 {
		t.Fatalf("shared cache loads = %d, want 3", st.Loads)
	}
}
