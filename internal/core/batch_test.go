package core

// Tests of the sub-span batched readahead pipeline (DecodeOptions.
// BatchAddrs): delivery in BatchAddrs-sized batches must be byte-identical
// to whole-span delivery for every format mode, every store backend and
// any batch size, including pathological ones.

import (
	"errors"
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"atc/internal/store"
)

// batchStores is the store matrix: every batching path must behave
// identically over a directory, a single-file archive and memory.
var batchStores = []string{"dir", "archive", "mem"}

// writeBatchTrace compresses addrs with the given options into the named
// store kind and returns the DecodeOptions locating it plus the path.
func writeBatchTrace(t *testing.T, kind string, addrs []uint64, opts Options) (string, DecodeOptions) {
	t.Helper()
	var dec DecodeOptions
	path := t.TempDir()
	switch kind {
	case "dir":
	case "archive":
		path = filepath.Join(path, "t.atc")
		opts.Archive = true
	case "mem":
		ms := store.NewMem()
		opts.Store = ms
		dec.Store = ms
	default:
		t.Fatalf("unknown store kind %q", kind)
	}
	if _, err := WriteTrace(path, addrs, opts); err != nil {
		t.Fatal(err)
	}
	return path, dec
}

func TestBatchedDeliveryByteIdentical(t *testing.T) {
	addrs := rangeTrace()
	rng := rand.New(rand.NewSource(55))
	for _, m := range rangeModes {
		for _, kind := range batchStores {
			t.Run(m.name+"/"+kind, func(t *testing.T) {
				path, dec := writeBatchTrace(t, kind, addrs, m.opts)
				// Reference: whole-span delivery (the pre-batching pipeline).
				whole := dec
				whole.Readahead = 2
				whole.BatchAddrs = -1
				want := decodeAllWith(t, path, whole)
				if len(want) != len(addrs) {
					t.Fatalf("reference decode: %d addresses, want %d", len(want), len(addrs))
				}
				// Random batch sizes around the interesting boundaries: 1,
				// a prime, the span length itself, larger than any span, and
				// a handful of random draws.
				sizes := []int{1, 7, 977, 1000, 1500, 4096, len(addrs) + 1}
				for i := 0; i < 4; i++ {
					sizes = append(sizes, 1+rng.Intn(3000))
				}
				for _, batch := range sizes {
					for _, readahead := range []int{1, 3} {
						d := dec
						d.Readahead = readahead
						d.BatchAddrs = batch
						got := decodeAllWith(t, path, d)
						if len(got) != len(want) {
							t.Fatalf("batch=%d readahead=%d: %d addresses, want %d",
								batch, readahead, len(got), len(want))
						}
						for i := range want {
							if got[i] != want[i] {
								t.Fatalf("batch=%d readahead=%d: diverges at %d", batch, readahead, i)
							}
						}
					}
				}
			})
		}
	}
}

func decodeAllWith(t *testing.T, path string, opts DecodeOptions) []uint64 {
	t.Helper()
	d, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	out, err := d.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchedSeekResume drives the batched pipeline through its restart
// path: seeks landing mid-batch, mid-span and on span boundaries must
// resume the stream exactly, for every mode and store.
func TestBatchedSeekResume(t *testing.T) {
	addrs := rangeTrace()
	n := int64(len(addrs))
	for _, m := range rangeModes {
		for _, kind := range batchStores {
			t.Run(m.name+"/"+kind, func(t *testing.T) {
				path, dec := writeBatchTrace(t, kind, addrs, m.opts)
				want := decodeAllWith(t, path, dec)
				d := dec
				d.Readahead = 2
				d.BatchAddrs = 300 // several batches per 1000/1500-address span
				dd, err := Open(path, d)
				if err != nil {
					t.Fatal(err)
				}
				defer dd.Close()
				for _, at := range []int64{0, 299, 300, 301, 999, 1000, 1001, 1499, 1500, n - 1, 42} {
					if at >= n {
						continue
					}
					if err := dd.SeekTo(at); err != nil {
						t.Fatalf("Seek(%d): %v", at, err)
					}
					for i := int64(0); i < 700 && at+i < n; i++ {
						v, err := dd.Decode()
						if err != nil {
							t.Fatalf("Seek(%d) offset %d: %v", at, i, err)
						}
						if v != want[at+i] {
							t.Fatalf("Seek(%d): diverges at offset %d", at, i)
						}
					}
				}
			})
		}
	}
}

// TestBatchedPipelineSurfacesCorruptChunk: errors found by span tasks —
// a missing chunk, a segment that decodes short — must surface as
// ErrCorrupt through the batched pipeline, not hang or mis-decode.
func TestBatchedPipelineSurfacesCorruptChunk(t *testing.T) {
	addrs := rangeTrace()
	for _, m := range []struct {
		name string
		opts Options
	}{
		{"lossy", rangeModes[0].opts},
		{"segmented", rangeModes[2].opts},
	} {
		for _, damage := range []string{"garbage", "missing"} {
			t.Run(m.name+"/"+damage, func(t *testing.T) {
				dir := t.TempDir()
				if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
					t.Fatal(err)
				}
				ds := store.OpenDir(dir)
				switch damage {
				case "garbage":
					if err := store.WriteBlob(ds, "3.bsc", []byte("not a backend stream")); err != nil {
						t.Fatal(err)
					}
				case "missing":
					if err := ds.Remove("3.bsc"); err != nil {
						t.Fatal(err)
					}
				}
				d, err := Open(dir, DecodeOptions{Readahead: 2, BatchAddrs: 128})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				_, err = d.DecodeAll()
				if err == nil || err == io.EOF {
					t.Fatal("decode of corrupt trace succeeded")
				}
				if damage == "missing" && !errors.Is(err, ErrCorrupt) {
					t.Fatalf("decode with missing chunk = %v, want ErrCorrupt", err)
				}
			})
		}
	}
}

// TestBatchedReadaheadChunkReads confirms the batched lossy dispatcher
// still reads each distinct chunk once per pass: imitations are served
// from the pinned source chunk, not re-decompressed per record.
func TestBatchedReadaheadChunkReads(t *testing.T) {
	addrs := rangeTrace()
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, rangeModes[0].opts) // lossy
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imitations == 0 {
		t.Fatal("trace has no imitations; test needs a mixed record sequence")
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2, BatchAddrs: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	if got, want := d.ChunkReads(), stats.Chunks; got != want {
		t.Fatalf("full batched decode read %d chunks, want %d (distinct chunks)", got, want)
	}
}

// TestBatchBufferRecycling decodes twice through one Decompressor and
// checks the free list actually caps buffer churn: the second pass reuses
// the working set from the first (observable through the pool's level
// after drain — the consumer returns every recyclable batch).
func TestBatchBufferRecycling(t *testing.T) {
	addrs := rangeTrace()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, rangeModes[2].opts); err != nil { // segmented
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2, BatchAddrs: 200})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	if d.batchFree == nil {
		t.Fatal("batched decode left no free list")
	}
	if len(d.batchFree) == 0 {
		t.Fatal("no batch buffers were recycled over a full decode")
	}
	if buf := <-d.batchFree; cap(buf) != 200 {
		t.Fatalf("recycled buffer capacity %d, want BatchAddrs (200)", cap(buf))
	}
}

// TestWithBatchAddrsDefault pins the default resolution: unset BatchAddrs
// becomes DefaultBatchAddrs, clamped to the trace's stride (a batch never
// spans records, so larger buffers would only be waste).
func TestWithBatchAddrsDefault(t *testing.T) {
	addrs := rangeTrace()
	segDir := t.TempDir()
	if _, err := WriteTrace(segDir, addrs, rangeModes[2].opts); err != nil { // 1500-address segments
		t.Fatal(err)
	}
	d, err := Open(segDir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.opts.BatchAddrs != 1500 {
		t.Fatalf("segmented default BatchAddrs = %d, want clamp to segment length 1500", d.opts.BatchAddrs)
	}
	d.Close()
	legacyDir := t.TempDir()
	if _, err := WriteTrace(legacyDir, addrs, rangeModes[1].opts); err != nil { // legacy v1 stream
		t.Fatal(err)
	}
	d, err = Open(legacyDir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.opts.BatchAddrs != DefaultBatchAddrs {
		t.Fatalf("legacy default BatchAddrs = %d, want %d", d.opts.BatchAddrs, DefaultBatchAddrs)
	}
}
