package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atc/internal/bytesort"
	"atc/internal/histogram"
	"atc/internal/obs"
	"atc/internal/store"
	"atc/internal/xcompress"
)

// DecodeOptions configures decompression.
type DecodeOptions struct {
	// Backend overrides the back end named in MANIFEST (rarely needed).
	Backend string
	// IgnoreTranslations disables byte translation during imitation —
	// the ablation of the paper's Figure 4. The decoded trace then reuses
	// chunks verbatim and understates the trace footprint.
	IgnoreTranslations bool
	// ChunkCacheSize bounds the number of decompressed chunks kept in
	// memory (default 8). Sequential lossy decoding pins imitated chunks
	// here; random access (Seek/DecodeRange) pins every chunk it touches,
	// so repeated range reads over a working set this large never re-read
	// the store. Ignored when ChunkCache is set.
	ChunkCacheSize int
	// ChunkCache overrides the private per-Decompressor chunk cache
	// (a bounded FIFO of ChunkCacheSize chunks) with a caller-provided
	// one — typically a SharedChunkCache shared across a pool of readers
	// over the same trace, so a hot chunk decompresses once per process
	// instead of once per reader. A shared cache must be safe for
	// concurrent use; see ChunkCache's contract.
	ChunkCache ChunkCache
	// Readahead bounds the number of decoded batches a background
	// pipeline decompresses ahead of Decode, overlapping back-end
	// decompression with consumption. For lossy and segmented lossless
	// traces it is also the number of spans (intervals/segments)
	// decoding concurrently. 0 selects the default (2); negative
	// disables readahead and decodes synchronously on the calling
	// goroutine (the historical behavior). The decoded stream is
	// identical either way. The pipeline starts lazily on the first
	// Decode and restarts after every Seek, so range access never
	// prefetches chunks past the window it was asked for.
	Readahead int
	// BatchAddrs bounds the number of addresses per delivered readahead
	// batch. Sub-span batching caps the pipeline's peak buffered memory
	// at a multiple of BatchAddrs regardless of the trace's
	// IntervalLen/SegmentAddrs: segmented lossless chunks are
	// stream-decoded (never materialized whole), and imitation
	// translations write into recycled batch buffers instead of
	// whole-interval copies. 0 selects DefaultBatchAddrs (64 Ki
	// addresses, 512 KB per batch); negative restores whole-span
	// delivery — one interval or segment per batch, the pre-batching
	// pipeline. The decoded stream is identical for every value.
	BatchAddrs int
	// Store overrides the blob container the trace is read from; when nil
	// the path passed to Open is inspected — a regular file opens as a
	// single-file .atc archive, anything else as a directory. A
	// caller-provided Store is not closed by Close.
	Store store.Store
	// Archive forces interpreting the path as a single-file archive
	// (ignored when Store is set): a directory at that path is then an
	// error rather than a fallback.
	Archive bool
}

// DefaultReadahead is the default number of buffered readahead batches.
const DefaultReadahead = 2

// DefaultBatchAddrs is the default readahead batch size: 64 Ki addresses,
// 512 KB per buffered batch.
const DefaultBatchAddrs = 1 << 16

// aheadBatch is one readahead unit — up to BatchAddrs decoded addresses
// (whole spans when batching is disabled) — or the error that ended
// production.
type aheadBatch struct {
	addrs []uint64
	// buf is the recyclable backing buffer of addrs, nil when addrs
	// aliases shared memory (a cached chunk). The consumer returns it to
	// the batch free list once the batch is drained.
	buf []uint64
	err error
}

// span is one entry of the chunk index: the record backing the absolute
// address range [start, end) of the trace.
type span struct {
	start, end int64
	rec        record
}

// ChunkSpan is the exported view of one chunk-index entry: the trace
// positions [Start, End) are decoded from chunk ChunkID — directly for
// chunk records, or as a byte-translated imitation of that (source) chunk
// when Imitation is set.
type ChunkSpan struct {
	// Start and End delimit the absolute trace positions [Start, End)
	// this record covers, in addresses.
	Start, End int64
	// ChunkID is the backing chunk blob; for imitations it is the source
	// chunk the interval is replayed from.
	ChunkID int
	// Imitation marks a lossy imitation record (decoded by translating a
	// copy of the source chunk).
	Imitation bool
}

// Decompressor streams a compressed trace back out (the paper's 'd' mode)
// and serves random access over it: decoding is driven by an explicit
// chunk index built at Open — a table mapping every interval/segment
// record to its absolute address range and backing chunk — so Seek and
// DecodeRange can jump straight to the chunks covering a window instead
// of consuming records in order.
type Decompressor struct {
	st          store.Store
	ownStore    bool // opened from a path: Close releases it
	opts        DecodeOptions
	backend     xcompress.Backend
	backendName string

	version      int
	mode         Mode
	intervalLen  int
	bufferAddrs  int
	segmentAddrs int
	epsilon      float64
	records      []record
	total        int64

	// index maps every record to its absolute address range, in trace
	// order: index[i] covers [index[i].start, index[i].end). It is the
	// single source of decoding truth for lossy and segmented traces.
	index []span

	// segmented marks a version-2 lossless trace (one chunk per segment);
	// streaming marks the legacy v1 lossless layout, whose single chunk
	// is decoded as a stream rather than materialized whole.
	segmented bool
	streaming bool

	storeClosed bool
	closed      bool

	// Legacy lossless stream state: the open chunk-1 stream, positioned
	// at absolute trace position streamPos. Seeking backwards reopens it.
	losslessFile io.Closer
	losslessDec  *bytesort.Decoder
	streamPos    int64

	// Consumption state: cursor is the absolute trace position of the
	// next address Decode returns; pending/pos hold the current batch.
	// pendingBuf is the batch's recyclable backing buffer (nil when the
	// batch aliases a cached chunk), returned to batchFree when drained.
	cursor     int64
	pending    []uint64
	pendingBuf []uint64
	pos        int

	// batchFree recycles readahead batch buffers (capacity BatchAddrs
	// each) between the producer tasks that fill them and the consumer
	// that drains them, bounding the pipeline's total allocation.
	batchFree chan []uint64

	// intervalFree recycles the interval-sized buffers imitation records
	// translate into on the copy-out decode paths (DecodeRangeAppend), so
	// random access over a phase-heavy lossy trace stops allocating one
	// interval per materialization. Created at open for lossy traces;
	// nil otherwise.
	intervalFree chan []uint64

	// cache holds decompressed chunks. With the default private FIFO it is
	// only touched from the goroutine that owns decoding (the dispatcher
	// when readahead runs); a caller-provided shared cache is concurrency-
	// safe by contract. loader is the cache's optional singleflight
	// extension, captured once at Open.
	cache  ChunkCache
	loader chunkLoader

	// statefulBackend is backend's optional pooled-reader extension,
	// captured once at Open. When set, readerFree recycles complete
	// per-chunk decode units (blob-front bufio buffer, backend decode
	// state, bytesort inverse-sort scratch) across chunks, so
	// steady-state decompression stops allocating working memory.
	statefulBackend xcompress.StatefulBackend
	readerFree      chan *backendReader

	// imitated, for lossy traces, holds every chunk ID that some
	// imitation record replays. A chunk absent from it has exactly one
	// consumer — its own chunk record in the sequential pass — so the
	// batched pipeline stream-decodes it straight into batch buffers
	// instead of materializing and caching the whole interval.
	imitated map[int]struct{}

	// chunkReads counts chunk-blob decompressions (not cache hits) — the
	// observable that range decoding touches only the chunks it must.
	chunkReads atomic.Int64

	// traceRec, when non-nil, receives per-stage timings and chunk-touch
	// counts for the request in flight (SetTrace). Written only between
	// decodes; read from the sync decode path.
	traceRec *obs.Trace

	// Readahead pipeline. When ahead is non-nil a producer goroutine owns
	// the decoding state (losslessDec, cache) and streams batches into
	// the channel; Decode only touches pending/pos/cursor. The pipeline
	// starts lazily at the current cursor and is quiesced (stopReadahead)
	// before any state the producer owns is touched from the caller.
	ahead     chan aheadBatch
	aheadStop chan struct{}
	aheadWG   sync.WaitGroup

	err error
}

// Open prepares a compressed trace for decoding. The path names a trace
// directory or a single-file .atc archive (detected by a stat, or forced
// by opts.Archive); opts.Store overrides both with an explicit container.
func Open(path string, opts DecodeOptions) (*Decompressor, error) {
	if opts.ChunkCacheSize <= 0 {
		opts.ChunkCacheSize = 8
	}
	if opts.Readahead == 0 {
		opts.Readahead = DefaultReadahead
	}
	if opts.BatchAddrs == 0 {
		opts.BatchAddrs = DefaultBatchAddrs
	}
	st := opts.Store
	ownStore := false
	if st == nil {
		ownStore = true
		switch fi, err := os.Stat(path); {
		case store.IsRemoteURL(path):
			// An http(s) URL opens as a remote single-file archive read
			// over ranged GETs (the stat above fails on URLs; its error is
			// superseded by this branch).
			rst, err := store.OpenRemote(path, store.RemoteOptions{})
			if err != nil {
				return nil, err
			}
			st = rst
		case opts.Archive, err == nil && !fi.IsDir():
			ast, err := store.OpenArchive(path)
			if err != nil {
				return nil, err
			}
			st = ast
		default:
			// Directory, or missing path: the directory store reports the
			// latter as a missing MANIFEST, the historical error shape.
			st = store.OpenDir(path)
		}
	}
	cache := opts.ChunkCache
	if cache == nil {
		cache = newFIFOChunkCache(opts.ChunkCacheSize)
	}
	d := &Decompressor{st: st, ownStore: ownStore, opts: opts, cache: cache}
	d.loader, _ = cache.(chunkLoader)
	closeStore := func() {
		if ownStore {
			st.Close()
		}
	}
	mi, err := readManifest(st)
	if err != nil {
		// A Backend override exists precisely to recover traces with a
		// damaged or missing MANIFEST; the version is then taken from the
		// INFO stream alone. Unsupported versions are never tolerated.
		if opts.Backend == "" || errors.Is(err, ErrUnsupportedVersion) {
			closeStore()
			return nil, err
		}
		mi = manifestInfo{version: 0}
	}
	backendName := opts.Backend
	if backendName == "" {
		backendName = mi.backend
	}
	backend, err := xcompress.Lookup(backendName)
	if err != nil {
		closeStore()
		return nil, err
	}
	d.backend = backend
	d.backendName = backendName
	d.statefulBackend, _ = backend.(xcompress.StatefulBackend)
	if d.statefulBackend != nil {
		// Bound retained decode state to the pipeline's concurrency: at
		// most Readahead span tasks decode at once, plus the sync path.
		n := d.opts.Readahead
		if n < 1 {
			n = 1
		}
		d.readerFree = make(chan *backendReader, n+2)
	}
	if err := d.readInfo(backendName, mi.version); err != nil {
		closeStore()
		return nil, err
	}
	d.segmented = d.mode == Lossless && d.version >= infoVersion2
	d.streaming = d.mode == Lossless && !d.segmented
	if err := d.buildIndex(); err != nil {
		closeStore()
		return nil, err
	}
	// A batch never spans records, so a BatchAddrs above the trace's
	// stride would only oversize the recycled buffers: clamp it.
	if d.opts.BatchAddrs > 0 && !d.streaming {
		stride := int64(d.intervalLen)
		if d.segmented {
			stride = int64(d.segmentAddrs)
		}
		if stride > 0 && int64(d.opts.BatchAddrs) > stride {
			d.opts.BatchAddrs = int(stride)
		}
	}
	if d.streaming {
		if err := d.openLossless(); err != nil {
			closeStore()
			return nil, err
		}
	}
	return d, nil
}

// buildIndex derives the chunk index from the record sequence: every
// record covers exactly one stride of addresses (the interval length for
// lossy traces, the segment length for segmented lossless) except the
// last, which covers the nonzero remainder. The untrusted INFO trailer
// total must be consistent with the record count, so a corrupt trailer is
// rejected at Open instead of surfacing as a mid-decode length mismatch.
// The legacy v1 lossless layout is one streaming span covering the whole
// trace.
func (d *Decompressor) buildIndex() error {
	if d.streaming {
		if len(d.records) != 1 || d.records[0].tag != recChunk {
			return fmt.Errorf("%w: legacy lossless trace has %d records, want one chunk record",
				ErrCorrupt, len(d.records))
		}
		d.index = []span{{start: 0, end: d.total, rec: d.records[0]}}
		return nil
	}
	stride := int64(d.intervalLen)
	what := "interval"
	if d.segmented {
		stride = int64(d.segmentAddrs)
		what = "segment"
	}
	n := int64(len(d.records))
	if n == 0 {
		if d.total != 0 {
			return fmt.Errorf("%w: no records but trailer says %d addresses", ErrCorrupt, d.total)
		}
		return nil
	}
	if stride <= 0 {
		return fmt.Errorf("%w: %d records with zero %s length", ErrCorrupt, n, what)
	}
	// total must land in ((n-1)*stride, n*stride]; compare via division so
	// a corrupt record count cannot overflow the product.
	if d.total <= 0 || (d.total-1)/stride != n-1 {
		return fmt.Errorf("%w: %d %s records at length %d inconsistent with trailer total %d",
			ErrCorrupt, n, what, stride, d.total)
	}
	d.index = make([]span, n)
	for i, rec := range d.records {
		start := int64(i) * stride
		end := start + stride
		if end > d.total {
			end = d.total
		}
		d.index[i] = span{start: start, end: end, rec: rec}
	}
	if d.mode == Lossy {
		// Chunks replayed by at least one imitation must be materialized
		// and cached; everything else can stream (streamableSpan).
		d.imitated = make(map[int]struct{})
		for _, rec := range d.records {
			if rec.tag == recImitate {
				d.imitated[rec.chunkID] = struct{}{}
			}
		}
		if len(d.imitated) > 0 {
			// Two slots cover the copy-out decode paths: one buffer being
			// filled while the previous one drains back.
			d.intervalFree = make(chan []uint64, 2)
		}
	}
	return nil
}

// spanIndex returns the position of the index entry covering addr — the
// first span whose end exceeds it (len(index) when addr is at or past the
// end of the trace).
func (d *Decompressor) spanIndex(addr int64) int {
	return sort.Search(len(d.index), func(i int) bool { return d.index[i].end > addr })
}

// startReadahead launches the producer pipeline that decompresses up to n
// batches ahead of Decode, starting at the current cursor. It takes
// ownership of the legacy stream and the chunk cache; Decode then only
// consumes from the ahead channel.
func (d *Decompressor) startReadahead(n int) {
	d.ahead = make(chan aheadBatch, n)
	d.aheadStop = make(chan struct{})
	if d.batchFree == nil && d.opts.BatchAddrs > 0 {
		// Enough for the ahead channel, the consumer's pending batch, and
		// every in-flight span task's slot plus working buffer; survives
		// pipeline restarts, so a seek-heavy consumer allocates its batch
		// working set once.
		d.batchFree = make(chan []uint64, 4*n+8)
	}
	start := d.cursor
	d.aheadWG.Add(1)
	go func() {
		defer d.aheadWG.Done()
		defer close(d.ahead)
		switch {
		case d.streaming:
			d.produceStream(start)
		case d.opts.BatchAddrs > 0:
			d.produceSpansBatched(n, start)
		case d.segmented:
			d.produceSpansConcurrent(n, start)
		default:
			d.produceSpans(start)
		}
	}()
}

// batchBuf takes a recycled batch buffer, or allocates a fresh one with
// capacity BatchAddrs.
//
//atc:pool put=recycleBatch
func (d *Decompressor) batchBuf() []uint64 {
	select {
	case b := <-d.batchFree:
		return b[:0]
	default:
	}
	return make([]uint64, 0, d.opts.BatchAddrs)
}

// recycleBatch returns a drained batch buffer to the free list (dropped
// when full; nil is ignored).
func (d *Decompressor) recycleBatch(buf []uint64) {
	if buf == nil || d.batchFree == nil {
		return
	}
	select {
	case d.batchFree <- buf[:0]:
	default:
	}
}

// stopReadahead quiesces the producer pipeline: after it returns, no
// goroutine touches the decoder and buffered batches are discarded. The
// consumption cursor is untouched, so a later Decode (or Seek) resumes —
// restarting the pipeline lazily — without skipping addresses.
func (d *Decompressor) stopReadahead() {
	if d.ahead == nil {
		return
	}
	close(d.aheadStop)
	// Unblock a producer parked on a full channel, then wait for it to
	// exit before touching anything it owned. Drained batches were never
	// delivered, so their buffers go straight back to the free list — a
	// seek-heavy consumer keeps its batch working set across restarts.
	for b := range d.ahead {
		d.recycleBatch(b.buf)
	}
	d.aheadWG.Wait()
	d.ahead = nil
	d.aheadStop = nil
}

// deliver sends one batch, aborting if the pipeline was stopped. It
// reports whether production should continue. The stop channel is polled
// first so a stop that is draining the ahead channel cannot keep the
// producer decoding to the end of the trace.
func (d *Decompressor) deliver(b aheadBatch) bool {
	select {
	case <-d.aheadStop:
		return false
	default:
	}
	select {
	case d.ahead <- b:
		return b.err == nil
	case <-d.aheadStop:
		return false
	}
}

// errStopped aborts a long legacy seek-skip when the pipeline is being
// torn down; it is never delivered (deliver refuses after a stop).
var errStopped = errors.New("atc: decode stopped")

// produceStream decodes the legacy v1 lossless stream from trace position
// start, in batches of BatchAddrs addresses through recycled buffers.
func (d *Decompressor) produceStream(start int64) {
	if err := d.seekStream(start); err != nil {
		d.deliver(aheadBatch{err: err})
		return
	}
	recycle := d.opts.BatchAddrs > 0
	for {
		var buf []uint64
		if recycle {
			buf = d.batchBuf()
			buf = buf[:cap(buf)]
		} else {
			buf = make([]uint64, DefaultBatchAddrs)
		}
		n, rerr := d.losslessDec.ReadSlice(buf)
		buf = buf[:n]
		d.streamPos += int64(n)
		if n > 0 {
			b := aheadBatch{addrs: buf}
			if recycle {
				b.buf = buf
			}
			if !d.deliver(b) {
				return
			}
		}
		if rerr != nil {
			if rerr != io.EOF {
				d.deliver(aheadBatch{err: rerr})
			}
			return // io.EOF: closing the channel signals a clean end
		}
	}
}

// produceSpans walks the chunk index from the span covering start,
// materializing one record per batch (the lossy pipeline; the first span
// is trimmed to start mid-record after a seek).
func (d *Decompressor) produceSpans(start int64) {
	for i := d.spanIndex(start); i < len(d.index); i++ {
		sp := d.index[i]
		addrs, err := d.materializeSpan(sp, d.mode == Lossy)
		if err != nil {
			d.deliver(aheadBatch{err: err})
			return
		}
		if start > sp.start {
			addrs = addrs[start-sp.start:]
		}
		if len(addrs) > 0 && !d.deliver(aheadBatch{addrs: addrs}) {
			return
		}
	}
}

// segResult carries one decoded segment from a decode goroutine to the
// in-order delivery loop.
type segResult struct {
	sp    span
	addrs []uint64
	err   error
}

// produceSpansConcurrent walks the chunk index from the span covering
// start with up to par segments decompressing concurrently while delivery
// stays strictly in trace order: a dispatcher assigns every span a
// buffered result slot plus a goroutine, and the loop below consumes the
// slots in index order. The slots channel's capacity bounds how many
// segments are decoded (and held in memory) ahead of consumption.
func (d *Decompressor) produceSpansConcurrent(par int, start int64) {
	if par < 1 {
		par = 1
	}
	slots := make(chan chan segResult, par)
	var decodes sync.WaitGroup
	d.aheadWG.Add(1)
	go func() {
		defer d.aheadWG.Done()
		defer close(slots)
		// Every Add below happens on this goroutine, so this Wait cannot
		// race with them; and every spawned decode finishes (its slot has
		// capacity 1), so waiting cannot block even when delivery stops
		// early. stopReadahead blocks on aheadWG, so no decode outlives it.
		defer decodes.Wait()
		for i := d.spanIndex(start); i < len(d.index); i++ {
			sp := d.index[i]
			slot := make(chan segResult, 1)
			select {
			case slots <- slot:
			case <-d.aheadStop:
				return
			}
			decodes.Add(1)
			go func(sp span) {
				defer decodes.Done()
				addrs, err := d.readSpan(sp)
				slot <- segResult{sp: sp, addrs: addrs, err: err}
			}(sp)
		}
	}()
	for slot := range slots {
		res := <-slot
		if res.err != nil {
			d.deliver(aheadBatch{err: res.err})
			return
		}
		addrs := res.addrs
		if start > res.sp.start {
			addrs = addrs[start-res.sp.start:]
		}
		if len(addrs) > 0 && !d.deliver(aheadBatch{addrs: addrs}) {
			return
		}
	}
}

// produceSpansBatched is the sub-span batching producer for lossy and
// segmented traces: every span streams through its own bounded slot of
// BatchAddrs-sized batches, up to par spans decoding concurrently, with
// delivery strictly in trace order. Peak buffered memory is a multiple
// of BatchAddrs — segments are stream-decoded (never materialized whole)
// and imitation translations write into recycled batch buffers — instead
// of a multiple of IntervalLen/SegmentAddrs. For lossy traces the chunk
// cache stays on the dispatcher goroutine: chunks that imitations replay
// load (and pin) there, serially, while slicing and the byte translation
// of distinct imitation records — including several imitations of one
// hot chunk — fan out across the span tasks. Lossy chunks no imitation
// ever replays (streamableSpan) skip materialization entirely and
// stream-decode on their span task like segments, unless a random-access
// pass already left them in the cache.
func (d *Decompressor) produceSpansBatched(par int, start int64) {
	if par < 1 {
		par = 1
	}
	slots := make(chan chan aheadBatch, par)
	var tasks sync.WaitGroup
	d.aheadWG.Add(1)
	go func() { // dispatcher
		defer d.aheadWG.Done()
		defer close(slots)
		// Every Add below happens on this goroutine, and every task exits
		// on aheadStop even when delivery stopped early, so this Wait
		// terminates once stopReadahead fires. stopReadahead blocks on
		// aheadWG, so no task outlives it.
		defer tasks.Wait()
		for i := d.spanIndex(start); i < len(d.index); i++ {
			sp := d.index[i]
			slot := make(chan aheadBatch, 2)
			var chunk []uint64
			stream := d.segmented
			if !stream && d.streamableSpan(sp) {
				if cached, ok := d.cache.Get(sp.rec.chunkID); ok {
					// Random access may have pinned even a never-imitated
					// chunk; slicing the resident copy beats re-decoding.
					metChunkCacheHits.Inc()
					if tr := d.traceRec; tr != nil {
						tr.CacheHit()
					}
					chunk = cached
				} else {
					stream = true
					metChunksStreamed.Inc()
				}
			}
			if !stream {
				var err error
				if chunk == nil {
					chunk, err = d.loadChunk(sp.rec.chunkID, d.mode == Lossy)
				}
				if err == nil && int64(len(chunk)) != sp.end-sp.start {
					err = fmt.Errorf("%w: chunk %d decodes to %d addresses, index says %d",
						ErrCorrupt, sp.rec.chunkID, len(chunk), sp.end-sp.start)
				}
				if err != nil {
					select {
					case slots <- slot:
						d.sendSpanBatch(slot, aheadBatch{err: err})
						close(slot)
					case <-d.aheadStop:
					}
					return
				}
			}
			select {
			case slots <- slot:
			case <-d.aheadStop:
				return
			}
			tasks.Add(1)
			go func(sp span, chunk []uint64, stream bool, slot chan aheadBatch) {
				defer tasks.Done()
				defer close(slot)
				if stream {
					d.streamSpanBatches(sp, slot)
				} else {
					d.sliceSpanBatches(sp, chunk, slot)
				}
			}(sp, chunk, stream, slot)
		}
	}()
	// In-order delivery: drain each span's batches completely before
	// moving to the next. The first span may start mid-record after a
	// seek; its leading addresses are skipped here.
	var skip int64
	if i := d.spanIndex(start); i < len(d.index) && start > d.index[i].start {
		skip = start - d.index[i].start
	}
	for slot := range slots {
		for b := range slot {
			if b.err != nil {
				d.deliver(aheadBatch{err: b.err})
				return
			}
			addrs := b.addrs
			if skip > 0 {
				if int64(len(addrs)) <= skip {
					skip -= int64(len(addrs))
					d.recycleBatch(b.buf)
					continue
				}
				addrs = addrs[skip:]
				skip = 0
			}
			if !d.deliver(aheadBatch{addrs: addrs, buf: b.buf}) {
				return
			}
		}
	}
}

// streamableSpan reports whether the sequential pipeline may stream sp's
// chunk straight into batch buffers instead of materializing it: a lossy
// chunk record whose chunk no imitation ever replays has exactly one
// consumer — this pass — so decoding it whole would cost a transient
// interval-sized buffer and caching it would only evict chunks that
// imitations still need. Random access (materializeSpan/loadChunk) is
// unaffected: it still materializes, pins and caches on demand.
func (d *Decompressor) streamableSpan(sp span) bool {
	if d.mode != Lossy || sp.rec.tag != recChunk {
		return false
	}
	_, hot := d.imitated[sp.rec.chunkID]
	return !hot
}

// sendSpanBatch sends one batch into a span slot, aborting on pipeline
// stop; it reports whether the task should continue producing.
func (d *Decompressor) sendSpanBatch(slot chan aheadBatch, b aheadBatch) bool {
	select {
	case slot <- b:
		return b.err == nil
	case <-d.aheadStop:
		return false
	}
}

// sliceSpanBatches streams one lossy span into its slot: chunk records as
// zero-copy sub-slices of the (cached, immutable) chunk, imitation
// records as byte-translated batches written into recycled buffers — so
// an imitation never allocates a whole-interval copy, and distinct
// imitations of the same chunk translate concurrently on their own tasks.
//
//atc:hotpath
func (d *Decompressor) sliceSpanBatches(sp span, chunk []uint64, slot chan aheadBatch) {
	batch := d.opts.BatchAddrs
	translate := sp.rec.tag == recImitate && !d.opts.IgnoreTranslations
	for off := 0; off < len(chunk); off += batch {
		end := off + batch
		if end > len(chunk) {
			end = len(chunk)
		}
		b := aheadBatch{addrs: chunk[off:end]}
		if translate {
			//atc:ignore hotalloc batchBuf returns BatchAddrs capacity and chunk[off:end] is at most BatchAddrs long, so append never grows
			buf := append(d.batchBuf(), chunk[off:end]...)
			sp.rec.trans.ApplySlice(buf)
			b = aheadBatch{addrs: buf, buf: buf}
		}
		if !d.sendSpanBatch(slot, b) {
			return
		}
	}
}

// streamSpanBatches stream-decodes one chunk blob directly into recycled
// batch buffers: the chunk is never materialized whole, so per-span
// memory is one batch plus the pooled decode unit's working buffers. It
// is format-agnostic — lossless segment chunks and never-imitated lossy
// chunks (streamableSpan) both take this path. The address count is
// verified against the index — both overruns (detected before the
// excess is delivered) and underruns surface as ErrCorrupt.
//
//atc:hotpath
func (d *Decompressor) streamSpanBatches(sp span, slot chan aheadBatch) {
	want := sp.end - sp.start
	d.chunkReads.Add(1)
	metChunkLoads.Inc()
	f, err := d.st.Open(d.chunkName(sp.rec.chunkID))
	if err != nil {
		//atc:ignore hotalloc corruption reporting on the terminal error path; the span aborts here
		d.sendSpanBatch(slot, aheadBatch{err: fmt.Errorf("%w: missing chunk %d: %v", ErrCorrupt, sp.rec.chunkID, err)})
		return
	}
	defer f.Close()
	pr, err := d.getBackendReader(f)
	defer d.putBackendReader(pr)
	if err != nil {
		//atc:ignore hotalloc corruption reporting on the terminal error path; the span aborts here
		d.sendSpanBatch(slot, aheadBatch{err: fmt.Errorf("%w: chunk %d: backend header: %v", ErrCorrupt, sp.rec.chunkID, err)})
		return
	}
	dec := pr.dec
	var got int64
	for {
		buf := d.batchBuf()
		buf = buf[:cap(buf)]
		n, rerr := dec.ReadSlice(buf)
		buf = buf[:n]
		got += int64(n)
		if got > want {
			d.recycleBatch(buf)
			//atc:ignore hotalloc corruption reporting on the terminal error path; the span aborts here
			d.sendSpanBatch(slot, aheadBatch{err: fmt.Errorf("%w: chunk %d decodes past %d addresses, index says %d",
				ErrCorrupt, sp.rec.chunkID, got, want)})
			return
		}
		if n == 0 {
			// Nothing decoded (a trailing ReadSlice that only found EOF):
			// the buffer never enters a slot, so recycle it here or the
			// pool bleeds one buffer per span.
			d.recycleBatch(buf)
		} else if !d.sendSpanBatch(slot, aheadBatch{addrs: buf, buf: buf}) {
			return
		}
		if rerr == io.EOF {
			if got != want {
				//atc:ignore hotalloc corruption reporting on the terminal error path; the span aborts here
				d.sendSpanBatch(slot, aheadBatch{err: fmt.Errorf("%w: chunk %d decodes to %d addresses, index says %d",
					ErrCorrupt, sp.rec.chunkID, got, want)})
			}
			return
		}
		if rerr != nil {
			//atc:ignore hotalloc corruption reporting on the terminal error path; the span aborts here
			d.sendSpanBatch(slot, aheadBatch{err: fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, sp.rec.chunkID, rerr)})
			return
		}
	}
}

// manifestInfo is the parsed MANIFEST descriptor. version 0 means
// "unknown" (tolerated only under an explicit Backend override).
type manifestInfo struct {
	version int
	backend string
}

// readManifest parses the plain-text MANIFEST, including the "atc
// <version>" line the decoder historically ignored: a trace written by a
// future format must be rejected up front, not silently mis-decoded.
func readManifest(st store.Store) (manifestInfo, error) {
	data, err := store.ReadBlob(st, manifestName)
	if err != nil {
		return manifestInfo{}, fmt.Errorf("%w: missing MANIFEST: %v", ErrCorrupt, err)
	}
	mi := manifestInfo{version: -1}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "atc":
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return manifestInfo{}, fmt.Errorf("%w: bad MANIFEST version %q", ErrCorrupt, fields[1])
			}
			mi.version = v
		case "backend":
			mi.backend = fields[1]
		}
	}
	if mi.version < 0 {
		return manifestInfo{}, fmt.Errorf("%w: MANIFEST has no atc version line", ErrCorrupt)
	}
	if mi.version < infoVersion1 || mi.version > maxInfoVersion {
		return manifestInfo{}, fmt.Errorf("%w %d in MANIFEST (this build reads 1..%d)",
			ErrUnsupportedVersion, mi.version, maxInfoVersion)
	}
	if mi.backend == "" {
		return manifestInfo{}, fmt.Errorf("%w: MANIFEST has no backend line", ErrCorrupt)
	}
	return mi, nil
}

// maxAddrCount bounds every address-count field read from the untrusted
// INFO stream (interval length, bytesort buffer, segment length, trailer
// total, chunk ids): 2^48 addresses is 2 PB of raw trace, far beyond any
// real input, so larger values can only come from corruption — and must
// not be trusted before they size an allocation.
const maxAddrCount = 1 << 48

// readCount reads one bounds-checked address-count field.
func readCount(r *bufio.Reader, what string) (int64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: short INFO (%s)", ErrCorrupt, what)
	}
	if v > maxAddrCount {
		return 0, fmt.Errorf("%w: implausible %s %d", ErrCorrupt, what, v)
	}
	return int64(v), nil
}

// readInfo parses the INFO stream. wantVersion is the version declared by
// MANIFEST (0 = unknown, under a Backend override); the two must agree.
func (d *Decompressor) readInfo(backendName string, wantVersion int) error {
	f, err := d.st.Open(infoBase + "." + backendName)
	if err != nil {
		return fmt.Errorf("%w: missing INFO: %v", ErrCorrupt, err)
	}
	defer f.Close()
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return err
	}
	r := bufio.NewReader(cr)
	var magicBuf [4]byte
	if _, err := io.ReadFull(r, magicBuf[:]); err != nil || string(magicBuf[:]) != infoMagic {
		return fmt.Errorf("%w: bad INFO magic", ErrCorrupt)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	if int(ver) < infoVersion1 || int(ver) > maxInfoVersion {
		return fmt.Errorf("%w %d in INFO (this build reads 1..%d)",
			ErrUnsupportedVersion, ver, maxInfoVersion)
	}
	if wantVersion > 0 && int(ver) != wantVersion {
		return fmt.Errorf("%w: INFO version %d does not match MANIFEST version %d",
			ErrCorrupt, ver, wantVersion)
	}
	d.version = int(ver)
	modeB, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.mode = Mode(modeB)
	if d.mode != Lossless && d.mode != Lossy {
		return fmt.Errorf("%w: unknown mode %d", ErrCorrupt, modeB)
	}
	il, err := readCount(r, "interval length")
	if err != nil {
		return err
	}
	d.intervalLen = int(il)
	ba, err := readCount(r, "bytesort buffer")
	if err != nil {
		return err
	}
	d.bufferAddrs = int(ba)
	if d.version >= infoVersion2 {
		sa, err := readCount(r, "segment length")
		if err != nil {
			return err
		}
		d.segmentAddrs = int(sa)
	}
	var eps [8]byte
	if _, err := io.ReadFull(r, eps[:]); err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.epsilon = math.Float64frombits(binary.LittleEndian.Uint64(eps[:]))
	for {
		tag, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: INFO truncated before end record", ErrCorrupt)
		}
		switch tag {
		case recEnd:
			total, err := readCount(r, "trailer total")
			if err != nil {
				return err
			}
			d.total = total
			return nil
		case recChunk:
			id, err := readCount(r, "chunk id")
			if err != nil {
				return err
			}
			d.records = append(d.records, record{tag: recChunk, chunkID: int(id)})
		case recImitate:
			if d.mode == Lossless {
				return fmt.Errorf("%w: imitation record in a lossless trace", ErrCorrupt)
			}
			id, err := readCount(r, "chunk id")
			if err != nil {
				return err
			}
			mask, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("%w: short imitation record", ErrCorrupt)
			}
			tr := &histogram.Translations{Mask: mask}
			for j := 0; j < histogram.Positions; j++ {
				if mask&(1<<uint(j)) != 0 {
					if _, err := io.ReadFull(r, tr.T[j][:]); err != nil {
						return fmt.Errorf("%w: short translation table", ErrCorrupt)
					}
				} else {
					for i := 0; i < 256; i++ {
						tr.T[j][i] = uint8(i)
					}
				}
			}
			d.records = append(d.records, record{tag: recImitate, chunkID: int(id), trans: tr})
		default:
			return fmt.Errorf("%w: unknown record tag %d", ErrCorrupt, tag)
		}
	}
}

func (d *Decompressor) chunkName(id int) string {
	return fmt.Sprintf("%d.%s", id, d.backend.Name())
}

// ChunkBlobName reports the store blob name of a chunk id — the single
// source of the naming scheme, for tooling that opens chunk blobs
// directly (atcinfo -chunks).
func (d *Decompressor) ChunkBlobName(id int) string { return d.chunkName(id) }

// openLossless opens the legacy single-chunk stream at trace position 0.
func (d *Decompressor) openLossless() error {
	f, err := d.st.Open(d.chunkName(1))
	if err != nil {
		return fmt.Errorf("%w: missing chunk 1: %v", ErrCorrupt, err)
	}
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return err
	}
	d.losslessFile = f
	d.losslessDec = bytesort.NewDecoder(cr)
	d.streamPos = 0
	return nil
}

// seekStream positions the legacy lossless stream at trace position addr:
// forward by decoding and discarding, backward by reopening chunk 1 and
// skipping from the start (the v1 layout has no finer-grained entry
// points — that is what the segmented v2 layout is for).
func (d *Decompressor) seekStream(addr int64) error {
	if d.losslessDec == nil || addr < d.streamPos {
		if d.losslessFile != nil {
			d.losslessFile.Close()
			d.losslessFile = nil
			d.losslessDec = nil
		}
		if err := d.openLossless(); err != nil {
			return err
		}
	}
	for d.streamPos < addr {
		if d.streamPos&0xffff == 0 && d.aheadStop != nil {
			select {
			case <-d.aheadStop:
				return errStopped
			default:
			}
		}
		if _, err := d.losslessDec.Read(); err != nil {
			if err == io.EOF {
				return fmt.Errorf("%w: trace ends at %d addresses, seek wanted %d",
					ErrCorrupt, d.streamPos, addr)
			}
			return err
		}
		d.streamPos++
	}
	return nil
}

// Mode reports the stored trace's compression mode.
func (d *Decompressor) Mode() Mode { return d.mode }

// FormatVersion reports the trace's on-disk format version (1 or 2).
func (d *Decompressor) FormatVersion() int { return d.version }

// SegmentAddrs reports the stored lossless segment length in addresses
// (0 for legacy single-chunk and lossy traces).
func (d *Decompressor) SegmentAddrs() int { return d.segmentAddrs }

// TotalAddrs reports the stored trace's length in addresses.
func (d *Decompressor) TotalAddrs() int64 { return d.total }

// IntervalLen reports the stored interval length L (lossy traces).
func (d *Decompressor) IntervalLen() int { return d.intervalLen }

// Epsilon reports the stored matching threshold (lossy traces).
func (d *Decompressor) Epsilon() float64 { return d.epsilon }

// Records reports the number of interval records (lossy traces) or
// segment records (segmented lossless traces).
func (d *Decompressor) Records() int { return len(d.records) }

// Backend reports the byte-level back end decoding this trace.
func (d *Decompressor) Backend() string { return d.backend.Name() }

// Position reports the absolute trace position (in addresses) of the next
// value Decode will return.
func (d *Decompressor) Position() int64 { return d.cursor }

// ChunkReads reports how many chunk blobs have been decompressed so far —
// chunk-cache hits do not count. It is safe to call while a readahead
// pipeline is running.
func (d *Decompressor) ChunkReads() int64 { return d.chunkReads.Load() }

// SetTrace attaches a per-request trace recorder: subsequent synchronous
// decodes (DecodeRange and friends) accumulate stage timings and
// chunk-touch counts into t. Pass nil to detach. Must not be called
// while a decode is in flight — the intended lifetime is one ranged
// request on a pooled reader, attached before the decode and detached
// (or read) after.
func (d *Decompressor) SetTrace(t *obs.Trace) { d.traceRec = t }

// ChunkIndex returns a copy of the chunk index: one entry per record, in
// trace order, each mapping its address range to its backing chunk.
func (d *Decompressor) ChunkIndex() []ChunkSpan {
	out := make([]ChunkSpan, len(d.index))
	for i, sp := range d.index {
		out[i] = ChunkSpan{
			Start:     sp.start,
			End:       sp.end,
			ChunkID:   sp.rec.chunkID,
			Imitation: sp.rec.tag == recImitate,
		}
	}
	return out
}

// Seek repositions the decoder so the next Decode returns the address at
// absolute trace position addr; addr may be anywhere in [0, TotalAddrs()]
// (seeking to the total makes the next Decode return io.EOF). Seeking
// clears a pending io.EOF, stops any readahead in flight (it restarts
// from the new position on the next Decode) and, for lossy and segmented
// traces, costs only the decode of the chunk covering addr when it is not
// already cached. Legacy v1 lossless traces are a single compressed
// stream, so seeking there decodes and discards addr addresses in the
// worst case.
func (d *Decompressor) SeekTo(addr int64) error {
	if d.closed {
		return fmt.Errorf("%w: SeekTo", ErrClosed)
	}
	if addr < 0 || addr > d.total {
		return fmt.Errorf("%w: seek to %d outside trace [0, %d]", ErrOutOfRange, addr, d.total)
	}
	d.stopReadahead()
	d.recycleBatch(d.pendingBuf)
	d.pending = nil
	d.pendingBuf = nil
	d.pos = 0
	d.cursor = addr
	d.err = nil
	return nil
}

// DecodeRange decodes the addresses at trace positions [from, to) —
// exactly the slice DecodeAll()[from:to] would hold — decompressing only
// the chunks overlapping the window (every touched chunk is pinned in the
// chunk cache, so repeated ranges over a working set are served from
// memory). The streaming position is unaffected: a Decode after a
// DecodeRange continues where it left off, though any readahead in flight
// is quiesced and restarts lazily.
func (d *Decompressor) DecodeRange(from, to int64) ([]uint64, error) {
	capHint := to - from
	if capHint < 0 {
		capHint = 0
	}
	if capHint > maxDecodeAllPrealloc {
		capHint = maxDecodeAllPrealloc
	}
	return d.DecodeRangeAppend(make([]uint64, 0, capHint), from, to)
}

// DecodeRangeAppend is DecodeRange decoding into a caller-provided
// buffer: the addresses at [from, to) are appended to dst and the
// extended slice returned. A dst with capacity for the window decodes
// with zero allocations beyond the chunk work itself.
func (d *Decompressor) DecodeRangeAppend(dst []uint64, from, to int64) ([]uint64, error) {
	if d.closed {
		return nil, fmt.Errorf("%w: DecodeRange", ErrClosed)
	}
	if from < 0 || to < from || to > d.total {
		return nil, fmt.Errorf("%w: range [%d, %d) outside trace [0, %d)", ErrOutOfRange, from, to, d.total)
	}
	if from == to {
		return dst, nil
	}
	d.stopReadahead()
	if d.streaming {
		if err := d.seekStream(from); err != nil {
			return nil, err
		}
		for d.streamPos < to {
			v, err := d.losslessDec.Read()
			if err == io.EOF {
				return nil, fmt.Errorf("%w: trace ends at %d addresses, trailer says %d",
					ErrCorrupt, d.streamPos, d.total)
			}
			if err != nil {
				return nil, err
			}
			d.streamPos++
			dst = append(dst, v)
		}
		return dst, nil
	}
	// Per-request tracing: the index walk and the copy-out are timed only
	// when a recorder is attached — too fine-grained to time every call.
	tr := d.traceRec
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	start := d.spanIndex(from)
	if tr != nil {
		tr.Add(obs.StageIndex, time.Since(t0))
	}
	for i := start; i < len(d.index) && d.index[i].start < to; i++ {
		sp := d.index[i]
		addrs, owned, err := d.materializeSpanPooled(sp)
		if err != nil {
			return nil, err
		}
		lo := int64(0)
		if from > sp.start {
			lo = from - sp.start
		}
		hi := sp.end
		if to < hi {
			hi = to
		}
		if tr != nil {
			t0 = time.Now()
		}
		dst = append(dst, addrs[lo:hi-sp.start]...)
		d.recycleInterval(owned)
		if tr != nil {
			tr.Add(obs.StageDeliver, time.Since(t0))
		}
	}
	return dst, nil
}

// Decode returns the next trace value (the paper's atc_decode); io.EOF
// signals a complete, verified end of trace. With readahead enabled
// (the default), decompression of upcoming batches proceeds on a
// background pipeline — started lazily at the current position — while
// the caller consumes earlier values.
func (d *Decompressor) Decode() (uint64, error) {
	if d.err != nil {
		return 0, d.err
	}
	if d.opts.Readahead > 0 {
		return d.decodeAhead()
	}
	return d.decodeSync()
}

// decodeAhead consumes the readahead pipeline. The batch sequence is
// exactly the serial decode order from the cursor, so position/total
// verification is unchanged.
func (d *Decompressor) decodeAhead() (uint64, error) {
	for d.pos >= len(d.pending) {
		if d.ahead == nil {
			d.startReadahead(d.opts.Readahead)
		}
		batch, ok := <-d.ahead
		if !ok {
			if d.cursor != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.cursor, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if batch.err != nil {
			d.err = batch.err
			return 0, d.err
		}
		d.recycleBatch(d.pendingBuf)
		d.pending = batch.addrs
		d.pendingBuf = batch.buf
		d.pos = 0
	}
	v := d.pending[d.pos]
	d.pos++
	d.cursor++
	if d.cursor > d.total {
		d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
		return 0, d.err
	}
	return v, nil
}

// decodeSync decodes on the calling goroutine (Readahead < 0): legacy
// lossless straight off the stream, everything else by materializing the
// index span covering the cursor.
func (d *Decompressor) decodeSync() (uint64, error) {
	if d.streaming {
		if d.streamPos != d.cursor {
			if err := d.seekStream(d.cursor); err != nil {
				d.err = err
				return 0, err
			}
		}
		v, err := d.losslessDec.Read()
		if err == io.EOF {
			if d.cursor != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.cursor, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if err != nil {
			d.err = err
			return 0, err
		}
		d.streamPos++
		d.cursor++
		if d.cursor > d.total {
			d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
			return 0, d.err
		}
		return v, nil
	}
	for d.pos >= len(d.pending) {
		i := d.spanIndex(d.cursor)
		if i >= len(d.index) {
			d.err = io.EOF
			return 0, io.EOF
		}
		sp := d.index[i]
		addrs, err := d.materializeSpan(sp, d.mode == Lossy)
		if err != nil {
			d.err = err
			return 0, err
		}
		d.pending = addrs[d.cursor-sp.start:]
		d.pos = 0
	}
	v := d.pending[d.pos]
	d.pos++
	d.cursor++
	return v, nil
}

// maxDecodeAllPrealloc caps the slice capacity DecodeAll commits before
// the first address decodes: 4 Mi addresses (32 MB). d.total comes from
// the untrusted INFO trailer, and a corrupt trailer must not demand an
// enormous allocation before any decode error can surface.
const maxDecodeAllPrealloc = 1 << 22

// DecodeAll decodes the remaining trace into memory.
func (d *Decompressor) DecodeAll() ([]uint64, error) {
	n := d.total - d.cursor
	if n < 0 {
		n = 0
	}
	if n > maxDecodeAllPrealloc {
		n = maxDecodeAllPrealloc
	}
	out := make([]uint64, 0, n)
	for {
		v, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

// materializeSpan decodes one index entry into its full address range and
// verifies the chunk actually holds the number of addresses the index
// assigns it — a wrong-length chunk must surface as corruption, not as a
// silently shifted tail. pin controls whether a freshly read chunk is
// held in the chunk cache.
func (d *Decompressor) materializeSpan(sp span, pin bool) ([]uint64, error) {
	addrs, err := d.materializeInterval(sp.rec, pin)
	if err != nil {
		return nil, err
	}
	if int64(len(addrs)) != sp.end-sp.start {
		return nil, fmt.Errorf("%w: chunk %d decodes to %d addresses, index says %d",
			ErrCorrupt, sp.rec.chunkID, len(addrs), sp.end-sp.start)
	}
	return addrs, nil
}

// readSpan is materializeSpan's cache-free twin for the concurrent
// segmented fan-out: it touches only immutable Decompressor state, so
// decode goroutines call it in parallel.
func (d *Decompressor) readSpan(sp span) ([]uint64, error) {
	addrs, err := d.readChunkFile(sp.rec.chunkID)
	if err != nil {
		return nil, err
	}
	if int64(len(addrs)) != sp.end-sp.start {
		return nil, fmt.Errorf("%w: chunk %d decodes to %d addresses, index says %d",
			ErrCorrupt, sp.rec.chunkID, len(addrs), sp.end-sp.start)
	}
	return addrs, nil
}

// intervalBuf takes a recycled imitation-interval buffer of length n, or
// allocates a fresh one. A recycled buffer too small for n is dropped —
// intervals of one trace share a length, so in practice the pool is
// right-sized after the first materialization.
//
//atc:pool put=recycleInterval
func (d *Decompressor) intervalBuf(n int) []uint64 {
	if d.intervalFree != nil {
		select {
		case b := <-d.intervalFree:
			if cap(b) >= n {
				return b[:n]
			}
		default:
		}
	}
	return make([]uint64, n)
}

// recycleInterval returns a drained interval buffer to the free list
// (dropped when full; nil is ignored).
func (d *Decompressor) recycleInterval(buf []uint64) {
	if buf == nil || d.intervalFree == nil {
		return
	}
	select {
	case d.intervalFree <- buf:
	default:
	}
}

// materializeSpanPooled is materializeSpan for consumers that copy the
// addresses out before touching the span again (DecodeRangeAppend): an
// imitation record's translated interval is built in a pooled buffer,
// returned as owned for the caller to hand back with recycleInterval
// once copied out. For chunk records — and under IgnoreTranslations,
// where the cached chunk itself is the materialization — owned is nil
// and addrs aliases cache-owned memory exactly as materializeSpan.
func (d *Decompressor) materializeSpanPooled(sp span) (addrs, owned []uint64, err error) {
	if sp.rec.tag != recImitate || d.opts.IgnoreTranslations {
		addrs, err = d.materializeSpan(sp, true)
		return addrs, nil, err
	}
	chunk, err := d.loadChunk(sp.rec.chunkID, true)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(chunk)) != sp.end-sp.start {
		return nil, nil, fmt.Errorf("%w: chunk %d decodes to %d addresses, index says %d",
			ErrCorrupt, sp.rec.chunkID, len(chunk), sp.end-sp.start)
	}
	start := time.Now()
	buf := d.intervalBuf(len(chunk))
	copy(buf, chunk)
	sp.rec.trans.ApplySlice(buf)
	d.observeTranslate(time.Since(start))
	return buf, buf, nil
}

// materializeInterval decodes one record into addresses: the chunk
// itself, or a translated copy for imitation records.
func (d *Decompressor) materializeInterval(rec record, pin bool) ([]uint64, error) {
	chunk, err := d.loadChunk(rec.chunkID, pin)
	if err != nil {
		return nil, err
	}
	switch rec.tag {
	case recChunk:
		return chunk, nil
	case recImitate:
		start := time.Now()
		out := make([]uint64, len(chunk))
		copy(out, chunk)
		if !d.opts.IgnoreTranslations {
			rec.trans.ApplySlice(out)
		}
		d.observeTranslate(time.Since(start))
		return out, nil
	default:
		return nil, fmt.Errorf("%w: bad record tag %d", ErrCorrupt, rec.tag)
	}
}

// chunkBufSize is the buffered-read size fronting chunk blobs.
const chunkBufSize = 1 << 16

// backendReader bundles one complete per-chunk decode unit: the buffered
// reader fronting the chunk blob, the backend's decompressing reader over
// it, and the bytesort decoder consuming that. dec is the decoder to
// read addresses from. For stateful back ends the unit is pooled on
// Decompressor.readerFree and every layer's working state (bufio buffer,
// backend block/transform scratch, bytesort inverse-sort scratch) is
// recycled across chunks; rr is nil for one-shot units, which are built,
// used and dropped exactly like the historical path.
type backendReader struct {
	dec *bytesort.Decoder
	br  *bufio.Reader
	rr  xcompress.ResetReader
}

// getBackendReader returns a decode unit reading addresses from the
// compressed chunk stream src. Callers must hand the unit back with
// putBackendReader; it is nil-safe, so `defer d.putBackendReader(pr)`
// placed directly after the call covers every error return.
//
//atc:pool put=putBackendReader
func (d *Decompressor) getBackendReader(src io.Reader) (*backendReader, error) {
	if d.statefulBackend == nil {
		cr, err := d.backend.NewReader(bufio.NewReaderSize(src, chunkBufSize))
		if err != nil {
			return nil, err
		}
		return &backendReader{dec: bytesort.NewDecoder(cr)}, nil
	}
	select {
	case pr := <-d.readerFree:
		pr.br.Reset(src)
		if err := pr.rr.Reset(pr.br); err != nil {
			// Suspect state: drop the unit rather than repooling it.
			return nil, err
		}
		pr.dec.Reset(pr.rr)
		return pr, nil
	default:
	}
	br := bufio.NewReaderSize(src, chunkBufSize)
	rr, err := d.statefulBackend.NewResetReader(br)
	if err != nil {
		return nil, err
	}
	return &backendReader{dec: bytesort.NewDecoder(rr), br: br, rr: rr}, nil
}

// putBackendReader returns a pooled decode unit to the free list,
// detaching it from the blob it was reading so the pool never pins a
// store handle. One-shot units (and nil, from a failed get) are dropped.
func (d *Decompressor) putBackendReader(pr *backendReader) {
	if pr == nil || pr.rr == nil {
		return
	}
	pr.br.Reset(depletedReader{})
	select {
	case d.readerFree <- pr:
	default: // pool full: let the GC take it
	}
}

// depletedReader is the empty source pooled readers are parked on while
// on the free list.
type depletedReader struct{}

func (depletedReader) Read([]byte) (int, error) { return 0, io.EOF }

// readChunkFile decompresses one chunk blob into addresses. It touches
// only immutable Decompressor state (st, backend), the atomic read
// counter and the concurrency-safe reader pool, so segmented-lossless
// decode goroutines call it concurrently: each holds its own Blob, and
// an archive store serves them from one shared io.ReaderAt with no
// per-chunk open(2).
func (d *Decompressor) readChunkFile(id int) ([]uint64, error) {
	d.chunkReads.Add(1)
	metChunkLoads.Inc()
	start := time.Now()
	f, err := d.st.Open(d.chunkName(id))
	if err != nil {
		return nil, fmt.Errorf("%w: missing chunk %d: %v", ErrCorrupt, id, err)
	}
	defer f.Close()
	// Time spent inside the blob's Read calls is fetch (store/remote
	// I/O); the rest of the wall time here is backend decompression.
	tf := &timedReader{r: f}
	pr, err := d.getBackendReader(tf)
	defer d.putBackendReader(pr)
	if err != nil {
		return nil, err
	}
	addrs, err := pr.dec.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, id, err)
	}
	decNS := time.Since(start).Nanoseconds() - tf.ns
	if decNS < 0 {
		decNS = 0
	}
	d.observeChunkStages(tf.ns, decNS)
	return addrs, nil
}

// loadChunk returns the decoded addresses of a chunk, consulting the
// cache. pin keeps a freshly read chunk resident (subject to the cache's
// eviction policy): the sequential lossy pipeline pins chunks so
// imitations avoid re-reading them, and random access pins everything it
// touches so a hot range working set decompresses once. When the cache
// supports singleflight loads (a shared cache does), the whole
// miss-load-insert sequence goes through it so concurrent readers of one
// chunk trigger a single decompression.
func (d *Decompressor) loadChunk(id int, pin bool) ([]uint64, error) {
	if d.loader != nil {
		loaded := false
		addrs, err := d.loader.GetOrLoad(id, pin, func() ([]uint64, error) {
			loaded = true
			return d.readChunkFile(id)
		})
		// Served without invoking our load — a cache (or in-flight
		// dedup) hit from this request's point of view. The shared
		// cache bumps the process-wide hit counter itself.
		if err == nil && !loaded {
			if tr := d.traceRec; tr != nil {
				tr.CacheHit()
			}
		}
		return addrs, err
	}
	if addrs, ok := d.cache.Get(id); ok {
		metChunkCacheHits.Inc()
		if tr := d.traceRec; tr != nil {
			tr.CacheHit()
		}
		return addrs, nil
	}
	addrs, err := d.readChunkFile(id)
	if err != nil {
		return nil, err
	}
	if pin {
		d.cache.Put(id, addrs)
	}
	return addrs, nil
}

// Close stops the readahead pipeline (if any) and releases open blobs,
// plus the store itself when Open built it from a path. A caller-provided
// DecodeOptions.Store stays open for further use. The Decompressor cannot
// be used afterwards — buffered readahead batches were discarded, so
// resuming would silently skip addresses.
func (d *Decompressor) Close() error {
	d.stopReadahead()
	if !d.closed {
		d.closed = true
		if d.err == nil {
			d.err = fmt.Errorf("%w: Decode", ErrClosed)
		}
	}
	var err error
	if d.losslessFile != nil {
		err = d.losslessFile.Close()
		d.losslessFile = nil
		d.losslessDec = nil
	}
	if d.ownStore && !d.storeClosed {
		d.storeClosed = true
		if e := d.st.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Store exposes the blob container the trace is being read from, for
// tooling (atcinfo's per-blob listing).
func (d *Decompressor) Store() store.Store { return d.st }

// ReadTrace is a convenience helper decoding an entire compressed trace —
// a directory or a single-file archive.
func ReadTrace(path string) ([]uint64, error) {
	d, err := Open(path, DecodeOptions{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.DecodeAll()
}

// WriteTrace is a convenience helper compressing an in-memory trace.
func WriteTrace(path string, addrs []uint64, opts Options) (Stats, error) {
	c, err := Create(path, opts)
	if err != nil {
		return Stats{}, err
	}
	if err := c.CodeSlice(addrs); err != nil {
		c.Close() // shut down the worker pool; reports the same latched error
		return Stats{}, err
	}
	if err := c.Close(); err != nil {
		return Stats{}, err
	}
	return c.Stats(), nil
}
