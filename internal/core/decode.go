package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"

	"atc/internal/bytesort"
	"atc/internal/histogram"
	"atc/internal/store"
	"atc/internal/xcompress"
)

// DecodeOptions configures decompression.
type DecodeOptions struct {
	// Backend overrides the back end named in MANIFEST (rarely needed).
	Backend string
	// IgnoreTranslations disables byte translation during imitation —
	// the ablation of the paper's Figure 4. The decoded trace then reuses
	// chunks verbatim and understates the trace footprint.
	IgnoreTranslations bool
	// ChunkCacheSize bounds the number of decompressed chunks kept in
	// memory (default 8). Imitations of cached chunks avoid re-reading the
	// chunk file.
	ChunkCacheSize int
	// Readahead bounds the number of decoded intervals (lossy), segments
	// (segmented lossless) or address batches (legacy lossless) a
	// background pipeline decompresses ahead of Decode, overlapping
	// back-end decompression with consumption. For segmented lossless
	// traces it is also the number of segments decompressing concurrently.
	// 0 selects the default (2); negative disables readahead and decodes
	// synchronously on the calling goroutine (the historical behavior).
	// The decoded stream is identical either way.
	Readahead int
	// Store overrides the blob container the trace is read from; when nil
	// the path passed to Open is inspected — a regular file opens as a
	// single-file .atc archive, anything else as a directory. A
	// caller-provided Store is not closed by Close.
	Store store.Store
	// Archive forces interpreting the path as a single-file archive
	// (ignored when Store is set): a directory at that path is then an
	// error rather than a fallback.
	Archive bool
}

// DefaultReadahead is the default number of buffered readahead batches.
const DefaultReadahead = 2

// losslessBatchAddrs is how many addresses the lossless readahead
// goroutine decodes per batch (512 KB per buffered batch).
const losslessBatchAddrs = 1 << 16

// aheadBatch is one readahead unit: a decoded interval (lossy) or address
// batch (lossless), or the error that ended production.
type aheadBatch struct {
	addrs []uint64
	err   error
}

// Decompressor streams a compressed trace back out (the paper's 'd' mode).
type Decompressor struct {
	st       store.Store
	ownStore bool // opened from a path: Close releases it
	opts     DecodeOptions
	backend  xcompress.Backend

	version      int
	mode         Mode
	intervalLen  int
	bufferAddrs  int
	segmentAddrs int
	epsilon      float64
	records      []record
	total        int64

	// segmented marks a version-2 lossless trace: the stream is decoded by
	// walking the chunk records (optionally in parallel) instead of
	// streaming a single chunk file.
	segmented bool

	storeClosed bool

	// Lossless streaming state.
	losslessFile io.Closer
	losslessDec  *bytesort.Decoder

	// Lossy iteration state.
	recIdx  int
	pending []uint64
	pos     int
	emitted int64

	cache     map[int][]uint64
	cacheFIFO []int

	// Readahead pipeline. When ahead is non-nil a producer goroutine owns
	// the decoding state (losslessDec, cache, recIdx) and streams batches
	// into the channel; Decode only touches pending/pos/emitted.
	ahead     chan aheadBatch
	aheadStop chan struct{}
	aheadWG   sync.WaitGroup

	err error
}

// Open prepares a compressed trace for decoding. The path names a trace
// directory or a single-file .atc archive (detected by a stat, or forced
// by opts.Archive); opts.Store overrides both with an explicit container.
func Open(path string, opts DecodeOptions) (*Decompressor, error) {
	if opts.ChunkCacheSize <= 0 {
		opts.ChunkCacheSize = 8
	}
	if opts.Readahead == 0 {
		opts.Readahead = DefaultReadahead
	}
	st := opts.Store
	ownStore := false
	if st == nil {
		ownStore = true
		switch fi, err := os.Stat(path); {
		case opts.Archive, err == nil && !fi.IsDir():
			ast, err := store.OpenArchive(path)
			if err != nil {
				return nil, err
			}
			st = ast
		default:
			// Directory, or missing path: the directory store reports the
			// latter as a missing MANIFEST, the historical error shape.
			st = store.OpenDir(path)
		}
	}
	d := &Decompressor{st: st, ownStore: ownStore, opts: opts, cache: map[int][]uint64{}}
	closeStore := func() {
		if ownStore {
			st.Close()
		}
	}
	mi, err := readManifest(st)
	if err != nil {
		// A Backend override exists precisely to recover traces with a
		// damaged or missing MANIFEST; the version is then taken from the
		// INFO stream alone. Unsupported versions are never tolerated.
		if opts.Backend == "" || errors.Is(err, ErrUnsupportedVersion) {
			closeStore()
			return nil, err
		}
		mi = manifestInfo{version: 0}
	}
	backendName := opts.Backend
	if backendName == "" {
		backendName = mi.backend
	}
	backend, err := xcompress.Lookup(backendName)
	if err != nil {
		closeStore()
		return nil, err
	}
	d.backend = backend
	if err := d.readInfo(backendName, mi.version); err != nil {
		closeStore()
		return nil, err
	}
	d.segmented = d.mode == Lossless && d.version >= infoVersion2
	if d.mode == Lossless && !d.segmented {
		if err := d.openLossless(backendName); err != nil {
			closeStore()
			return nil, err
		}
	}
	if opts.Readahead > 0 {
		d.startReadahead(opts.Readahead)
	}
	return d, nil
}

// startReadahead launches the producer goroutine that decompresses up to n
// batches ahead of Decode. It takes ownership of losslessDec, the chunk
// cache and recIdx; Decode then only consumes from the ahead channel.
func (d *Decompressor) startReadahead(n int) {
	d.ahead = make(chan aheadBatch, n)
	d.aheadStop = make(chan struct{})
	d.aheadWG.Add(1)
	go func() {
		defer d.aheadWG.Done()
		defer close(d.ahead)
		switch {
		case d.segmented:
			d.produceLosslessSegmented(n)
		case d.mode == Lossless:
			d.produceLossless()
		default:
			d.produceLossy()
		}
	}()
}

// deliver sends one batch, aborting if Close stopped the pipeline. It
// reports whether production should continue. The stop channel is polled
// first so a Close that is draining the ahead channel cannot keep the
// producer decoding to the end of the trace.
func (d *Decompressor) deliver(b aheadBatch) bool {
	select {
	case <-d.aheadStop:
		return false
	default:
	}
	select {
	case d.ahead <- b:
		return b.err == nil
	case <-d.aheadStop:
		return false
	}
}

func (d *Decompressor) produceLossless() {
	for {
		buf := make([]uint64, 0, losslessBatchAddrs)
		var rerr error
		for len(buf) < losslessBatchAddrs {
			v, err := d.losslessDec.Read()
			if err != nil {
				rerr = err
				break
			}
			buf = append(buf, v)
		}
		if len(buf) > 0 && !d.deliver(aheadBatch{addrs: buf}) {
			return
		}
		if rerr != nil {
			if rerr != io.EOF {
				d.deliver(aheadBatch{err: rerr})
			}
			return // io.EOF: closing the channel signals a clean end
		}
	}
}

func (d *Decompressor) produceLossy() {
	for d.recIdx < len(d.records) {
		addrs, err := d.materializeInterval(d.records[d.recIdx])
		d.recIdx++
		if !d.deliver(aheadBatch{addrs: addrs, err: err}) {
			return
		}
	}
}

// segResult carries one decoded segment from a decode goroutine to the
// in-order delivery loop.
type segResult struct {
	addrs []uint64
	err   error
}

// produceLosslessSegmented decodes a version-2 lossless trace with up to
// par segments decompressing concurrently while delivery stays strictly in
// trace order: a dispatcher assigns every chunk record a buffered result
// slot plus a goroutine, and the loop below consumes the slots in record
// order. The slots channel's capacity bounds how many segments are decoded
// (and held in memory) ahead of consumption.
func (d *Decompressor) produceLosslessSegmented(par int) {
	if par < 1 {
		par = 1
	}
	slots := make(chan chan segResult, par)
	var decodes sync.WaitGroup
	d.aheadWG.Add(1)
	go func() {
		defer d.aheadWG.Done()
		defer close(slots)
		// Every Add below happens on this goroutine, so this Wait cannot
		// race with them; and every spawned decode finishes (its slot has
		// capacity 1), so waiting cannot block even when delivery stops
		// early. Close blocks on aheadWG, so no decode outlives it.
		defer decodes.Wait()
		for _, rec := range d.records {
			slot := make(chan segResult, 1)
			select {
			case slots <- slot:
			case <-d.aheadStop:
				return
			}
			decodes.Add(1)
			go func(id int) {
				defer decodes.Done()
				addrs, err := d.readChunkFile(id)
				slot <- segResult{addrs: addrs, err: err}
			}(rec.chunkID)
		}
	}()
	for slot := range slots {
		res := <-slot
		if res.err != nil {
			d.deliver(aheadBatch{err: res.err})
			return
		}
		if len(res.addrs) > 0 && !d.deliver(aheadBatch{addrs: res.addrs}) {
			return
		}
	}
}

// manifestInfo is the parsed MANIFEST descriptor. version 0 means
// "unknown" (tolerated only under an explicit Backend override).
type manifestInfo struct {
	version int
	backend string
}

// readManifest parses the plain-text MANIFEST, including the "atc
// <version>" line the decoder historically ignored: a trace written by a
// future format must be rejected up front, not silently mis-decoded.
func readManifest(st store.Store) (manifestInfo, error) {
	data, err := store.ReadBlob(st, manifestName)
	if err != nil {
		return manifestInfo{}, fmt.Errorf("%w: missing MANIFEST: %v", ErrCorrupt, err)
	}
	mi := manifestInfo{version: -1}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		switch fields[0] {
		case "atc":
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 {
				return manifestInfo{}, fmt.Errorf("%w: bad MANIFEST version %q", ErrCorrupt, fields[1])
			}
			mi.version = v
		case "backend":
			mi.backend = fields[1]
		}
	}
	if mi.version < 0 {
		return manifestInfo{}, fmt.Errorf("%w: MANIFEST has no atc version line", ErrCorrupt)
	}
	if mi.version < infoVersion1 || mi.version > maxInfoVersion {
		return manifestInfo{}, fmt.Errorf("%w %d in MANIFEST (this build reads 1..%d)",
			ErrUnsupportedVersion, mi.version, maxInfoVersion)
	}
	if mi.backend == "" {
		return manifestInfo{}, fmt.Errorf("%w: MANIFEST has no backend line", ErrCorrupt)
	}
	return mi, nil
}

// maxAddrCount bounds every address-count field read from the untrusted
// INFO stream (interval length, bytesort buffer, segment length, trailer
// total, chunk ids): 2^48 addresses is 2 PB of raw trace, far beyond any
// real input, so larger values can only come from corruption — and must
// not be trusted before they size an allocation.
const maxAddrCount = 1 << 48

// readCount reads one bounds-checked address-count field.
func readCount(r *bufio.Reader, what string) (int64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("%w: short INFO (%s)", ErrCorrupt, what)
	}
	if v > maxAddrCount {
		return 0, fmt.Errorf("%w: implausible %s %d", ErrCorrupt, what, v)
	}
	return int64(v), nil
}

// readInfo parses the INFO stream. wantVersion is the version declared by
// MANIFEST (0 = unknown, under a Backend override); the two must agree.
func (d *Decompressor) readInfo(backendName string, wantVersion int) error {
	f, err := d.st.Open(infoBase + "." + backendName)
	if err != nil {
		return fmt.Errorf("%w: missing INFO: %v", ErrCorrupt, err)
	}
	defer f.Close()
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return err
	}
	r := bufio.NewReader(cr)
	var magicBuf [4]byte
	if _, err := io.ReadFull(r, magicBuf[:]); err != nil || string(magicBuf[:]) != infoMagic {
		return fmt.Errorf("%w: bad INFO magic", ErrCorrupt)
	}
	ver, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	if int(ver) < infoVersion1 || int(ver) > maxInfoVersion {
		return fmt.Errorf("%w %d in INFO (this build reads 1..%d)",
			ErrUnsupportedVersion, ver, maxInfoVersion)
	}
	if wantVersion > 0 && int(ver) != wantVersion {
		return fmt.Errorf("%w: INFO version %d does not match MANIFEST version %d",
			ErrCorrupt, ver, wantVersion)
	}
	d.version = int(ver)
	modeB, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.mode = Mode(modeB)
	if d.mode != Lossless && d.mode != Lossy {
		return fmt.Errorf("%w: unknown mode %d", ErrCorrupt, modeB)
	}
	il, err := readCount(r, "interval length")
	if err != nil {
		return err
	}
	d.intervalLen = int(il)
	ba, err := readCount(r, "bytesort buffer")
	if err != nil {
		return err
	}
	d.bufferAddrs = int(ba)
	if d.version >= infoVersion2 {
		sa, err := readCount(r, "segment length")
		if err != nil {
			return err
		}
		d.segmentAddrs = int(sa)
	}
	var eps [8]byte
	if _, err := io.ReadFull(r, eps[:]); err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.epsilon = math.Float64frombits(binary.LittleEndian.Uint64(eps[:]))
	for {
		tag, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: INFO truncated before end record", ErrCorrupt)
		}
		switch tag {
		case recEnd:
			total, err := readCount(r, "trailer total")
			if err != nil {
				return err
			}
			d.total = total
			return nil
		case recChunk:
			id, err := readCount(r, "chunk id")
			if err != nil {
				return err
			}
			d.records = append(d.records, record{tag: recChunk, chunkID: int(id)})
		case recImitate:
			if d.mode == Lossless {
				return fmt.Errorf("%w: imitation record in a lossless trace", ErrCorrupt)
			}
			id, err := readCount(r, "chunk id")
			if err != nil {
				return err
			}
			mask, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("%w: short imitation record", ErrCorrupt)
			}
			tr := &histogram.Translations{Mask: mask}
			for j := 0; j < histogram.Positions; j++ {
				if mask&(1<<uint(j)) != 0 {
					if _, err := io.ReadFull(r, tr.T[j][:]); err != nil {
						return fmt.Errorf("%w: short translation table", ErrCorrupt)
					}
				} else {
					for i := 0; i < 256; i++ {
						tr.T[j][i] = uint8(i)
					}
				}
			}
			d.records = append(d.records, record{tag: recImitate, chunkID: int(id), trans: tr})
		default:
			return fmt.Errorf("%w: unknown record tag %d", ErrCorrupt, tag)
		}
	}
}

func (d *Decompressor) chunkName(id int) string {
	return fmt.Sprintf("%d.%s", id, d.backend.Name())
}

func (d *Decompressor) openLossless(backendName string) error {
	f, err := d.st.Open(d.chunkName(1))
	if err != nil {
		return fmt.Errorf("%w: missing chunk 1: %v", ErrCorrupt, err)
	}
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return err
	}
	d.losslessFile = f
	d.losslessDec = bytesort.NewDecoder(cr)
	return nil
}

// Mode reports the stored trace's compression mode.
func (d *Decompressor) Mode() Mode { return d.mode }

// FormatVersion reports the trace's on-disk format version (1 or 2).
func (d *Decompressor) FormatVersion() int { return d.version }

// SegmentAddrs reports the stored lossless segment length in addresses
// (0 for legacy single-chunk and lossy traces).
func (d *Decompressor) SegmentAddrs() int { return d.segmentAddrs }

// TotalAddrs reports the stored trace's length in addresses.
func (d *Decompressor) TotalAddrs() int64 { return d.total }

// IntervalLen reports the stored interval length L (lossy traces).
func (d *Decompressor) IntervalLen() int { return d.intervalLen }

// Epsilon reports the stored matching threshold (lossy traces).
func (d *Decompressor) Epsilon() float64 { return d.epsilon }

// Records reports the number of interval records (lossy traces) or
// segment records (segmented lossless traces).
func (d *Decompressor) Records() int { return len(d.records) }

// Decode returns the next trace value (the paper's atc_decode); io.EOF
// signals a complete, verified end of trace. With readahead enabled
// (the default), decompression of upcoming batches proceeds on a
// background goroutine while the caller consumes earlier values.
func (d *Decompressor) Decode() (uint64, error) {
	if d.err != nil {
		return 0, d.err
	}
	if d.ahead != nil {
		return d.decodeAhead()
	}
	// Segmented lossless traces decode by walking the chunk records, the
	// same loop lossy intervals use (every record is a plain chunk).
	if d.mode == Lossless && !d.segmented {
		v, err := d.losslessDec.Read()
		if err == io.EOF {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if err != nil {
			d.err = err
			return 0, err
		}
		d.emitted++
		if d.emitted > d.total {
			d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
			return 0, d.err
		}
		return v, nil
	}
	for d.pos >= len(d.pending) {
		if d.recIdx >= len(d.records) {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if err := d.nextInterval(); err != nil {
			d.err = err
			return 0, err
		}
	}
	v := d.pending[d.pos]
	d.pos++
	d.emitted++
	return v, nil
}

// decodeAhead consumes the readahead channel. The batch sequence is exactly
// the serial decode order, so emitted/total verification is unchanged.
func (d *Decompressor) decodeAhead() (uint64, error) {
	for d.pos >= len(d.pending) {
		batch, ok := <-d.ahead
		if !ok {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if batch.err != nil {
			d.err = batch.err
			return 0, d.err
		}
		d.pending = batch.addrs
		d.pos = 0
	}
	v := d.pending[d.pos]
	d.pos++
	d.emitted++
	if d.emitted > d.total {
		d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
		return 0, d.err
	}
	return v, nil
}

// maxDecodeAllPrealloc caps the slice capacity DecodeAll commits before
// the first address decodes: 4 Mi addresses (32 MB). d.total comes from
// the untrusted INFO trailer, and a corrupt trailer must not demand an
// enormous allocation before any decode error can surface.
const maxDecodeAllPrealloc = 1 << 22

// DecodeAll decodes the remaining trace into memory.
func (d *Decompressor) DecodeAll() ([]uint64, error) {
	n := d.total
	if n < 0 {
		n = 0
	}
	if n > maxDecodeAllPrealloc {
		n = maxDecodeAllPrealloc
	}
	out := make([]uint64, 0, n)
	for {
		v, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

func (d *Decompressor) nextInterval() error {
	rec := d.records[d.recIdx]
	d.recIdx++
	addrs, err := d.materializeInterval(rec)
	if err != nil {
		return err
	}
	d.pending = addrs
	d.pos = 0
	return nil
}

// materializeInterval decodes one interval record into addresses: the
// chunk itself, or a translated copy for imitation records.
func (d *Decompressor) materializeInterval(rec record) ([]uint64, error) {
	chunk, err := d.loadChunk(rec.chunkID)
	if err != nil {
		return nil, err
	}
	switch rec.tag {
	case recChunk:
		return chunk, nil
	case recImitate:
		out := make([]uint64, len(chunk))
		copy(out, chunk)
		if !d.opts.IgnoreTranslations {
			rec.trans.ApplySlice(out)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: bad record tag %d", ErrCorrupt, rec.tag)
	}
}

// readChunkFile decompresses one chunk blob into addresses. It touches
// only immutable Decompressor state (st, backend), so segmented-lossless
// decode goroutines call it concurrently: each holds its own Blob, and an
// archive store serves them from one shared io.ReaderAt with no per-chunk
// open(2).
func (d *Decompressor) readChunkFile(id int) ([]uint64, error) {
	f, err := d.st.Open(d.chunkName(id))
	if err != nil {
		return nil, fmt.Errorf("%w: missing chunk %d: %v", ErrCorrupt, id, err)
	}
	defer f.Close()
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	addrs, err := bytesort.NewDecoder(cr).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, id, err)
	}
	return addrs, nil
}

// loadChunk returns the decoded addresses of a chunk, consulting the cache.
// Lossless segments are never re-read (no imitation records), so only lossy
// chunks are worth pinning in memory.
func (d *Decompressor) loadChunk(id int) ([]uint64, error) {
	if addrs, ok := d.cache[id]; ok {
		return addrs, nil
	}
	addrs, err := d.readChunkFile(id)
	if err != nil {
		return nil, err
	}
	if d.mode == Lossy {
		if len(d.cacheFIFO) >= d.opts.ChunkCacheSize {
			oldest := d.cacheFIFO[0]
			d.cacheFIFO = d.cacheFIFO[1:]
			delete(d.cache, oldest)
		}
		d.cache[id] = addrs
		d.cacheFIFO = append(d.cacheFIFO, id)
	}
	return addrs, nil
}

// Close stops the readahead goroutine (if any) and releases open blobs,
// plus the store itself when Open built it from a path. A caller-provided
// DecodeOptions.Store stays open for further use.
func (d *Decompressor) Close() error {
	if d.ahead != nil {
		close(d.aheadStop)
		// Unblock a producer parked on a full channel, then wait for it to
		// exit before closing the file it may be reading.
		for range d.ahead {
		}
		d.aheadWG.Wait()
		d.ahead = nil
		// Buffered batches were discarded above, so resuming on the
		// synchronous path would silently skip them: fail further Decodes.
		if d.err == nil {
			d.err = errors.New("atc: decode after close")
		}
	}
	var err error
	if d.losslessFile != nil {
		err = d.losslessFile.Close()
		d.losslessFile = nil
	}
	if d.ownStore && !d.storeClosed {
		d.storeClosed = true
		if e := d.st.Close(); err == nil {
			err = e
		}
	}
	return err
}

// Store exposes the blob container the trace is being read from, for
// tooling (atcinfo's per-blob listing).
func (d *Decompressor) Store() store.Store { return d.st }

// ReadTrace is a convenience helper decoding an entire compressed trace —
// a directory or a single-file archive.
func ReadTrace(path string) ([]uint64, error) {
	d, err := Open(path, DecodeOptions{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.DecodeAll()
}

// WriteTrace is a convenience helper compressing an in-memory trace.
func WriteTrace(path string, addrs []uint64, opts Options) (Stats, error) {
	c, err := Create(path, opts)
	if err != nil {
		return Stats{}, err
	}
	if err := c.CodeSlice(addrs); err != nil {
		c.Close() // shut down the worker pool; reports the same latched error
		return Stats{}, err
	}
	if err := c.Close(); err != nil {
		return Stats{}, err
	}
	return c.Stats(), nil
}
