package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"atc/internal/bytesort"
	"atc/internal/histogram"
	"atc/internal/xcompress"
)

// DecodeOptions configures decompression.
type DecodeOptions struct {
	// Backend overrides the back end named in MANIFEST (rarely needed).
	Backend string
	// IgnoreTranslations disables byte translation during imitation —
	// the ablation of the paper's Figure 4. The decoded trace then reuses
	// chunks verbatim and understates the trace footprint.
	IgnoreTranslations bool
	// ChunkCacheSize bounds the number of decompressed chunks kept in
	// memory (default 8). Imitations of cached chunks avoid re-reading the
	// chunk file.
	ChunkCacheSize int
	// Readahead bounds the number of decoded intervals (lossy) or address
	// batches (lossless) a background goroutine decompresses ahead of
	// Decode, overlapping back-end decompression with consumption.
	// 0 selects the default (2); negative disables readahead and decodes
	// synchronously on the calling goroutine (the historical behavior).
	// The decoded stream is identical either way.
	Readahead int
}

// DefaultReadahead is the default number of buffered readahead batches.
const DefaultReadahead = 2

// losslessBatchAddrs is how many addresses the lossless readahead
// goroutine decodes per batch (512 KB per buffered batch).
const losslessBatchAddrs = 1 << 16

// aheadBatch is one readahead unit: a decoded interval (lossy) or address
// batch (lossless), or the error that ended production.
type aheadBatch struct {
	addrs []uint64
	err   error
}

// Decompressor streams a compressed trace back out (the paper's 'd' mode).
type Decompressor struct {
	dir     string
	opts    DecodeOptions
	backend xcompress.Backend

	mode        Mode
	intervalLen int
	bufferAddrs int
	epsilon     float64
	records     []record
	total       int64

	// Lossless streaming state.
	losslessFile *os.File
	losslessDec  *bytesort.Decoder

	// Lossy iteration state.
	recIdx  int
	pending []uint64
	pos     int
	emitted int64

	cache     map[int][]uint64
	cacheFIFO []int

	// Readahead pipeline. When ahead is non-nil a producer goroutine owns
	// the decoding state (losslessDec, cache, recIdx) and streams batches
	// into the channel; Decode only touches pending/pos/emitted.
	ahead     chan aheadBatch
	aheadStop chan struct{}
	aheadWG   sync.WaitGroup

	err error
}

// Open prepares a compressed trace directory for decoding.
func Open(dir string, opts DecodeOptions) (*Decompressor, error) {
	if opts.ChunkCacheSize <= 0 {
		opts.ChunkCacheSize = 8
	}
	if opts.Readahead == 0 {
		opts.Readahead = DefaultReadahead
	}
	d := &Decompressor{dir: dir, opts: opts, cache: map[int][]uint64{}}
	backendName := opts.Backend
	if backendName == "" {
		var err error
		backendName, err = readManifestBackend(filepath.Join(dir, manifestName))
		if err != nil {
			return nil, err
		}
	}
	backend, err := xcompress.Lookup(backendName)
	if err != nil {
		return nil, err
	}
	d.backend = backend
	if err := d.readInfo(backendName); err != nil {
		return nil, err
	}
	if d.mode == Lossless {
		if err := d.openLossless(backendName); err != nil {
			return nil, err
		}
	}
	if opts.Readahead > 0 {
		d.startReadahead(opts.Readahead)
	}
	return d, nil
}

// startReadahead launches the producer goroutine that decompresses up to n
// batches ahead of Decode. It takes ownership of losslessDec, the chunk
// cache and recIdx; Decode then only consumes from the ahead channel.
func (d *Decompressor) startReadahead(n int) {
	d.ahead = make(chan aheadBatch, n)
	d.aheadStop = make(chan struct{})
	d.aheadWG.Add(1)
	go func() {
		defer d.aheadWG.Done()
		defer close(d.ahead)
		if d.mode == Lossless {
			d.produceLossless()
		} else {
			d.produceLossy()
		}
	}()
}

// deliver sends one batch, aborting if Close stopped the pipeline. It
// reports whether production should continue. The stop channel is polled
// first so a Close that is draining the ahead channel cannot keep the
// producer decoding to the end of the trace.
func (d *Decompressor) deliver(b aheadBatch) bool {
	select {
	case <-d.aheadStop:
		return false
	default:
	}
	select {
	case d.ahead <- b:
		return b.err == nil
	case <-d.aheadStop:
		return false
	}
}

func (d *Decompressor) produceLossless() {
	for {
		buf := make([]uint64, 0, losslessBatchAddrs)
		var rerr error
		for len(buf) < losslessBatchAddrs {
			v, err := d.losslessDec.Read()
			if err != nil {
				rerr = err
				break
			}
			buf = append(buf, v)
		}
		if len(buf) > 0 && !d.deliver(aheadBatch{addrs: buf}) {
			return
		}
		if rerr != nil {
			if rerr != io.EOF {
				d.deliver(aheadBatch{err: rerr})
			}
			return // io.EOF: closing the channel signals a clean end
		}
	}
}

func (d *Decompressor) produceLossy() {
	for d.recIdx < len(d.records) {
		addrs, err := d.materializeInterval(d.records[d.recIdx])
		d.recIdx++
		if !d.deliver(aheadBatch{addrs: addrs, err: err}) {
			return
		}
	}
}

func readManifestBackend(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", fmt.Errorf("%w: missing MANIFEST: %v", ErrCorrupt, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == "backend" {
			return fields[1], nil
		}
	}
	return "", fmt.Errorf("%w: MANIFEST has no backend line", ErrCorrupt)
}

func (d *Decompressor) readInfo(backendName string) error {
	f, err := os.Open(filepath.Join(d.dir, infoBase+"."+backendName))
	if err != nil {
		return fmt.Errorf("%w: missing INFO: %v", ErrCorrupt, err)
	}
	defer f.Close()
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return err
	}
	r := bufio.NewReader(cr)
	var magicBuf [4]byte
	if _, err := io.ReadFull(r, magicBuf[:]); err != nil || string(magicBuf[:]) != infoMagic {
		return fmt.Errorf("%w: bad INFO magic", ErrCorrupt)
	}
	ver, err := r.ReadByte()
	if err != nil || ver != infoVersion {
		return fmt.Errorf("%w: unsupported INFO version %d", ErrCorrupt, ver)
	}
	modeB, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.mode = Mode(modeB)
	if d.mode != Lossless && d.mode != Lossy {
		return fmt.Errorf("%w: unknown mode %d", ErrCorrupt, modeB)
	}
	il, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.intervalLen = int(il)
	ba, err := binary.ReadUvarint(r)
	if err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.bufferAddrs = int(ba)
	var eps [8]byte
	if _, err := io.ReadFull(r, eps[:]); err != nil {
		return fmt.Errorf("%w: short INFO", ErrCorrupt)
	}
	d.epsilon = math.Float64frombits(binary.LittleEndian.Uint64(eps[:]))
	for {
		tag, err := r.ReadByte()
		if err != nil {
			return fmt.Errorf("%w: INFO truncated before end record", ErrCorrupt)
		}
		switch tag {
		case recEnd:
			total, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("%w: short trailer", ErrCorrupt)
			}
			d.total = int64(total)
			return nil
		case recChunk:
			id, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("%w: short chunk record", ErrCorrupt)
			}
			d.records = append(d.records, record{tag: recChunk, chunkID: int(id)})
		case recImitate:
			id, err := binary.ReadUvarint(r)
			if err != nil {
				return fmt.Errorf("%w: short imitation record", ErrCorrupt)
			}
			mask, err := r.ReadByte()
			if err != nil {
				return fmt.Errorf("%w: short imitation record", ErrCorrupt)
			}
			tr := &histogram.Translations{Mask: mask}
			for j := 0; j < histogram.Positions; j++ {
				if mask&(1<<uint(j)) != 0 {
					if _, err := io.ReadFull(r, tr.T[j][:]); err != nil {
						return fmt.Errorf("%w: short translation table", ErrCorrupt)
					}
				} else {
					for i := 0; i < 256; i++ {
						tr.T[j][i] = uint8(i)
					}
				}
			}
			d.records = append(d.records, record{tag: recImitate, chunkID: int(id), trans: tr})
		default:
			return fmt.Errorf("%w: unknown record tag %d", ErrCorrupt, tag)
		}
	}
}

func (d *Decompressor) chunkPath(id int) string {
	return filepath.Join(d.dir, fmt.Sprintf("%d.%s", id, d.backend.Name()))
}

func (d *Decompressor) openLossless(backendName string) error {
	f, err := os.Open(d.chunkPath(1))
	if err != nil {
		return fmt.Errorf("%w: missing chunk 1: %v", ErrCorrupt, err)
	}
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		f.Close()
		return err
	}
	d.losslessFile = f
	d.losslessDec = bytesort.NewDecoder(cr)
	return nil
}

// Mode reports the stored trace's compression mode.
func (d *Decompressor) Mode() Mode { return d.mode }

// TotalAddrs reports the stored trace's length in addresses.
func (d *Decompressor) TotalAddrs() int64 { return d.total }

// IntervalLen reports the stored interval length L (lossy traces).
func (d *Decompressor) IntervalLen() int { return d.intervalLen }

// Epsilon reports the stored matching threshold (lossy traces).
func (d *Decompressor) Epsilon() float64 { return d.epsilon }

// Records reports the number of interval records (lossy traces).
func (d *Decompressor) Records() int { return len(d.records) }

// Decode returns the next trace value (the paper's atc_decode); io.EOF
// signals a complete, verified end of trace. With readahead enabled
// (the default), decompression of upcoming batches proceeds on a
// background goroutine while the caller consumes earlier values.
func (d *Decompressor) Decode() (uint64, error) {
	if d.err != nil {
		return 0, d.err
	}
	if d.ahead != nil {
		return d.decodeAhead()
	}
	if d.mode == Lossless {
		v, err := d.losslessDec.Read()
		if err == io.EOF {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if err != nil {
			d.err = err
			return 0, err
		}
		d.emitted++
		if d.emitted > d.total {
			d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
			return 0, d.err
		}
		return v, nil
	}
	for d.pos >= len(d.pending) {
		if d.recIdx >= len(d.records) {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if err := d.nextInterval(); err != nil {
			d.err = err
			return 0, err
		}
	}
	v := d.pending[d.pos]
	d.pos++
	d.emitted++
	return v, nil
}

// decodeAhead consumes the readahead channel. The batch sequence is exactly
// the serial decode order, so emitted/total verification is unchanged.
func (d *Decompressor) decodeAhead() (uint64, error) {
	for d.pos >= len(d.pending) {
		batch, ok := <-d.ahead
		if !ok {
			if d.emitted != d.total {
				d.err = fmt.Errorf("%w: decoded %d addresses, trailer says %d", ErrCorrupt, d.emitted, d.total)
				return 0, d.err
			}
			d.err = io.EOF
			return 0, io.EOF
		}
		if batch.err != nil {
			d.err = batch.err
			return 0, d.err
		}
		d.pending = batch.addrs
		d.pos = 0
	}
	v := d.pending[d.pos]
	d.pos++
	d.emitted++
	if d.emitted > d.total {
		d.err = fmt.Errorf("%w: more addresses than trailer count %d", ErrCorrupt, d.total)
		return 0, d.err
	}
	return v, nil
}

// DecodeAll decodes the remaining trace into memory.
func (d *Decompressor) DecodeAll() ([]uint64, error) {
	out := make([]uint64, 0, d.total)
	for {
		v, err := d.Decode()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, v)
	}
}

func (d *Decompressor) nextInterval() error {
	rec := d.records[d.recIdx]
	d.recIdx++
	addrs, err := d.materializeInterval(rec)
	if err != nil {
		return err
	}
	d.pending = addrs
	d.pos = 0
	return nil
}

// materializeInterval decodes one interval record into addresses: the
// chunk itself, or a translated copy for imitation records.
func (d *Decompressor) materializeInterval(rec record) ([]uint64, error) {
	chunk, err := d.loadChunk(rec.chunkID)
	if err != nil {
		return nil, err
	}
	switch rec.tag {
	case recChunk:
		return chunk, nil
	case recImitate:
		out := make([]uint64, len(chunk))
		copy(out, chunk)
		if !d.opts.IgnoreTranslations {
			rec.trans.ApplySlice(out)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: bad record tag %d", ErrCorrupt, rec.tag)
	}
}

// loadChunk returns the decoded addresses of a chunk, consulting the cache.
func (d *Decompressor) loadChunk(id int) ([]uint64, error) {
	if addrs, ok := d.cache[id]; ok {
		return addrs, nil
	}
	f, err := os.Open(d.chunkPath(id))
	if err != nil {
		return nil, fmt.Errorf("%w: missing chunk %d: %v", ErrCorrupt, id, err)
	}
	defer f.Close()
	cr, err := d.backend.NewReader(bufio.NewReaderSize(f, 1<<16))
	if err != nil {
		return nil, err
	}
	addrs, err := bytesort.NewDecoder(cr).ReadAll()
	if err != nil {
		return nil, fmt.Errorf("%w: chunk %d: %v", ErrCorrupt, id, err)
	}
	if len(d.cacheFIFO) >= d.opts.ChunkCacheSize {
		oldest := d.cacheFIFO[0]
		d.cacheFIFO = d.cacheFIFO[1:]
		delete(d.cache, oldest)
	}
	d.cache[id] = addrs
	d.cacheFIFO = append(d.cacheFIFO, id)
	return addrs, nil
}

// Close stops the readahead goroutine (if any) and releases open files.
func (d *Decompressor) Close() error {
	if d.ahead != nil {
		close(d.aheadStop)
		// Unblock a producer parked on a full channel, then wait for it to
		// exit before closing the file it may be reading.
		for range d.ahead {
		}
		d.aheadWG.Wait()
		d.ahead = nil
		// Buffered batches were discarded above, so resuming on the
		// synchronous path would silently skip them: fail further Decodes.
		if d.err == nil {
			d.err = errors.New("atc: decode after close")
		}
	}
	if d.losslessFile != nil {
		err := d.losslessFile.Close()
		d.losslessFile = nil
		return err
	}
	return nil
}

// ReadTrace is a convenience helper decoding an entire compressed trace.
func ReadTrace(dir string) ([]uint64, error) {
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.DecodeAll()
}

// WriteTrace is a convenience helper compressing an in-memory trace.
func WriteTrace(dir string, addrs []uint64, opts Options) (Stats, error) {
	c, err := Create(dir, opts)
	if err != nil {
		return Stats{}, err
	}
	if err := c.CodeSlice(addrs); err != nil {
		c.Close() // shut down the worker pool; reports the same latched error
		return Stats{}, err
	}
	if err := c.Close(); err != nil {
		return Stats{}, err
	}
	return c.Stats(), nil
}
