package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"atc/internal/obs"
)

// ChunkCache holds decompressed chunks ([]uint64 address slices) keyed by
// chunk ID. The Decompressor consults it on every chunk load; which chunks
// enter the cache is the caller's pinning policy, which chunks leave is
// the implementation's eviction policy.
//
// Cached slices are shared, immutable data: neither the cache nor its
// callers may mutate a slice after Put. The default implementation (a
// private bounded FIFO per Decompressor) is not safe for concurrent use —
// it is only touched from the decoder's dispatcher goroutine. A cache
// shared between Decompressors (DecodeOptions.ChunkCache) must be safe for
// concurrent use; SharedChunkCache is the provided implementation.
type ChunkCache interface {
	// Get returns the cached chunk, or ok=false on a miss.
	Get(id int) ([]uint64, bool)
	// Put inserts a chunk, evicting per the implementation's policy.
	Put(id int, addrs []uint64)
}

// chunkLoader is an optional ChunkCache extension: GetOrLoad combines
// lookup, miss-loading and insertion in one call so the cache can
// deduplicate concurrent loads of the same chunk (singleflight). The
// Decompressor prefers it when present — with N pooled readers hammering
// one hot window, the chunk decompresses once, not once per reader.
type chunkLoader interface {
	// GetOrLoad returns the cached chunk or invokes load exactly once per
	// concurrent miss cohort, inserting the result when pin is set.
	GetOrLoad(id int, pin bool, load func() ([]uint64, error)) ([]uint64, error)
}

// fifoChunkCache is the historical per-Decompressor cache: a bounded FIFO,
// single-goroutine use only.
type fifoChunkCache struct {
	cap  int
	m    map[int][]uint64
	fifo []int
}

func newFIFOChunkCache(capacity int) *fifoChunkCache {
	return &fifoChunkCache{cap: capacity, m: map[int][]uint64{}}
}

// Get returns the cached chunk without touching eviction order (FIFO).
//
//atc:hotpath
func (c *fifoChunkCache) Get(id int) ([]uint64, bool) {
	addrs, ok := c.m[id]
	return addrs, ok
}

// Put inserts a chunk, evicting the oldest insertion once full.
func (c *fifoChunkCache) Put(id int, addrs []uint64) {
	if _, ok := c.m[id]; ok {
		return
	}
	if len(c.fifo) >= c.cap {
		oldest := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.m, oldest)
		metChunkCacheEvict.Inc()
	}
	c.m[id] = addrs
	c.fifo = append(c.fifo, id)
}

// SharedChunkCache is a concurrency-safe LRU chunk cache designed to be
// shared across a pool of Decompressors over one trace (atcserve's reader
// pool): a hot chunk decompresses once per process instead of once per
// reader. Concurrent misses on the same chunk deduplicate onto a single
// load (singleflight) — later arrivals block until the first loader
// finishes and share its result.
type SharedChunkCache struct {
	mu       sync.Mutex
	cap      int
	ll       list.List
	m        map[int]*list.Element
	inflight map[int]*chunkFlight

	hits      atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
}

// chunkFlight is one in-progress chunk load; done closes once addrs/err
// are set.
type chunkFlight struct {
	done  chan struct{}
	addrs []uint64
	err   error
}

type chunkEntry struct {
	id    int
	addrs []uint64
}

// NewSharedChunkCache returns a shared LRU cache bounding capacity chunks
// (minimum 1).
func NewSharedChunkCache(capacity int) *SharedChunkCache {
	if capacity < 1 {
		capacity = 1
	}
	return &SharedChunkCache{
		cap:      capacity,
		m:        map[int]*list.Element{},
		inflight: map[int]*chunkFlight{},
	}
}

// Get returns the cached chunk, marking it most recently used.
func (c *SharedChunkCache) Get(id int) ([]uint64, bool) {
	c.mu.Lock()
	e, ok := c.m[id]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(e)
	addrs := e.Value.(*chunkEntry).addrs
	c.mu.Unlock()
	c.hits.Add(1)
	metChunkCacheHits.Inc()
	return addrs, true
}

// Put inserts a chunk, evicting from the least recently used end.
func (c *SharedChunkCache) Put(id int, addrs []uint64) {
	c.mu.Lock()
	c.putLocked(id, addrs)
	c.mu.Unlock()
}

func (c *SharedChunkCache) putLocked(id int, addrs []uint64) {
	if e, ok := c.m[id]; ok {
		c.ll.MoveToFront(e)
		e.Value.(*chunkEntry).addrs = addrs
		return
	}
	c.m[id] = c.ll.PushFront(&chunkEntry{id: id, addrs: addrs})
	for len(c.m) > c.cap {
		e := c.ll.Back()
		delete(c.m, e.Value.(*chunkEntry).id)
		c.ll.Remove(e)
		c.evictions.Add(1)
		metChunkCacheEvict.Inc()
	}
}

// GetOrLoad implements the singleflight load path: on a miss the first
// caller runs load while concurrent callers for the same chunk wait and
// share the result. Failed loads are not cached — every waiter sees the
// error, and the next request retries.
func (c *SharedChunkCache) GetOrLoad(id int, pin bool, load func() ([]uint64, error)) ([]uint64, error) {
	c.mu.Lock()
	if e, ok := c.m[id]; ok {
		c.ll.MoveToFront(e)
		addrs := e.Value.(*chunkEntry).addrs
		c.mu.Unlock()
		c.hits.Add(1)
		metChunkCacheHits.Inc()
		return addrs, nil
	}
	if f, ok := c.inflight[id]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		c.hits.Add(1)
		metChunkCacheHits.Inc()
		return f.addrs, nil
	}
	f := &chunkFlight{done: make(chan struct{})}
	c.inflight[id] = f
	c.mu.Unlock()
	f.addrs, f.err = load()
	c.mu.Lock()
	delete(c.inflight, id)
	if f.err == nil && pin {
		c.putLocked(id, f.addrs)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	c.loads.Add(1)
	return f.addrs, nil
}

// SharedChunkCacheStats counts a SharedChunkCache's traffic.
type SharedChunkCacheStats struct {
	// Hits counts lookups served from the cache or deduplicated onto a
	// concurrent load.
	Hits int64
	// Loads counts successful chunk decompressions (the misses).
	Loads int64
	// Evictions counts chunks pushed out of the LRU end.
	Evictions int64
	// Resident is the number of chunks currently cached.
	Resident int
}

// Stats reports hit/load/eviction counters and current occupancy.
func (c *SharedChunkCache) Stats() SharedChunkCacheStats {
	c.mu.Lock()
	resident := len(c.m)
	c.mu.Unlock()
	return SharedChunkCacheStats{
		Hits:      c.hits.Load(),
		Loads:     c.loads.Load(),
		Evictions: c.evictions.Load(),
		Resident:  resident,
	}
}

// Register exposes the cache's counters on r as labeled func metrics —
// thin views over the same atomics Stats reads, typically labeled with
// the trace the cache serves. Re-registering the same labels replaces
// the callbacks, so re-opening a trace pool under one name is safe.
func (c *SharedChunkCache) Register(r *obs.Registry, labels ...obs.Label) {
	r.CounterFunc("atc_chunk_cache_hits_total",
		"chunk lookups served from the shared cache or deduplicated onto an in-flight load",
		func() int64 { return c.hits.Load() }, labels...)
	r.CounterFunc("atc_chunk_cache_loads_total",
		"chunk decompressions through the shared cache (misses)",
		func() int64 { return c.loads.Load() }, labels...)
	r.CounterFunc("atc_chunk_cache_evictions_total",
		"chunks evicted from the shared cache",
		func() int64 { return c.evictions.Load() }, labels...)
	r.GaugeFunc("atc_chunk_cache_resident_chunks",
		"chunks currently resident in the shared cache",
		func() int64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return int64(len(c.m))
		}, labels...)
}
