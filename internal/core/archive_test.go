package core

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"atc/internal/store"
)

// storeKinds enumerates the three Store implementations for cross-store
// property tests. newDest returns (path, opts-with-store) for a fresh
// trace destination of that kind.
type storeKind struct {
	name    string
	newDest func(t *testing.T, opts Options) (string, Options)
}

func storeKinds() []storeKind {
	return []storeKind{
		{"dir", func(t *testing.T, opts Options) (string, Options) {
			return filepath.Join(t.TempDir(), "trace"), opts
		}},
		{"archive", func(t *testing.T, opts Options) (string, Options) {
			opts.Archive = true
			return filepath.Join(t.TempDir(), "trace.atc"), opts
		}},
		{"mem", func(t *testing.T, opts Options) (string, Options) {
			opts.Store = store.NewMem()
			return "mem", opts
		}},
	}
}

// decodeKind re-opens what newDest produced; for mem the written store is
// handed back in via DecodeOptions.
func decodeAllFrom(t *testing.T, path string, opts Options, readahead int) []uint64 {
	t.Helper()
	dopts := DecodeOptions{Readahead: readahead}
	if opts.Store != nil {
		dopts.Store = opts.Store
	}
	d, err := Open(path, dopts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	defer d.Close()
	got, err := d.DecodeAll()
	if err != nil {
		t.Fatalf("DecodeAll(%s): %v", path, err)
	}
	return got
}

// TestRoundTripAcrossStores is the PR's acceptance property: lossy,
// legacy lossless and segmented lossless at Workers ∈ {1, 8} round-trip
// through every store kind, and the lossless modes are bit exact.
func TestRoundTripAcrossStores(t *testing.T) {
	addrs := randomTrace(t, 31, 30_000)
	modes := []struct {
		name string
		opts Options
	}{
		{"lossy", Options{Mode: Lossy, IntervalLen: 4000, BufferAddrs: 500}},
		{"lossless-legacy", Options{Mode: Lossless, BufferAddrs: 700, SegmentAddrs: -1}},
		{"lossless-segmented", Options{Mode: Lossless, BufferAddrs: 700, SegmentAddrs: 5000}},
	}
	for _, kind := range storeKinds() {
		for _, mode := range modes {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/%s/workers=%d", kind.name, mode.name, workers), func(t *testing.T) {
					opts := mode.opts
					opts.Workers = workers
					path, opts := kind.newDest(t, opts)
					if _, err := WriteTrace(path, addrs, opts); err != nil {
						t.Fatalf("WriteTrace: %v", err)
					}
					for _, ra := range []int{-1, 2} {
						got := decodeAllFrom(t, path, opts, ra)
						if len(got) != len(addrs) {
							t.Fatalf("readahead=%d: decoded %d addrs, want %d", ra, len(got), len(addrs))
						}
						if mode.opts.Mode == Lossless {
							for i := range addrs {
								if got[i] != addrs[i] {
									t.Fatalf("readahead=%d: lossless mismatch at %d", ra, i)
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestPackedArchiveDecodesIdentically checks the atcpack path: a directory
// trace copied blob-for-blob into an archive (and back) decodes to the
// identical stream, and the unpacked directory is byte-identical to the
// original.
func TestPackedArchiveDecodesIdentically(t *testing.T) {
	addrs := randomTrace(t, 32, 25_000)
	for _, mode := range []Options{
		{Mode: Lossy, IntervalLen: 3000, BufferAddrs: 400},
		{Mode: Lossless, BufferAddrs: 400, SegmentAddrs: 4000},
		{Mode: Lossless, BufferAddrs: 400, SegmentAddrs: -1},
	} {
		dir := t.TempDir()
		if _, err := WriteTrace(dir, addrs, mode); err != nil {
			t.Fatal(err)
		}
		want, err := ReadTrace(dir)
		if err != nil {
			t.Fatal(err)
		}

		// Pack: dir -> archive, copying blobs verbatim.
		arcPath := filepath.Join(t.TempDir(), "packed.atc")
		arc, err := store.CreateArchive(arcPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.CopyAll(arc, store.OpenDir(dir)); err != nil {
			t.Fatal(err)
		}
		if err := arc.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTrace(arcPath)
		if err != nil {
			t.Fatalf("decoding packed archive: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("packed decode length %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("packed archive decode diverges at %d", i)
			}
		}

		// Unpack: archive -> dir, and diff against the original directory.
		back := filepath.Join(t.TempDir(), "unpacked")
		rd, err := store.OpenArchive(arcPath)
		if err != nil {
			t.Fatal(err)
		}
		ds, err := store.CreateDir(back)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.CopyAll(ds, rd); err != nil {
			t.Fatal(err)
		}
		rd.Close()
		dirsEqual(t, dir, back)
	}
}

// TestArchiveBPAWithinOnePercent is the PR's container-overhead bound: on
// a chunk-heavy workload the archive layout costs less than 1% BPA over
// the directory layout (header + TOC being the only extra bytes).
func TestArchiveBPAWithinOnePercent(t *testing.T) {
	addrs := phasedTrace(12, 4000) // 12 chunks: a TOC with real fan-out
	opts := Options{Mode: Lossy, IntervalLen: 4000, BufferAddrs: 500}
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, opts); err != nil {
		t.Fatal(err)
	}
	arcPath := filepath.Join(t.TempDir(), "trace.atc")
	arcOpts := opts
	arcOpts.Archive = true
	if _, err := WriteTrace(arcPath, addrs, arcOpts); err != nil {
		t.Fatal(err)
	}
	n := int64(len(addrs))
	dirBPA, err := BitsPerAddress(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	arcBPA, err := BitsPerAddress(arcPath, n)
	if err != nil {
		t.Fatal(err)
	}
	if arcBPA < dirBPA {
		t.Fatalf("archive BPA %v below directory BPA %v: the container cannot shrink payloads", arcBPA, dirBPA)
	}
	if overhead := arcBPA/dirBPA - 1; overhead > 0.01 {
		t.Fatalf("archive BPA overhead %.3f%% exceeds 1%% (dir %.4f, archive %.4f)",
			overhead*100, dirBPA, arcBPA)
	}
}

// TestMemStoreServesConcurrentReaders exercises the serving-tier shape: a
// trace compressed once into memory, decoded by several Readers at once.
func TestMemStoreServesConcurrentReaders(t *testing.T) {
	addrs := randomTrace(t, 33, 20_000)
	mem := store.NewMem()
	if _, err := WriteTrace("mem", addrs, Options{
		Mode: Lossless, BufferAddrs: 500, SegmentAddrs: 4000, Store: mem,
	}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			d, err := Open("mem", DecodeOptions{Store: mem, Readahead: 2})
			if err != nil {
				done <- err
				return
			}
			defer d.Close()
			got, err := d.DecodeAll()
			if err != nil {
				done <- err
				return
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					done <- fmt.Errorf("mismatch at %d", i)
					return
				}
			}
			done <- nil
		}()
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestArchiveCreateFailureLeavesNoFile mirrors the directory cleanup
// guarantees: a failed archive create must not leave a stray file.
func TestArchiveCreateFailureLeavesNoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.atc")
	if _, err := Create(path, Options{Mode: Mode(9), Archive: true}); err == nil {
		t.Fatal("Create with unknown mode succeeded")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("unknown mode left an archive file (stat err = %v)", err)
	}
	orig := createChunkFileHook
	createChunkFileHook = func(st store.Store, name string) (io.WriteCloser, error) {
		return nil, errInjected
	}
	defer func() { createChunkFileHook = orig }()
	if _, err := Create(path, Options{Mode: Lossless, SegmentAddrs: -1, Archive: true}); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed Create left an archive file (stat err = %v)", err)
	}
}

// TestArchiveRefusesDirOpen: OpenArchive-forced decode of a directory
// trace must fail rather than fall back.
func TestForcedArchiveOpenRejectsDirectory(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteTrace(dir, []uint64{1, 2, 3}, Options{Mode: Lossless, SegmentAddrs: -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DecodeOptions{Archive: true}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

// TestArchiveWriterClosePersistsTrailer: an abandoned (never-Closed)
// archive must not open as a valid trace.
func TestUnfinalizedArchiveDoesNotOpen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.atc")
	c, err := Create(path, Options{Mode: Lossless, SegmentAddrs: 1000, Archive: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := c.Code(i); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the TOC was never written.
	if _, err := Open(path, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
	// Closing afterwards completes the archive.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5000 {
		t.Fatalf("decoded %d addrs after late Close", len(got))
	}
}
