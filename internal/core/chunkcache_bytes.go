package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"atc/internal/obs"
)

// SharedChunkCacheBytes is a process-wide, byte-budgeted chunk cache: one
// instance serves every trace a process reads, keyed by (trace, chunkID),
// so a replica holding thousands of traces caches under a single memory
// cap instead of one count bound per trace. Residency is accounted in
// decoded bytes (len(addrs)*8 per chunk — chunk sizes vary wildly with
// IntervalLen/SegmentAddrs across traces, so counting entries would not
// bound memory), eviction is LRU by bytes, and pinned chunks survive
// eviction pressure. Like SharedChunkCache it is safe for concurrent use
// and deduplicates concurrent misses of one chunk onto a single load.
//
// Readers never see this type directly: ForTrace returns a lightweight
// per-trace view implementing the ChunkCache (and singleflight loader)
// contract, injected per Reader exactly like a SharedChunkCache.
type SharedChunkCacheBytes struct {
	budget int64

	mu       sync.Mutex
	bytes    int64 // resident decoded bytes, including pinned entries
	ll       list.List
	m        map[byteCacheKey]*list.Element
	inflight map[byteCacheKey]*chunkFlight
	views    map[string]*TraceChunkCache

	hits      atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
}

// byteCacheKey identifies one chunk of one trace.
type byteCacheKey struct {
	trace string
	id    int
}

// byteCacheEntry is one resident chunk. pins > 0 exempts it from
// eviction; the byte budget may be exceeded transiently by pinned bytes
// (pinning is an explicit operator action, bounded by its callers).
type byteCacheEntry struct {
	key   byteCacheKey
	addrs []uint64
	size  int64
	pins  int
	view  *TraceChunkCache
}

// NewSharedChunkCacheBytes returns a byte-budgeted cache holding at most
// budget decoded bytes (minimum one address). A chunk alone larger than
// the whole budget is never admitted: its load still succeeds, the result
// just is not retained.
func NewSharedChunkCacheBytes(budget int64) *SharedChunkCacheBytes {
	if budget < 8 {
		budget = 8
	}
	return &SharedChunkCacheBytes{
		budget:   budget,
		m:        map[byteCacheKey]*list.Element{},
		inflight: map[byteCacheKey]*chunkFlight{},
		views:    map[string]*TraceChunkCache{},
	}
}

// Budget reports the configured byte budget.
func (c *SharedChunkCacheBytes) Budget() int64 { return c.budget }

// ForTrace returns the cache's view for one trace: a ChunkCache (with
// singleflight GetOrLoad) whose chunk IDs are namespaced by the trace
// name, so many traces share the one budget without ID collisions.
// Repeated calls with one name return the same view.
func (c *SharedChunkCacheBytes) ForTrace(trace string) *TraceChunkCache {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v, ok := c.views[trace]; ok {
		return v
	}
	v := &TraceChunkCache{c: c, trace: trace}
	c.views[trace] = v
	return v
}

// putLocked inserts or refreshes an entry and evicts back to budget.
func (c *SharedChunkCacheBytes) putLocked(v *TraceChunkCache, key byteCacheKey, addrs []uint64) {
	size := int64(len(addrs)) * 8
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		ent := e.Value.(*byteCacheEntry)
		c.bytes += size - ent.size
		ent.view.residentBytes.Add(size - ent.size)
		ent.addrs, ent.size = addrs, size
		c.evictLocked()
		return
	}
	if size > c.budget {
		return
	}
	c.m[key] = c.ll.PushFront(&byteCacheEntry{key: key, addrs: addrs, size: size, view: v})
	c.bytes += size
	v.residentBytes.Add(size)
	v.residentChunks.Add(1)
	c.evictLocked()
}

// evictLocked removes unpinned entries from the LRU end until resident
// bytes fit the budget. Pinned entries are skipped in place — they keep
// their recency position and rejoin normal eviction once unpinned.
func (c *SharedChunkCacheBytes) evictLocked() {
	for e := c.ll.Back(); e != nil && c.bytes > c.budget; {
		prev := e.Prev()
		ent := e.Value.(*byteCacheEntry)
		if ent.pins == 0 {
			delete(c.m, ent.key)
			c.ll.Remove(e)
			c.bytes -= ent.size
			ent.view.residentBytes.Add(-ent.size)
			ent.view.residentChunks.Add(-1)
			ent.view.evictions.Add(1)
			c.evictions.Add(1)
			metChunkCacheEvict.Inc()
		}
		e = prev
	}
}

// SharedChunkCacheBytesStats counts a SharedChunkCacheBytes's traffic
// across every trace.
type SharedChunkCacheBytesStats struct {
	Hits      int64
	Loads     int64
	Evictions int64
	// ResidentBytes is the decoded bytes currently cached (≤ Budget except
	// transiently for pinned entries).
	ResidentBytes  int64
	ResidentChunks int
	Budget         int64
}

// Stats reports process-wide counters and occupancy.
func (c *SharedChunkCacheBytes) Stats() SharedChunkCacheBytesStats {
	c.mu.Lock()
	bytes, chunks := c.bytes, len(c.m)
	c.mu.Unlock()
	return SharedChunkCacheBytesStats{
		Hits:           c.hits.Load(),
		Loads:          c.loads.Load(),
		Evictions:      c.evictions.Load(),
		ResidentBytes:  bytes,
		ResidentChunks: chunks,
		Budget:         c.budget,
	}
}

// Register exposes the cache's process-wide occupancy on r: the
// configured budget and the resident decoded bytes across every trace.
// Per-trace traffic is registered by the serving tier from the per-view
// Stats, behind its cardinality cap.
func (c *SharedChunkCacheBytes) Register(r *obs.Registry, labels ...obs.Label) {
	r.GaugeFunc("atc_chunk_cache_budget_bytes",
		"configured byte budget of the process-wide chunk cache",
		func() int64 { return c.budget }, labels...)
	r.GaugeFunc("atc_chunk_cache_bytes",
		"decoded bytes resident in the process-wide chunk cache, all traces",
		func() int64 { return c.Stats().ResidentBytes }, labels...)
}

// TraceChunkCache is one trace's view of a SharedChunkCacheBytes. It
// implements the ChunkCache contract plus singleflight GetOrLoad, so it
// injects into a Reader exactly like a SharedChunkCache, and carries the
// trace's own hit/load/eviction/resident counters for per-trace metrics.
type TraceChunkCache struct {
	c     *SharedChunkCacheBytes
	trace string

	hits      atomic.Int64
	loads     atomic.Int64
	evictions atomic.Int64
	// residentBytes/residentChunks are mutated only under c.mu but read
	// lock-free by metric callbacks.
	residentBytes  atomic.Int64
	residentChunks atomic.Int64
}

// Trace reports the trace name the view is bound to.
func (v *TraceChunkCache) Trace() string { return v.trace }

// Get returns the cached chunk, marking it most recently used.
func (v *TraceChunkCache) Get(id int) ([]uint64, bool) {
	c := v.c
	key := byteCacheKey{v.trace, id}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.ll.MoveToFront(e)
	addrs := e.Value.(*byteCacheEntry).addrs
	c.mu.Unlock()
	v.hits.Add(1)
	c.hits.Add(1)
	metChunkCacheHits.Inc()
	return addrs, true
}

// Put inserts a chunk, evicting LRU-by-bytes back to the shared budget.
func (v *TraceChunkCache) Put(id int, addrs []uint64) {
	c := v.c
	c.mu.Lock()
	c.putLocked(v, byteCacheKey{v.trace, id}, addrs)
	c.mu.Unlock()
}

// GetOrLoad implements the singleflight load path across every reader of
// every trace sharing the budget: on a miss the first caller runs load
// while concurrent callers for the same (trace, chunk) wait and share the
// result. Failed loads are not cached — every waiter sees the error, and
// the next request retries.
func (v *TraceChunkCache) GetOrLoad(id int, pin bool, load func() ([]uint64, error)) ([]uint64, error) {
	c := v.c
	key := byteCacheKey{v.trace, id}
	c.mu.Lock()
	if e, ok := c.m[key]; ok {
		c.ll.MoveToFront(e)
		addrs := e.Value.(*byteCacheEntry).addrs
		c.mu.Unlock()
		v.hits.Add(1)
		c.hits.Add(1)
		metChunkCacheHits.Inc()
		return addrs, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		v.hits.Add(1)
		c.hits.Add(1)
		metChunkCacheHits.Inc()
		return f.addrs, nil
	}
	f := &chunkFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()
	f.addrs, f.err = load()
	c.mu.Lock()
	delete(c.inflight, key)
	if f.err == nil && pin {
		c.putLocked(v, key, f.addrs)
	}
	c.mu.Unlock()
	close(f.done)
	if f.err != nil {
		return nil, f.err
	}
	v.loads.Add(1)
	c.loads.Add(1)
	return f.addrs, nil
}

// Pin exempts a resident chunk from eviction until Unpin, reporting
// whether it was resident. Pins nest. Pinned bytes still count against
// the budget, so heavy pinning can hold residency above it — pinning is
// for keeping a hot trace's working set resident under pressure, not a
// second cache.
func (v *TraceChunkCache) Pin(id int) bool {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[byteCacheKey{v.trace, id}]
	if !ok {
		return false
	}
	e.Value.(*byteCacheEntry).pins++
	return true
}

// Unpin releases one Pin and re-applies the budget (an over-budget cache
// evicts immediately once the pin count allows).
func (v *TraceChunkCache) Unpin(id int) {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[byteCacheKey{v.trace, id}]
	if !ok {
		return
	}
	if ent := e.Value.(*byteCacheEntry); ent.pins > 0 {
		ent.pins--
	}
	c.evictLocked()
}

// TraceCacheStats counts one trace's share of a SharedChunkCacheBytes.
type TraceCacheStats struct {
	Hits           int64
	Loads          int64
	Evictions      int64
	ResidentBytes  int64
	ResidentChunks int64
}

// Stats reports the view's counters and occupancy.
func (v *TraceChunkCache) Stats() TraceCacheStats {
	return TraceCacheStats{
		Hits:           v.hits.Load(),
		Loads:          v.loads.Load(),
		Evictions:      v.evictions.Load(),
		ResidentBytes:  v.residentBytes.Load(),
		ResidentChunks: v.residentChunks.Load(),
	}
}
