package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"atc/internal/store"
)

// splitmix64 mirrors the generator that produced the checked-in v1 golden
// traces (testdata/v1-*), so the decoder tests can regenerate the exact
// address sequence without storing it.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func goldenTrace(n int) []uint64 {
	state := uint64(2009)
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = splitmix64(&state) & ((1 << 26) - 1)
	}
	return addrs
}

func randomTrace(t testing.TB, seed int64, n int) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 28))
	}
	return addrs
}

func TestSegmentedLosslessRoundTrip(t *testing.T) {
	addrs := randomTrace(t, 21, 10_000)
	// Segment sizes that divide the trace, leave a short tail, degenerate
	// to one address per segment region, and exceed the trace entirely.
	for _, seg := range []int{10_000, 2_500, 1_700, 999, 1, 50_000} {
		dir := t.TempDir()
		stats, err := WriteTrace(dir, addrs, Options{
			Mode: Lossless, BufferAddrs: 700, SegmentAddrs: seg,
		})
		if err != nil {
			t.Fatalf("seg=%d: %v", seg, err)
		}
		wantChunks := int64((len(addrs) + seg - 1) / seg)
		if stats.Chunks != wantChunks {
			t.Fatalf("seg=%d: chunks = %d, want %d", seg, stats.Chunks, wantChunks)
		}
		for _, ra := range []int{-1, 1, 4} {
			got, err := decodeWith(dir, ra)
			if err != nil {
				t.Fatalf("seg=%d readahead=%d: %v", seg, ra, err)
			}
			if len(got) != len(addrs) {
				t.Fatalf("seg=%d readahead=%d: decoded %d addrs, want %d", seg, ra, len(got), len(addrs))
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					t.Fatalf("seg=%d readahead=%d: mismatch at %d", seg, ra, i)
				}
			}
		}
	}
}

func TestSegmentedVsLegacyBitExact(t *testing.T) {
	// Property test: for random traces and segment sizes, the segmented
	// (v2) and legacy single-chunk (v1) layouts decode to identical,
	// bit-exact streams.
	f := func(seed int64, nRaw, segRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		seg := int(segRaw)%2000 + 1
		addrs := randomTrace(t, seed, n)
		segDir, err := os.MkdirTemp("", "atcseg")
		if err != nil {
			return false
		}
		defer os.RemoveAll(segDir)
		legDir, err := os.MkdirTemp("", "atcleg")
		if err != nil {
			return false
		}
		defer os.RemoveAll(legDir)
		if _, err := WriteTrace(segDir, addrs, Options{Mode: Lossless, BufferAddrs: 128, SegmentAddrs: seg}); err != nil {
			return false
		}
		if _, err := WriteTrace(legDir, addrs, Options{Mode: Lossless, BufferAddrs: 128, SegmentAddrs: -1}); err != nil {
			return false
		}
		segGot, err := ReadTrace(segDir)
		if err != nil {
			return false
		}
		legGot, err := ReadTrace(legDir)
		if err != nil {
			return false
		}
		if len(segGot) != n || len(legGot) != n {
			return false
		}
		for i := range addrs {
			if segGot[i] != addrs[i] || legGot[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentedWorkersByteIdentical(t *testing.T) {
	addrs := randomTrace(t, 22, 40_000)
	const seg = 7_000 // six segments: the pool is actually exercised
	opts := Options{Mode: Lossless, BufferAddrs: 900, SegmentAddrs: seg, Workers: 1}
	serialDir := t.TempDir()
	serialStats, err := WriteTrace(serialDir, addrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if serialStats.Chunks != 6 {
		t.Fatalf("chunks = %d, want 6", serialStats.Chunks)
	}
	for _, workers := range []int{2, 8} {
		dir := t.TempDir()
		o := opts
		o.Workers = workers
		stats, err := WriteTrace(dir, addrs, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if stats != serialStats {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, stats, serialStats)
		}
		dirsEqual(t, serialDir, dir)
	}
}

func TestSegmentedEmptyTrace(t *testing.T) {
	dir := t.TempDir()
	stats, err := WriteTrace(dir, nil, Options{Mode: Lossless, SegmentAddrs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks != 0 {
		t.Fatalf("chunks = %d for empty trace, want 0", stats.Chunks)
	}
	for _, ra := range []int{-1, 2} {
		got, err := decodeWith(dir, ra)
		if err != nil {
			t.Fatalf("readahead=%d: %v", ra, err)
		}
		if len(got) != 0 {
			t.Fatalf("readahead=%d: empty trace decoded to %d addrs", ra, len(got))
		}
	}
}

func TestSegmentedMetadata(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteTrace(dir, randomTrace(t, 23, 3000), Options{
		Mode: Lossless, BufferAddrs: 200, SegmentAddrs: 1000,
	}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.FormatVersion() != 2 {
		t.Fatalf("format version = %d, want 2", d.FormatVersion())
	}
	if d.SegmentAddrs() != 1000 {
		t.Fatalf("segment addrs = %d, want 1000", d.SegmentAddrs())
	}
	if d.Records() != 3 {
		t.Fatalf("records = %d, want 3", d.Records())
	}
	manifest, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(manifest), "atc 2\n") {
		t.Fatalf("segmented MANIFEST = %q, want version 2", manifest)
	}
}

func TestSegmentedCorruptChunkSurfaces(t *testing.T) {
	// 40 segments with an early one missing: when the error surfaces, the
	// parallel readahead dispatcher still has dozens of segments queued —
	// the early-termination interleaving that once risked a WaitGroup
	// Add-vs-Wait panic in produceLosslessSegmented.
	addrs := randomTrace(t, 24, 10_000)
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossless, BufferAddrs: 100, SegmentAddrs: 250}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "2.bsc")); err != nil {
		t.Fatal(err)
	}
	for _, ra := range []int{-1, 1, 4} {
		_, err := decodeWith(dir, ra)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("readahead=%d: err = %v, want ErrCorrupt", ra, err)
		}
	}
}

func TestSegmentedEarlyCloseStopsPipeline(t *testing.T) {
	addrs := randomTrace(t, 26, 10_000)
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossless, BufferAddrs: 100, SegmentAddrs: 250}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Abandon the decode with ~38 of 40 segments still pending: Close must
	// stop the dispatcher and every in-flight segment decode without
	// deadlock or WaitGroup misuse.
	for i := 0; i < 100; i++ {
		if _, err := d.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Decode(); err == nil || err == io.EOF {
		t.Fatalf("Decode after Close = %v, want error", err)
	}
}

// --- v1 back-compat golden traces (written by the pre-v2 code path) ---

func TestV1GoldenLosslessDecodes(t *testing.T) {
	want := goldenTrace(10_000)
	got, err := ReadTrace("testdata/v1-lossless")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("golden v1 lossless mismatch at %d", i)
		}
	}
	d, err := Open("testdata/v1-lossless", DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.FormatVersion() != 1 || d.SegmentAddrs() != 0 {
		t.Fatalf("golden metadata: version %d segment %d", d.FormatVersion(), d.SegmentAddrs())
	}
}

func TestV1GoldenLossyDecodes(t *testing.T) {
	want := goldenTrace(10_000)
	got, err := ReadTrace("testdata/v1-lossy")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(want))
	}
	// The first interval always becomes a chunk, so it must be bit exact.
	for i := 0; i < 1000; i++ {
		if got[i] != want[i] {
			t.Fatalf("golden v1 lossy first interval mismatch at %d", i)
		}
	}
}

func TestLegacyWriterReproducesV1Golden(t *testing.T) {
	// The legacy layouts must keep writing byte-identical version-1 output:
	// re-compress the golden trace with today's writer and diff the
	// directories against the checked-in files from the pre-v2 code path.
	addrs := goldenTrace(10_000)
	for _, tc := range []struct {
		golden string
		opts   Options
	}{
		{"testdata/v1-lossless", Options{Mode: Lossless, BufferAddrs: 512, SegmentAddrs: -1}},
		{"testdata/v1-lossy", Options{Mode: Lossy, IntervalLen: 1000, BufferAddrs: 300, Epsilon: 0.1}},
	} {
		dir := t.TempDir()
		if _, err := WriteTrace(dir, addrs, tc.opts); err != nil {
			t.Fatalf("%s: %v", tc.golden, err)
		}
		dirsEqual(t, tc.golden, dir)
	}
}

// --- version handling and corrupt-input hardening ---

// storeTrace writes a small legacy lossless trace with the "store" back
// end, whose INFO file is raw bytes — surgical corruption is then easy.
func storeTrace(t *testing.T, addrs []uint64) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{
		Mode: Lossless, Backend: "store", BufferAddrs: 4, SegmentAddrs: -1,
	}); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestUnsupportedManifestVersionRejected(t *testing.T) {
	dir := storeTrace(t, []uint64{1, 2, 3})
	manifest := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	patched := bytes.Replace(data, []byte("atc 1"), []byte("atc 9"), 1)
	if err := os.WriteFile(manifest, patched, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, DecodeOptions{})
	if !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("ErrUnsupportedVersion must wrap ErrCorrupt (err = %v)", err)
	}
	// A Backend override must not bypass the version check.
	if _, err := Open(dir, DecodeOptions{Backend: "store"}); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("override err = %v, want ErrUnsupportedVersion", err)
	}
}

func TestUnsupportedInfoVersionRejected(t *testing.T) {
	dir := storeTrace(t, []uint64{1, 2, 3})
	// Manifest passes (v1) but the INFO version byte says 9: the decoder
	// must reject it rather than mis-parse the records that follow.
	info := filepath.Join(dir, infoBase+".store")
	data, err := os.ReadFile(info)
	if err != nil {
		t.Fatal(err)
	}
	data[len(infoMagic)] = 9
	if err := os.WriteFile(info, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DecodeOptions{}); !errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("err = %v, want ErrUnsupportedVersion", err)
	}
}

func TestManifestInfoVersionMismatchRejected(t *testing.T) {
	dir := storeTrace(t, []uint64{1, 2, 3})
	manifest := filepath.Join(dir, manifestName)
	data, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	// "atc 2" is a supported version, but the INFO stream still says 1:
	// the two must agree for the trace to be trusted.
	patched := bytes.Replace(data, []byte("atc 1"), []byte("atc 2"), 1)
	if err := os.WriteFile(manifest, patched, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, DecodeOptions{})
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt version mismatch", err)
	}
	if errors.Is(err, ErrUnsupportedVersion) {
		t.Fatalf("mismatch misreported as unsupported version: %v", err)
	}
}

func TestManifestMissingVersionRejected(t *testing.T) {
	dir := storeTrace(t, []uint64{1, 2, 3})
	manifest := filepath.Join(dir, manifestName)
	if err := os.WriteFile(manifest, []byte("mode lossless\nbackend store\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptTrailerDoesNotPreallocate(t *testing.T) {
	dir := storeTrace(t, []uint64{1, 2, 3})
	info := filepath.Join(dir, infoBase+".store")
	data, err := os.ReadFile(info)
	if err != nil {
		t.Fatal(err)
	}
	// The trailer total is the final uvarint (one byte for total=3).
	// Replace it with 2^47: within the plausibility bound, but demanding
	// a petabyte-scale preallocation if DecodeAll trusted it.
	var huge [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(huge[:], 1<<47)
	data = append(data[:len(data)-1], huge[:n]...)
	if err := os.WriteFile(info, data, 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Must fail with ErrCorrupt after decoding the 3 real addresses —
	// without first allocating the 2^47-element slice (which would OOM
	// this test process long before the error).
	if _, err := d.DecodeAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestImplausibleInfoFieldsRejected(t *testing.T) {
	// Patch each address-count field in turn with a value beyond the
	// plausibility bound; Open must reject the trace up front.
	base := []uint64{1, 2, 3}
	var huge [binary.MaxVarintLen64]byte
	hugeLen := binary.PutUvarint(huge[:], (1<<48)+1)
	for fieldIdx, name := range []string{"interval length", "bytesort buffer"} {
		dir := storeTrace(t, base)
		info := filepath.Join(dir, infoBase+".store")
		data, err := os.ReadFile(info)
		if err != nil {
			t.Fatal(err)
		}
		// Fields start after magic+version+mode; walk fieldIdx uvarints.
		off := len(infoMagic) + 2
		for i := 0; i < fieldIdx; i++ {
			_, n := binary.Uvarint(data[off:])
			if n <= 0 {
				t.Fatalf("%s: cannot walk INFO fields", name)
			}
			off += n
		}
		_, n := binary.Uvarint(data[off:])
		if n <= 0 {
			t.Fatalf("%s: cannot parse target field", name)
		}
		patched := append([]byte{}, data[:off]...)
		patched = append(patched, huge[:hugeLen]...)
		patched = append(patched, data[off+n:]...)
		if err := os.WriteFile(info, patched, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, DecodeOptions{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

// --- Create validation and error-path cleanup ---

func TestCreateUnknownModeLeavesNoDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := Create(dir, Options{Mode: Mode(9)}); err == nil {
		t.Fatal("Create with unknown mode succeeded")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("unknown mode left a stray directory (stat err = %v)", err)
	}
}

func TestCreateUnknownBackendLeavesNoDirectory(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := Create(dir, Options{Mode: Lossless, Backend: "nope"}); err == nil {
		t.Fatal("Create with unknown backend succeeded")
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("unknown backend left a stray directory (stat err = %v)", err)
	}
}

func TestCreateChunkFailureCleansUpDirectory(t *testing.T) {
	orig := createChunkFileHook
	createChunkFileHook = func(st store.Store, name string) (io.WriteCloser, error) {
		return nil, errInjected
	}
	defer func() { createChunkFileHook = orig }()
	dir := filepath.Join(t.TempDir(), "trace")
	_, err := Create(dir, Options{Mode: Lossless, SegmentAddrs: -1})
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("failed Create left a stray directory (stat err = %v)", err)
	}
}

func TestCreateChunkFailureKeepsExistingDirectory(t *testing.T) {
	orig := createChunkFileHook
	createChunkFileHook = func(st store.Store, name string) (io.WriteCloser, error) {
		return nil, errInjected
	}
	defer func() { createChunkFileHook = orig }()
	dir := t.TempDir() // pre-existing: Create must not remove it
	if _, err := Create(dir, Options{Mode: Lossless, SegmentAddrs: -1}); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("pre-existing directory removed: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("failed Create left %d orphan files", len(entries))
	}
}

// failAfterWriter accepts limit bytes, then fails every further write; it
// records whether Close was called, standing in for the chunk file whose
// descriptor must not leak on error paths.
type failAfterWriter struct {
	limit  int
	n      int
	closed bool
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errInjected
	}
	w.n += len(p)
	return len(p), nil
}

func (w *failAfterWriter) Close() error {
	w.closed = true
	return nil
}

func TestLosslessCloseFailureClosesChunkFile(t *testing.T) {
	orig := createChunkFileHook
	fw := &failAfterWriter{limit: 0} // the first flushed byte fails
	createChunkFileHook = func(st store.Store, name string) (io.WriteCloser, error) {
		return fw, nil
	}
	defer func() { createChunkFileHook = orig }()
	c, err := Create(t.TempDir(), Options{Mode: Lossless, BufferAddrs: 16, SegmentAddrs: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := c.Code(i); err != nil {
			break // small buffers may surface the failure early; fine
		}
	}
	if err := c.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close = %v, want injected failure", err)
	}
	if !fw.closed {
		t.Fatal("chunk file leaked: Close error path never closed it")
	}
}

func TestSegmentedCloseSurfacesWorkerError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		c, err := Create(t.TempDir(), Options{
			Mode: Lossless, BufferAddrs: 50, SegmentAddrs: 500, Workers: workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		injectChunkFailures(c, 1)
		addrs := randomTrace(t, 25, 3000)
		codeErr := c.CodeSlice(addrs)
		closeErr := c.Close()
		if !errors.Is(codeErr, errInjected) && !errors.Is(closeErr, errInjected) {
			t.Fatalf("workers=%d: injected error lost (code=%v close=%v)", workers, codeErr, closeErr)
		}
		// The compressor stays failed: further use reports the same error.
		if err := c.Code(1); !errors.Is(err, errInjected) {
			t.Fatalf("workers=%d: Code after failure = %v", workers, err)
		}
	}
}
