package core

// Tests of the pooled imitation-interval buffers on the copy-out decode
// path: DecodeRange over imitation windows must stay correct while the
// translated intervals recycle through the free list instead of
// allocating per materialization.

import (
	"path/filepath"
	"testing"
)

func TestDecodeRangePoolsImitationBuffers(t *testing.T) {
	const (
		intervalLen = 2000
		imitations  = 3
		distinct    = 4
	)
	addrs := mixedLossyTrace(intervalLen, imitations, distinct)
	path := filepath.Join(t.TempDir(), "trace")
	st, err := WriteTrace(path, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 400})
	if err != nil {
		t.Fatal(err)
	}
	if st.Imitations != imitations {
		t.Fatalf("trace has %d imitations, want %d", st.Imitations, imitations)
	}
	d, err := Open(path, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.intervalFree == nil {
		t.Fatal("lossy trace with imitations opened without an interval free list")
	}

	// The full decoded trace is the reference; in lossy mode DecodeRange
	// must reproduce its own full decode, not the raw input.
	want, err := d.DecodeRange(0, int64(len(addrs)))
	if err != nil {
		t.Fatal(err)
	}
	// Intervals 1..imitations are imitation records; range-decode across
	// them repeatedly and verify both the values and that the translated
	// buffers actually recycle.
	for pass := 0; pass < 4; pass++ {
		from := int64(intervalLen / 2)
		to := int64(intervalLen * (imitations + 1))
		got, err := d.DecodeRange(from, to)
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != want[from+int64(i)] {
				t.Fatalf("pass %d: addr %d = %#x, want %#x", pass, from+int64(i), v, want[from+int64(i)])
			}
		}
	}
	if len(d.intervalFree) == 0 {
		t.Fatal("no interval buffer returned to the free list after imitation-heavy DecodeRange")
	}

	// The recycled buffer must not corrupt later decodes: a fresh decode
	// of a chunk interval still matches.
	got, err := d.DecodeRange(0, intervalLen)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != want[i] {
			t.Fatalf("chunk interval addr %d = %#x, want %#x after recycling", i, v, want[i])
		}
	}
}
