package core

// Tests of the process-wide byte-budgeted chunk cache: budget enforcement
// under concurrent load across traces, LRU-by-bytes eviction order,
// pinned-chunk protection, singleflight loads and the oversize-entry
// bypass.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func chunkOf(n int, fill uint64) []uint64 {
	addrs := make([]uint64, n)
	for i := range addrs {
		addrs[i] = fill
	}
	return addrs
}

func TestByteCacheBudgetEnforced(t *testing.T) {
	// 10 chunks of 100 addrs fit an 8000-byte budget exactly; inserting
	// 30 across three traces must keep residency at or below it.
	c := NewSharedChunkCacheBytes(8000)
	for trace := 0; trace < 3; trace++ {
		v := c.ForTrace(fmt.Sprintf("t%d", trace))
		for id := 0; id < 10; id++ {
			v.Put(id, chunkOf(100, uint64(id)))
			if st := c.Stats(); st.ResidentBytes > st.Budget {
				t.Fatalf("resident bytes %d exceed budget %d", st.ResidentBytes, st.Budget)
			}
		}
	}
	st := c.Stats()
	if st.ResidentBytes != 8000 || st.ResidentChunks != 10 {
		t.Fatalf("resident = %d bytes / %d chunks, want 8000 / 10", st.ResidentBytes, st.ResidentChunks)
	}
	if st.Evictions != 20 {
		t.Fatalf("evictions = %d, want 20", st.Evictions)
	}
	// Per-view accounting must sum to the global occupancy.
	var bytes, chunks int64
	for trace := 0; trace < 3; trace++ {
		vs := c.ForTrace(fmt.Sprintf("t%d", trace)).Stats()
		bytes += vs.ResidentBytes
		chunks += vs.ResidentChunks
	}
	if bytes != st.ResidentBytes || chunks != int64(st.ResidentChunks) {
		t.Fatalf("view sums = %d bytes / %d chunks, want %d / %d", bytes, chunks, st.ResidentBytes, st.ResidentChunks)
	}
}

func TestByteCacheLRUOrder(t *testing.T) {
	c := NewSharedChunkCacheBytes(3 * 80)
	v := c.ForTrace("t")
	v.Put(1, chunkOf(10, 1))
	v.Put(2, chunkOf(10, 2))
	v.Put(3, chunkOf(10, 3))
	if _, ok := v.Get(1); !ok { // refresh 1: 2 is now coldest
		t.Fatal("chunk 1 missing before eviction")
	}
	v.Put(4, chunkOf(10, 4))
	if _, ok := v.Get(2); ok {
		t.Fatal("chunk 2 survived eviction despite being LRU")
	}
	for _, id := range []int{1, 3, 4} {
		if _, ok := v.Get(id); !ok {
			t.Fatalf("chunk %d evicted out of LRU order", id)
		}
	}
}

func TestByteCacheTracesDoNotCollide(t *testing.T) {
	c := NewSharedChunkCacheBytes(1 << 20)
	a, b := c.ForTrace("a"), c.ForTrace("b")
	a.Put(7, chunkOf(4, 111))
	b.Put(7, chunkOf(4, 222))
	got, ok := a.Get(7)
	if !ok || got[0] != 111 {
		t.Fatalf("trace a chunk 7 = %v, %v; want [111 ...], true", got, ok)
	}
	got, ok = b.Get(7)
	if !ok || got[0] != 222 {
		t.Fatalf("trace b chunk 7 = %v, %v; want [222 ...], true", got, ok)
	}
}

func TestByteCachePinnedSurvivesPressure(t *testing.T) {
	c := NewSharedChunkCacheBytes(4 * 80)
	v := c.ForTrace("t")
	v.Put(0, chunkOf(10, 0))
	if !v.Pin(0) {
		t.Fatal("pin of resident chunk reported not resident")
	}
	if v.Pin(99) {
		t.Fatal("pin of absent chunk reported resident")
	}
	// Flood far past the budget: the pinned chunk must never leave.
	for id := 1; id <= 40; id++ {
		v.Put(id, chunkOf(10, uint64(id)))
		if _, ok := v.Get(0); !ok {
			t.Fatalf("pinned chunk evicted after put of chunk %d", id)
		}
	}
	v.Unpin(0)
	// Unpinned and cold after the flood's Get(0) refreshes… Get marked it
	// MRU, so push three more chunks to age it out.
	for id := 41; id <= 48; id++ {
		v.Put(id, chunkOf(10, uint64(id)))
	}
	if _, ok := v.Get(0); ok {
		t.Fatal("unpinned chunk still resident after sustained pressure")
	}
	if st := c.Stats(); st.ResidentBytes > st.Budget {
		t.Fatalf("resident bytes %d exceed budget %d after unpin", st.ResidentBytes, st.Budget)
	}
}

func TestByteCacheOversizeEntryBypasses(t *testing.T) {
	c := NewSharedChunkCacheBytes(100)
	v := c.ForTrace("t")
	v.Put(1, chunkOf(1000, 1)) // 8000 bytes against a 100-byte budget
	if _, ok := v.Get(1); ok {
		t.Fatal("chunk larger than the whole budget was admitted")
	}
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes = %d, want 0", st.ResidentBytes)
	}
	// The singleflight load path still returns the data, it just is not
	// retained.
	got, err := v.GetOrLoad(1, true, func() ([]uint64, error) { return chunkOf(1000, 7), nil })
	if err != nil || len(got) != 1000 || got[0] != 7 {
		t.Fatalf("oversize GetOrLoad = %d addrs, %v", len(got), err)
	}
	if st := c.Stats(); st.ResidentBytes != 0 {
		t.Fatalf("resident bytes after oversize load = %d, want 0", st.ResidentBytes)
	}
}

func TestByteCacheSingleflight(t *testing.T) {
	c := NewSharedChunkCacheBytes(1 << 20)
	v := c.ForTrace("t")
	gate := make(chan struct{})
	var loads int
	var wg sync.WaitGroup
	results := make([][]uint64, 16)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = v.GetOrLoad(7, true, func() ([]uint64, error) {
				<-gate
				loads++ // safe: the cache runs load at most once
				return chunkOf(3, 42), nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if loads != 1 {
		t.Fatalf("load ran %d times, want 1", loads)
	}
	for i, r := range results {
		if len(r) != 3 || r[0] != 42 {
			t.Fatalf("goroutine %d saw %v", i, r)
		}
	}
	if st := v.Stats(); st.Loads != 1 || st.Hits != 15 {
		t.Fatalf("view loads/hits = %d/%d, want 1/15", st.Loads, st.Hits)
	}
}

func TestByteCacheLoadErrorNotCached(t *testing.T) {
	c := NewSharedChunkCacheBytes(1 << 20)
	v := c.ForTrace("t")
	boom := errors.New("backend exploded")
	if _, err := v.GetOrLoad(1, true, func() ([]uint64, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("GetOrLoad error = %v, want %v", err, boom)
	}
	a, err := v.GetOrLoad(1, true, func() ([]uint64, error) { return []uint64{5}, nil })
	if err != nil || len(a) != 1 || a[0] != 5 {
		t.Fatalf("retry after failed load = %v, %v", a, err)
	}
}

func TestByteCacheUnpinnedLoadNotRetained(t *testing.T) {
	c := NewSharedChunkCacheBytes(1 << 20)
	v := c.ForTrace("t")
	loads := 0
	load := func() ([]uint64, error) { loads++; return chunkOf(2, 9), nil }
	if _, err := v.GetOrLoad(3, false, load); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.ResidentChunks != 0 {
		t.Fatalf("unpinned load retained %d chunks, want 0", st.ResidentChunks)
	}
	if _, err := v.GetOrLoad(3, false, load); err != nil {
		t.Fatal(err)
	}
	if loads != 2 {
		t.Fatalf("loads = %d, want 2 (pin=false must not cache)", loads)
	}
}

// TestByteCacheConcurrentBudget hammers one budget from three traces'
// worth of concurrent readers (the -race config of this test is the
// acceptance check for the byte budget): residency must never exceed the
// budget at any observation point.
func TestByteCacheConcurrentBudget(t *testing.T) {
	const budget = 64 * 80 // 64 chunks of 10 addrs
	c := NewSharedChunkCacheBytes(budget)
	stop := make(chan struct{})
	done := make(chan struct{})
	// Observer: polls global occupancy while writers churn.
	violations := make(chan int64, 1)
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := c.Stats(); st.ResidentBytes > st.Budget {
				select {
				case violations <- st.ResidentBytes:
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for trace := 0; trace < 3; trace++ {
		v := c.ForTrace(fmt.Sprintf("t%d", trace))
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(v *TraceChunkCache, g int) {
				defer wg.Done()
				for i := 0; i < 400; i++ {
					id := (g*400 + i) % 97
					_, err := v.GetOrLoad(id, true, func() ([]uint64, error) {
						return chunkOf(10+id%7, uint64(id)), nil
					})
					if err != nil {
						t.Error(err)
						return
					}
				}
			}(v, g)
		}
	}
	wg.Wait()
	close(stop)
	<-done
	select {
	case over := <-violations:
		t.Fatalf("resident bytes reached %d, budget %d", over, budget)
	default:
	}
	if st := c.Stats(); st.ResidentBytes > st.Budget {
		t.Fatalf("final resident bytes %d exceed budget %d", st.ResidentBytes, st.Budget)
	}
}
