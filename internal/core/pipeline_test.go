package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
)

// phasedTrace builds a trace whose intervals have distinct sorted-histogram
// shapes (footprints of different sizes), so every interval becomes its own
// chunk and the worker pool is actually exercised.
func phasedTrace(intervals, intervalLen int) []uint64 {
	rng := rand.New(rand.NewSource(42))
	addrs := make([]uint64, 0, intervals*intervalLen)
	for p := 0; p < intervals; p++ {
		footprint := 64 << uint(p%10)
		base := uint64(p) << 32
		for i := 0; i < intervalLen; i++ {
			addrs = append(addrs, base+uint64(rng.Intn(footprint)))
		}
	}
	return addrs
}

// dirsEqual asserts two compressed-trace directories hold the same file
// names with byte-identical contents.
func dirsEqual(t *testing.T, a, b string) {
	t.Helper()
	ea, err := os.ReadDir(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := os.ReadDir(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea) != len(eb) {
		t.Fatalf("file count: %d vs %d", len(ea), len(eb))
	}
	for i, e := range ea {
		if e.Name() != eb[i].Name() {
			t.Fatalf("file %d: %s vs %s", i, e.Name(), eb[i].Name())
		}
		da, err := os.ReadFile(filepath.Join(a, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		db, err := os.ReadFile(filepath.Join(b, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if string(da) != string(db) {
			t.Fatalf("%s differs between worker counts", e.Name())
		}
	}
}

func TestWorkersOutputByteIdentical(t *testing.T) {
	for _, mode := range []Mode{Lossless, Lossy} {
		t.Run(mode.String(), func(t *testing.T) {
			var addrs []uint64
			opts := Options{Mode: mode, Workers: 1}
			if mode == Lossless {
				rng := rand.New(rand.NewSource(5))
				addrs = make([]uint64, 30_000)
				for i := range addrs {
					addrs[i] = uint64(rng.Intn(1 << 30))
				}
				opts.BufferAddrs = 1000
			} else {
				addrs = phasedTrace(12, 2000)
				opts.IntervalLen = 2000
				opts.BufferAddrs = 500
			}
			serialDir := t.TempDir()
			serialStats, err := WriteTrace(serialDir, addrs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if mode == Lossy && serialStats.Chunks < 8 {
				t.Fatalf("trace not chunk-heavy enough: %d chunks", serialStats.Chunks)
			}
			for _, workers := range []int{2, 8} {
				w := workers
				t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
					dir := t.TempDir()
					o := opts
					o.Workers = w
					stats, err := WriteTrace(dir, addrs, o)
					if err != nil {
						t.Fatal(err)
					}
					if stats != serialStats {
						t.Fatalf("stats diverge: %+v vs %+v", stats, serialStats)
					}
					dirsEqual(t, serialDir, dir)
					got, err := ReadTrace(dir)
					if err != nil {
						t.Fatal(err)
					}
					want, err := ReadTrace(serialDir)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("decoded length %d vs %d", len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("decoded stream diverges at %d", i)
						}
					}
				})
			}
		})
	}
}

func TestWorkersLosslessRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		if _, err := WriteTrace(dir, addrs, Options{Mode: Lossless, BufferAddrs: 700, Workers: workers}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got, err := ReadTrace(dir)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("workers=%d: mismatch at %d", workers, i)
			}
		}
	}
}

// failingChunkFS fails every chunk-blob create after the first `allowed`,
// passing allowed creates through to the compressor's store. Workers call
// create concurrently, so the counter is atomic.
type failingChunkFS struct {
	allowed int64
	created atomic.Int64
	inner   func(name string) (io.WriteCloser, error)
}

var errInjected = errors.New("injected chunk-write failure")

func (f *failingChunkFS) create(name string) (io.WriteCloser, error) {
	if f.created.Add(1) > f.allowed {
		return nil, errInjected
	}
	return f.inner(name)
}

// injectChunkFailures swaps the compressor's chunk-blob creator for one
// that fails after `allowed` successful creates.
func injectChunkFailures(c *Compressor, allowed int64) *failingChunkFS {
	fs := &failingChunkFS{allowed: allowed, inner: c.st.Create}
	c.createChunkFile = fs.create
	return fs
}

func TestCloseSurfacesWorkerError(t *testing.T) {
	for _, workers := range []int{2, 8} {
		c, err := Create(t.TempDir(), Options{Mode: Lossy, IntervalLen: 1000, BufferAddrs: 300, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		injectChunkFailures(c, 1)
		addrs := phasedTrace(6, 1000)
		// The failure is asynchronous: it may surface from a CodeSlice that
		// completes a later interval, or only from Close.
		codeErr := c.CodeSlice(addrs)
		closeErr := c.Close()
		if !errors.Is(codeErr, errInjected) && !errors.Is(closeErr, errInjected) {
			t.Fatalf("workers=%d: injected error lost (code=%v close=%v)", workers, codeErr, closeErr)
		}
		// The compressor stays failed: further use reports the same error.
		if err := c.Code(1); !errors.Is(err, errInjected) {
			t.Fatalf("workers=%d: Code after failure = %v", workers, err)
		}
	}
}

func TestCodeSurfacesDeferredWorkerError(t *testing.T) {
	c, err := Create(t.TempDir(), Options{Mode: Lossy, IntervalLen: 500, BufferAddrs: 200, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	injectChunkFailures(c, 0)
	addrs := phasedTrace(40, 500)
	var sawErr error
	for _, a := range addrs {
		if sawErr = c.Code(a); sawErr != nil {
			break
		}
	}
	if sawErr == nil {
		sawErr = c.Close()
	} else if err := c.Close(); !errors.Is(err, errInjected) {
		t.Fatalf("Close after deferred error = %v", err)
	}
	if !errors.Is(sawErr, errInjected) {
		t.Fatalf("deferred worker error never surfaced: %v", sawErr)
	}
}

// TestCodeFailsFastAfterWorkerError pins the fail-fast contract: once a
// pool worker's failure has latched, the very next Code or CodeSlice call
// reports it — the caller must not keep feeding (and buffering intervals
// for) a dead pipeline until Close.
func TestCodeFailsFastAfterWorkerError(t *testing.T) {
	for _, useSlice := range []bool{false, true} {
		c, err := Create(t.TempDir(), Options{Mode: Lossy, IntervalLen: 1000, BufferAddrs: 300, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		injectChunkFailures(c, 0)
		// Feed exactly one interval: its chunk write fails on a worker.
		first := phasedTrace(1, 1000)
		if err := c.CodeSlice(first); err != nil && !errors.Is(err, errInjected) {
			t.Fatal(err)
		}
		// The failure is asynchronous; wait for the latch (bounded), then
		// the next call must surface it — no further intervals needed.
		for i := 0; i < 1_000_000 && !c.hasWerr.Load(); i++ {
			runtime.Gosched()
		}
		if !c.hasWerr.Load() {
			t.Fatalf("useSlice=%v: worker error never latched", useSlice)
		}
		if useSlice {
			err = c.CodeSlice([]uint64{1})
		} else {
			err = c.Code(1)
		}
		if !errors.Is(err, errInjected) {
			t.Fatalf("useSlice=%v: next call after latched failure = %v, want injected error", useSlice, err)
		}
		if err := c.Close(); !errors.Is(err, errInjected) {
			t.Fatalf("useSlice=%v: Close = %v, want injected error", useSlice, err)
		}
	}
}

// TestCodeSliceBulkBoundaries covers the bulk-ingest path: slices that
// split unevenly over interval/segment boundaries produce traces
// identical to per-address Code calls.
func TestCodeSliceBulkBoundaries(t *testing.T) {
	addrs := phasedTrace(7, 1500)
	addrs = addrs[:len(addrs)-713] // short final interval
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"lossy", Options{Mode: Lossy, IntervalLen: 1500, BufferAddrs: 400, Workers: 4}},
		{"segmented", Options{Mode: Lossless, SegmentAddrs: 1500, BufferAddrs: 400, Workers: 4}},
		{"legacy", Options{Mode: Lossless, SegmentAddrs: -1, BufferAddrs: 400}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			perAddr := t.TempDir()
			c, err := Create(perAddr, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range addrs {
				if err := c.Code(a); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			bulk := t.TempDir()
			c, err = Create(bulk, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			// Uneven chunking: prime-sized slices stride the boundaries.
			for off := 0; off < len(addrs); off += 977 {
				end := off + 977
				if end > len(addrs) {
					end = len(addrs)
				}
				if err := c.CodeSlice(addrs[off:end]); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}
			dirsEqual(t, perAddr, bulk)
		})
	}
}

func TestReadaheadMatchesSynchronousDecode(t *testing.T) {
	addrs := phasedTrace(10, 1500)
	for _, mode := range []Mode{Lossless, Lossy} {
		dir := t.TempDir()
		if _, err := WriteTrace(dir, addrs, Options{Mode: mode, IntervalLen: 1500, BufferAddrs: 400}); err != nil {
			t.Fatal(err)
		}
		sync, err := decodeWith(dir, -1)
		if err != nil {
			t.Fatalf("%v sync: %v", mode, err)
		}
		for _, ra := range []int{0, 1, 4} {
			got, err := decodeWith(dir, ra)
			if err != nil {
				t.Fatalf("%v readahead=%d: %v", mode, ra, err)
			}
			if len(got) != len(sync) {
				t.Fatalf("%v readahead=%d: length %d vs %d", mode, ra, len(got), len(sync))
			}
			for i := range sync {
				if got[i] != sync[i] {
					t.Fatalf("%v readahead=%d: diverges at %d", mode, ra, i)
				}
			}
		}
	}
}

func decodeWith(dir string, readahead int) ([]uint64, error) {
	d, err := Open(dir, DecodeOptions{Readahead: readahead})
	if err != nil {
		return nil, err
	}
	defer d.Close()
	return d.DecodeAll()
}

func TestReadaheadEarlyCloseStopsProducer(t *testing.T) {
	addrs := phasedTrace(10, 2000)
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: 2000, BufferAddrs: 400}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Consume a handful of addresses, then abandon: Close must stop the
	// producer goroutine without deadlocking (the race detector and
	// goroutine-leak-adjacent hangs would fail this test).
	for i := 0; i < 100; i++ {
		if _, err := d.Decode(); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Close is idempotent.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Close discarded the buffered readahead batches, so decoding cannot
	// resume: it must fail rather than silently skip intervals.
	if _, err := d.Decode(); err == nil || err == io.EOF {
		t.Fatalf("Decode after Close = %v, want error", err)
	}
}

func TestReadaheadSurfacesCorruptChunk(t *testing.T) {
	addrs := phasedTrace(6, 1000)
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: 1000, BufferAddrs: 300}); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "3.bsc")); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	_, err = d.DecodeAll()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
