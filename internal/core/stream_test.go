package core

// Tests of the pooled backend decode units (getBackendReader /
// putBackendReader) and the streaming path for never-imitated lossy
// chunks: both are pure performance reroutes, so every test here pins
// byte-identity against the materializing paths they replace.

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"atc/internal/store"
	"atc/internal/xcompress"
)

// mixedLossyTrace builds a lossy workload with both kinds of chunk: one
// stationary distribution (chunk 1 plus `imit` imitations of it)
// followed by `distinct` phases whose footprints differ by two orders of
// magnitude each — their sorted histograms are far beyond any epsilon,
// so every one becomes a chunk that is never an imitation source.
func mixedLossyTrace(intervalLen, imit, distinct int) []uint64 {
	rng := rand.New(rand.NewSource(99))
	addrs := make([]uint64, 0, (1+imit+distinct)*intervalLen)
	emit := func(footprint int) {
		for i := 0; i < intervalLen; i++ {
			addrs = append(addrs, uint64(rng.Intn(footprint)))
		}
	}
	for p := 0; p <= imit; p++ {
		emit(1 << 16)
	}
	for p := 0; p < distinct; p++ {
		emit(4 << uint(2*p))
	}
	return addrs
}

// TestNeverImitatedChunksStream pins the streaming reroute: over every
// store kind — directory, archive, memory and remote HTTP — the batched
// readahead decode of a lossy trace must be byte-identical to the
// synchronous decode, the never-imitated chunks must actually take the
// streaming path (counted by atc_decode_chunks_streamed_total), and they
// must stay out of the chunk cache while the imitated chunk stays in.
func TestNeverImitatedChunksStream(t *testing.T) {
	const (
		intervalLen = 2000
		imitations  = 3
		distinct    = 6
	)
	addrs := mixedLossyTrace(intervalLen, imitations, distinct)
	opts := Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 400}

	kinds := []string{"dir", "archive", "mem", "remote"}
	for _, kind := range kinds {
		t.Run(kind, func(t *testing.T) {
			var (
				path string
				dec  DecodeOptions
			)
			wopts := opts
			switch kind {
			case "dir":
				path = filepath.Join(t.TempDir(), "trace")
			case "archive", "remote":
				path = filepath.Join(t.TempDir(), "trace.atc")
				wopts.Archive = true
			case "mem":
				ms := store.NewMem()
				wopts.Store = ms
				dec.Store = ms
				path = "mem"
			}
			st, err := WriteTrace(path, addrs, wopts)
			if err != nil {
				t.Fatal(err)
			}
			if st.Chunks != 1+distinct || st.Imitations != imitations {
				t.Fatalf("trace shape: %d chunks / %d imitations, want %d / %d",
					st.Chunks, st.Imitations, 1+distinct, imitations)
			}
			if kind == "remote" {
				file := path
				srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
					http.ServeFile(w, r, file)
				}))
				defer srv.Close()
				path = srv.URL
			}

			sync := dec
			sync.Readahead = -1
			want := decodeAllWith(t, path, sync)
			if len(want) != len(addrs) {
				t.Fatalf("sync decode: %d addresses, want %d", len(want), len(addrs))
			}

			batched := dec
			batched.Readahead = 2
			d, err := Open(path, batched)
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if len(d.imitated) != 1 {
				t.Fatalf("imitated set has %d chunks, want 1", len(d.imitated))
			}
			before := metChunksStreamed.Value()
			got, err := d.DecodeAll()
			if err != nil {
				t.Fatal(err)
			}
			if streamed := metChunksStreamed.Value() - before; streamed != distinct {
				t.Fatalf("streamed %d chunks, want %d", streamed, distinct)
			}
			if len(got) != len(want) {
				t.Fatalf("batched decode: %d addresses, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("batched decode diverges from sync at %d", i)
				}
			}
			// The producer has delivered everything, so the cache is quiescent:
			// the imitated chunk (id 1) was pinned, the streamed ones never
			// entered.
			if _, ok := d.cache.Get(1); !ok {
				t.Fatal("imitated chunk 1 not cached after sequential decode")
			}
			for id := 2; id <= distinct+1; id++ {
				if _, ok := d.cache.Get(id); ok {
					t.Fatalf("never-imitated chunk %d polluted the cache", id)
				}
			}
		})
	}
}

// TestStreamedChunkRandomAccessUnaffected checks that the streaming
// reroute leaves random access alone: DecodeRange over a never-imitated
// chunk still materializes, pins and serves it from cache.
func TestStreamedChunkRandomAccessUnaffected(t *testing.T) {
	const intervalLen = 2000
	addrs := mixedLossyTrace(intervalLen, 2, 4)
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 400}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Spans 3..6 are the never-imitated chunks (ids 1..4).
	lo, hi := int64(3*intervalLen+100), int64(4*intervalLen-100)
	before := d.ChunkReads()
	if _, err := d.DecodeRange(lo, hi); err != nil {
		t.Fatal(err)
	}
	if n := d.ChunkReads() - before; n != 1 {
		t.Fatalf("range decode read %d chunks, want 1", n)
	}
	// Same window again: served from the pinned copy, no re-read.
	if _, err := d.DecodeRange(lo, hi); err != nil {
		t.Fatal(err)
	}
	if n := d.ChunkReads() - before; n != 1 {
		t.Fatalf("cached range re-read loaded %d chunks, want 1", n)
	}
}

// TestBackendReaderPoolRecycles drives the pooled decode unit directly:
// a unit released by readChunkFile must be handed back by the next
// acquisition (pointer-identical) and decode the next chunk correctly.
func TestBackendReaderPoolRecycles(t *testing.T) {
	const intervalLen = 2000
	addrs := mixedLossyTrace(intervalLen, 0, 3)
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 400}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.statefulBackend == nil || d.readerFree == nil {
		t.Fatal("bsc backend did not enable the reader pool")
	}

	first, err := d.readChunkFile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.readerFree) != 1 {
		t.Fatalf("pool holds %d units after readChunkFile, want 1", len(d.readerFree))
	}
	unit := <-d.readerFree
	d.readerFree <- unit

	second, err := d.readChunkFile(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(second) != intervalLen {
		t.Fatalf("recycled unit mis-decoded chunk 2 (len %d)", len(second))
	}
	reused := <-d.readerFree
	if reused != unit {
		t.Fatal("readChunkFile allocated a fresh unit instead of recycling")
	}
	d.readerFree <- reused

	// Re-decoding chunk 1 through the recycled unit must reproduce the
	// fresh decode exactly — no state bleed from chunk 2.
	again, err := d.readChunkFile(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) {
		t.Fatalf("recycled decode length %d, want %d", len(again), len(first))
	}
	for i := range first {
		if again[i] != first[i] {
			t.Fatalf("recycled decode of chunk 0 diverges at %d", i)
		}
	}
}

// TestPoolOverflowDropsUnit checks the free list is bounded: returning
// more units than its capacity must neither block nor grow it.
func TestPoolOverflowDropsUnit(t *testing.T) {
	const intervalLen = 1000
	addrs := mixedLossyTrace(intervalLen, 0, 2)
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 200}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	n := cap(d.readerFree)
	for i := 0; i < n+3; i++ {
		pr, err := d.getBackendReader(depletedReader{})
		if err != nil {
			t.Fatal(err)
		}
		// Acquire fresh units without consuming them so each put after the
		// n-th finds the list full.
		defer d.putBackendReader(pr)
	}
	for i := 0; i < n+3; i++ {
		pr, err := d.getBackendReader(depletedReader{})
		if err != nil {
			t.Fatal(err)
		}
		d.putBackendReader(pr)
	}
	if len(d.readerFree) > n {
		t.Fatalf("pool grew past its bound: %d > %d", len(d.readerFree), n)
	}
}

// plainBackend hides a back end's StatefulBackend extension, exercising
// the one-shot fallback the pool must preserve for unadapted back ends.
type plainBackend struct{ b xcompress.Backend }

func (p plainBackend) Name() string { return "plainbsc" }
func (p plainBackend) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return p.b.NewWriter(w)
}
func (p plainBackend) NewReader(r io.Reader) (io.Reader, error) {
	return p.b.NewReader(r)
}

// TestStatelessBackendFallback checks a back end without pooled-reader
// support still decodes through the historical one-shot path.
func TestStatelessBackendFallback(t *testing.T) {
	b, err := xcompress.Lookup("bsc")
	if err != nil {
		t.Fatal(err)
	}
	xcompress.Register(plainBackend{b: b})
	const intervalLen = 1500
	addrs := mixedLossyTrace(intervalLen, 2, 3)
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 300, Backend: "plainbsc"}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.statefulBackend != nil || d.readerFree != nil {
		t.Fatal("stateless backend unexpectedly enabled the reader pool")
	}
	got, err := d.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d addresses, want %d", len(got), len(addrs))
	}
}

// TestPoolSurvivesPipelineRestarts decodes the same trace repeatedly on
// one Decompressor through Seek(0): every pass must be byte-identical,
// with passes after the first fed by recycled decode units.
func TestPoolSurvivesPipelineRestarts(t *testing.T) {
	const intervalLen = 2000
	addrs := mixedLossyTrace(intervalLen, 2, 5)
	dir := filepath.Join(t.TempDir(), "trace")
	if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: intervalLen, BufferAddrs: 400}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	var first []uint64
	for round := 0; round < 3; round++ {
		if round > 0 {
			if err := d.SeekTo(0); err != nil {
				t.Fatal(err)
			}
		}
		got, err := d.DecodeAll()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 0 {
			first = got
			if len(d.readerFree) == 0 {
				t.Fatal("no decode units parked after a full pass")
			}
			continue
		}
		if len(got) != len(first) {
			t.Fatalf("round %d: %d addresses, want %d", round, len(got), len(first))
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("round %d diverges at %d", round, i)
			}
		}
	}
}
