package core

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"atc/internal/histogram"
)

func losslessOpts() Options {
	return Options{Mode: Lossless, BufferAddrs: 1000}
}

func lossyOpts(interval int) Options {
	return Options{Mode: Lossy, IntervalLen: interval, BufferAddrs: 500, Epsilon: 0.1}
}

func compressDecode(t *testing.T, addrs []uint64, opts Options) ([]uint64, Stats) {
	t.Helper()
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, opts)
	if err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	return got, stats
}

func TestLosslessRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 12_345)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	got, stats := compressDecode(t, addrs, losslessOpts())
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d addrs, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
	if stats.Chunks != 1 || stats.TotalAddrs != int64(len(addrs)) {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestLosslessEmptyTrace(t *testing.T) {
	got, _ := compressDecode(t, nil, losslessOpts())
	if len(got) != 0 {
		t.Fatalf("empty trace decoded to %d addrs", len(got))
	}
}

func TestLossyPreservesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(4096))
	}
	got, _ := compressDecode(t, addrs, lossyOpts(1000))
	if len(got) != len(addrs) {
		t.Fatalf("lossy decode length %d, want %d", len(got), len(addrs))
	}
}

func TestLossyStableTraceCreatesFewChunks(t *testing.T) {
	// A stationary random trace: all intervals look alike, so after the
	// first chunk everything should be imitation (the paper's Figure 8
	// scenario).
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 16))
	}
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, lossyOpts(2000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Intervals != 10 {
		t.Fatalf("intervals = %d, want 10", stats.Intervals)
	}
	if stats.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1 (stable trace)", stats.Chunks)
	}
	if stats.Imitations != 9 {
		t.Fatalf("imitations = %d, want 9", stats.Imitations)
	}
}

func TestLossyPhaseChangeCreatesChunks(t *testing.T) {
	// Two clearly different phases alternating: two chunks, rest imitations.
	var addrs []uint64
	rng := rand.New(rand.NewSource(4))
	for p := 0; p < 8; p++ {
		base := uint64(0)
		if p%2 == 1 {
			base = 1 << 40 // different high bytes => different histograms
		}
		for i := 0; i < 1000; i++ {
			addrs = append(addrs, base+uint64(rng.Intn(256)))
		}
	}
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, lossyOpts(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Chunks > 3 {
		t.Fatalf("chunks = %d for a 2-phase trace, want <= 3", stats.Chunks)
	}
	if stats.Imitations < 5 {
		t.Fatalf("imitations = %d, want >= 5", stats.Imitations)
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("length %d, want %d", len(got), len(addrs))
	}
}

func TestLossyTranslationRestoresFootprint(t *testing.T) {
	// The myopic-interval defence: intervals drawn from disjoint address
	// regions with identical structure must decode to *different* regions,
	// not copies of the first chunk.
	var addrs []uint64
	for p := 0; p < 5; p++ {
		base := uint64(p) << 32
		for i := 0; i < 1000; i++ {
			addrs = append(addrs, base+uint64(i%500))
		}
	}
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, lossyOpts(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imitations == 0 {
		t.Skip("no imitation happened; translation not exercised")
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]struct{}{}
	for _, a := range got {
		distinct[a] = struct{}{}
	}
	origDistinct := map[uint64]struct{}{}
	for _, a := range addrs {
		origDistinct[a] = struct{}{}
	}
	lo, hi := len(origDistinct)*8/10, len(origDistinct)*12/10
	if len(distinct) < lo || len(distinct) > hi {
		t.Fatalf("decoded footprint %d, original %d (outside ±20%%)", len(distinct), len(origDistinct))
	}
}

func TestIgnoreTranslationsShrinksFootprint(t *testing.T) {
	// Figure 4's ablation: without translation, imitated intervals replay
	// the chunk verbatim, collapsing the footprint.
	var addrs []uint64
	for p := 0; p < 5; p++ {
		base := uint64(p) << 32
		for i := 0; i < 1000; i++ {
			addrs = append(addrs, base+uint64(i%500))
		}
	}
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, lossyOpts(1000))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Imitations == 0 {
		t.Skip("no imitation happened")
	}
	dec, err := Open(dir, DecodeOptions{IgnoreTranslations: true})
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	got, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]struct{}{}
	for _, a := range got {
		distinct[a] = struct{}{}
	}
	if len(distinct) >= 5*500*8/10 {
		t.Fatalf("without translation footprint = %d; expected collapse", len(distinct))
	}
}

func TestLossyPreservesSortedHistogramsPerInterval(t *testing.T) {
	// Invariant from §5.1: each decoded interval must have the same sorted
	// byte-histograms as... itself under translation; and for matched
	// intervals, close to the original interval's (distance < epsilon-ish).
	var addrs []uint64
	rng := rand.New(rand.NewSource(7))
	for p := 0; p < 6; p++ {
		base := uint64(p) << 36
		for i := 0; i < 2000; i++ {
			addrs = append(addrs, base+uint64(rng.Intn(1024)))
		}
	}
	const L = 2000
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, lossyOpts(L)); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p*L < len(addrs); p++ {
		orig := histogram.Compute(addrs[p*L : (p+1)*L])
		dec := histogram.Compute(got[p*L : (p+1)*L])
		if d := histogram.Distance(orig, dec); d > 0.25 {
			t.Fatalf("interval %d: sorted-histogram distance %v after lossy round trip", p, d)
		}
	}
}

func TestShortFinalIntervalIsChunk(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	addrs := make([]uint64, 2_500) // 2 full intervals + 500 tail
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 20))
	}
	dir := t.TempDir()
	stats, err := WriteTrace(dir, addrs, lossyOpts(1000))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2500 {
		t.Fatalf("decoded %d addrs", len(got))
	}
	// Final 500 addresses must be exact (stored as a chunk).
	for i := 2000; i < 2500; i++ {
		if got[i] != addrs[i] {
			t.Fatalf("tail addr %d not exact", i)
		}
	}
	if stats.Chunks < 2 {
		t.Fatalf("chunks = %d; the short tail must be its own chunk", stats.Chunks)
	}
}

func TestCreateRefusesExistingTrace(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteTrace(dir, []uint64{1, 2, 3}, losslessOpts()); err != nil {
		t.Fatal(err)
	}
	if _, err := Create(dir, losslessOpts()); err == nil {
		t.Fatal("Create over an existing trace succeeded")
	}
}

func TestOpenMissingDir(t *testing.T) {
	if _, err := Open(filepath.Join(t.TempDir(), "nope"), DecodeOptions{}); err == nil {
		t.Fatal("Open on missing dir succeeded")
	}
}

func TestOpenCorruptINFO(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteTrace(dir, []uint64{1, 2, 3}, losslessOpts()); err != nil {
		t.Fatal(err)
	}
	// Truncate the INFO file.
	info := filepath.Join(dir, "INFO.bsc")
	data, err := os.ReadFile(info)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(info, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, DecodeOptions{}); err == nil {
		t.Fatal("Open with truncated INFO succeeded")
	}
}

func TestMissingChunkDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	addrs := make([]uint64, 3000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(100))
	}
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, lossyOpts(1000)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "2.bsc")); err != nil {
		// Maybe only one chunk was created; then remove chunk 1.
		if err := os.Remove(filepath.Join(dir, "1.bsc")); err != nil {
			t.Fatal(err)
		}
	}
	_, err := ReadTrace(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := lossyOpts(1000)
	opts.Backend = "flate"
	if _, err := WriteTrace(dir, []uint64{1, 2, 3, 4}, opts); err != nil {
		t.Fatal(err)
	}
	// Open without specifying the backend: MANIFEST must provide it.
	dec, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	got, err := dec.DecodeAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("decoded %d addrs", len(got))
	}
}

func TestAllBackends(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	addrs := make([]uint64, 5000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	for _, backend := range []string{"bsc", "flate", "store"} {
		for _, mode := range []Mode{Lossless, Lossy} {
			opts := Options{Mode: mode, Backend: backend, IntervalLen: 1000, BufferAddrs: 300}
			dir := t.TempDir()
			if _, err := WriteTrace(dir, addrs, opts); err != nil {
				t.Fatalf("%s/%v: %v", backend, mode, err)
			}
			got, err := ReadTrace(dir)
			if err != nil {
				t.Fatalf("%s/%v: %v", backend, mode, err)
			}
			if len(got) != len(addrs) {
				t.Fatalf("%s/%v: length %d", backend, mode, len(got))
			}
			if mode == Lossless {
				for i := range addrs {
					if got[i] != addrs[i] {
						t.Fatalf("%s lossless mismatch at %d", backend, i)
					}
				}
			}
		}
	}
}

func TestDecodeMetadata(t *testing.T) {
	dir := t.TempDir()
	opts := lossyOpts(1234)
	opts.Epsilon = 0.25
	if _, err := WriteTrace(dir, make([]uint64, 5000), opts); err != nil {
		t.Fatal(err)
	}
	dec, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	if dec.Mode() != Lossy || dec.IntervalLen() != 1234 || dec.Epsilon() != 0.25 {
		t.Fatalf("metadata: mode=%v L=%d eps=%v", dec.Mode(), dec.IntervalLen(), dec.Epsilon())
	}
	if dec.TotalAddrs() != 5000 {
		t.Fatalf("total = %d", dec.TotalAddrs())
	}
}

func TestBitsPerAddress(t *testing.T) {
	dir := t.TempDir()
	addrs := make([]uint64, 10_000) // all zeros: extremely compressible
	if _, err := WriteTrace(dir, addrs, losslessOpts()); err != nil {
		t.Fatal(err)
	}
	bpa, err := BitsPerAddress(dir, int64(len(addrs)))
	if err != nil {
		t.Fatal(err)
	}
	if bpa <= 0 || bpa > 8 {
		t.Fatalf("BPA = %v for all-zero trace; expected (0, 8]", bpa)
	}
	if _, err := BitsPerAddress(dir, 0); err == nil {
		t.Fatal("BPA with zero addrs succeeded")
	}
}

func TestStreamingDecodeMatchesDecodeAll(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 4000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 30))
	}
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, lossyOpts(1000)); err != nil {
		t.Fatal(err)
	}
	all, err := ReadTrace(dir)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Open(dir, DecodeOptions{ChunkCacheSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer dec.Close()
	for i := 0; ; i++ {
		v, err := dec.Decode()
		if err == io.EOF {
			if i != len(all) {
				t.Fatalf("streaming ended at %d, DecodeAll had %d", i, len(all))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if v != all[i] {
			t.Fatalf("streaming addr %d mismatch", i)
		}
	}
}

func TestLosslessRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		dir, err := os.MkdirTemp("", "atcq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		if _, err := WriteTrace(dir, addrs, Options{Mode: Lossless, BufferAddrs: 64}); err != nil {
			return false
		}
		got, err := ReadTrace(dir)
		if err != nil {
			return false
		}
		if len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLossyLengthProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		addrs := make([]uint64, int(n)+1)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 24))
		}
		dir, err := os.MkdirTemp("", "atcq")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		if _, err := WriteTrace(dir, addrs, Options{Mode: Lossy, IntervalLen: 97, BufferAddrs: 31}); err != nil {
			return false
		}
		got, err := ReadTrace(dir)
		if err != nil {
			return false
		}
		return len(got) == len(addrs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
