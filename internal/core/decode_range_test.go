package core

// Tests of the chunk-index decoder: Seek/DecodeRange correctness against
// DecodeAll, the only-touch-overlapping-chunks guarantee (via the chunk
// read counter), and index validation against corrupt record/total
// combinations.

import (
	"errors"
	"io"
	"math/rand"
	"testing"
)

// rangeTrace builds a deterministic phased trace: 12 phases of 1,000
// addresses with enough histogram diversity that lossy mode stores a mix
// of chunks and imitations.
func rangeTrace() []uint64 {
	rng := rand.New(rand.NewSource(404))
	const phases, plen = 12, 1000
	addrs := make([]uint64, 0, phases*plen)
	for p := 0; p < phases; p++ {
		footprint := 32 << uint(p%4)
		base := uint64(p%3) << 24
		for i := 0; i < plen; i++ {
			addrs = append(addrs, base+uint64(rng.Intn(footprint)))
		}
	}
	return addrs
}

// rangeModes are the three on-disk shapes random access must cover.
var rangeModes = []struct {
	name string
	opts Options
}{
	{"lossy", Options{Mode: Lossy, IntervalLen: 1000, BufferAddrs: 200}},
	{"legacy-lossless", Options{Mode: Lossless, BufferAddrs: 200, SegmentAddrs: -1}},
	{"segmented", Options{Mode: Lossless, BufferAddrs: 200, SegmentAddrs: 1500}},
}

func TestChunkIndexCoversTrace(t *testing.T) {
	addrs := rangeTrace()
	for _, m := range rangeModes {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			index := d.ChunkIndex()
			if len(index) == 0 {
				t.Fatal("empty chunk index")
			}
			var pos int64
			for i, sp := range index {
				if sp.Start != pos || sp.End <= sp.Start {
					t.Fatalf("span %d = [%d,%d), want contiguous from %d", i, sp.Start, sp.End, pos)
				}
				pos = sp.End
			}
			if pos != d.TotalAddrs() {
				t.Fatalf("index covers %d addresses, trace has %d", pos, d.TotalAddrs())
			}
		})
	}
}

func TestDecodeRangeMatchesDecodeAllSlice(t *testing.T) {
	addrs := rangeTrace()
	n := int64(len(addrs))
	for _, m := range rangeModes {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
				t.Fatal(err)
			}
			want, err := ReadTrace(dir)
			if err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			rng := rand.New(rand.NewSource(7))
			windows := [][2]int64{{0, 0}, {0, n}, {n, n}, {0, 1}, {n - 1, n}, {999, 1001}, {1500, 1500}}
			for i := 0; i < 25; i++ {
				a := rng.Int63n(n + 1)
				b := a + rng.Int63n(n+1-a)
				windows = append(windows, [2]int64{a, b})
			}
			for _, w := range windows {
				got, err := d.DecodeRange(w[0], w[1])
				if err != nil {
					t.Fatalf("DecodeRange(%d, %d): %v", w[0], w[1], err)
				}
				if int64(len(got)) != w[1]-w[0] {
					t.Fatalf("DecodeRange(%d, %d) returned %d addresses", w[0], w[1], len(got))
				}
				for i, v := range got {
					if v != want[w[0]+int64(i)] {
						t.Fatalf("DecodeRange(%d, %d) diverges at offset %d", w[0], w[1], i)
					}
				}
			}
			// Out-of-range requests fail without disturbing the decoder.
			for _, w := range [][2]int64{{-1, 5}, {5, 3}, {0, n + 1}, {n + 1, n + 2}} {
				if _, err := d.DecodeRange(w[0], w[1]); err == nil {
					t.Fatalf("DecodeRange(%d, %d) = nil error, want range error", w[0], w[1])
				}
			}
			if got, err := d.DecodeRange(10, 20); err != nil || len(got) != 10 {
				t.Fatalf("DecodeRange after failed ranges: %d addrs, err %v", len(got), err)
			}
		})
	}
}

func TestSeekThenDecode(t *testing.T) {
	addrs := rangeTrace()
	n := int64(len(addrs))
	for _, m := range rangeModes {
		for _, readahead := range []int{-1, 2} {
			t.Run(m.name, func(t *testing.T) {
				dir := t.TempDir()
				if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
					t.Fatal(err)
				}
				want, err := ReadTrace(dir)
				if err != nil {
					t.Fatal(err)
				}
				d, err := Open(dir, DecodeOptions{Readahead: readahead})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				// Forward, backward and repeated seeks, each followed by a
				// short decode burst checked against the full stream.
				for _, at := range []int64{5000, 1234, 11990, 0, n, 777} {
					if err := d.SeekTo(at); err != nil {
						t.Fatalf("Seek(%d): %v", at, err)
					}
					if d.Position() != at {
						t.Fatalf("Position() = %d after Seek(%d)", d.Position(), at)
					}
					for i := int64(0); i < 64; i++ {
						v, err := d.Decode()
						if at+i >= n {
							if err != io.EOF {
								t.Fatalf("Decode past end after Seek(%d): %v", at, err)
							}
							break
						}
						if err != nil {
							t.Fatalf("Decode after Seek(%d) offset %d: %v", at, i, err)
						}
						if v != want[at+i] {
							t.Fatalf("Seek(%d): decode diverges at offset %d", at, i)
						}
					}
				}
				// Seek clears a pending EOF: decode to the end, then rewind.
				if err := d.SeekTo(n - 3); err != nil {
					t.Fatal(err)
				}
				if _, err := d.DecodeAll(); err != nil {
					t.Fatal(err)
				}
				if _, err := d.Decode(); err != io.EOF {
					t.Fatalf("Decode at end = %v, want io.EOF", err)
				}
				if err := d.SeekTo(0); err != nil {
					t.Fatal(err)
				}
				if v, err := d.Decode(); err != nil || v != want[0] {
					t.Fatalf("Decode after rewind = %d, %v", v, err)
				}
				// Out-of-range seeks fail and leave the position alone.
				pos := d.Position()
				for _, at := range []int64{-1, n + 1} {
					if err := d.SeekTo(at); err == nil {
						t.Fatalf("Seek(%d) = nil error", at)
					}
				}
				if d.Position() != pos {
					t.Fatalf("failed seeks moved position from %d to %d", pos, d.Position())
				}
			})
		}
	}
}

// TestDecodeRangeTouchesOnlyOverlappingChunks is the acceptance-criterion
// check: a range decode may decompress only the chunks whose spans
// overlap the window (plus nothing at all when the cache is warm).
func TestDecodeRangeTouchesOnlyOverlappingChunks(t *testing.T) {
	addrs := rangeTrace()
	for _, m := range []struct {
		name string
		opts Options
	}{
		{"lossy", rangeModes[0].opts},
		{"segmented", rangeModes[2].opts},
	} {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, DecodeOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if got := d.ChunkReads(); got != 0 {
				t.Fatalf("Open alone read %d chunks", got)
			}
			index := d.ChunkIndex()
			from, to := index[2].Start+10, index[3].End-10 // overlaps spans 2 and 3 only
			distinct := map[int]bool{}
			for _, sp := range index {
				if sp.Start < to && sp.End > from {
					distinct[sp.ChunkID] = true
				}
			}
			if _, err := d.DecodeRange(from, to); err != nil {
				t.Fatal(err)
			}
			if got := d.ChunkReads(); got != int64(len(distinct)) {
				t.Fatalf("DecodeRange(%d, %d) read %d chunks, want %d (distinct backing chunks)",
					from, to, got, len(distinct))
			}
			// Warm cache: the same window costs zero further chunk reads.
			if _, err := d.DecodeRange(from, to); err != nil {
				t.Fatal(err)
			}
			if got := d.ChunkReads(); got != int64(len(distinct)) {
				t.Fatalf("warm DecodeRange re-read chunks: %d total reads, want %d", got, len(distinct))
			}
		})
	}
}

// TestSeekDecodeTouchesOnlyTailChunks pins the Seek analog: resuming the
// stream at a position must not decompress the chunks before it.
func TestSeekDecodeTouchesOnlyTailChunks(t *testing.T) {
	addrs := rangeTrace()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, rangeModes[2].opts); err != nil { // segmented
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{Readahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	index := d.ChunkIndex()
	last := index[len(index)-1]
	if err := d.SeekTo(last.Start); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeAll(); err != nil {
		t.Fatal(err)
	}
	if got := d.ChunkReads(); got != 1 {
		t.Fatalf("decoding the final span read %d chunks, want 1", got)
	}
}

func TestIndexRejectsInconsistentTrailer(t *testing.T) {
	// A segmented trace whose trailer total disagrees with the record
	// count must fail at Open (the index cannot be built), with
	// ErrCorrupt.
	addrs := rangeTrace()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, rangeModes[2].opts); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Rebuild the decoder state by hand to drive buildIndex directly with
	// a poisoned total: record/total consistency is pure index logic.
	for _, tc := range []struct {
		name    string
		mutate  func(d *Decompressor)
		wantErr bool
	}{
		{"total too small", func(d *Decompressor) { d.total = 1500 * int64(len(d.records)-1) }, true},
		{"total too large", func(d *Decompressor) { d.total = 1500*int64(len(d.records)) + 1 }, true},
		{"total zero", func(d *Decompressor) { d.total = 0 }, true},
		{"consistent", func(d *Decompressor) {}, false},
	} {
		d, err := Open(dir, DecodeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tc.mutate(d)
		err = d.buildIndex()
		if tc.wantErr && !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: buildIndex = %v, want ErrCorrupt", tc.name, err)
		}
		if !tc.wantErr && err != nil {
			t.Errorf("%s: buildIndex = %v", tc.name, err)
		}
		d.Close()
	}
}

func TestDecodeRangeAfterCloseFails(t *testing.T) {
	addrs := rangeTrace()
	dir := t.TempDir()
	if _, err := WriteTrace(dir, addrs, rangeModes[0].opts); err != nil {
		t.Fatal(err)
	}
	d, err := Open(dir, DecodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DecodeRange(0, 10); err == nil {
		t.Fatal("DecodeRange after Close = nil error")
	}
	if err := d.SeekTo(0); err == nil {
		t.Fatal("Seek after Close = nil error")
	}
}
