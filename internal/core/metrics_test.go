package core

import (
	"strings"
	"testing"

	"atc/internal/obs"
)

// TestDecodeTraceStages checks the per-request recorder end to end on the
// sync decode path: chunk loads are counted exactly (against the existing
// ChunkReads observable), fetch/decompress time is attributed, and a
// cached re-read reports hits instead of loads.
func TestDecodeTraceStages(t *testing.T) {
	addrs := rangeTrace()
	for _, m := range rangeModes {
		t.Run(m.name, func(t *testing.T) {
			dir := t.TempDir()
			if _, err := WriteTrace(dir, addrs, m.opts); err != nil {
				t.Fatal(err)
			}
			d, err := Open(dir, DecodeOptions{ChunkCacheSize: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()

			tr := &obs.Trace{}
			d.SetTrace(tr)
			before := d.ChunkReads()
			got, err := d.DecodeRange(2500, 5500)
			if err != nil {
				t.Fatal(err)
			}
			d.SetTrace(nil)
			if len(got) != 3000 {
				t.Fatalf("decoded %d addrs, want 3000", len(got))
			}
			loads := d.ChunkReads() - before
			if tr.ChunkLoads() != loads {
				t.Fatalf("trace counted %d chunk loads, reader counted %d", tr.ChunkLoads(), loads)
			}
			if m.opts.SegmentAddrs < 0 {
				// Legacy lossless streams through losslessDec — no
				// chunk-index spans, so no per-chunk stage attribution.
				return
			}
			if loads == 0 {
				t.Fatal("window decoded without any chunk load")
			}
			if tr.StageNS(obs.StageFetch)+tr.StageNS(obs.StageDecompress) <= 0 {
				t.Fatalf("no fetch/decompress time recorded: %s", tr.Header())
			}
			if tr.TotalNS() <= 0 {
				t.Fatalf("empty trace: %s", tr.Header())
			}

			// Same window again: the pinned chunks must come from cache.
			tr2 := &obs.Trace{}
			d.SetTrace(tr2)
			if _, err := d.DecodeRange(2500, 5500); err != nil {
				t.Fatal(err)
			}
			d.SetTrace(nil)
			if tr2.ChunkLoads() != 0 {
				t.Fatalf("cached re-read loaded %d chunks", tr2.ChunkLoads())
			}
			if tr2.CacheHits() == 0 {
				t.Fatal("cached re-read recorded no cache hits")
			}
		})
	}
}

// TestSharedCacheRegister checks the thin-view func metrics a shared
// cache exposes on a registry.
func TestSharedCacheRegister(t *testing.T) {
	c := NewSharedChunkCache(1)
	c.Put(1, []uint64{1})
	c.Get(1)
	c.Put(2, []uint64{2}) // evicts 1
	r := obs.NewRegistry()
	c.Register(r, obs.Label{Key: "trace", Value: "unit"})
	st := c.Stats()
	if st.Hits != 1 || st.Evictions != 1 || st.Resident != 1 {
		t.Fatalf("stats = %+v", st)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`atc_chunk_cache_hits_total{trace="unit"} 1`,
		`atc_chunk_cache_evictions_total{trace="unit"} 1`,
		`atc_chunk_cache_resident_chunks{trace="unit"} 1`,
	} {
		if !strings.Contains(sb.String(), want+"\n") {
			t.Fatalf("exposition missing %q:\n%s", want, sb.String())
		}
	}
}
