package core

import (
	"io"
	"time"

	"atc/internal/obs"
)

// Registry-backed decode/encode metrics on obs.Default(). They are
// process-wide: every Decompressor and Compressor feeds the same series.
// Per-instance counters (Decompressor.ChunkReads, SharedChunkCache.Stats)
// stay authoritative for their accessors — the registry is the
// operational view layered on top, not a replacement.
var (
	metChunkLoads = obs.Default().Counter("atc_decode_chunk_loads_total",
		"chunk blobs read and decompressed (chunk-cache misses), all readers")
	metChunkCacheHits = obs.Default().Counter("atc_decode_chunk_cache_hits_total",
		"chunk loads served from a private or shared chunk cache")
	metChunkCacheEvict = obs.Default().Counter("atc_decode_chunk_cache_evictions_total",
		"chunks evicted from private or shared chunk caches")
	metChunksStreamed = obs.Default().Counter("atc_decode_chunks_streamed_total",
		"lossy chunks stream-decoded straight into batch buffers (never an imitation source, so never materialized or cached)")

	metEncodeChunks = obs.Default().Counter("atc_encode_chunks_total",
		"chunks bytesorted, compressed and written")
	metEncodeImit = obs.Default().Counter("atc_encode_imitations_total",
		"intervals stored as imitation records instead of chunks")
	metEncodeQueue = obs.Default().Gauge("atc_encode_queue_depth",
		"chunk-compression jobs enqueued and not yet picked up by a worker")
	metCompressSec = obs.Default().Histogram("atc_encode_chunk_compress_seconds",
		"per-chunk bytesort+compress+write time", obs.DurationBuckets)
)

// metDecodeStage holds one histogram per decode stage
// (atc_decode_stage_seconds{stage=...}). Fetch, decompress and translate
// are observed for every sync-path chunk; wait, index and deliver are
// request-scoped — they land here only through a traced request's
// recorder path (atcserve observes wait separately as pool-wait).
var metDecodeStage = func() [obs.NumStages]*obs.Histogram {
	var hs [obs.NumStages]*obs.Histogram
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		hs[s] = obs.Default().Histogram("atc_decode_stage_seconds",
			"decode stage wall time", obs.DurationBuckets,
			obs.Label{Key: "stage", Value: s.String()})
	}
	return hs
}()

// observeChunkStages feeds one chunk read's fetch/decompress time split
// into the stage histograms and the per-request trace recorder, if one
// is attached.
func (d *Decompressor) observeChunkStages(fetchNS, decNS int64) {
	metDecodeStage[obs.StageFetch].Observe(float64(fetchNS) / 1e9)
	metDecodeStage[obs.StageDecompress].Observe(float64(decNS) / 1e9)
	if tr := d.traceRec; tr != nil {
		tr.AddNS(obs.StageFetch, fetchNS)
		tr.AddNS(obs.StageDecompress, decNS)
		tr.ChunkLoad()
	}
}

// observeTranslate records imitation-translation time (sync decode path).
func (d *Decompressor) observeTranslate(dur time.Duration) {
	metDecodeStage[obs.StageTranslate].ObserveDuration(dur)
	if tr := d.traceRec; tr != nil {
		tr.Add(obs.StageTranslate, dur)
	}
}

// timedReader accumulates time spent inside the wrapped reader's Read —
// isolating store/remote fetch time from the decompression consuming it.
// One lives per readChunkFile call, so no synchronization is needed.
type timedReader struct {
	r  io.Reader
	ns int64
}

func (t *timedReader) Read(p []byte) (int, error) {
	start := time.Now()
	n, err := t.r.Read(p)
	t.ns += time.Since(start).Nanoseconds()
	return n, err
}
