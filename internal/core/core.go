// Package core implements ATC, the address-trace compressor of the paper
// (Michaud, ISPASS 2009, Section 6): a single-pass streaming compressor for
// traces of 64-bit values with a lossless mode ('c' in the paper) and a
// lossy, phase-based mode ('k').
//
// A compressed trace is a set of named blobs held in a store.Store — a
// directory of files (the historical layout), a single-file .atc archive,
// or memory (see atc/internal/store):
//
//	MANIFEST        small plain-text descriptor (version, mode, back end)
//	INFO.<suffix>   back-end-compressed metadata: parameters and the
//	                interval record sequence (chunk / imitate+translations)
//	<n>.<suffix>    chunk n: one interval (lossy) or one segment
//	                (lossless), bytesort-transformed and back-end-compressed
//
// The trace encoding is byte-identical across stores: packing a directory
// trace into an archive (cmd/atcpack) copies blobs verbatim, and DirStore
// output matches the pre-store code exactly, so the golden v1/v2 testdata
// still decodes and re-encodes bit for bit.
//
// Two on-disk format versions exist; the MANIFEST "atc <version>" line and
// the INFO version byte both carry it and must agree:
//
//   - Version 1 (legacy): lossless traces are a single chunk file holding
//     the whole bytesort stream, described by one chunk record in INFO.
//   - Version 2 (segmented lossless): the lossless stream is cut into
//     segments of Options.SegmentAddrs addresses, each bytesort-transformed
//     and back-end-compressed as its own numbered chunk file with one chunk
//     record per segment in INFO, and INFO carries the segment length in a
//     field after BufferAddrs. Version 2 is written only for segmented
//     lossless traces; lossy traces and legacy single-chunk lossless traces
//     (SegmentAddrs < 0) still write byte-identical version-1 output.
//
// Lossy mode cuts the trace into intervals of L addresses; each interval
// either becomes a new chunk or is recorded as an imitation of a previous
// chunk together with the byte translations of Section 5.1. The final,
// possibly short interval always becomes a chunk so every imitation replays
// a full-length interval.
//
// # Parallel chunk pipeline
//
// Chunk files are independent (Figure 8), so compression fans completed
// intervals (lossy) and completed segments (segmented lossless) out to
// Options.Workers goroutines, each running the bytesort + back-end pipeline
// for one chunk. With Workers > 1 the lossy front end is itself a
// two-stage pipeline: a histogram stage computes the sorted
// byte-histograms of interval i+1 while a classify stage runs the phase
// table match, chunk numbering and record bookkeeping for interval i and
// dispatches chunks to the worker pool — so the caller's goroutine only
// fills interval buffers, and histogram computation overlaps both
// classification and chunk compression. Both stages process intervals
// strictly in trace order and a single classify goroutine owns the phase
// table and the record sequence, so the directory produced with N workers
// is byte-for-byte identical to the serial (Workers=1) result in both
// modes. Interval buffers pass through the pipeline by ownership transfer
// (no copying) and histogram Sets recycle through a small pool refilled
// by phase-table evictions, so a long lossy stream runs the front end
// allocation-free. (Every blob is also
// byte-identical inside an archive, but the archive *file* appends blobs
// in worker completion order, which varies with Workers > 1; the TOC
// makes that order irrelevant to readers, and Workers=1 — or packing a
// directory with atcpack — yields a canonical, reproducible archive.)
// Worker errors are deferred:
// a failed chunk write surfaces from the next Code/CodeSlice call or, at
// the latest, from Close. Legacy single-chunk lossless mode (SegmentAddrs
// < 0) streams with bounded memory and is unaffected by Workers.
//
// Chunk buffers recycle through a bounded free list, so a long segmented
// stream allocates at most Workers + queue + 1 segment buffers total
// instead of one fresh SegmentAddrs-sized slice per segment. Segmented
// lossless with Workers=1 runs a single worker behind an unbuffered queue:
// a double buffer (one segment filling, one compressing) that caps
// streaming memory at two segment buffers while still overlapping
// compression with trace production.
//
// Decoding mirrors this with a bounded readahead goroutine (see
// DecodeOptions.Readahead in decode.go) that overlaps back-end
// decompression with consumption; segmented lossless traces additionally
// decompress up to Readahead segments concurrently.
package core

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atc/internal/bytesort"
	"atc/internal/histogram"
	"atc/internal/phase"
	"atc/internal/store"
	"atc/internal/xcompress"
)

// Mode selects lossless or lossy compression.
type Mode int

const (
	// Lossless is the paper's 'c' mode: bytesort + back end, bit exact.
	Lossless Mode = iota
	// Lossy is the paper's 'k' mode: phase-based interval reuse.
	Lossy
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Lossless:
		return "lossless"
	case Lossy:
		return "lossy"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Defaults mirroring the paper's parameters.
const (
	// DefaultIntervalLen is the paper's interval length L (10 million
	// addresses, §5.3).
	DefaultIntervalLen = 10_000_000
	// DefaultBufferAddrs is the paper's bytesort buffer for chunks
	// (1 million addresses, §5.2).
	DefaultBufferAddrs = 1_000_000
	// DefaultBackend is the byte-level back end (bzip2 in the paper).
	DefaultBackend = "bsc"
	// DefaultSegmentAddrs is the default lossless segment length: 16 Mi
	// addresses (128 MB of raw trace) per independently compressed chunk.
	DefaultSegmentAddrs = 16 << 20
)

const (
	manifestName = "MANIFEST"
	infoBase     = "INFO"
	infoMagic    = "ATCI"

	// infoVersion1 is the legacy layout: a lossless trace is one chunk.
	infoVersion1 = 1
	// infoVersion2 adds segmented lossless mode: one chunk record per
	// segment and a SegmentAddrs field in INFO after BufferAddrs.
	infoVersion2 = 2
	// maxInfoVersion is the newest format this build writes and reads.
	maxInfoVersion = infoVersion2

	recChunk   = 1
	recImitate = 2
	recEnd     = 0
)

// ErrCorrupt reports a malformed compressed trace. It aliases the store
// package's sentinel, so corruption detected at either layer — a bad
// archive TOC or a bad trace record — matches the same errors.Is check.
var ErrCorrupt = store.ErrCorrupt

// ErrUnsupportedVersion reports a compressed trace whose MANIFEST or INFO
// declares a format version this build does not read. It wraps ErrCorrupt,
// so errors.Is(err, ErrCorrupt) continues to match.
var ErrUnsupportedVersion = fmt.Errorf("%w: unsupported format version", ErrCorrupt)

// ErrClosed reports use of a Compressor or Decompressor after Close. It is
// a caller bug, distinct from data corruption: servers map it to an
// internal error, never to a bad-input status.
var ErrClosed = errors.New("atc: use after close")

// ErrOutOfRange reports a SeekTo or DecodeRange target outside the trace's
// [0, total] address positions — the trace is fine, the request is not.
// atcserve maps it to 416 Requested Range Not Satisfiable.
var ErrOutOfRange = errors.New("atc: position outside trace")

// Options configures compression.
type Options struct {
	// Mode selects Lossless or Lossy. Default Lossless.
	Mode Mode
	// Backend names the byte-level compressor ("bsc", "flate", "store").
	// Default DefaultBackend.
	Backend string
	// IntervalLen is the lossy interval length L in addresses.
	// Default DefaultIntervalLen.
	IntervalLen int
	// Epsilon is the lossy matching threshold. Default phase.DefaultEpsilon.
	Epsilon float64
	// BufferAddrs is the bytesort buffer size B in addresses.
	// Default DefaultBufferAddrs.
	BufferAddrs int
	// SegmentAddrs cuts the lossless stream into segments of this many
	// addresses, each compressed as an independent chunk by the worker
	// pool (on-disk format version 2). 0 selects DefaultSegmentAddrs;
	// a negative value selects the legacy version-1 single-chunk layout,
	// which streams with bounded memory but compresses on one goroutine.
	// Lossy mode ignores it.
	SegmentAddrs int
	// TableCapacity bounds the phase table. Default phase.DefaultCapacity.
	TableCapacity int
	// Workers is the number of goroutines compressing completed chunks —
	// lossy intervals and segmented-lossless segments. 0 selects
	// runtime.GOMAXPROCS(0); 1 compresses lossy chunks synchronously on
	// the calling goroutine (the historical behavior), while segmented
	// lossless runs one worker behind an unbuffered queue — a double
	// buffer capping streaming memory at two segment buffers. Every blob
	// is byte-identical for any worker count; a directory is therefore
	// fully reproducible, while an archive file's blob order follows
	// worker completion with Workers > 1 (see the package doc).
	Workers int
	// Store overrides the blob container the trace is written into; when
	// nil the path passed to Create selects the default — a directory, or
	// a single-file archive when Archive is set. Close finalizes the
	// store (an archive's table of contents is written there).
	Store store.Store
	// Archive writes the trace as a single-file .atc archive at the path
	// passed to Create instead of a directory. Ignored when Store is set.
	Archive bool
}

func (o *Options) fillDefaults() {
	if o.Backend == "" {
		o.Backend = DefaultBackend
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.IntervalLen <= 0 {
		o.IntervalLen = DefaultIntervalLen
	}
	if o.Epsilon <= 0 {
		o.Epsilon = phase.DefaultEpsilon
	}
	if o.BufferAddrs <= 0 {
		o.BufferAddrs = DefaultBufferAddrs
	}
	if o.SegmentAddrs == 0 {
		o.SegmentAddrs = DefaultSegmentAddrs
	}
	if o.TableCapacity <= 0 {
		o.TableCapacity = phase.DefaultCapacity
	}
}

// segmented reports whether this configuration writes the version-2
// segmented lossless layout.
func (o *Options) segmented() bool {
	return o.Mode == Lossless && o.SegmentAddrs > 0
}

// formatVersion is the on-disk version written for this configuration.
// Only segmented lossless needs version 2; everything else keeps writing
// byte-identical version-1 output.
func (o *Options) formatVersion() int {
	if o.segmented() {
		return infoVersion2
	}
	return infoVersion1
}

// record is one INFO entry describing an interval.
type record struct {
	tag     uint8
	chunkID int
	trans   *histogram.Translations // imitation records only
}

// Stats summarises a finished compression.
type Stats struct {
	Mode       Mode
	TotalAddrs int64 // addresses coded
	Intervals  int64 // lossy intervals seen (lossless: 1)
	Chunks     int64 // chunks written
	Imitations int64 // intervals replaced by imitation records
}

// Compressor writes an ATC-compressed trace. Create one with Create, feed
// it with Code/CodeSlice and finish with Close.
type Compressor struct {
	path    string
	st      store.Store
	opts    Options
	backend xcompress.Backend

	// ownStore marks a store Create built itself (from the path); only
	// those are aborted — removed — when the trace cannot be started.
	ownStore bool

	// Legacy (version 1) lossless pipeline: one streaming chunk.
	chunkFile io.WriteCloser
	chunkWr   *bufio.Writer
	chunkCW   io.WriteCloser
	chunkEnc  *bytesort.Encoder

	// Segmented (version 2) lossless pipeline: the segment being filled.
	segment []uint64

	// Lossy pipeline.
	interval []uint64
	table    *phase.Table
	records  []record

	// Lossy front-end pipeline (Workers > 1): the caller hands completed
	// interval buffers to histCh; a histogram goroutine computes each
	// interval's byte-histograms and forwards to classifyCh; a classify
	// goroutine — the only goroutine touching table/records/nextChunk
	// after Create — matches, assigns chunk ids in arrival (= trace)
	// order and dispatches chunk jobs to the worker pool. setPool
	// recycles histogram Sets (refilled by imitations and table
	// evictions); nil histCh means the serial front end (Workers == 1).
	histCh      chan []uint64
	classifyCh  chan histJob
	frontWG     sync.WaitGroup
	frontClosed bool
	setPool     chan *histogram.Set

	// Worker pool (lossy intervals and segmented-lossless segments).
	// Phase decisions run on exactly one goroutine — the caller's
	// (Workers == 1) or the classify stage's — and only writeChunk runs
	// on workers, so the on-disk result is deterministic. The first
	// error anywhere in the pipeline is latched in werr and surfaced by
	// the next Code/CodeSlice or by Close. Finished chunk buffers
	// recycle through freeBufs, bounding total buffer allocations at
	// Workers + queue + a small pipeline slack.
	jobs       chan chunkJob
	freeBufs   chan []uint64
	workerWG   sync.WaitGroup
	werrMu     sync.Mutex
	werr       error
	hasWerr    atomic.Bool // cheap per-Code check; werr holds the error
	poolClosed bool

	// createChunkFile is a store.Create seam for fault-injection tests.
	createChunkFile func(name string) (io.WriteCloser, error)

	nextChunk int
	total     int64
	nChunks   int64
	nImit     int64
	closed    bool
	err       error
}

// chunkJob is one completed interval queued for back-end compression.
type chunkJob struct {
	id    int
	addrs []uint64
}

// histJob is one completed interval with its finalized histograms, in
// flight between the front end's histogram and classify stages.
type histJob struct {
	addrs []uint64
	hist  *histogram.Set
}

func (c *Compressor) workerErr() error {
	c.werrMu.Lock()
	defer c.werrMu.Unlock()
	return c.werr
}

func (c *Compressor) setWorkerErr(err error) {
	c.werrMu.Lock()
	if c.werr == nil {
		c.werr = err
	}
	c.werrMu.Unlock()
	c.hasWerr.Store(true)
}

// startWorkers launches the chunk-compression pool with n workers behind
// a queue-deep job channel. For N>1 the queue is one deep per worker so
// the caller can keep accumulating the next interval while all workers are
// busy; segmented Workers=1 passes queue=0 (an unbuffered handoff), which
// together with buffer recycling caps the pipeline at exactly two segment
// buffers — one filling, one compressing.
func (c *Compressor) startWorkers(n, queue int) {
	c.jobs = make(chan chunkJob, queue)
	// +5 slack: with the lossy front-end pipeline, up to five more
	// buffers are in flight beyond the pool's own — filling, the histCh
	// slot, the histogram stage, the classifyCh slot and the classify
	// stage. (Overflow only drops a recycle; sends never block.)
	c.freeBufs = make(chan []uint64, n+queue+5)
	for i := 0; i < n; i++ {
		c.workerWG.Add(1)
		go func() {
			defer c.workerWG.Done()
			for job := range c.jobs {
				metEncodeQueue.Dec()
				if c.workerErr() == nil {
					if err := c.writeChunk(job.id, job.addrs); err != nil {
						c.setWorkerErr(err)
					}
				}
				// Recycle the buffer (even while draining after a
				// failure); drop it if the free list is full.
				select {
				case c.freeBufs <- job.addrs[:0]:
				default:
				}
			}
		}()
	}
}

// chunkBuf returns a recycled chunk buffer when one is free, or a fresh
// one with the given capacity.
//
//atc:pool put=recycleBuf
func (c *Compressor) chunkBuf(capHint int) []uint64 {
	select {
	case buf := <-c.freeBufs:
		return buf[:0]
	default:
	}
	return make([]uint64, 0, capHint)
}

// shutdownWorkers closes the job queue, waits for in-flight chunks and
// reports the first worker error. Safe to call more than once.
func (c *Compressor) shutdownWorkers() error {
	if c.jobs != nil && !c.poolClosed {
		c.poolClosed = true
		close(c.jobs)
		c.workerWG.Wait()
	}
	return c.workerErr()
}

// getSet takes a recycled histogram Set, or allocates a fresh one.
//
//atc:pool put=recycleSet
func (c *Compressor) getSet() *histogram.Set {
	select {
	case s := <-c.setPool:
		return s
	default:
		return new(histogram.Set)
	}
}

// recycleSet returns a Set to the pool; dropped when the pool is full.
// ComputeInto resets before reuse, so dirty Sets recycle as-is.
func (c *Compressor) recycleSet(s *histogram.Set) {
	select {
	case c.setPool <- s:
	default:
	}
}

// recycleBuf returns an interval buffer to the free list without
// blocking; dropped when the list is full.
func (c *Compressor) recycleBuf(buf []uint64) {
	select {
	case c.freeBufs <- buf[:0]:
	default:
	}
}

// startFrontend launches the two-stage lossy front end: a histogram
// goroutine (the heavy, per-address stage) and a classify goroutine (the
// phase-table match and dispatch). Each stage handles one interval at a
// time in trace order, so interval i+1's histogram overlaps interval i's
// classification and dispatch, and both overlap the worker pool's
// bytesort + back-end compression of earlier chunks.
func (c *Compressor) startFrontend() {
	c.histCh = make(chan []uint64, 1)
	c.classifyCh = make(chan histJob, 1)
	c.frontWG.Add(2)
	go func() {
		defer c.frontWG.Done()
		defer close(c.classifyCh)
		for addrs := range c.histCh {
			s := c.getSet()
			histogram.ComputeInto(s, addrs)
			c.classifyCh <- histJob{addrs: addrs, hist: s}
		}
	}()
	go func() {
		defer c.frontWG.Done()
		for job := range c.classifyCh {
			c.classify(job.addrs, job.hist)
		}
	}()
}

// classifyHist is the single copy of the classification rules, shared by
// the serial (endInterval) and pipelined (classify) front ends so the
// two can never drift — the byte-identity-for-every-worker-count
// guarantee depends on them agreeing. It matches the interval's
// histograms against the phase table and either appends an imitation
// record (isChunk false) or assigns the next chunk id, inserts into the
// table and appends a chunk record. hist is consumed: recycled or handed
// to the table on every path, including errors. Only full-length
// intervals may match or enter the table — a short final chunk cannot
// stand in for a full interval.
func (c *Compressor) classifyHist(addrs []uint64, hist *histogram.Set) (id int, isChunk bool, err error) {
	full := len(addrs) == c.opts.IntervalLen
	if full {
		if matchID, _, ok := c.table.Match(hist); ok {
			chunkHist, ok := c.table.Lookup(matchID)
			if !ok {
				c.recycleSet(hist)
				return 0, false, fmt.Errorf("atc: internal: matched chunk %d not resident", matchID)
			}
			tr := histogram.BuildTranslations(chunkHist, hist, c.opts.Epsilon)
			c.records = append(c.records, record{tag: recImitate, chunkID: matchID, trans: tr})
			c.nImit++
			metEncodeImit.Inc()
			c.recycleSet(hist)
			return 0, false, nil
		}
	}
	id = c.nextChunk
	c.nextChunk++
	c.nChunks++
	if full {
		if evicted := c.table.Insert(id, hist); evicted != nil {
			c.recycleSet(evicted)
		}
	} else {
		c.recycleSet(hist)
	}
	c.records = append(c.records, record{tag: recChunk, chunkID: id})
	return id, true, nil
}

// classify runs interval classification on the classify goroutine,
// dispatching chunks to the worker pool. Any failure latches into werr
// (surfaced by the next Code/CodeSlice or by Close); after a failure
// intervals are drained and recycled so the caller never blocks on a
// dead pipeline.
func (c *Compressor) classify(addrs []uint64, hist *histogram.Set) {
	if c.workerErr() != nil {
		c.recycleSet(hist)
		c.recycleBuf(addrs)
		return
	}
	id, isChunk, err := c.classifyHist(addrs, hist)
	if err != nil {
		c.setWorkerErr(err)
		c.recycleBuf(addrs)
		return
	}
	if !isChunk {
		c.recycleBuf(addrs)
		return
	}
	metEncodeQueue.Inc()
	c.jobs <- chunkJob{id: id, addrs: addrs}
}

// drainFrontend closes the front-end pipeline and waits for both stages
// to finish classifying every interval handed in. Safe to call more than
// once; must run before shutdownWorkers (the classify stage feeds the
// job queue).
func (c *Compressor) drainFrontend() {
	if c.histCh != nil && !c.frontClosed {
		c.frontClosed = true
		close(c.histCh)
		c.frontWG.Wait()
	}
}

// shutdownPipeline drains the front end (if any), then the worker pool,
// and reports the first deferred error.
func (c *Compressor) shutdownPipeline() error {
	c.drainFrontend()
	return c.shutdownWorkers()
}

// createChunkFileHook is the default chunk-blob creator; fault-injection
// tests swap it (or the per-Compressor seam) for a failing implementation.
var createChunkFileHook = func(st store.Store, name string) (io.WriteCloser, error) {
	return st.Create(name)
}

// segmentBufCap caps the initial allocation of the segment buffer so a
// large SegmentAddrs (128 MB at the default) is not committed up front for
// traces that never fill a segment; append growth takes over beyond it.
const segmentBufCap = 1 << 20

// Create starts a new compressed trace at path: a directory by default
// (created if needed; it must be empty of ATC files), a single-file .atc
// archive when opts.Archive is set, or whatever container opts.Store
// names (path is then informational only).
func Create(path string, opts Options) (*Compressor, error) {
	opts.fillDefaults()
	// Validate everything that can fail cheaply before touching the
	// filesystem: an unknown mode or back end must not leave a stray
	// directory or archive file (or an orphan chunk blob) behind.
	switch opts.Mode {
	case Lossless, Lossy:
	default:
		return nil, fmt.Errorf("atc: unknown mode %v", opts.Mode)
	}
	backend, err := xcompress.Lookup(opts.Backend)
	if err != nil {
		return nil, err
	}
	st := opts.Store
	ownStore := false
	if st == nil {
		if opts.Archive {
			ast, err := store.CreateArchive(path)
			if err != nil {
				return nil, err
			}
			st = ast
		} else {
			ds, err := store.CreateDir(path)
			if err != nil {
				return nil, err
			}
			st = ds
		}
		ownStore = true
	}
	if b, err := st.Open(manifestName); err == nil {
		b.Close()
		return nil, fmt.Errorf("atc: %s already contains a compressed trace", path)
	}
	c := &Compressor{
		path:      path,
		st:        st,
		ownStore:  ownStore,
		opts:      opts,
		backend:   backend,
		nextChunk: 1,
	}
	c.createChunkFile = func(name string) (io.WriteCloser, error) {
		return createChunkFileHook(c.st, name)
	}
	switch opts.Mode {
	case Lossless:
		if opts.segmented() {
			bufCap := opts.SegmentAddrs
			if bufCap > segmentBufCap {
				bufCap = segmentBufCap
			}
			c.segment = make([]uint64, 0, bufCap)
			// Workers=1 still runs the pool: an unbuffered handoff to a
			// single worker double-buffers the stream (see startWorkers).
			if opts.Workers > 1 {
				c.startWorkers(opts.Workers, opts.Workers)
			} else {
				c.startWorkers(1, 0)
			}
		} else if err := c.openLosslessChunk(); err != nil {
			c.abortCreate()
			return nil, err
		}
	case Lossy:
		c.interval = make([]uint64, 0, opts.IntervalLen)
		c.table = phase.New(opts.TableCapacity, opts.Epsilon)
		c.setPool = make(chan *histogram.Set, 4)
		if opts.Workers > 1 {
			c.startWorkers(opts.Workers, opts.Workers)
			c.startFrontend()
		}
	}
	return c, nil
}

// abortCreate undoes store creation after a failed trace start. Only
// stores Create built itself are aborted; a caller-provided Store is the
// caller's to clean up.
func (c *Compressor) abortCreate() {
	if c.ownStore {
		store.Abort(c.st)
	}
}

func (c *Compressor) chunkName(id int) string {
	return fmt.Sprintf("%d.%s", id, c.opts.Backend)
}

func (c *Compressor) openLosslessChunk() error {
	f, err := c.createChunkFile(c.chunkName(1))
	if err != nil {
		return fmt.Errorf("atc: %w", err)
	}
	c.chunkWr = bufio.NewWriterSize(f, 1<<16)
	cw, err := c.backend.NewWriter(c.chunkWr)
	if err != nil {
		f.Close()
		c.st.Remove(c.chunkName(1)) // best effort; uncommitted archive blobs leave nothing
		return err
	}
	c.chunkFile = f
	c.chunkCW = cw
	c.chunkEnc = bytesort.NewEncoder(cw, c.opts.BufferAddrs)
	c.records = append(c.records, record{tag: recChunk, chunkID: 1})
	c.nextChunk = 2
	c.nChunks = 1
	return nil
}

// closeLosslessChunk finishes the legacy single-chunk stream. The chunk
// file is closed on every path — an encoder or back-end failure must not
// leak the descriptor — and the first error wins.
func (c *Compressor) closeLosslessChunk() error {
	err := c.chunkEnc.Close()
	if e := c.chunkCW.Close(); err == nil {
		err = e
	}
	if err == nil {
		err = c.chunkWr.Flush()
	}
	if e := c.chunkFile.Close(); err == nil {
		err = e
	}
	return err
}

// Code appends one 64-bit value to the trace (the paper's atc_code). With
// Workers > 1, a chunk-compression failure from an earlier interval is
// deferred and returned by a later Code call (or by Close).
func (c *Compressor) Code(x uint64) error {
	if c.err != nil {
		return c.err
	}
	if c.hasWerr.Load() {
		c.err = c.workerErr()
		return c.err
	}
	if c.closed {
		return fmt.Errorf("%w: Code", ErrClosed)
	}
	c.total++
	if c.opts.Mode == Lossless {
		if !c.opts.segmented() {
			if err := c.chunkEnc.Write(x); err != nil {
				c.err = err
				return err
			}
			return nil
		}
		c.segment = append(c.segment, x)
		if len(c.segment) == c.opts.SegmentAddrs {
			return c.endSegment()
		}
		return nil
	}
	c.interval = append(c.interval, x)
	if len(c.interval) == c.opts.IntervalLen {
		return c.dispatchInterval()
	}
	return nil
}

// dispatchInterval hands the completed interval to the front-end
// pipeline when one is running (the caller continues filling a recycled
// buffer; ownership of the full one transfers, no copy), or classifies
// it synchronously (Workers == 1).
func (c *Compressor) dispatchInterval() error {
	if c.histCh != nil {
		c.histCh <- c.interval
		c.interval = c.chunkBuf(c.opts.IntervalLen)
		return nil
	}
	return c.endInterval(false)
}

// endSegment stores the buffered lossless segment as its own chunk,
// handing it to the worker pool when one is running. Chunk numbering and
// the record sequence stay on the calling goroutine, so the directory is
// byte-identical for any worker count.
func (c *Compressor) endSegment() error {
	if len(c.segment) == 0 {
		return nil
	}
	id := c.nextChunk
	c.nextChunk++
	c.nChunks++
	c.records = append(c.records, record{tag: recChunk, chunkID: id})
	if c.jobs != nil {
		// Hand the buffer itself to the pool and continue filling a
		// recycled one: no copying of up-to-128 MB segments on the hot
		// path, and no fresh allocation once the free list is primed.
		metEncodeQueue.Inc()
		c.jobs <- chunkJob{id: id, addrs: c.segment}
		bufCap := c.opts.SegmentAddrs
		if bufCap > segmentBufCap {
			bufCap = segmentBufCap // lazily grown by append, as at Create
		}
		c.segment = c.chunkBuf(bufCap)
		return nil
	}
	if err := c.writeChunk(id, c.segment); err != nil {
		c.err = err
		return err
	}
	c.segment = c.segment[:0]
	return nil
}

// CodeSlice appends many values, ingesting in bulk: addresses are copied
// to the current interval/segment buffer up to each boundary instead of
// going through per-address Code calls. A deferred worker error surfaces
// at entry and at every chunk boundary, so a caller streaming large
// slices stops feeding a dead pipeline within one chunk.
//
//atc:hotpath
func (c *Compressor) CodeSlice(xs []uint64) error {
	if c.err != nil {
		return c.err
	}
	if c.hasWerr.Load() {
		c.err = c.workerErr()
		return c.err
	}
	if c.closed {
		//atc:ignore hotalloc error construction on the terminal use-after-close path, not the streaming loop
		return fmt.Errorf("%w: Code", ErrClosed)
	}
	switch {
	case c.opts.Mode == Lossless && !c.opts.segmented():
		if err := c.chunkEnc.WriteSlice(xs); err != nil {
			c.err = err
			return err
		}
		c.total += int64(len(xs))
		return nil
	case c.opts.Mode == Lossless:
		for len(xs) > 0 {
			n := c.opts.SegmentAddrs - len(c.segment)
			if n > len(xs) {
				n = len(xs)
			}
			//atc:ignore hotalloc c.segment comes from chunkBuf with SegmentAddrs capacity and n is clamped to the remaining space, so append never grows
			c.segment = append(c.segment, xs[:n]...)
			c.total += int64(n)
			xs = xs[n:]
			if len(c.segment) == c.opts.SegmentAddrs {
				if err := c.endSegment(); err != nil {
					return err
				}
				if c.hasWerr.Load() {
					c.err = c.workerErr()
					return c.err
				}
			}
		}
		return nil
	default:
		for len(xs) > 0 {
			n := c.opts.IntervalLen - len(c.interval)
			if n > len(xs) {
				n = len(xs)
			}
			//atc:ignore hotalloc c.interval comes from chunkBuf with IntervalLen capacity and n is clamped to the remaining space, so append never grows
			c.interval = append(c.interval, xs[:n]...)
			c.total += int64(n)
			xs = xs[n:]
			if len(c.interval) == c.opts.IntervalLen {
				if err := c.dispatchInterval(); err != nil {
					return err
				}
				if c.hasWerr.Load() {
					c.err = c.workerErr()
					return c.err
				}
			}
		}
		return nil
	}
}

// endInterval classifies the buffered interval as a chunk or an
// imitation, on the calling goroutine — the Workers == 1 front end (with
// Workers > 1 the classify stage runs the identical classifyHist; see
// classify). The final (possibly short) interval is always stored as a
// chunk. Histogram Sets recycle through the same pool the pipelined
// front end uses, so the serial path is equally allocation-free per
// interval.
func (c *Compressor) endInterval(final bool) error {
	if len(c.interval) == 0 {
		return nil
	}
	hist := c.getSet()
	histogram.ComputeInto(hist, c.interval)
	id, isChunk, err := c.classifyHist(c.interval, hist)
	if err != nil {
		return err
	}
	if isChunk {
		if err := c.writeChunk(id, c.interval); err != nil {
			c.err = err
			return err
		}
	}
	c.interval = c.interval[:0]
	return nil
}

// writeChunk stores one interval as a bytesorted, back-end-compressed
// blob. It is called concurrently by pool workers and touches only
// immutable Compressor fields (st, opts, backend, createChunkFile); the
// store's Create is concurrent-safe by contract.
func (c *Compressor) writeChunk(id int, addrs []uint64) error {
	start := time.Now()
	f, err := c.createChunkFile(c.chunkName(id))
	if err != nil {
		return fmt.Errorf("atc: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	cw, err := c.backend.NewWriter(bw)
	if err != nil {
		f.Close()
		return err
	}
	bufAddrs := c.opts.BufferAddrs
	if bufAddrs > len(addrs) {
		bufAddrs = len(addrs)
	}
	enc := bytesort.NewEncoder(cw, bufAddrs)
	if err := enc.WriteSlice(addrs); err != nil {
		f.Close()
		return err
	}
	if err := enc.Close(); err != nil {
		f.Close()
		return err
	}
	if err := cw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	metCompressSec.ObserveDuration(time.Since(start))
	metEncodeChunks.Inc()
	return nil
}

// Close flushes all state — draining the worker pool first — writes INFO
// and MANIFEST (the paper's atc_close) and finalizes the store (a
// single-file archive writes its table of contents here). Any deferred
// chunk-compression error not yet surfaced by Code is returned here. The
// Compressor cannot be used afterwards.
func (c *Compressor) Close() error {
	if c.err != nil {
		c.shutdownPipeline()
		c.abortCreate()
		return c.err
	}
	if c.closed {
		return nil
	}
	switch {
	case c.opts.Mode == Lossless && !c.opts.segmented():
		if err := c.closeLosslessChunk(); err != nil {
			c.err = err
			c.abortCreate()
			return err
		}
	case c.opts.Mode == Lossless:
		if err := c.endSegment(); err != nil {
			c.shutdownPipeline()
			c.abortCreate()
			return err
		}
		if err := c.shutdownPipeline(); err != nil {
			c.err = err
			c.abortCreate()
			return err
		}
	default:
		// The final (possibly short) interval rides the same pipeline as
		// every other, so the record sequence stays in trace order.
		if c.histCh != nil {
			if len(c.interval) > 0 {
				c.histCh <- c.interval
				c.interval = nil
			}
		} else if err := c.endInterval(true); err != nil {
			c.shutdownPipeline()
			c.abortCreate()
			return err
		}
		if err := c.shutdownPipeline(); err != nil {
			c.err = err
			c.abortCreate()
			return err
		}
	}
	if err := c.writeInfo(); err != nil {
		c.err = err
		c.abortCreate()
		return err
	}
	if err := c.writeManifest(); err != nil {
		c.err = err
		c.abortCreate()
		return err
	}
	if err := c.st.Close(); err != nil {
		c.err = err
		return err
	}
	c.closed = true
	return nil
}

// Stats reports compression counters; valid after Close.
func (c *Compressor) Stats() Stats {
	intervals := int64(1)
	if c.opts.Mode == Lossy {
		intervals = c.nChunks + c.nImit
	}
	return Stats{
		Mode:       c.opts.Mode,
		TotalAddrs: c.total,
		Intervals:  intervals,
		Chunks:     c.nChunks,
		Imitations: c.nImit,
	}
}

func (c *Compressor) writeManifest() error {
	var b strings.Builder
	fmt.Fprintf(&b, "atc %d\n", c.opts.formatVersion())
	fmt.Fprintf(&b, "mode %s\n", c.opts.Mode)
	fmt.Fprintf(&b, "backend %s\n", c.opts.Backend)
	return store.WriteBlob(c.st, manifestName, []byte(b.String()))
}

func (c *Compressor) writeInfo() error {
	f, err := c.st.Create(infoBase + "." + c.opts.Backend)
	if err != nil {
		return fmt.Errorf("atc: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	cw, err := c.backend.NewWriter(bw)
	if err != nil {
		f.Close()
		return err
	}
	w := &infoWriter{w: bufio.NewWriter(cw)}
	w.string(infoMagic)
	w.byte(byte(c.opts.formatVersion()))
	w.byte(byte(c.opts.Mode))
	w.uvarint(uint64(c.opts.IntervalLen))
	w.uvarint(uint64(c.opts.BufferAddrs))
	if c.opts.formatVersion() >= infoVersion2 {
		w.uvarint(uint64(c.opts.SegmentAddrs))
	}
	var eps [8]byte
	binary.LittleEndian.PutUint64(eps[:], math.Float64bits(c.opts.Epsilon))
	w.bytes(eps[:])
	for _, r := range c.records {
		w.byte(r.tag)
		w.uvarint(uint64(r.chunkID))
		if r.tag == recImitate {
			w.byte(r.trans.Mask)
			for j := 0; j < histogram.Positions; j++ {
				if r.trans.Mask&(1<<uint(j)) != 0 {
					w.bytes(r.trans.T[j][:])
				}
			}
		}
	}
	w.byte(recEnd)
	w.uvarint(uint64(c.total))
	if err := w.flush(); err != nil {
		f.Close()
		return err
	}
	if err := cw.Close(); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// infoWriter latches the first write error so every INFO field write is
// checked without per-call boilerplate; flush surfaces the latched error
// before attempting the final Flush. A full disk therefore fails Close
// instead of silently truncating the INFO stream.
type infoWriter struct {
	w   *bufio.Writer
	err error
}

func (iw *infoWriter) byte(b byte) {
	if iw.err == nil {
		iw.err = iw.w.WriteByte(b)
	}
}

func (iw *infoWriter) bytes(p []byte) {
	if iw.err == nil {
		_, iw.err = iw.w.Write(p)
	}
}

func (iw *infoWriter) string(s string) {
	if iw.err == nil {
		_, iw.err = iw.w.WriteString(s)
	}
}

func (iw *infoWriter) uvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	iw.bytes(buf[:n])
}

func (iw *infoWriter) flush() error {
	if iw.err != nil {
		return iw.err
	}
	return iw.w.Flush()
}

// StoreSize reports the total compressed size of a trace at path — the
// summed file sizes for a directory trace, the whole file size (header,
// payloads and TOC) for a single-file archive, the probed object size for
// an http(s) URL. It is the numerator of the paper's bits-per-address
// metric.
func StoreSize(path string) (int64, error) {
	if store.IsRemoteURL(path) {
		return store.RemoteSize(path)
	}
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if !fi.IsDir() {
		return fi.Size(), nil
	}
	return store.OpenDir(path).Size()
}

// BitsPerAddress computes the paper's BPA metric for a compressed trace —
// a directory or a single-file archive.
func BitsPerAddress(path string, addrs int64) (float64, error) {
	if addrs <= 0 {
		return 0, errors.New("atc: nonpositive address count")
	}
	size, err := StoreSize(path)
	if err != nil {
		return 0, err
	}
	return float64(size*8) / float64(addrs), nil
}
