// Package cheetah implements single-pass LRU cache simulation for a whole
// range of associativities at once, in the spirit of the Cheetah simulator
// (Sugumar & Abraham) that the paper uses for its Figure 3 miss-ratio
// studies.
//
// For a fixed number of sets, the per-set LRU stack position (stack
// distance) of each reference determines its hit/miss outcome for every
// associativity simultaneously: a reference found at depth d hits in any
// cache with associativity > d and misses in smaller ones. One pass over
// the trace therefore yields the full miss-ratio-vs-associativity curve.
// A Grid aggregates several set counts to produce the whole Figure 3
// surface in a single trace traversal.
package cheetah

import "fmt"

// Simulator computes miss counts for associativities 1..MaxAssoc at a fixed
// set count (a power of two).
type Simulator struct {
	sets     int
	maxAssoc int
	setMask  uint64
	// stacks[s] is the LRU stack of set s, most recent first, bounded at
	// maxAssoc entries.
	stacks [][]uint64
	// distHist[d] counts references found at stack distance d.
	distHist []int64
	// coldOrDeep counts references not found within maxAssoc (cold misses
	// and references beyond the deepest tracked way).
	coldOrDeep int64
	accesses   int64
}

// New returns a Simulator for the given geometry.
func New(sets, maxAssoc int) (*Simulator, error) {
	if sets <= 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cheetah: set count %d not a positive power of two", sets)
	}
	if maxAssoc <= 0 {
		return nil, fmt.Errorf("cheetah: nonpositive max associativity %d", maxAssoc)
	}
	return &Simulator{
		sets:     sets,
		maxAssoc: maxAssoc,
		setMask:  uint64(sets - 1),
		stacks:   make([][]uint64, sets),
		distHist: make([]int64, maxAssoc),
	}, nil
}

// MustNew is New but panics on error.
func MustNew(sets, maxAssoc int) *Simulator {
	s, err := New(sets, maxAssoc)
	if err != nil {
		panic(err)
	}
	return s
}

// Sets returns the simulated set count.
func (s *Simulator) Sets() int { return s.sets }

// MaxAssoc returns the largest simulated associativity.
func (s *Simulator) MaxAssoc() int { return s.maxAssoc }

// Accesses returns the number of references simulated.
func (s *Simulator) Accesses() int64 { return s.accesses }

// Access simulates one block-address reference.
func (s *Simulator) Access(block uint64) {
	s.accesses++
	idx := block & s.setMask
	stack := s.stacks[idx]
	for d, tag := range stack {
		if tag == block {
			s.distHist[d]++
			copy(stack[1:d+1], stack[:d])
			stack[0] = block
			return
		}
	}
	s.coldOrDeep++
	if len(stack) < s.maxAssoc {
		stack = append(stack, 0)
	}
	copy(stack[1:], stack)
	stack[0] = block
	s.stacks[idx] = stack
}

// AccessAll simulates a whole trace.
func (s *Simulator) AccessAll(blocks []uint64) {
	for _, b := range blocks {
		s.Access(b)
	}
}

// Misses returns the miss count for a cache of the given associativity
// (1 <= assoc <= MaxAssoc): every reference with stack distance >= assoc.
func (s *Simulator) Misses(assoc int) int64 {
	if assoc < 1 || assoc > s.maxAssoc {
		panic(fmt.Sprintf("cheetah: associativity %d out of range [1,%d]", assoc, s.maxAssoc))
	}
	m := s.coldOrDeep
	for d := assoc; d < s.maxAssoc; d++ {
		m += s.distHist[d]
	}
	return m
}

// MissRatio returns Misses(assoc)/Accesses.
func (s *Simulator) MissRatio(assoc int) float64 {
	if s.accesses == 0 {
		return 0
	}
	return float64(s.Misses(assoc)) / float64(s.accesses)
}

// MissRatios returns the curve for associativities 1..MaxAssoc.
func (s *Simulator) MissRatios() []float64 {
	out := make([]float64, s.maxAssoc)
	for a := 1; a <= s.maxAssoc; a++ {
		out[a-1] = s.MissRatio(a)
	}
	return out
}

// Grid simulates several set counts in one pass.
type Grid struct {
	sims []*Simulator
}

// NewGrid builds simulators for each set count.
func NewGrid(setCounts []int, maxAssoc int) (*Grid, error) {
	g := &Grid{}
	for _, sc := range setCounts {
		s, err := New(sc, maxAssoc)
		if err != nil {
			return nil, err
		}
		g.sims = append(g.sims, s)
	}
	return g, nil
}

// Access feeds one reference to every simulator.
func (g *Grid) Access(block uint64) {
	for _, s := range g.sims {
		s.Access(block)
	}
}

// AccessAll feeds a whole trace to every simulator.
func (g *Grid) AccessAll(blocks []uint64) {
	for _, b := range blocks {
		g.Access(b)
	}
}

// Simulators exposes the per-set-count simulators in construction order.
func (g *Grid) Simulators() []*Simulator { return g.sims }
