package cheetah

import (
	"math/rand"
	"testing"

	"atc/internal/cache"
)

func TestValidation(t *testing.T) {
	if _, err := New(3, 4); err == nil {
		t.Fatal("non-power-of-two set count accepted")
	}
	if _, err := New(0, 4); err == nil {
		t.Fatal("zero sets accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Fatal("zero associativity accepted")
	}
}

func TestMissesMonotoneInAssociativity(t *testing.T) {
	s := MustNew(64, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		s.Access(uint64(rng.Intn(4096)))
	}
	prev := s.Misses(1)
	for a := 2; a <= 16; a++ {
		m := s.Misses(a)
		if m > prev {
			t.Fatalf("misses increased with associativity: a=%d %d > %d", a, m, prev)
		}
		prev = m
	}
}

// TestAgainstDirectSimulation is the key correctness check: the one-pass
// stack-distance curve must equal individually simulated LRU caches at
// every associativity.
func TestAgainstDirectSimulation(t *testing.T) {
	const sets = 16
	const maxAssoc = 8
	rng := rand.New(rand.NewSource(7))
	traceLen := 20_000
	blocks := make([]uint64, traceLen)
	for i := range blocks {
		// Mix of hot and cold blocks for interesting stack depths.
		if rng.Intn(4) == 0 {
			blocks[i] = uint64(rng.Intn(64))
		} else {
			blocks[i] = uint64(rng.Intn(2048))
		}
	}
	s := MustNew(sets, maxAssoc)
	s.AccessAll(blocks)
	for assoc := 1; assoc <= maxAssoc; assoc++ {
		cfg := cache.Config{SizeBytes: sets * assoc * 64, Ways: assoc, BlockBytes: 64}
		c := cache.MustNew(cfg)
		for _, b := range blocks {
			c.AccessBlock(b)
		}
		if got, want := s.Misses(assoc), c.Stats().Misses; got != want {
			t.Fatalf("assoc %d: cheetah misses %d, direct simulation %d", assoc, got, want)
		}
	}
}

func TestColdMissesCounted(t *testing.T) {
	s := MustNew(4, 4)
	for b := uint64(0); b < 100; b++ {
		s.Access(b)
	}
	if s.Misses(4) != 100 {
		t.Fatalf("all-cold trace misses = %d, want 100", s.Misses(4))
	}
	if s.MissRatio(4) != 1.0 {
		t.Fatalf("cold miss ratio = %v", s.MissRatio(4))
	}
}

func TestRepeatedBlockHitsEverywhere(t *testing.T) {
	s := MustNew(4, 4)
	for i := 0; i < 100; i++ {
		s.Access(42)
	}
	if s.Misses(1) != 1 {
		t.Fatalf("single hot block misses = %d, want 1", s.Misses(1))
	}
}

func TestMissRatiosCurveShape(t *testing.T) {
	// Cyclic scan of W blocks through one set: with assoc >= W it fits
	// (only cold misses); with assoc < W LRU thrashes (100% misses).
	const W = 6
	s := MustNew(1, 8)
	for round := 0; round < 50; round++ {
		for b := uint64(0); b < W; b++ {
			s.Access(b)
		}
	}
	ratios := s.MissRatios()
	for a := 1; a < W; a++ {
		if ratios[a-1] != 1.0 {
			t.Fatalf("assoc %d: miss ratio %v, want 1.0 (LRU thrash)", a, ratios[a-1])
		}
	}
	for a := W; a <= 8; a++ {
		if got := s.Misses(a); got != W {
			t.Fatalf("assoc %d: misses %d, want %d cold only", a, got, W)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := MustNew(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range associativity did not panic")
		}
	}()
	s.Misses(5)
}

func TestGridConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	blocks := make([]uint64, 30_000)
	for i := range blocks {
		blocks[i] = uint64(rng.Intn(1 << 14))
	}
	g, err := NewGrid([]int{16, 64, 256}, 8)
	if err != nil {
		t.Fatal(err)
	}
	g.AccessAll(blocks)
	for i, sc := range []int{16, 64, 256} {
		solo := MustNew(sc, 8)
		solo.AccessAll(blocks)
		grid := g.Simulators()[i]
		for a := 1; a <= 8; a++ {
			if grid.Misses(a) != solo.Misses(a) {
				t.Fatalf("sets=%d assoc=%d: grid %d != solo %d", sc, a, grid.Misses(a), solo.Misses(a))
			}
		}
	}
	// More sets (same assoc) should not increase misses for this workload
	// mix (uniformly spread blocks).
	sims := g.Simulators()
	for a := 1; a <= 8; a++ {
		if sims[2].Misses(a) > sims[0].Misses(a) {
			t.Fatalf("assoc %d: 256 sets misses %d > 16 sets %d", a, sims[2].Misses(a), sims[0].Misses(a))
		}
	}
}

func TestGridRejectsBadSetCount(t *testing.T) {
	if _, err := NewGrid([]int{16, 5}, 4); err == nil {
		t.Fatal("bad grid accepted")
	}
}

func BenchmarkAccess(b *testing.B) {
	s := MustNew(1024, 32)
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 22))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Access(addrs[i&(1<<16-1)])
	}
}
