package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestOptCompareRunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := OptCompareConfig{
		Models: []string{"453.povray", "401.bzip2"},
		N:      tinyN,
		Sets:   256,
		Ways:   4,
	}
	res, err := RunOptCompare(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		// OPT is a lower bound on LRU for both traces.
		if row.OPTExact > row.LRUExact+1e-9 {
			t.Fatalf("%s: OPT exact %v above LRU %v", row.Trace, row.OPTExact, row.LRUExact)
		}
		if row.OPTApprox > row.LRUApprox+1e-9 {
			t.Fatalf("%s: OPT lossy %v above LRU %v", row.Trace, row.OPTApprox, row.LRUApprox)
		}
		// Ratios are miss ratios.
		for _, v := range []float64{row.LRUExact, row.LRUApprox, row.OPTExact, row.OPTApprox} {
			if v < 0 || v > 1 {
				t.Fatalf("%s: miss ratio %v out of range", row.Trace, v)
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "OPT fidelity") {
		t.Fatal("render output malformed")
	}
}

func TestOptCompareFidelityOnStableTrace(t *testing.T) {
	tc := NewTraceCache()
	cfg := OptCompareConfig{
		Models: []string{"453.povray"},
		N:      100_000,
		Sets:   256,
		Ways:   4,
	}
	res, err := RunOptCompare(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if d := row.OPTExact - row.OPTApprox; d > 0.1 || d < -0.1 {
		t.Fatalf("OPT miss ratio distortion %v on a stable trace", d)
	}
	if d := row.LRUExact - row.LRUApprox; d > 0.1 || d < -0.1 {
		t.Fatalf("LRU miss ratio distortion %v on a stable trace", d)
	}
}
