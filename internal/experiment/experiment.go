// Package experiment regenerates every table and figure of the paper's
// evaluation from the synthetic workload suite. It is the shared harness
// behind cmd/atcbench and the module's top-level benchmarks: each
// experiment has a Run function returning a structured result and a Render
// method printing rows shaped like the paper's.
//
// Scaling: the paper's traces are 100 M – 1 G addresses; the defaults here
// are 50–500× smaller so the full suite runs in minutes, with every knob
// exported so paper-scale runs remain possible. DESIGN.md §4 maps each
// experiment to its paper counterpart; EXPERIMENTS.md records measured
// values.
package experiment

import (
	"fmt"
	"io"
	"os"
	"sync"

	"atc/internal/bytesort"
	"atc/internal/core"
	"atc/internal/trace"
	"atc/internal/workload"
	"atc/internal/xcompress"
)

// DefaultTraceLen is the scaled stand-in for the paper's 100 M-address
// traces (Table 1).
const DefaultTraceLen = 500_000

// DefaultSeed makes all experiments reproducible by default.
const DefaultSeed = 2009 // ISPASS 2009

// Workers is the chunk-compression worker count every experiment passes to
// core.Options.Workers (0 = the library default, runtime.GOMAXPROCS(0);
// 1 = synchronous). Compressed output is byte-identical for any value, so
// it only affects wall-clock time. Set it before running experiments —
// cmd/atcbench exposes it as -workers.
var Workers int

// SegmentAddrs overrides the lossless segment length for the segment-size
// sweep (RunSegmentSweep), the only experiment that compresses with the
// lossless core pipeline: when non-zero, the sweep compares the
// single-chunk baseline against exactly this segment size instead of its
// default size ladder (negative = the legacy v1 single-chunk layout, a
// no-op comparison). All other experiments compress lossily and ignore it.
// cmd/atcbench exposes it as -segment.
var SegmentAddrs int

// Archive routes every experiment's compressed traces into single-file
// .atc archives instead of directories, exercising the archive store end
// to end; BPA figures then include the archive header and table of
// contents, so a large divergence from the directory numbers would flag
// container overhead. cmd/atcbench exposes it as -archive.
var Archive bool

// tempTrace returns a fresh destination path for one compressed trace —
// a temp directory or, when Archive is set, an empty temp .atc file that
// the archive writer adopts. os.RemoveAll on the returned path cleans up
// either layout.
func tempTrace(pattern string) (string, error) {
	if !Archive {
		return os.MkdirTemp("", pattern)
	}
	f, err := os.CreateTemp("", pattern+"-*.atc")
	if err != nil {
		return "", err
	}
	return f.Name(), f.Close()
}

// writeTrace compresses addrs at path in the layout tempTrace chose for
// it, threading the experiment-wide Archive knob into opts.
func writeTrace(path string, addrs []uint64, opts core.Options) (core.Stats, error) {
	opts.Archive = Archive
	return core.WriteTrace(path, addrs, opts)
}

// TraceCache memoises generated traces so multi-column experiments
// generate each workload once. It is safe for concurrent use.
type TraceCache struct {
	mu sync.Mutex
	m  map[string][]uint64
}

// NewTraceCache returns an empty cache.
func NewTraceCache() *TraceCache {
	return &TraceCache{m: map[string][]uint64{}}
}

// Get returns the filtered trace for a model, generating it on first use.
func (tc *TraceCache) Get(model string, n int, seed uint64) ([]uint64, error) {
	key := fmt.Sprintf("%s/%d/%d", model, n, seed)
	tc.mu.Lock()
	if addrs, ok := tc.m[key]; ok {
		tc.mu.Unlock()
		return addrs, nil
	}
	tc.mu.Unlock()
	addrs, err := workload.GenerateFiltered(model, n, seed)
	if err != nil {
		return nil, err
	}
	tc.mu.Lock()
	tc.m[key] = addrs
	tc.mu.Unlock()
	return addrs, nil
}

// ModelNames lists the full 22-model suite in paper order.
func ModelNames() []string {
	models := workload.Models()
	names := make([]string, len(models))
	for i, m := range models {
		names[i] = m.Name
	}
	return names
}

// countingWriter counts compressed output bytes.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// bpa converts a compressed size to bits per address.
func bpa(bytes int64, addrs int) float64 {
	if addrs == 0 {
		return 0
	}
	return float64(bytes*8) / float64(addrs)
}

// CompressRawSize compresses the little-endian encoding of a trace with a
// back end and returns the compressed size (the Table 1 "bz2" column).
func CompressRawSize(addrs []uint64, backend string) (int64, error) {
	b, err := xcompress.Lookup(backend)
	if err != nil {
		return 0, err
	}
	var cw countingWriter
	w, err := b.NewWriter(&cw)
	if err != nil {
		return 0, err
	}
	tw := trace.NewWriter(w)
	if err := tw.WriteSlice(addrs); err != nil {
		return 0, err
	}
	if err := tw.Flush(); err != nil {
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return cw.n, nil
}

// CompressBytesort compresses a trace through the bytesort (or unshuffle)
// transformation into a back end and returns the compressed bytes.
func CompressBytesort(addrs []uint64, bufAddrs int, mode bytesort.Mode, backend string) ([]byte, error) {
	b, err := xcompress.Lookup(backend)
	if err != nil {
		return nil, err
	}
	var sink appendWriter
	w, err := b.NewWriter(&sink)
	if err != nil {
		return nil, err
	}
	enc := bytesort.NewEncoderMode(w, bufAddrs, mode)
	if err := enc.WriteSlice(addrs); err != nil {
		return nil, err
	}
	if err := enc.Close(); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return sink.b, nil
}

// DecompressBytesort decodes a CompressBytesort stream.
func DecompressBytesort(data []byte, mode bytesort.Mode, backend string) ([]uint64, error) {
	b, err := xcompress.Lookup(backend)
	if err != nil {
		return nil, err
	}
	r, err := b.NewReader(newSliceReader(data))
	if err != nil {
		return nil, err
	}
	return bytesort.NewDecoderMode(r, mode).ReadAll()
}

// DrainBackend runs only the back-end decompression of a stream, returning
// the number of decompressed bytes (for back-end cost attribution).
func DrainBackend(data []byte, backend string) (int64, error) {
	b, err := xcompress.Lookup(backend)
	if err != nil {
		return 0, err
	}
	r, err := b.NewReader(newSliceReader(data))
	if err != nil {
		return 0, err
	}
	return io.Copy(io.Discard, r)
}

type appendWriter struct{ b []byte }

func (a *appendWriter) Write(p []byte) (int, error) {
	a.b = append(a.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b []byte
	i int
}

func newSliceReader(b []byte) *sliceReader { return &sliceReader{b: b} }

func (s *sliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

func (s *sliceReader) ReadByte() (byte, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	b := s.b[s.i]
	s.i++
	return b, nil
}

// Footprint counts distinct addresses in a trace.
func Footprint(addrs []uint64) int {
	seen := make(map[uint64]struct{}, len(addrs)/4+16)
	for _, a := range addrs {
		seen[a] = struct{}{}
	}
	return len(seen)
}

// shortName trims "400.perlbench" to "400" for paper-style rows.
func shortName(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}
