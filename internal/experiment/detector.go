package experiment

import (
	"fmt"
	"io"

	"atc/internal/histogram"
	"atc/internal/phase"
	"atc/internal/signature"
)

// DetectorCompareConfig parameterises the phase-detector ablation: the
// paper's sorted byte-histograms versus classic working-set signatures
// (Dhodapkar & Smith) as the online interval-matching criterion.
//
// The decisive scenario is a program whose phases recur in *different
// memory regions* (the myopic-interval discussion of §5): sorted
// histograms are region-invariant and match them (translation repairs the
// addresses); working-set signatures hash block identities and see
// nothing to reuse.
type DetectorCompareConfig struct {
	Models        []string // default: a 6-model subset spanning the spectrum
	N             int
	IntervalLen   int
	Epsilon       float64 // histogram threshold; default 0.1
	SigThreshold  float64 // signature threshold; default 0.5
	SignatureBits int     // default 16384
	Seed          uint64
}

func (c *DetectorCompareConfig) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = []string{
			"403.gcc", "429.mcf", "453.povray", "462.libquantum", "471.omnetpp", "482.sphinx3",
		}
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.SigThreshold <= 0 {
		c.SigThreshold = 0.5
	}
	if c.SignatureBits <= 0 {
		c.SignatureBits = 16384
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// DetectorCompareRow is one trace's detector comparison.
type DetectorCompareRow struct {
	Trace string
	// Chunks created by each detector (fewer = more reuse found).
	HistChunks int
	SigChunks  int
	// Mean post-hoc sorted-histogram distance of the matches each detector
	// accepted (lower = the accepted matches really were similar in the
	// sense that matters for replay fidelity).
	HistMatchQuality float64
	SigMatchQuality  float64
}

// DetectorCompareResult holds all rows.
type DetectorCompareResult struct {
	Config DetectorCompareConfig
	Rows   []DetectorCompareRow
}

// RunDetectorCompare drives both detectors over the same interval stream.
func RunDetectorCompare(cfg DetectorCompareConfig, tc *TraceCache) (*DetectorCompareResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &DetectorCompareResult{Config: cfg}
	for _, model := range cfg.Models {
		addrs, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := DetectorCompareRow{Trace: model}

		histTab := phase.New(0, cfg.Epsilon)
		sigTab := signature.NewTable(0, cfg.SigThreshold)
		// Keep each chunk's histograms for post-hoc match-quality scoring
		// on both sides.
		chunkHists := map[int]*histogram.Set{}

		histNext, sigNext := 1, 1
		var histDists, sigDists []float64
		L := cfg.IntervalLen
		for start := 0; start+L <= len(addrs); start += L {
			interval := addrs[start : start+L]
			h := histogram.Compute(interval)
			sig := signature.MustNew(cfg.SignatureBits)
			sig.AddSlice(interval)

			if id, _, ok := histTab.Match(h); ok {
				histDists = append(histDists, histogram.Distance(chunkHists[id], h))
			} else {
				histTab.Insert(histNext, h)
				chunkHists[histNext] = h
				histNext++
				row.HistChunks++
			}
			if id, _, ok := sigTab.Match(sig); ok {
				if ch, ok := chunkHists[-id]; ok {
					sigDists = append(sigDists, histogram.Distance(ch, h))
				}
			} else {
				sigTab.Insert(sigNext, sig)
				// Store the signature-chunk's histograms under a negative
				// key so the two detectors' IDs cannot collide in the map.
				chunkHists[-sigNext] = h
				sigNext++
				row.SigChunks++
			}
		}
		row.HistMatchQuality = mean(histDists)
		row.SigMatchQuality = mean(sigDists)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Render prints the comparison.
func (r *DetectorCompareResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Phase-detector ablation: sorted byte-histograms (paper) vs working-set signatures\n")
	fmt.Fprintf(w, "  N=%d, L=%d, eps=%.2f, sig threshold=%.2f\n",
		r.Config.N, r.Config.IntervalLen, r.Config.Epsilon, r.Config.SigThreshold)
	fmt.Fprintf(w, "%-16s %12s %12s %14s %14s\n",
		"trace", "hist chunks", "sig chunks", "hist quality", "sig quality")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %12d %12d %14.4f %14.4f\n",
			row.Trace, row.HistChunks, row.SigChunks, row.HistMatchQuality, row.SigMatchQuality)
	}
	fmt.Fprintf(w, "(fewer chunks = more reuse; quality = mean histogram distance of accepted matches)\n")
}
