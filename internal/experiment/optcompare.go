package experiment

import (
	"fmt"
	"io"

	"atc/internal/cheetah"
	"atc/internal/opt"
)

// OptCompareConfig parameterises the OPT-fidelity extension: the paper
// verifies that lossy traces preserve LRU miss ratios (Figure 3); this
// experiment additionally checks Belady/OPT miss ratios — the metric the
// Cheetah simulator the paper uses was originally built for — and the
// LRU/OPT gap, which cache-replacement studies read off such traces.
type OptCompareConfig struct {
	Models      []string // default: a 4-model subset
	N           int
	IntervalLen int
	BufferAddrs int
	Epsilon     float64
	Backend     string
	Seed        uint64
	Sets        int // default 1024
	Ways        int // default 8
}

func (c *OptCompareConfig) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = []string{"401.bzip2", "429.mcf", "453.povray", "464.h264ref"}
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Sets <= 0 {
		c.Sets = 1024
	}
	if c.Ways <= 0 {
		c.Ways = 8
	}
}

// OptCompareRow is one trace's LRU and OPT miss ratios, exact vs lossy.
type OptCompareRow struct {
	Trace               string
	LRUExact, LRUApprox float64
	OPTExact, OPTApprox float64
}

// OptCompareResult holds all rows.
type OptCompareResult struct {
	Config OptCompareConfig
	Rows   []OptCompareRow
}

// RunOptCompare simulates both replacement policies on both traces.
func RunOptCompare(cfg OptCompareConfig, tc *TraceCache) (*OptCompareResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &OptCompareResult{Config: cfg}
	for _, model := range cfg.Models {
		exact, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		approx, _, _, err := lossyRoundTrip(exact, cfg.IntervalLen, cfg.BufferAddrs, cfg.Epsilon, cfg.Backend, false)
		if err != nil {
			return nil, fmt.Errorf("optcompare %s: %w", model, err)
		}
		row := OptCompareRow{Trace: model}
		for _, v := range []struct {
			addrs []uint64
			lru   *float64
			optr  *float64
		}{
			{exact, &row.LRUExact, &row.OPTExact},
			{approx, &row.LRUApprox, &row.OPTApprox},
		} {
			lru := cheetah.MustNew(cfg.Sets, cfg.Ways)
			lru.AccessAll(v.addrs)
			*v.lru = lru.MissRatio(cfg.Ways)
			o, err := opt.SimulateSetAssociative(v.addrs, cfg.Sets, cfg.Ways)
			if err != nil {
				return nil, err
			}
			*v.optr = o.MissRatio()
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the comparison.
func (r *OptCompareResult) Render(w io.Writer) {
	fmt.Fprintf(w, "OPT fidelity extension: LRU and Belady/OPT miss ratios, exact vs lossy\n")
	fmt.Fprintf(w, "  cache: %d sets x %d ways; N=%d, L=%d, eps=%.2f\n",
		r.Config.Sets, r.Config.Ways, r.Config.N, r.Config.IntervalLen, r.Config.Epsilon)
	fmt.Fprintf(w, "%-16s %10s %10s %10s %10s %10s\n",
		"trace", "LRU exact", "LRU lossy", "OPT exact", "OPT lossy", "gap kept")
	for _, row := range r.Rows {
		gapExact := row.LRUExact - row.OPTExact
		gapApprox := row.LRUApprox - row.OPTApprox
		kept := "yes"
		if (gapExact-gapApprox) > 0.1 || (gapApprox-gapExact) > 0.1 {
			kept = "no"
		}
		fmt.Fprintf(w, "%-16s %10.4f %10.4f %10.4f %10.4f %10s\n",
			row.Trace, row.LRUExact, row.LRUApprox, row.OPTExact, row.OPTApprox, kept)
	}
}
