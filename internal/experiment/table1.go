package experiment

import (
	"fmt"
	"io"
	"time"

	"atc/internal/bytesort"
	"atc/internal/vpc"
)

// Table1Config parameterises the Table 1 reproduction (bits per address of
// five lossless compressors over the 22-trace suite).
//
// Paper parameters: 100 M addresses per trace, small bytesort B = 1 M,
// big bytesort B = 10 M, TCgen tables 2^20 lines (232 MB). The scaled
// defaults keep the paper's ratios: B_small = N/100, B_big = N/10, and
// TCgen table bits sized to a comparable memory budget.
type Table1Config struct {
	Models    []string // default: all 22
	N         int      // addresses per trace; default DefaultTraceLen
	SmallBuf  int      // small bytesort buffer; default N/100
	BigBuf    int      // big bytesort buffer; default N/10
	TCgenBits int      // VPC table bits; default 16
	Backend   string   // default "bsc"
	Seed      uint64   // default DefaultSeed
}

func (c *Table1Config) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = ModelNames()
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.SmallBuf <= 0 {
		c.SmallBuf = c.N / 100
		if c.SmallBuf < 1 {
			c.SmallBuf = 1
		}
	}
	if c.BigBuf <= 0 {
		c.BigBuf = c.N / 10
		if c.BigBuf < 1 {
			c.BigBuf = 1
		}
	}
	if c.TCgenBits <= 0 {
		// Match the predictor-table memory to the big bytesort's working
		// memory, as the paper does ("matches approximately the amount of
		// memory used by the big bytesort"): bytesort uses ~17 bytes per
		// buffered address, the VPC bank 88 bytes per table line.
		want := int64(c.BigBuf) * 17 / 88
		bits := 12
		for int64(1)<<uint(bits+1) <= want && bits < 20 {
			bits++
		}
		c.TCgenBits = bits
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Table1Row holds one trace's bits-per-address results, one per column of
// the paper's Table 1.
type Table1Row struct {
	Trace     string
	Bz2       float64 // back end alone
	Unshuffle float64 // byte-unshuffling + back end
	TCgen     float64 // VPC/TCgen-style predictor compressor
	BSSmall   float64 // bytesort, small buffer
	BSBig     float64 // bytesort, big buffer
}

// Table1Result is the full table plus configuration echo.
type Table1Result struct {
	Config Table1Config
	Rows   []Table1Row
	Mean   Table1Row // arithmetic mean row

	// Artifacts for Table 2: compressed blobs per trace.
	tcgBlobs map[string][]byte
	bs1Blobs map[string][]byte
	bs10Blob map[string][]byte
}

// RunTable1 generates the suite and measures every column.
func RunTable1(cfg Table1Config, tc *TraceCache) (*Table1Result, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &Table1Result{
		Config:   cfg,
		tcgBlobs: map[string][]byte{},
		bs1Blobs: map[string][]byte{},
		bs10Blob: map[string][]byte{},
	}
	for _, model := range cfg.Models {
		addrs, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := Table1Row{Trace: model}

		rawSize, err := CompressRawSize(addrs, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("table1 %s bz2: %w", model, err)
		}
		row.Bz2 = bpa(rawSize, len(addrs))

		usBlob, err := CompressBytesort(addrs, cfg.BigBuf, bytesort.Unshuffle, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("table1 %s unshuffle: %w", model, err)
		}
		row.Unshuffle = bpa(int64(len(usBlob)), len(addrs))

		tcgBlob, err := vpc.Compress(addrs, vpc.Config{TableBits: cfg.TCgenBits, Backend: cfg.Backend})
		if err != nil {
			return nil, fmt.Errorf("table1 %s tcgen: %w", model, err)
		}
		row.TCgen = bpa(int64(len(tcgBlob)), len(addrs))
		res.tcgBlobs[model] = tcgBlob

		bs1Blob, err := CompressBytesort(addrs, cfg.SmallBuf, bytesort.Sorted, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("table1 %s bs-small: %w", model, err)
		}
		row.BSSmall = bpa(int64(len(bs1Blob)), len(addrs))
		res.bs1Blobs[model] = bs1Blob

		bs10Blob, err := CompressBytesort(addrs, cfg.BigBuf, bytesort.Sorted, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("table1 %s bs-big: %w", model, err)
		}
		row.BSBig = bpa(int64(len(bs10Blob)), len(addrs))
		res.bs10Blob[model] = bs10Blob

		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.Mean.Bz2 += r.Bz2 / n
		res.Mean.Unshuffle += r.Unshuffle / n
		res.Mean.TCgen += r.TCgen / n
		res.Mean.BSSmall += r.BSSmall / n
		res.Mean.BSBig += r.BSBig / n
	}
	res.Mean.Trace = "arith. mean"
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1: bits per address (smaller is better)\n")
	fmt.Fprintf(w, "  traces: %d x %d addresses, backend=%s, B_small=%d, B_big=%d, tcgen 2^%d lines\n",
		len(r.Rows), r.Config.N, r.Config.Backend, r.Config.SmallBuf, r.Config.BigBuf, r.Config.TCgenBits)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s\n", "trace", "bz2", "us", "tcg", "bs1", "bs10")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
			row.Trace, row.Bz2, row.Unshuffle, row.TCgen, row.BSSmall, row.BSBig)
	}
	fmt.Fprintf(w, "%-16s %8.3f %8.3f %8.3f %8.3f %8.3f\n",
		r.Mean.Trace, r.Mean.Bz2, r.Mean.Unshuffle, r.Mean.TCgen, r.Mean.BSSmall, r.Mean.BSBig)
}

// Table2Result reports decompression throughput, one row per compressor,
// in the shape of the paper's Table 2.
type Table2Result struct {
	Config Table1Config
	Rows   []Table2Row
}

// Table2Row is one decompressor's totals over the suite.
type Table2Row struct {
	Name           string
	TotalTime      time.Duration
	BackendTime    time.Duration // time spent in the byte-level back end alone
	AddrsPerSecond float64
}

// RunTable2 measures decompression speed using the artifacts of a Table 1
// run (which it performs if not supplied).
func RunTable2(cfg Table1Config, t1 *Table1Result, tc *TraceCache) (*Table2Result, error) {
	cfg.fillDefaults()
	if t1 == nil {
		var err error
		t1, err = RunTable1(cfg, tc)
		if err != nil {
			return nil, err
		}
	}
	res := &Table2Result{Config: t1.Config}
	totalAddrs := int64(0)
	for range t1.Config.Models {
		totalAddrs += int64(t1.Config.N)
	}

	// TCgen-style decompression.
	var tcgTotal, tcgBackend time.Duration
	for _, model := range t1.Config.Models {
		blob := t1.tcgBlobs[model]
		start := time.Now()
		if _, err := vpc.Decompress(blob); err != nil {
			return nil, fmt.Errorf("table2 tcg %s: %w", model, err)
		}
		tcgTotal += time.Since(start)
		start = time.Now()
		if _, _, err := vpc.DecompressStreams(blob); err != nil {
			return nil, err
		}
		tcgBackend += time.Since(start)
	}
	res.Rows = append(res.Rows, Table2Row{
		Name: "TCgen", TotalTime: tcgTotal, BackendTime: tcgBackend,
		AddrsPerSecond: float64(totalAddrs) / tcgTotal.Seconds(),
	})

	for _, v := range []struct {
		name  string
		blobs map[string][]byte
	}{
		{"bytesort small", t1.bs1Blobs},
		{"bytesort big", t1.bs10Blob},
	} {
		var total, backend time.Duration
		for _, model := range t1.Config.Models {
			blob := v.blobs[model]
			start := time.Now()
			addrs, err := DecompressBytesort(blob, bytesort.Sorted, t1.Config.Backend)
			if err != nil {
				return nil, fmt.Errorf("table2 %s %s: %w", v.name, model, err)
			}
			if len(addrs) != t1.Config.N {
				return nil, fmt.Errorf("table2 %s %s: decoded %d addrs", v.name, model, len(addrs))
			}
			total += time.Since(start)
			start = time.Now()
			if _, err := DrainBackend(blob, t1.Config.Backend); err != nil {
				return nil, err
			}
			backend += time.Since(start)
		}
		res.Rows = append(res.Rows, Table2Row{
			Name: v.name, TotalTime: total, BackendTime: backend,
			AddrsPerSecond: float64(totalAddrs) / total.Seconds(),
		})
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: decompression of the %d traces\n", len(r.Config.Models))
	fmt.Fprintf(w, "%-16s %14s %16s %16s\n", "decompressor", "total time", "backend contrib", "addr/second")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %14s %16s %13.2e\n",
			row.Name, row.TotalTime.Round(time.Millisecond),
			row.BackendTime.Round(time.Millisecond), row.AddrsPerSecond)
	}
}
