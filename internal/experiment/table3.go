package experiment

import (
	"fmt"
	"io"
	"os"

	"atc/internal/bytesort"
	"atc/internal/core"
)

// Table3Config parameterises the lossless-vs-lossy comparison of the
// paper's Table 3 (1 G-address traces, L = 10 M, ε = 0.1 in the paper; the
// scaled defaults keep 100 intervals per trace).
type Table3Config struct {
	Models      []string
	N           int     // addresses per trace; default 4*DefaultTraceLen
	IntervalLen int     // default N/20 (see fillDefaults for the scaling note)
	BufferAddrs int     // chunk bytesort buffer; default IntervalLen/10
	Epsilon     float64 // default 0.1
	Backend     string  // default "bsc"
	Seed        uint64
}

func (c *Table3Config) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = ModelNames()
	}
	if c.N <= 0 {
		c.N = 4 * DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		// The paper uses L = N/100 at N = 1 G (L = 10 M). At laptop scale
		// that ratio would push L below the sorted-histogram sampling-noise
		// floor (E[d] ≈ 18/sqrt(L), which must stay well under ε): default
		// to N/20 instead. Paper-scale runs can pass IntervalLen = N/100.
		c.IntervalLen = c.N / 20
		if c.IntervalLen < 1 {
			c.IntervalLen = 1
		}
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Table3Row is one trace's lossless and lossy bits per address.
type Table3Row struct {
	Trace      string
	Lossless   float64
	Lossy      float64
	Chunks     int64
	Imitations int64
}

// Table3Result is the full comparison.
type Table3Result struct {
	Config       Table3Config
	Rows         []Table3Row
	MeanLossless float64
	MeanLossy    float64
}

// RunTable3 compresses each trace both ways and reports BPA.
func RunTable3(cfg Table3Config, tc *TraceCache) (*Table3Result, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &Table3Result{Config: cfg}
	for _, model := range cfg.Models {
		addrs, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		row := Table3Row{Trace: model}

		// Lossless: bytesort with the small buffer, as in the paper.
		blob, err := CompressBytesort(addrs, cfg.BufferAddrs, bytesort.Sorted, cfg.Backend)
		if err != nil {
			return nil, fmt.Errorf("table3 %s lossless: %w", model, err)
		}
		row.Lossless = bpa(int64(len(blob)), len(addrs))

		// Lossy: the full ATC pipeline into a directory.
		dir, err := tempTrace("atc-table3")
		if err != nil {
			return nil, err
		}
		stats, err := writeTrace(dir, addrs, core.Options{
			Workers:     Workers,
			Mode:        core.Lossy,
			Backend:     cfg.Backend,
			IntervalLen: cfg.IntervalLen,
			BufferAddrs: cfg.BufferAddrs,
			Epsilon:     cfg.Epsilon,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("table3 %s lossy: %w", model, err)
		}
		lossyBPA, err := core.BitsPerAddress(dir, int64(len(addrs)))
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		row.Lossy = lossyBPA
		row.Chunks = stats.Chunks
		row.Imitations = stats.Imitations
		res.Rows = append(res.Rows, row)
	}
	n := float64(len(res.Rows))
	for _, r := range res.Rows {
		res.MeanLossless += r.Lossless / n
		res.MeanLossy += r.Lossy / n
	}
	return res, nil
}

// Render prints the table in the paper's layout.
func (r *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3: bits per address, lossless vs. lossy\n")
	fmt.Fprintf(w, "  traces: %d addresses, L=%d, eps=%.2f, backend=%s\n",
		r.Config.N, r.Config.IntervalLen, r.Config.Epsilon, r.Config.Backend)
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s\n", "trace", "lossless", "lossy", "chunks", "imit")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %8d %8d\n",
			row.Trace, row.Lossless, row.Lossy, row.Chunks, row.Imitations)
	}
	fmt.Fprintf(w, "%-16s %10.3f %10.3f\n", "arith. mean", r.MeanLossless, r.MeanLossy)
}
