package experiment

import (
	"bytes"
	"strings"
	"testing"

	"atc/internal/bytesort"
)

// Small sizes so the whole experiment machinery is covered in seconds.
const (
	tinyN = 30_000
)

var tinyModels = []string{"410.bwaves", "429.mcf", "453.povray"}

func tinyTable1() Table1Config {
	return Table1Config{Models: tinyModels, N: tinyN, TCgenBits: 12}
}

func TestTraceCacheMemoises(t *testing.T) {
	tc := NewTraceCache()
	a, err := tc.Get("462.libquantum", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tc.Get("462.libquantum", 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("cache returned a different slice for the same key")
	}
	if _, err := tc.Get("nope", 10, 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestModelNamesComplete(t *testing.T) {
	if len(ModelNames()) != 22 {
		t.Fatalf("ModelNames() = %d entries", len(ModelNames()))
	}
}

func TestBytesortHelpersRoundTrip(t *testing.T) {
	tc := NewTraceCache()
	addrs, err := tc.Get("429.mcf", 5000, DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []bytesort.Mode{bytesort.Sorted, bytesort.Unshuffle} {
		blob, err := CompressBytesort(addrs, 700, mode, "bsc")
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecompressBytesort(blob, mode, "bsc")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(addrs) {
			t.Fatalf("mode %d: %d addrs", mode, len(got))
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				t.Fatalf("mode %d: mismatch at %d", mode, i)
			}
		}
	}
}

func TestTable1RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	res, err := RunTable1(tinyTable1(), tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(tinyModels) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, v := range []float64{row.Bz2, row.Unshuffle, row.TCgen, row.BSSmall, row.BSBig} {
			if v <= 0 || v > 64 {
				t.Fatalf("%s: BPA %v out of range", row.Trace, v)
			}
		}
	}
	// Paper shape check on the streaming trace: bytesort should beat the
	// raw back end handily on 410.bwaves.
	for _, row := range res.Rows {
		if row.Trace == "410.bwaves" && row.BSBig >= row.Bz2 {
			t.Errorf("bwaves: bytesort %v >= raw %v; transform ineffective", row.BSBig, row.Bz2)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "arith. mean") {
		t.Fatalf("render output malformed:\n%s", out)
	}
}

func TestTable2RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	t1, err := RunTable1(tinyTable1(), tc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunTable2(tinyTable1(), t1, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 (tcgen, small, big)", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AddrsPerSecond <= 0 {
			t.Fatalf("%s: %v addr/s", row.Name, row.AddrsPerSecond)
		}
		if row.BackendTime > row.TotalTime*3 {
			t.Fatalf("%s: backend time %v implausibly larger than total %v", row.Name, row.BackendTime, row.TotalTime)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("render output malformed")
	}
}

func TestTable3RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := Table3Config{Models: []string{"462.libquantum", "403.gcc"}, N: tinyN}
	res, err := RunTable3(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Lossy <= 0 || row.Lossless <= 0 {
			t.Fatalf("%s: nonpositive BPA", row.Trace)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Table 3") {
		t.Fatal("render output malformed")
	}
}

func TestFigure3RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := Figure3Config{
		Models:    []string{"462.libquantum"},
		N:         tinyN,
		SetCounts: []int{64, 256},
		MaxAssoc:  8,
	}
	res, err := RunFigure3(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	for _, c := range res.Curves {
		if len(c.Exact) != 8 || len(c.Approx) != 8 {
			t.Fatalf("curve lengths %d/%d", len(c.Exact), len(c.Approx))
		}
		// Streaming trace at small caches: essentially all misses; and the
		// approximation must stay close.
		if c.MaxAbsError() > 0.15 {
			t.Errorf("sets=%d: max error %v too large", c.Sets, c.MaxAbsError())
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 3") {
		t.Fatal("render output malformed")
	}
}

func TestFigure4RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := Figure4Config{N: tinyN, Sets: 256, MaxAssoc: 8}
	res, err := RunFigure4(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExactFootprint <= 0 || res.TransFootprint <= 0 {
		t.Fatalf("footprints: %+v", res)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 4") {
		t.Fatal("render output malformed")
	}
}

func TestFigure5RunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := Figure5Config{Models: []string{"462.libquantum", "458.sjeng"}, N: tinyN}
	res, err := RunFigure5(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Exact.Total() != int64(tinyN) || row.Approx.Total() != int64(tinyN) {
			t.Fatalf("%s: totals %d/%d", row.Trace, row.Exact.Total(), row.Approx.Total())
		}
	}
	// The streaming trace must be overwhelmingly predictable; the random
	// one overwhelmingly not. Both must carry over to the lossy trace.
	for _, row := range res.Rows {
		_, ec, _ := row.Exact.Fractions()
		_, ac, _ := row.Approx.Fractions()
		if row.Trace == "462.libquantum" && (ec < 0.8 || ac < 0.8) {
			t.Errorf("libquantum correct fractions %v/%v; expected high", ec, ac)
		}
		if row.Trace == "458.sjeng" && (ec > 0.5 || ac > 0.5) {
			t.Errorf("sjeng correct fractions %v/%v; expected low", ec, ac)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatal("render output malformed")
	}
}

func TestFigure8RunAndRender(t *testing.T) {
	// The interval length must be large enough for the histogram sampling
	// noise of a uniform random stream to fall below ε (≈ 26/sqrt(L)), or
	// translation tables get stored and dilute the ratio. L = 200k gives
	// noise ≈ 0.06 < 0.1, like the paper's L = 10M (noise ≈ 0.008).
	cfg := Figure8Config{N: 2_000_000}
	res, err := RunFigure8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 1 {
		t.Fatalf("chunks = %d, want 1 (all random intervals look alike)", res.Chunks)
	}
	if res.Imitations != 9 {
		t.Fatalf("imitations = %d, want 9", res.Imitations)
	}
	if res.DecodedLen != int64(cfg.N) {
		t.Fatalf("decoded %d addrs", res.DecodedLen)
	}
	// Paper: compression ratio ~10 (one of ten intervals stored, random
	// data incompressible).
	if res.CompressionRatio < 8.5 || res.CompressionRatio > 11 {
		t.Fatalf("compression ratio = %v, want ~10", res.CompressionRatio)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Figure 8") {
		t.Fatal("render output malformed")
	}
}

func TestLongTraceRunAndRender(t *testing.T) {
	tc := NewTraceCache()
	cfg := LongTraceConfig{
		Model:       "462.libquantum",
		Lengths:     []int{20_000, 80_000},
		IntervalLen: 2_000,
	}
	res, err := RunLongTrace(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Whole-execution") {
		t.Fatal("render output malformed")
	}
}

func TestEpsilonSweep(t *testing.T) {
	tc := NewTraceCache()
	cfg := EpsilonSweepConfig{Model: "462.libquantum", N: tinyN, Epsilons: []float64{0.05, 0.5}}
	res, err := RunEpsilonSweep(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// A looser threshold can only reduce (or keep) the number of chunks.
	if res.Points[1].Chunks > res.Points[0].Chunks {
		t.Fatalf("chunks grew with looser eps: %d -> %d", res.Points[0].Chunks, res.Points[1].Chunks)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestIntervalSweep(t *testing.T) {
	tc := NewTraceCache()
	cfg := IntervalSweepConfig{Model: "429.mcf", N: tinyN, IntervalLens: []int{1_500, 15_000}}
	res, err := RunIntervalSweep(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.FootprintRatio < p.NoTransFootRatio-0.05 {
			t.Errorf("L=%d: translated footprint ratio %v below no-translation %v",
				p.IntervalLen, p.FootprintRatio, p.NoTransFootRatio)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestBackendCompare(t *testing.T) {
	tc := NewTraceCache()
	cfg := BackendCompareConfig{Models: []string{"410.bwaves"}, N: tinyN}
	res, err := RunBackendCompare(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Gain < 1 {
			t.Errorf("%s/%s: bytesort gain %v < 1 on a streaming trace", row.Trace, row.Backend, row.Gain)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestHistorySweep(t *testing.T) {
	tc := NewTraceCache()
	cfg := HistorySweepConfig{Model: "471.omnetpp", N: tinyN, Capacities: []int{1, 64}}
	res, err := RunHistorySweep(cfg, tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// More history can only help (fewer or equal chunks).
	if res.Points[1].Chunks > res.Points[0].Chunks {
		t.Errorf("chunks grew with larger table: %d -> %d", res.Points[0].Chunks, res.Points[1].Chunks)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}
