package experiment

import (
	"fmt"
	"io"
	"math"
	"os"

	"atc/internal/cdc"
	"atc/internal/cheetah"
	"atc/internal/core"
)

// lossyRoundTrip compresses a trace with ATC lossy mode and decodes it
// back, returning the approximate trace, the compression stats, and
// optionally the translation-disabled decode (Figure 4).
func lossyRoundTrip(addrs []uint64, intervalLen, bufferAddrs int, eps float64, backend string, alsoNoTranslation bool) (approx, noTrans []uint64, stats core.Stats, err error) {
	dir, err := tempTrace("atc-fig")
	if err != nil {
		return nil, nil, core.Stats{}, err
	}
	defer os.RemoveAll(dir)
	stats, err = writeTrace(dir, addrs, core.Options{
		Workers:     Workers,
		Mode:        core.Lossy,
		Backend:     backend,
		IntervalLen: intervalLen,
		BufferAddrs: bufferAddrs,
		Epsilon:     eps,
	})
	if err != nil {
		return nil, nil, core.Stats{}, err
	}
	approx, err = core.ReadTrace(dir)
	if err != nil {
		return nil, nil, core.Stats{}, err
	}
	if alsoNoTranslation {
		d, err2 := core.Open(dir, core.DecodeOptions{IgnoreTranslations: true})
		if err2 != nil {
			return nil, nil, core.Stats{}, err2
		}
		noTrans, err = d.DecodeAll()
		d.Close()
		if err != nil {
			return nil, nil, core.Stats{}, err
		}
	}
	return approx, noTrans, stats, nil
}

// Figure3Config parameterises the miss-ratio comparison of Figure 3.
type Figure3Config struct {
	Models      []string // default: the paper's 15-benchmark subset
	N           int      // default 2*DefaultTraceLen
	IntervalLen int      // default N/20 (kept above the histogram-noise floor)
	BufferAddrs int      // default IntervalLen/10
	Epsilon     float64  // default 0.1
	Backend     string
	Seed        uint64
	SetCounts   []int // default {512, 2048, 8192, 32768} (scaled from 2k..512k)
	MaxAssoc    int   // default 32
}

// figure3PaperSubset is the 15 benchmarks shown in the paper's Figure 3.
var figure3PaperSubset = []string{
	"400.perlbench", "401.bzip2", "410.bwaves", "429.mcf", "435.gromacs",
	"450.soplex", "453.povray", "456.hmmer", "458.sjeng", "462.libquantum",
	"464.h264ref", "470.lbm", "473.astar", "482.sphinx3", "483.xalancbmk",
}

func (c *Figure3Config) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = figure3PaperSubset
	}
	if c.N <= 0 {
		c.N = 2 * DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if len(c.SetCounts) == 0 {
		c.SetCounts = []int{512, 2048, 8192, 32768}
	}
	if c.MaxAssoc <= 0 {
		c.MaxAssoc = 32
	}
}

// Figure3Curve is one (trace, set count) miss-ratio curve pair.
type Figure3Curve struct {
	Trace  string
	Sets   int
	Exact  []float64 // miss ratio per associativity 1..MaxAssoc
	Approx []float64
}

// MaxAbsError reports the largest exact-vs-approx deviation on the curve.
func (c Figure3Curve) MaxAbsError() float64 {
	max := 0.0
	for i := range c.Exact {
		d := math.Abs(c.Exact[i] - c.Approx[i])
		if d > max {
			max = d
		}
	}
	return max
}

// Figure3Result holds all curves.
type Figure3Result struct {
	Config Figure3Config
	Curves []Figure3Curve
}

// RunFigure3 simulates exact and lossy traces across the cache grid.
func RunFigure3(cfg Figure3Config, tc *TraceCache) (*Figure3Result, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &Figure3Result{Config: cfg}
	for _, model := range cfg.Models {
		exact, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		approx, _, _, err := lossyRoundTrip(exact, cfg.IntervalLen, cfg.BufferAddrs, cfg.Epsilon, cfg.Backend, false)
		if err != nil {
			return nil, fmt.Errorf("fig3 %s: %w", model, err)
		}
		ge, err := cheetah.NewGrid(cfg.SetCounts, cfg.MaxAssoc)
		if err != nil {
			return nil, err
		}
		ga, err := cheetah.NewGrid(cfg.SetCounts, cfg.MaxAssoc)
		if err != nil {
			return nil, err
		}
		ge.AccessAll(exact)
		ga.AccessAll(approx)
		for i, sets := range cfg.SetCounts {
			res.Curves = append(res.Curves, Figure3Curve{
				Trace:  model,
				Sets:   sets,
				Exact:  ge.Simulators()[i].MissRatios(),
				Approx: ga.Simulators()[i].MissRatios(),
			})
		}
	}
	return res, nil
}

// Render prints miss-ratio series (assoc 1,2,4,8,16,32) per curve, with
// the exact/approx pairs side by side, plus the max deviation.
func (r *Figure3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 3: LRU miss ratio, exact vs approximate (lossy) traces\n")
	fmt.Fprintf(w, "  N=%d, L=%d, eps=%.2f; columns are associativities\n",
		r.Config.N, r.Config.IntervalLen, r.Config.Epsilon)
	assocs := []int{1, 2, 4, 8, 16, 32}
	fmt.Fprintf(w, "%-16s %7s %6s", "trace", "sets", "kind")
	for _, a := range assocs {
		if a <= r.Config.MaxAssoc {
			fmt.Fprintf(w, " %7s", fmt.Sprintf("a=%d", a))
		}
	}
	fmt.Fprintf(w, " %8s\n", "maxerr")
	for _, c := range r.Curves {
		fmt.Fprintf(w, "%-16s %7d %6s", shortName(c.Trace), c.Sets, "exact")
		for _, a := range assocs {
			if a <= r.Config.MaxAssoc {
				fmt.Fprintf(w, " %7.4f", c.Exact[a-1])
			}
		}
		fmt.Fprintf(w, "\n%-16s %7s %6s", "", "", "approx")
		for _, a := range assocs {
			if a <= r.Config.MaxAssoc {
				fmt.Fprintf(w, " %7.4f", c.Approx[a-1])
			}
		}
		fmt.Fprintf(w, " %8.4f\n", c.MaxAbsError())
	}
}

// Figure4Config parameterises the byte-translation ablation (trace 470,
// 256k sets in the paper).
type Figure4Config struct {
	Model       string // default "470.lbm"
	N           int
	IntervalLen int
	BufferAddrs int
	Epsilon     float64
	Backend     string
	Seed        uint64
	Sets        int // default 4096 (scaled from the paper's 256k)
	MaxAssoc    int // default 32
}

func (c *Figure4Config) fillDefaults() {
	if c.Model == "" {
		c.Model = "470.lbm"
	}
	if c.N <= 0 {
		c.N = 2 * DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.Sets <= 0 {
		c.Sets = 4096
	}
	if c.MaxAssoc <= 0 {
		c.MaxAssoc = 32
	}
}

// Figure4Result holds the three miss-ratio curves and the footprints.
type Figure4Result struct {
	Config        Figure4Config
	Exact         []float64
	Translation   []float64
	NoTranslation []float64

	ExactFootprint   int
	TransFootprint   int
	NoTransFootprint int
}

// RunFigure4 measures the impact of disabling byte translation.
func RunFigure4(cfg Figure4Config, tc *TraceCache) (*Figure4Result, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	exact, err := tc.Get(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	approx, noTrans, _, err := lossyRoundTrip(exact, cfg.IntervalLen, cfg.BufferAddrs, cfg.Epsilon, cfg.Backend, true)
	if err != nil {
		return nil, err
	}
	res := &Figure4Result{
		Config:           cfg,
		ExactFootprint:   Footprint(exact),
		TransFootprint:   Footprint(approx),
		NoTransFootprint: Footprint(noTrans),
	}
	for _, tr := range []struct {
		addrs []uint64
		out   *[]float64
	}{
		{exact, &res.Exact},
		{approx, &res.Translation},
		{noTrans, &res.NoTranslation},
	} {
		sim := cheetah.MustNew(cfg.Sets, cfg.MaxAssoc)
		sim.AccessAll(tr.addrs)
		*tr.out = sim.MissRatios()
	}
	return res, nil
}

// Render prints the three curves.
func (r *Figure4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 4: impact of disabling byte translation on trace %s (%d sets)\n",
		r.Config.Model, r.Config.Sets)
	fmt.Fprintf(w, "  footprints: exact=%d translated=%d no-translation=%d distinct blocks\n",
		r.ExactFootprint, r.TransFootprint, r.NoTransFootprint)
	assocs := []int{1, 2, 4, 8, 16, 32}
	fmt.Fprintf(w, "%-16s", "curve")
	for _, a := range assocs {
		if a <= r.Config.MaxAssoc {
			fmt.Fprintf(w, " %7s", fmt.Sprintf("a=%d", a))
		}
	}
	fmt.Fprintln(w)
	rows := []struct {
		name string
		data []float64
	}{
		{"exact", r.Exact},
		{"translation", r.Translation},
		{"no translation", r.NoTranslation},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-16s", row.name)
		for _, a := range assocs {
			if a <= r.Config.MaxAssoc {
				fmt.Fprintf(w, " %7.4f", row.data[a-1])
			}
		}
		fmt.Fprintln(w)
	}
}

// Figure5Config parameterises the C/DC predictor comparison.
type Figure5Config struct {
	Models      []string // default: all 22
	N           int
	IntervalLen int
	BufferAddrs int
	Epsilon     float64
	Backend     string
	Seed        uint64
}

func (c *Figure5Config) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = ModelNames()
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Figure5Row is one trace's predictor outcome shares, exact vs lossy.
type Figure5Row struct {
	Trace  string
	Exact  cdc.Counts
	Approx cdc.Counts
}

// Figure5Result holds all rows.
type Figure5Result struct {
	Config Figure5Config
	Rows   []Figure5Row
}

// RunFigure5 runs the C/DC predictor over exact and lossy traces.
func RunFigure5(cfg Figure5Config, tc *TraceCache) (*Figure5Result, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &Figure5Result{Config: cfg}
	for _, model := range cfg.Models {
		exact, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		approx, _, _, err := lossyRoundTrip(exact, cfg.IntervalLen, cfg.BufferAddrs, cfg.Epsilon, cfg.Backend, false)
		if err != nil {
			return nil, fmt.Errorf("fig5 %s: %w", model, err)
		}
		pe := cdc.MustNew(cdc.PaperConfig)
		pe.AccessAll(exact)
		pa := cdc.MustNew(cdc.PaperConfig)
		pa.AccessAll(approx)
		res.Rows = append(res.Rows, Figure5Row{Trace: model, Exact: pe.Counts(), Approx: pa.Counts()})
	}
	return res, nil
}

// Render prints outcome percentages, exact vs lossy, per trace.
func (r *Figure5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: C/DC address predictor, exact vs lossy traces\n")
	fmt.Fprintf(w, "  percentages of non-predicted / correct / incorrect addresses\n")
	fmt.Fprintf(w, "%-16s  %-23s  %-23s\n", "trace", "exact (np/cor/inc)", "lossy (np/cor/inc)")
	for _, row := range r.Rows {
		en, ec, ei := row.Exact.Fractions()
		an, ac, ai := row.Approx.Fractions()
		fmt.Fprintf(w, "%-16s  %6.1f%% %6.1f%% %6.1f%%  %6.1f%% %6.1f%% %6.1f%%\n",
			shortName(row.Trace), 100*en, 100*ec, 100*ei, 100*an, 100*ac, 100*ai)
	}
}

// Figure8Config parameterises the random-trace demonstration.
type Figure8Config struct {
	N           int // default DefaultTraceLen (paper: 100 M)
	IntervalLen int // default N/10 (paper: 10 M -> 10 intervals)
	BufferAddrs int
	Backend     string
	Seed        uint64
}

func (c *Figure8Config) fillDefaults() {
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 10
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// Figure8Result reports the compression of a purely random 64-bit stream.
type Figure8Result struct {
	Config           Figure8Config
	Chunks           int64
	Imitations       int64
	CompressedBytes  int64
	RawBytes         int64
	CompressionRatio float64
	DecodedLen       int64
}

// RunFigure8 reproduces the urandom demonstration: all intervals of a
// stationary random stream look like the first, so a single chunk is
// stored and the compression ratio approaches N / L.
func RunFigure8(cfg Figure8Config) (*Figure8Result, error) {
	cfg.fillDefaults()
	rng := newFig8RNG(cfg.Seed)
	addrs := make([]uint64, cfg.N)
	for i := range addrs {
		addrs[i] = rng.next()
	}
	dir, err := tempTrace("atc-fig8")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	stats, err := writeTrace(dir, addrs, core.Options{
		Workers:     Workers,
		Mode:        core.Lossy,
		Backend:     cfg.Backend,
		IntervalLen: cfg.IntervalLen,
		BufferAddrs: cfg.BufferAddrs,
	})
	if err != nil {
		return nil, err
	}
	size, err := core.StoreSize(dir)
	if err != nil {
		return nil, err
	}
	decoded, err := core.ReadTrace(dir)
	if err != nil {
		return nil, err
	}
	raw := int64(cfg.N) * 8
	return &Figure8Result{
		Config:           cfg,
		Chunks:           stats.Chunks,
		Imitations:       stats.Imitations,
		CompressedBytes:  size,
		RawBytes:         raw,
		CompressionRatio: float64(raw) / float64(size),
		DecodedLen:       int64(len(decoded)),
	}, nil
}

// Render prints the Figure 8 style summary.
func (r *Figure8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Figure 8: lossy compression of %d random 64-bit values (L=%d)\n",
		r.Config.N, r.Config.IntervalLen)
	fmt.Fprintf(w, "  chunks stored:     %d\n", r.Chunks)
	fmt.Fprintf(w, "  imitations:        %d\n", r.Imitations)
	fmt.Fprintf(w, "  raw bytes:         %d\n", r.RawBytes)
	fmt.Fprintf(w, "  compressed bytes:  %d\n", r.CompressedBytes)
	fmt.Fprintf(w, "  compression ratio: %.2f (paper: ~10 with 10 intervals)\n", r.CompressionRatio)
	fmt.Fprintf(w, "  decoded length:    %d (must equal N)\n", r.DecodedLen)
}

// fig8RNG is a local splitmix64 so the experiment package does not depend
// on the workload package's unexported PRNG.
type fig8RNG struct{ s uint64 }

func newFig8RNG(seed uint64) *fig8RNG { return &fig8RNG{s: seed ^ 0x9E3779B97F4A7C15} }

func (r *fig8RNG) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// LongTraceConfig parameterises the whole-execution claim of §6: the lossy
// compression ratio grows with trace length on phase-stable workloads.
type LongTraceConfig struct {
	Model       string // default "482.sphinx3" (stable phases)
	Lengths     []int  // default {N, 2N, 4N} with N = DefaultTraceLen
	IntervalLen int    // default DefaultTraceLen/50
	BufferAddrs int
	Epsilon     float64
	Backend     string
	Seed        uint64
}

func (c *LongTraceConfig) fillDefaults() {
	if c.Model == "" {
		c.Model = "482.sphinx3"
	}
	if len(c.Lengths) == 0 {
		c.Lengths = []int{DefaultTraceLen, 2 * DefaultTraceLen, 4 * DefaultTraceLen}
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = DefaultTraceLen / 50
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// LongTracePoint is one (length, BPA) sample.
type LongTracePoint struct {
	N      int
	BPA    float64
	Chunks int64
}

// LongTraceResult holds the BPA-vs-length series.
type LongTraceResult struct {
	Config LongTraceConfig
	Points []LongTracePoint
}

// RunLongTrace measures lossy BPA at increasing trace lengths.
func RunLongTrace(cfg LongTraceConfig, tc *TraceCache) (*LongTraceResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &LongTraceResult{Config: cfg}
	for _, n := range cfg.Lengths {
		addrs, err := tc.Get(cfg.Model, n, cfg.Seed)
		if err != nil {
			return nil, err
		}
		dir, err := tempTrace("atc-long")
		if err != nil {
			return nil, err
		}
		stats, err := writeTrace(dir, addrs, core.Options{
			Workers:     Workers,
			Mode:        core.Lossy,
			Backend:     cfg.Backend,
			IntervalLen: cfg.IntervalLen,
			BufferAddrs: cfg.BufferAddrs,
			Epsilon:     cfg.Epsilon,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		v, err := core.BitsPerAddress(dir, int64(n))
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, LongTracePoint{N: n, BPA: v, Chunks: stats.Chunks})
	}
	return res, nil
}

// Render prints the BPA-vs-length series.
func (r *LongTraceResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Whole-execution claim (§6): lossy BPA vs trace length, model %s\n", r.Config.Model)
	fmt.Fprintf(w, "%12s %10s %8s\n", "addresses", "BPA", "chunks")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12d %10.4f %8d\n", p.N, p.BPA, p.Chunks)
	}
}
