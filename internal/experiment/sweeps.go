package experiment

import (
	"fmt"
	"io"
	"os"

	"atc/internal/bytesort"
	"atc/internal/core"
)

// EpsilonSweepConfig parameterises the ε ablation: the paper states that
// ε = 0.1 balances compression ratio against fidelity (§5.2); the sweep
// makes that trade-off measurable.
type EpsilonSweepConfig struct {
	Model       string // default "482.sphinx3"
	N           int
	IntervalLen int
	BufferAddrs int
	Epsilons    []float64 // default {0.01, 0.05, 0.1, 0.2, 0.5, 1.0}
	Backend     string
	Seed        uint64
}

func (c *EpsilonSweepConfig) fillDefaults() {
	if c.Model == "" {
		c.Model = "482.sphinx3"
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if len(c.Epsilons) == 0 {
		c.Epsilons = []float64{0.01, 0.05, 0.1, 0.2, 0.5, 1.0}
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// EpsilonPoint is one sweep sample: compression and fidelity at one ε.
type EpsilonPoint struct {
	Epsilon        float64
	BPA            float64
	Chunks         int64
	FootprintRatio float64 // decoded distinct / exact distinct (1.0 = faithful)
}

// EpsilonSweepResult holds the sweep.
type EpsilonSweepResult struct {
	Config EpsilonSweepConfig
	Points []EpsilonPoint
}

// RunEpsilonSweep measures BPA and footprint fidelity across thresholds.
func RunEpsilonSweep(cfg EpsilonSweepConfig, tc *TraceCache) (*EpsilonSweepResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	exact, err := tc.Get(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exactFoot := Footprint(exact)
	res := &EpsilonSweepResult{Config: cfg}
	for _, eps := range cfg.Epsilons {
		dir, err := tempTrace("atc-eps")
		if err != nil {
			return nil, err
		}
		stats, err := writeTrace(dir, exact, core.Options{
			Workers:     Workers,
			Mode:        core.Lossy,
			Backend:     cfg.Backend,
			IntervalLen: cfg.IntervalLen,
			BufferAddrs: cfg.BufferAddrs,
			Epsilon:     eps,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		v, err := core.BitsPerAddress(dir, int64(cfg.N))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		decoded, err := core.ReadTrace(dir)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, EpsilonPoint{
			Epsilon:        eps,
			BPA:            v,
			Chunks:         stats.Chunks,
			FootprintRatio: float64(Footprint(decoded)) / float64(exactFoot),
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *EpsilonSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Epsilon sweep on %s (N=%d, L=%d): compression vs fidelity\n",
		r.Config.Model, r.Config.N, r.Config.IntervalLen)
	fmt.Fprintf(w, "%8s %10s %8s %16s\n", "eps", "BPA", "chunks", "footprint ratio")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.3f %10.4f %8d %16.3f\n", p.Epsilon, p.BPA, p.Chunks, p.FootprintRatio)
	}
}

// IntervalSweepConfig parameterises the myopic-interval study (§5): with a
// short interval L, an unmitigated lossy compressor understates the trace
// footprint. The sweep reports the decoded footprint with and without byte
// translation across interval lengths.
type IntervalSweepConfig struct {
	Model        string // default "429.mcf" (large footprint, random-ish)
	N            int
	IntervalLens []int // default {N/200, N/100, N/50, N/20, N/10}
	BufferAddrs  int
	Epsilon      float64
	Backend      string
	Seed         uint64
}

func (c *IntervalSweepConfig) fillDefaults() {
	if c.Model == "" {
		c.Model = "429.mcf"
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if len(c.IntervalLens) == 0 {
		c.IntervalLens = []int{c.N / 200, c.N / 100, c.N / 50, c.N / 20, c.N / 10}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// IntervalPoint is one sweep sample.
type IntervalPoint struct {
	IntervalLen      int
	BPA              float64
	FootprintRatio   float64 // with translation
	NoTransFootRatio float64 // translation disabled (the myopic failure)
}

// IntervalSweepResult holds the sweep.
type IntervalSweepResult struct {
	Config IntervalSweepConfig
	Points []IntervalPoint
}

// RunIntervalSweep measures footprint fidelity across interval lengths.
func RunIntervalSweep(cfg IntervalSweepConfig, tc *TraceCache) (*IntervalSweepResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	exact, err := tc.Get(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	exactFoot := float64(Footprint(exact))
	res := &IntervalSweepResult{Config: cfg}
	for _, L := range cfg.IntervalLens {
		if L < 1 {
			continue
		}
		buf := cfg.BufferAddrs
		if buf <= 0 {
			buf = L / 10
			if buf < 1 {
				buf = 1
			}
		}
		approx, noTrans, _, err := lossyRoundTrip(exact, L, buf, cfg.Epsilon, cfg.Backend, true)
		if err != nil {
			return nil, err
		}
		dir, err := tempTrace("atc-lsweep")
		if err != nil {
			return nil, err
		}
		if _, err := writeTrace(dir, exact, core.Options{
			Workers: Workers,
			Mode:    core.Lossy, Backend: cfg.Backend,
			IntervalLen: L, BufferAddrs: buf, Epsilon: cfg.Epsilon,
		}); err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		v, err := core.BitsPerAddress(dir, int64(cfg.N))
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, IntervalPoint{
			IntervalLen:      L,
			BPA:              v,
			FootprintRatio:   float64(Footprint(approx)) / exactFoot,
			NoTransFootRatio: float64(Footprint(noTrans)) / exactFoot,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *IntervalSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Interval-length sweep on %s (N=%d): the myopic-interval problem\n",
		r.Config.Model, r.Config.N)
	fmt.Fprintf(w, "%12s %10s %18s %18s\n", "L", "BPA", "footprint(trans)", "footprint(no-tr)")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%12d %10.4f %18.3f %18.3f\n",
			p.IntervalLen, p.BPA, p.FootprintRatio, p.NoTransFootRatio)
	}
}

// BackendCompareConfig parameterises the back-end ablation: bytesort's
// gain should hold for any byte-level compressor, with the block-sorting
// back end ahead of flate.
type BackendCompareConfig struct {
	Models   []string // default: a representative 6-model subset
	N        int
	Buf      int      // bytesort buffer; default N/10
	Backends []string // default {"bsc", "flate"}
	Seed     uint64
}

func (c *BackendCompareConfig) fillDefaults() {
	if len(c.Models) == 0 {
		c.Models = []string{"403.gcc", "410.bwaves", "429.mcf", "453.povray", "462.libquantum", "473.astar"}
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.Buf <= 0 {
		c.Buf = c.N / 10
	}
	if len(c.Backends) == 0 {
		c.Backends = []string{"bsc", "flate"}
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// BackendCompareRow is one (trace, backend) pair of BPA values.
type BackendCompareRow struct {
	Trace   string
	Backend string
	RawBPA  float64 // back end alone
	SortBPA float64 // bytesort + back end
	Gain    float64 // RawBPA / SortBPA
}

// BackendCompareResult holds all rows.
type BackendCompareResult struct {
	Config BackendCompareConfig
	Rows   []BackendCompareRow
}

// RunBackendCompare measures bytesort's gain under each back end.
func RunBackendCompare(cfg BackendCompareConfig, tc *TraceCache) (*BackendCompareResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	res := &BackendCompareResult{Config: cfg}
	for _, model := range cfg.Models {
		addrs, err := tc.Get(model, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		for _, backend := range cfg.Backends {
			raw, err := CompressRawSize(addrs, backend)
			if err != nil {
				return nil, err
			}
			blob, err := CompressBytesort(addrs, cfg.Buf, bytesort.Sorted, backend)
			if err != nil {
				return nil, err
			}
			row := BackendCompareRow{
				Trace:   model,
				Backend: backend,
				RawBPA:  bpa(raw, len(addrs)),
				SortBPA: bpa(int64(len(blob)), len(addrs)),
			}
			if row.SortBPA > 0 {
				row.Gain = row.RawBPA / row.SortBPA
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render prints the comparison.
func (r *BackendCompareResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Backend ablation: bytesort gain under different byte-level back ends\n")
	fmt.Fprintf(w, "%-16s %-8s %10s %10s %8s\n", "trace", "backend", "raw BPA", "bsort BPA", "gain")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %-8s %10.3f %10.3f %8.2f\n",
			row.Trace, row.Backend, row.RawBPA, row.SortBPA, row.Gain)
	}
}

// HistorySweepConfig parameterises the phase-table capacity ablation.
type HistorySweepConfig struct {
	Model       string // default "471.omnetpp" (alternating phases)
	N           int
	IntervalLen int
	BufferAddrs int
	Capacities  []int // default {1, 2, 4, 16, 64, 256}
	Epsilon     float64
	Backend     string
	Seed        uint64
}

func (c *HistorySweepConfig) fillDefaults() {
	if c.Model == "" {
		c.Model = "471.omnetpp"
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.IntervalLen <= 0 {
		c.IntervalLen = c.N / 20
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.IntervalLen / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if len(c.Capacities) == 0 {
		c.Capacities = []int{1, 2, 4, 16, 64, 256}
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.1
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// HistoryPoint is one capacity sample.
type HistoryPoint struct {
	Capacity int
	BPA      float64
	Chunks   int64
}

// HistorySweepResult holds the sweep.
type HistorySweepResult struct {
	Config HistorySweepConfig
	Points []HistoryPoint
}

// RunHistorySweep measures the phase-table capacity's effect on chunk reuse.
func RunHistorySweep(cfg HistorySweepConfig, tc *TraceCache) (*HistorySweepResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	exact, err := tc.Get(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &HistorySweepResult{Config: cfg}
	for _, capn := range cfg.Capacities {
		dir, err := tempTrace("atc-hist")
		if err != nil {
			return nil, err
		}
		stats, err := writeTrace(dir, exact, core.Options{
			Workers:       Workers,
			Mode:          core.Lossy,
			Backend:       cfg.Backend,
			IntervalLen:   cfg.IntervalLen,
			BufferAddrs:   cfg.BufferAddrs,
			Epsilon:       cfg.Epsilon,
			TableCapacity: capn,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		v, err := core.BitsPerAddress(dir, int64(cfg.N))
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, HistoryPoint{Capacity: capn, BPA: v, Chunks: stats.Chunks})
	}
	return res, nil
}

// Render prints the sweep.
func (r *HistorySweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Phase-table capacity sweep on %s (N=%d, L=%d)\n",
		r.Config.Model, r.Config.N, r.Config.IntervalLen)
	fmt.Fprintf(w, "%10s %10s %8s\n", "capacity", "BPA", "chunks")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%10d %10.4f %8d\n", p.Capacity, p.BPA, p.Chunks)
	}
}

// SegmentSweepConfig parameterises the segmented-lossless ablation: cutting
// the lossless stream into independently compressed segments buys the lossy
// pipeline's embarrassing parallelism at a BPA cost, because every segment
// restarts the bytesort and back-end context. The sweep measures that
// capacity-vs-throughput trade across segment sizes.
type SegmentSweepConfig struct {
	Model        string // default "429.mcf"
	N            int
	BufferAddrs  int
	SegmentAddrs []int // default {-1 (single chunk), N, N/2, N/4, N/8, N/16}
	Backend      string
	Seed         uint64
}

func (c *SegmentSweepConfig) fillDefaults() {
	if c.Model == "" {
		c.Model = "429.mcf"
	}
	if c.N <= 0 {
		c.N = DefaultTraceLen
	}
	if c.BufferAddrs <= 0 {
		c.BufferAddrs = c.N / 10
		if c.BufferAddrs < 1 {
			c.BufferAddrs = 1
		}
	}
	if len(c.SegmentAddrs) == 0 {
		if SegmentAddrs != 0 {
			// An explicit -segment compares the single-chunk baseline
			// against exactly that segment size.
			c.SegmentAddrs = []int{-1, SegmentAddrs}
		} else {
			c.SegmentAddrs = []int{-1, c.N, c.N / 2, c.N / 4, c.N / 8, c.N / 16}
		}
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
}

// SegmentPoint is one sweep sample: compression at one segment size.
type SegmentPoint struct {
	SegmentAddrs int // -1 = legacy single chunk
	BPA          float64
	Chunks       int64
	Overhead     float64 // BPA / single-chunk BPA - 1
}

// SegmentSweepResult holds the sweep.
type SegmentSweepResult struct {
	Config SegmentSweepConfig
	Points []SegmentPoint
}

// RunSegmentSweep measures the lossless BPA-vs-segment-size curve. Every
// point is verified to round-trip bit exactly.
func RunSegmentSweep(cfg SegmentSweepConfig, tc *TraceCache) (*SegmentSweepResult, error) {
	cfg.fillDefaults()
	if tc == nil {
		tc = NewTraceCache()
	}
	exact, err := tc.Get(cfg.Model, cfg.N, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res := &SegmentSweepResult{Config: cfg}
	baseline := 0.0
	for _, seg := range cfg.SegmentAddrs {
		if seg == 0 {
			continue // 0 would silently mean "library default"; keep points explicit
		}
		dir, err := tempTrace("atc-segsweep")
		if err != nil {
			return nil, err
		}
		stats, err := writeTrace(dir, exact, core.Options{
			Workers:      Workers,
			Mode:         core.Lossless,
			Backend:      cfg.Backend,
			BufferAddrs:  cfg.BufferAddrs,
			SegmentAddrs: seg,
		})
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		v, err := core.BitsPerAddress(dir, int64(cfg.N))
		if err != nil {
			os.RemoveAll(dir)
			return nil, err
		}
		decoded, err := core.ReadTrace(dir)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		if len(decoded) != len(exact) {
			return nil, fmt.Errorf("experiment: segment %d: decoded %d addresses, want %d", seg, len(decoded), len(exact))
		}
		for i := range exact {
			if decoded[i] != exact[i] {
				return nil, fmt.Errorf("experiment: segment %d: lossless round trip diverges at %d", seg, i)
			}
		}
		p := SegmentPoint{SegmentAddrs: seg, BPA: v, Chunks: stats.Chunks}
		if seg < 0 {
			baseline = v
		}
		if baseline > 0 {
			p.Overhead = v/baseline - 1
		}
		res.Points = append(res.Points, p)
	}
	return res, nil
}

// Render prints the sweep.
func (r *SegmentSweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Lossless segment-size sweep on %s (N=%d): BPA cost of parallelism\n",
		r.Config.Model, r.Config.N)
	fmt.Fprintf(w, "%12s %10s %8s %10s\n", "segment", "BPA", "chunks", "overhead")
	for _, p := range r.Points {
		seg := fmt.Sprintf("%d", p.SegmentAddrs)
		if p.SegmentAddrs < 0 {
			seg = "single"
		}
		fmt.Fprintf(w, "%12s %10.4f %8d %9.2f%%\n", seg, p.BPA, p.Chunks, 100*p.Overhead)
	}
}
