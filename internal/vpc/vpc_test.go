package vpc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testCfg() Config { return Config{TableBits: 14, Backend: "bsc"} }

func roundTrip(t *testing.T, addrs []uint64, cfg Config) []byte {
	t.Helper()
	c, err := Compress(addrs, cfg)
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	got, err := Decompress(c)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("decoded %d values, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("value %d = %#x, want %#x", i, got[i], addrs[i])
		}
	}
	return c
}

func TestRoundTripEmpty(t *testing.T) {
	roundTrip(t, nil, testCfg())
}

func TestRoundTripSmall(t *testing.T) {
	roundTrip(t, []uint64{1, 2, 3, 42, 42, 42, 1 << 50}, testCfg())
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 50_000)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	roundTrip(t, addrs, testCfg())
}

func TestStridedTraceCompressesWell(t *testing.T) {
	// A constant-stride trace is perfectly predicted by DFCM after warm-up:
	// nearly all codes identical -> tiny output.
	addrs := make([]uint64, 100_000)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	c := roundTrip(t, addrs, testCfg())
	bpa := float64(len(c)*8) / float64(len(addrs))
	if bpa > 0.5 {
		t.Fatalf("strided trace BPA = %.3f, want < 0.5", bpa)
	}
}

func TestRepeatingPatternUsesFCM(t *testing.T) {
	// A repeating non-strided pattern defeats DFCM's single delta but is
	// captured by the FCM context predictors.
	pattern := []uint64{100, 7000, 42, 950, 13, 100000, 77, 3}
	addrs := make([]uint64, 80_000)
	for i := range addrs {
		addrs[i] = pattern[i%len(pattern)]
	}
	c := roundTrip(t, addrs, testCfg())
	bpa := float64(len(c)*8) / float64(len(addrs))
	if bpa > 0.5 {
		t.Fatalf("periodic trace BPA = %.3f, want < 0.5", bpa)
	}
}

func TestIncompressibleTraceFallsBackToLiterals(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	c, err := Compress(addrs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Random values: ~9 bytes/value (escape + literal), compression can't
	// help much but must not explode.
	if len(c) > len(addrs)*10 {
		t.Fatalf("random trace blew up: %d bytes for %d values", len(c), len(addrs))
	}
}

func TestBackendVariants(t *testing.T) {
	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(i % 97)
	}
	for _, backend := range []string{"bsc", "flate", "store"} {
		cfg := Config{TableBits: 12, Backend: backend}
		roundTrip(t, addrs, cfg)
	}
}

func TestCorruptStreams(t *testing.T) {
	addrs := []uint64{1, 2, 3, 4, 5}
	c, err := Compress(addrs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(c[:3]); err == nil {
		t.Fatal("truncated magic accepted")
	}
	bad := append([]byte(nil), c...)
	bad[0] = 'X'
	if _, err := Decompress(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Decompress(c[:len(c)-2]); err == nil {
		t.Fatal("truncated body accepted")
	}
}

func TestMemoryBytesMatchesPaperScale(t *testing.T) {
	// Paper: the TCgen configuration uses 232 MB. Our accounting for
	// TableBits=20: (3*3 + 2) * 8B * 1Mi = 88 MiB of table payload —
	// same order; the paper's figure includes allocator overhead and
	// auxiliary state. What matters is the knob scales 2x per bit.
	m20 := MemoryBytes(Config{TableBits: 20})
	m21 := MemoryBytes(Config{TableBits: 21})
	if m21 != 2*m20 {
		t.Fatalf("memory scaling: %d -> %d", m20, m21)
	}
	if m20 != (9+2)*8<<20 {
		t.Fatalf("m20 = %d", m20)
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	addrs := make([]uint64, 5000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1000)) * 64
	}
	c1, err := Compress(addrs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Compress(addrs, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if string(c1) != string(c2) {
		t.Fatal("compression not deterministic")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(addrs []uint64) bool {
		cfg := Config{TableBits: 10, Backend: "flate"}
		c, err := Compress(addrs, cfg)
		if err != nil {
			return false
		}
		got, err := Decompress(c)
		if err != nil {
			return false
		}
		if len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	cfg := testCfg()
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(addrs, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	addrs := make([]uint64, 1<<16)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	cfg := testCfg()
	c, err := Compress(addrs, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(addrs) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}
