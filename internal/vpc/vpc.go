// Package vpc implements a VPC/TCgen-style predictor-based trace compressor,
// the lossless baseline the paper compares bytesort against (Table 1).
//
// The compressor follows Shannon's predictor-coding scheme as used by the
// VPC family (Burtscher et al.) and the TCgen generator: encoder and
// decoder run identical banks of value predictors; when some predictor
// slot predicts the incoming value, only that slot's one-byte identifier is
// emitted, otherwise an escape code plus the 8-byte literal. The two
// resulting streams (codes and literals) are separately compressed with a
// byte-level back end, exactly like TCgen pipes its streams through bzip2.
//
// The predictor bank reproduces the paper's TCgen specification
// "DFCM3[2], FCM3[3], FCM2[3], FCM1[3]": a differential finite-context-
// method predictor of order 3 holding 2 deltas per line, and finite-
// context-method predictors of orders 3, 2, 1 holding 3 values per line,
// all with 2^TableBits lines (the paper's L2 = 1048576 = 2^20).
package vpc

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"atc/internal/xcompress"
)

// Config parameterises the compressor.
type Config struct {
	// TableBits is log2 of the per-predictor table size. The paper's
	// configuration uses 20 (1 Mi lines). Default 20.
	TableBits int
	// Backend names the byte-level compressor for the code and literal
	// streams. Default "bsc".
	Backend string
}

func (c *Config) fillDefaults() {
	if c.TableBits <= 0 {
		c.TableBits = 20
	}
	if c.Backend == "" {
		c.Backend = "bsc"
	}
}

// MemoryBytes estimates the predictor state memory for a configuration,
// mirroring the paper's "232 Mbytes of memory" accounting for TCgen.
func MemoryBytes(cfg Config) int64 {
	cfg.fillDefaults()
	lines := int64(1) << uint(cfg.TableBits)
	// FCM1,2,3: 3 values/line; DFCM3: 2 deltas/line; 8 bytes each.
	return lines*3*8*3 + lines*2*8
}

const (
	magic      = "VPC1"
	version    = 1
	escapeCode = 0xFF

	dfcmSlots = 2
	fcmSlots  = 3
	numCodes  = dfcmSlots + 3*fcmSlots // 11 predictor slots
)

// ErrCorrupt reports a malformed compressed stream.
var ErrCorrupt = errors.New("vpc: corrupt stream")

// predictorState is the shared encoder/decoder machine. All updates are
// deterministic functions of the value stream, so both sides stay in sync.
type predictorState struct {
	mask uint64
	// Value history (v1 most recent) and delta history (d1 most recent).
	v1, v2, v3 uint64
	d1, d2, d3 uint64
	warm       int // number of values seen, for history validity
	fcm1       [][fcmSlots]uint64
	fcm2       [][fcmSlots]uint64
	fcm3       [][fcmSlots]uint64
	dfcm3      [][dfcmSlots]uint64
}

func newPredictorState(tableBits int) *predictorState {
	lines := 1 << uint(tableBits)
	return &predictorState{
		mask:  uint64(lines - 1),
		fcm1:  make([][fcmSlots]uint64, lines),
		fcm2:  make([][fcmSlots]uint64, lines),
		fcm3:  make([][fcmSlots]uint64, lines),
		dfcm3: make([][dfcmSlots]uint64, lines),
	}
}

func (p *predictorState) hash1() uint64 {
	return (p.v1 * 0x9E3779B97F4A7C15) >> 16 & p.mask
}

func (p *predictorState) hash2() uint64 {
	return ((p.v1*0x9E3779B97F4A7C15 + p.v2*0xC2B2AE3D27D4EB4F) >> 16) & p.mask
}

func (p *predictorState) hash3() uint64 {
	return ((p.v1*0x9E3779B97F4A7C15 + p.v2*0xC2B2AE3D27D4EB4F + p.v3*0x165667B19E3779F9) >> 16) & p.mask
}

func (p *predictorState) hashD() uint64 {
	return ((p.d1*0x9E3779B97F4A7C15 + p.d2*0xC2B2AE3D27D4EB4F + p.d3*0x165667B19E3779F9) >> 16) & p.mask
}

// predictions fills out with the current slot predictions, in code order:
// DFCM3[0..1], FCM3[0..2], FCM2[0..2], FCM1[0..2].
func (p *predictorState) predictions(out *[numCodes]uint64) {
	d := &p.dfcm3[p.hashD()]
	out[0] = p.v1 + d[0]
	out[1] = p.v1 + d[1]
	f3 := &p.fcm3[p.hash3()]
	out[2], out[3], out[4] = f3[0], f3[1], f3[2]
	f2 := &p.fcm2[p.hash2()]
	out[5], out[6], out[7] = f2[0], f2[1], f2[2]
	f1 := &p.fcm1[p.hash1()]
	out[8], out[9], out[10] = f1[0], f1[1], f1[2]
}

// update trains every predictor with the actual value and advances the
// histories. It must be called with the same sequence of values on the
// encoding and decoding sides.
func (p *predictorState) update(x uint64) {
	delta := x - p.v1
	mruInsertD(&p.dfcm3[p.hashD()], delta)
	mruInsert(&p.fcm3[p.hash3()], x)
	mruInsert(&p.fcm2[p.hash2()], x)
	mruInsert(&p.fcm1[p.hash1()], x)
	p.v3, p.v2, p.v1 = p.v2, p.v1, x
	p.d3, p.d2, p.d1 = p.d2, p.d1, delta
	p.warm++
}

func mruInsert(line *[fcmSlots]uint64, x uint64) {
	if line[0] == x {
		return
	}
	if line[1] == x {
		line[0], line[1] = x, line[0]
		return
	}
	line[2] = line[1]
	line[1] = line[0]
	line[0] = x
}

func mruInsertD(line *[dfcmSlots]uint64, d uint64) {
	if line[0] == d {
		return
	}
	line[1] = line[0]
	line[0] = d
}

// Compress encodes a trace of 64-bit values.
func Compress(addrs []uint64, cfg Config) ([]byte, error) {
	cfg.fillDefaults()
	if _, err := xcompress.Lookup(cfg.Backend); err != nil {
		return nil, err
	}
	ps := newPredictorState(cfg.TableBits)
	codes := make([]byte, 0, len(addrs))
	lits := make([]byte, 0, len(addrs)/4*8+16)
	var preds [numCodes]uint64
	for _, x := range addrs {
		ps.predictions(&preds)
		code := byte(escapeCode)
		for i := 0; i < numCodes; i++ {
			if preds[i] == x {
				code = byte(i)
				break
			}
		}
		codes = append(codes, code)
		if code == escapeCode {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], x)
			lits = append(lits, b[:]...)
		}
		ps.update(x)
	}
	codesC, err := xcompress.CompressAll(cfg.Backend, codes)
	if err != nil {
		return nil, err
	}
	litsC, err := xcompress.CompressAll(cfg.Backend, lits)
	if err != nil {
		return nil, err
	}
	var out bytes.Buffer
	out.WriteString(magic)
	out.WriteByte(version)
	out.WriteByte(byte(cfg.TableBits))
	writeString(&out, cfg.Backend)
	writeUvarint(&out, uint64(len(addrs)))
	writeUvarint(&out, uint64(len(codesC)))
	out.Write(codesC)
	writeUvarint(&out, uint64(len(litsC)))
	out.Write(litsC)
	return out.Bytes(), nil
}

// DecompressStreams runs only the back-end decompression stage, returning
// the raw code and literal streams. It exists so experiments can attribute
// decompression time between the back end and the predictor replay, the
// way the paper's Table 2 reports bzip2's contribution.
func DecompressStreams(data []byte) (codes, lits []byte, err error) {
	r := bytes.NewReader(data)
	var m [4]byte
	if _, err := r.Read(m[:]); err != nil || string(m[:]) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if _, err := r.ReadByte(); err != nil { // version
		return nil, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	if _, err := r.ReadByte(); err != nil { // table bits
		return nil, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	backend, err := readString(r)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: bad backend name", ErrCorrupt)
	}
	if _, err := binary.ReadUvarint(r); err != nil { // count
		return nil, nil, fmt.Errorf("%w: short count", ErrCorrupt)
	}
	codesC, err := readBlock(r)
	if err != nil {
		return nil, nil, err
	}
	litsC, err := readBlock(r)
	if err != nil {
		return nil, nil, err
	}
	codes, err = xcompress.DecompressAll(backend, codesC)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: code stream: %v", ErrCorrupt, err)
	}
	lits, err = xcompress.DecompressAll(backend, litsC)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: literal stream: %v", ErrCorrupt, err)
	}
	return codes, lits, nil
}

// Decompress decodes a compressed trace.
func Decompress(data []byte) ([]uint64, error) {
	r := bytes.NewReader(data)
	var m [4]byte
	if _, err := r.Read(m[:]); err != nil || string(m[:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ver, err := r.ReadByte()
	if err != nil || ver != version {
		return nil, fmt.Errorf("%w: unsupported version", ErrCorrupt)
	}
	tb, err := r.ReadByte()
	if err != nil || tb == 0 || tb > 30 {
		return nil, fmt.Errorf("%w: bad table bits", ErrCorrupt)
	}
	backend, err := readString(r)
	if err != nil {
		return nil, fmt.Errorf("%w: bad backend name", ErrCorrupt)
	}
	count, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: short count", ErrCorrupt)
	}
	codesC, err := readBlock(r)
	if err != nil {
		return nil, err
	}
	litsC, err := readBlock(r)
	if err != nil {
		return nil, err
	}
	codes, err := xcompress.DecompressAll(backend, codesC)
	if err != nil {
		return nil, fmt.Errorf("%w: code stream: %v", ErrCorrupt, err)
	}
	lits, err := xcompress.DecompressAll(backend, litsC)
	if err != nil {
		return nil, fmt.Errorf("%w: literal stream: %v", ErrCorrupt, err)
	}
	if uint64(len(codes)) != count {
		return nil, fmt.Errorf("%w: code count %d != %d", ErrCorrupt, len(codes), count)
	}
	ps := newPredictorState(int(tb))
	out := make([]uint64, 0, count)
	var preds [numCodes]uint64
	li := 0
	for _, code := range codes {
		var x uint64
		if code == escapeCode {
			if li+8 > len(lits) {
				return nil, fmt.Errorf("%w: literal stream exhausted", ErrCorrupt)
			}
			x = binary.LittleEndian.Uint64(lits[li:])
			li += 8
		} else {
			if code >= numCodes {
				return nil, fmt.Errorf("%w: bad code %d", ErrCorrupt, code)
			}
			ps.predictions(&preds)
			x = preds[code]
		}
		ps.update(x)
		out = append(out, x)
	}
	if li != len(lits) {
		return nil, fmt.Errorf("%w: %d unused literal bytes", ErrCorrupt, len(lits)-li)
	}
	return out, nil
}

func writeUvarint(b *bytes.Buffer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	b.Write(buf[:n])
}

func writeString(b *bytes.Buffer, s string) {
	b.WriteByte(byte(len(s)))
	b.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := r.ReadByte()
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readBlock(r *bytes.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, fmt.Errorf("%w: short block length", ErrCorrupt)
	}
	if n > uint64(r.Len()) {
		return nil, fmt.Errorf("%w: block length %d exceeds remaining %d", ErrCorrupt, n, r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: short block", ErrCorrupt)
	}
	return buf, nil
}
