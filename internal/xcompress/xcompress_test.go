package xcompress

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestNamesContainsBuiltins(t *testing.T) {
	names := Names()
	want := map[string]bool{"bsc": false, "flate": false, "store": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("backend %q not registered (have %v)", n, names)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("bzip2"); err == nil {
		t.Fatal("unknown backend lookup succeeded")
	}
}

func TestRoundTripAllBackends(t *testing.T) {
	data := bytes.Repeat([]byte("backend round trip data 0123456789 "), 300)
	for _, name := range Names() {
		c, err := CompressAll(name, data)
		if err != nil {
			t.Fatalf("%s compress: %v", name, err)
		}
		d, err := DecompressAll(name, c)
		if err != nil {
			t.Fatalf("%s decompress: %v", name, err)
		}
		if !bytes.Equal(d, data) {
			t.Fatalf("%s: round trip mismatch", name)
		}
		if name != "store" && len(c) >= len(data) {
			t.Errorf("%s: repetitive data did not shrink (%d -> %d)", name, len(data), len(c))
		}
		if name == "store" && len(c) != len(data) {
			t.Errorf("store: size changed (%d -> %d)", len(data), len(c))
		}
	}
}

func TestStreamingInterface(t *testing.T) {
	data := bytes.Repeat([]byte("streaming"), 1000)
	for _, name := range Names() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		w, err := b.NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// Write in small chunks.
		for i := 0; i < len(data); i += 100 {
			end := i + 100
			if end > len(data) {
				end = len(data)
			}
			if _, err := w.Write(data[i:end]); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("%s close: %v", name, err)
		}
		r, err := b.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("%s read: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: streaming round trip mismatch", name)
		}
	}
}

func TestRegisterOverride(t *testing.T) {
	orig, err := Lookup("store")
	if err != nil {
		t.Fatal(err)
	}
	Register(fakeBackend{})
	defer Register(orig)
	b, err := Lookup("store")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.(fakeBackend); !ok {
		t.Fatal("Register did not override existing backend")
	}
}

type fakeBackend struct{}

func (fakeBackend) Name() string                                  { return "store" }
func (fakeBackend) NewWriter(w io.Writer) (io.WriteCloser, error) { return nopWriteCloser{w}, nil }
func (fakeBackend) NewReader(r io.Reader) (io.Reader, error)      { return r, nil }

func TestRoundTripProperty(t *testing.T) {
	for _, name := range []string{"bsc", "flate", "store"} {
		name := name
		f := func(data []byte) bool {
			c, err := CompressAll(name, data)
			if err != nil {
				return false
			}
			d, err := DecompressAll(name, c)
			if err != nil {
				return false
			}
			if len(data) == 0 {
				return len(d) == 0
			}
			return bytes.Equal(d, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestStatefulBackendResetEquivalence exercises every registered back end
// that advertises pooled reader state: one ResetReader re-targeted across
// a series of unrelated streams must decode each byte-identically to a
// fresh NewReader — including immediately after a mid-stream abandonment,
// which is how the decode pipeline recycles readers between chunks.
func TestStatefulBackendResetEquivalence(t *testing.T) {
	payloads := [][]byte{
		nil,
		[]byte("x"),
		bytes.Repeat([]byte("stateful reset equivalence "), 500),
		func() []byte {
			p := make([]byte, 100_000)
			for i := range p {
				p[i] = byte(i * 2654435761 >> 13)
			}
			return p
		}(),
		bytes.Repeat([]byte{0}, 64<<10),
	}
	stateful := 0
	for _, name := range Names() {
		b, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sb, ok := b.(StatefulBackend)
		if !ok {
			continue
		}
		stateful++
		var comp [][]byte
		for i, p := range payloads {
			c, err := CompressAll(name, p)
			if err != nil {
				t.Fatalf("%s compress %d: %v", name, i, err)
			}
			comp = append(comp, c)
		}
		rr, err := sb.NewResetReader(readerOf(comp[0]))
		if err != nil {
			t.Fatalf("%s: NewResetReader: %v", name, err)
		}
		for round := 0; round < 3; round++ {
			for i, c := range comp {
				if round > 0 || i > 0 {
					if err := rr.Reset(readerOf(c)); err != nil {
						t.Fatalf("%s: reset %d/%d: %v", name, round, i, err)
					}
				}
				got, err := io.ReadAll(rr)
				if err != nil {
					t.Fatalf("%s: read %d/%d: %v", name, round, i, err)
				}
				want, err := DecompressAll(name, c)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("%s: reset decode %d/%d mismatch (%d vs %d bytes)", name, round, i, len(got), len(want))
				}
			}
			// Abandon a stream partway; the next round's Reset must recover.
			if err := rr.Reset(readerOf(comp[3])); err != nil {
				t.Fatal(err)
			}
			var one [1]byte
			if _, err := rr.Read(one[:]); err != nil {
				t.Fatalf("%s: partial read: %v", name, err)
			}
		}
	}
	if stateful < 3 {
		t.Fatalf("only %d stateful back ends registered, want bsc+flate+store", stateful)
	}
}
