// Package xcompress provides a registry of byte-level compression back ends
// behind a single interface. The paper's ATC tool shells out to an external
// compressor command ("bzip2 -c", "gzip -c", …); this reproduction keeps the
// same pluggability but in-process: "bsc" is the block-sorting (bzip2-class)
// back end, "flate" is DEFLATE from the standard library (gzip-class), and
// "store" performs no compression (useful for isolating transform effects
// in ablation experiments).
package xcompress

import (
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"atc/internal/bsc"
)

// ErrUnknownBackend reports a backend name with no registration — from a
// decoder's perspective this means the trace names a compressor this build
// cannot provide, so callers on the decode path treat it like corruption.
var ErrUnknownBackend = errors.New("xcompress: unknown backend")

// Backend creates compressing writers and decompressing readers.
type Backend interface {
	// Name returns the registry key, e.g. "bsc".
	Name() string
	// NewWriter returns a WriteCloser compressing onto w. Closing it must
	// flush all data but must not close w.
	NewWriter(w io.Writer) (io.WriteCloser, error)
	// NewReader returns a Reader decompressing from r.
	NewReader(r io.Reader) (io.Reader, error)
}

// ResetReader is a decompressing reader that can be re-targeted at a new
// compressed stream while retaining its internal working state (block
// buffers, transform scratch, entropy-coder tables). After Reset the
// reader must behave exactly as a freshly constructed one on src.
type ResetReader interface {
	io.Reader
	Reset(src io.Reader) error
}

// StatefulBackend is implemented by back ends whose readers carry
// reusable decode state worth recycling. NewResetReader returns a reader
// the caller may Reset across any number of streams — the decode
// pipeline pools these per Decompressor so per-chunk decompression stops
// allocating working memory. Back ends without meaningful state (or not
// yet adapted) simply don't implement the interface; callers fall back
// to NewReader per stream.
type StatefulBackend interface {
	Backend
	NewResetReader(r io.Reader) (ResetReader, error)
}

var (
	mu       sync.RWMutex
	backends = map[string]Backend{}
)

// Register makes a back end available by name, replacing any previous
// registration with the same name.
func Register(b Backend) {
	mu.Lock()
	defer mu.Unlock()
	backends[b.Name()] = b
}

// Lookup returns the named back end.
func Lookup(name string) (Backend, error) {
	mu.RLock()
	defer mu.RUnlock()
	b, ok := backends[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownBackend, name, namesLocked())
	}
	return b, nil
}

// Names lists the registered back ends in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(backends))
	for n := range backends {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// bscBackend adapts internal/bsc.
type bscBackend struct{ blockSize int }

func (b bscBackend) Name() string { return "bsc" }

func (b bscBackend) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return bsc.NewWriterSize(w, b.blockSize), nil
}

func (b bscBackend) NewReader(r io.Reader) (io.Reader, error) {
	return bsc.NewReader(r), nil
}

func (b bscBackend) NewResetReader(r io.Reader) (ResetReader, error) {
	return bsc.NewReader(r), nil
}

// flateBackend adapts compress/flate.
type flateBackend struct{ level int }

func (f flateBackend) Name() string { return "flate" }

func (f flateBackend) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return flate.NewWriter(w, f.level)
}

func (f flateBackend) NewReader(r io.Reader) (io.Reader, error) {
	return flate.NewReader(r), nil
}

func (f flateBackend) NewResetReader(r io.Reader) (ResetReader, error) {
	return &flateResetReader{rc: flate.NewReader(r)}, nil
}

// flateResetReader adapts compress/flate's Resetter (whose Reset takes a
// dictionary argument) to the ResetReader shape.
type flateResetReader struct{ rc io.ReadCloser }

func (f *flateResetReader) Read(p []byte) (int, error) { return f.rc.Read(p) }

func (f *flateResetReader) Reset(src io.Reader) error {
	return f.rc.(flate.Resetter).Reset(src, nil)
}

// storeBackend copies bytes verbatim with a trivial length-free framing:
// the stream is the data itself (callers frame externally).
type storeBackend struct{}

func (storeBackend) Name() string { return "store" }

func (storeBackend) NewWriter(w io.Writer) (io.WriteCloser, error) {
	return nopWriteCloser{w}, nil
}

func (storeBackend) NewReader(r io.Reader) (io.Reader, error) { return r, nil }

func (storeBackend) NewResetReader(r io.Reader) (ResetReader, error) {
	return &passthroughReader{src: r}, nil
}

// passthroughReader gives the store back end a resettable identity reader
// so it pools like the real compressors (the indirection through one
// non-escaping struct read is noise next to the copy itself).
type passthroughReader struct{ src io.Reader }

func (p *passthroughReader) Read(b []byte) (int, error) { return p.src.Read(b) }

func (p *passthroughReader) Reset(src io.Reader) error {
	p.src = src
	return nil
}

type nopWriteCloser struct{ io.Writer }

func (nopWriteCloser) Close() error { return nil }

func init() {
	Register(bscBackend{blockSize: bsc.DefaultBlockSize})
	Register(flateBackend{level: flate.BestCompression})
	Register(storeBackend{})
}

// CompressAll compresses data with the named back end into a fresh buffer.
func CompressAll(name string, data []byte) ([]byte, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	var buf growBuffer
	w, err := b.NewWriter(&buf)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(data); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// DecompressAll expands data with the named back end.
func DecompressAll(name string, data []byte) ([]byte, error) {
	b, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	r, err := b.NewReader(readerOf(data))
	if err != nil {
		return nil, err
	}
	return io.ReadAll(r)
}

type growBuffer struct{ b []byte }

func (g *growBuffer) Write(p []byte) (int, error) {
	g.b = append(g.b, p...)
	return len(p), nil
}

type byteSliceReader struct {
	b []byte
	i int
}

func (s *byteSliceReader) Read(p []byte) (int, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	n := copy(p, s.b[s.i:])
	s.i += n
	return n, nil
}

func (s *byteSliceReader) ReadByte() (byte, error) {
	if s.i >= len(s.b) {
		return 0, io.EOF
	}
	b := s.b[s.i]
	s.i++
	return b, nil
}

func readerOf(b []byte) io.Reader { return &byteSliceReader{b: b} }
