package mtf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMoveToFrontKnown(t *testing.T) {
	// Classic example: "banana" over initial identity table.
	in := []byte("banana")
	got := MoveToFront(in)
	// b=98 -> 98; a: a is now at index 98? order after moving b: [b,0..97,99..]
	// a=97 originally at 97, after b moved to front a sits at 98.
	want := []byte{98, 98, 110, 1, 1, 1}
	if !bytes.Equal(got, want) {
		t.Fatalf("MTF(banana) = %v, want %v", got, want)
	}
}

func TestMoveToFrontRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(InverseMoveToFront(MoveToFront(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMoveToFrontRunsBecomeZeros(t *testing.T) {
	in := []byte{5, 5, 5, 5, 7, 7, 7}
	out := MoveToFront(in)
	for i := 1; i < 4; i++ {
		if out[i] != 0 {
			t.Fatalf("repeat positions should MTF to 0, got %v", out)
		}
	}
	for i := 5; i < 7; i++ {
		if out[i] != 0 {
			t.Fatalf("repeat positions should MTF to 0, got %v", out)
		}
	}
}

func TestZeroRunBijectiveBase2(t *testing.T) {
	// Runs of the front symbol of length r must encode to the documented
	// RUNA/RUNB digit strings.
	cases := []struct {
		run  int
		want []uint16
	}{
		{1, []uint16{RunA}},
		{2, []uint16{RunB}},
		{3, []uint16{RunA, RunA}},
		{4, []uint16{RunB, RunA}},
		{5, []uint16{RunA, RunB}},
		{6, []uint16{RunB, RunB}},
		{7, []uint16{RunA, RunA, RunA}},
	}
	for _, c := range cases {
		// A run of byte 0 at stream start MTFs to a zero run of the same length.
		in := bytes.Repeat([]byte{0}, c.run)
		syms := Encode(in)
		want := append(append([]uint16{}, c.want...), EOB)
		if len(syms) != len(want) {
			t.Fatalf("run %d: symbols %v, want %v", c.run, syms, want)
		}
		for i := range want {
			if syms[i] != want[i] {
				t.Fatalf("run %d: symbols %v, want %v", c.run, syms, want)
			}
		}
	}
}

func TestEncodeDecodeEmpty(t *testing.T) {
	syms := Encode(nil)
	if len(syms) != 1 || syms[0] != EOB {
		t.Fatalf("Encode(nil) = %v, want [EOB]", syms)
	}
	out, n, err := Decode(syms)
	if err != nil || n != 1 || len(out) != 0 {
		t.Fatalf("Decode = %v, %d, %v", out, n, err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		syms := Encode(data)
		out, n, err := Decode(syms)
		if err != nil || n != len(syms) {
			return false
		}
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeStopsAtEOB(t *testing.T) {
	syms := Encode([]byte("hello"))
	// Append trailing garbage; Decode must stop at EOB.
	syms = append(syms, 5, 6, 7)
	out, n, err := Decode(syms)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte("hello")) {
		t.Fatalf("decoded %q", out)
	}
	if n != len(syms)-3 {
		t.Fatalf("consumed %d symbols, want %d", n, len(syms)-3)
	}
}

func TestDecodeMissingEOB(t *testing.T) {
	if _, _, err := Decode([]uint16{2, 3, 4}); err == nil {
		t.Fatal("missing EOB not detected")
	}
}

func TestDecodeBadSymbol(t *testing.T) {
	if _, _, err := Decode([]uint16{300, EOB}); err == nil {
		t.Fatal("out-of-range symbol not detected")
	}
}

func TestCompressionEffect(t *testing.T) {
	// Highly repetitive data must produce far fewer symbols than bytes.
	in := bytes.Repeat([]byte{'z'}, 10000)
	syms := Encode(in)
	if len(syms) > 30 {
		t.Fatalf("10000-byte run encoded to %d symbols; run coding broken", len(syms))
	}
}

func TestLongRunBoundaries(t *testing.T) {
	for _, n := range []int{255, 256, 257, 1023, 1024, 65535} {
		in := bytes.Repeat([]byte{9}, n)
		out, _, err := Decode(Encode(in))
		if err != nil || !bytes.Equal(out, in) {
			t.Fatalf("run length %d failed: %v", n, err)
		}
	}
}

func BenchmarkEncode(b *testing.B) {
	data := bytes.Repeat([]byte("abcabcabd"), 10000)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		Encode(data)
	}
}
