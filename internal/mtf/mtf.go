// Package mtf implements the move-to-front transform and the zero-run
// (RUNA/RUNB) encoding used between the Burrows–Wheeler transform and the
// entropy coder, mirroring the bzip2 pipeline that the paper uses as its
// byte-level back end.
//
// Symbol space of the run-length encoded stream:
//
//	0        RUNA (contributes 1<<k to a zero-run length)
//	1        RUNB (contributes 2<<k to a zero-run length)
//	2..256   MTF values 1..255 (value v encodes as symbol v+1)
//	257      EOB, end of block
//
// Zero runs are encoded in bijective base 2, exactly as in bzip2: a run of
// length r emits digits d0,d1,... where digit k is RUNA (weight 1<<k) or
// RUNB (weight 2<<k) and r = Σ weight(k).
package mtf

import (
	"errors"
	"fmt"
)

// Symbol constants for the run-length encoded MTF stream.
const (
	RunA    = 0
	RunB    = 1
	EOB     = 257
	NumSyms = 258 // alphabet size for the entropy coder
)

var errCorrupt = errors.New("mtf: corrupt symbol stream")

// Encode applies move-to-front to data and returns the zero-run encoded
// symbol stream, terminated by EOB.
func Encode(data []byte) []uint16 {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	syms := make([]uint16, 0, len(data)/2+16)
	zeroRun := 0
	flushRun := func() {
		r := zeroRun
		for r > 0 {
			if r&1 == 1 {
				syms = append(syms, RunA)
				r = (r - 1) / 2
			} else {
				syms = append(syms, RunB)
				r = (r - 2) / 2
			}
		}
		zeroRun = 0
	}
	for _, b := range data {
		// Find position of b in the MTF table and move it to front.
		var pos int
		if order[0] == b {
			pos = 0
		} else {
			j := 1
			for order[j] != b {
				j++
			}
			copy(order[1:j+1], order[:j])
			order[0] = b
			pos = j
		}
		if pos == 0 {
			zeroRun++
			continue
		}
		flushRun()
		syms = append(syms, uint16(pos+1))
	}
	flushRun()
	return append(syms, EOB)
}

// Decode reverses Encode. It consumes symbols up to and including the first
// EOB and returns the reconstructed bytes together with the number of
// symbols consumed.
func Decode(syms []uint16) ([]byte, int, error) {
	return DecodeInto(make([]byte, 0, len(syms)*2), syms)
}

// DecodeInto is Decode appending into dst (which is truncated first): a
// caller holding a reusable buffer — the bsc Reader recycling its block
// working state — decodes without allocating once dst has grown to the
// workload's block size. The returned slice shares dst's storage unless
// growth forced a reallocation.
func DecodeInto(dst []byte, syms []uint16) ([]byte, int, error) {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := dst[:0]
	i := 0
	for i < len(syms) {
		s := syms[i]
		switch {
		case s == EOB:
			return out, i + 1, nil
		case s == RunA || s == RunB:
			// Collect the whole bijective base-2 run.
			run := 0
			shift := uint(0)
			for i < len(syms) && (syms[i] == RunA || syms[i] == RunB) {
				if syms[i] == RunA {
					run += 1 << shift
				} else {
					run += 2 << shift
				}
				shift++
				i++
			}
			front := order[0]
			for k := 0; k < run; k++ {
				out = append(out, front)
			}
		case s >= 2 && s <= 256:
			pos := int(s) - 1
			b := order[pos]
			copy(order[1:pos+1], order[:pos])
			order[0] = b
			out = append(out, b)
			i++
		default:
			return nil, 0, fmt.Errorf("%w: symbol %d", errCorrupt, s)
		}
	}
	return nil, 0, fmt.Errorf("%w: missing EOB", errCorrupt)
}

// MoveToFront applies the plain MTF transform (no run coding); exported for
// testing and for analysis tools.
func MoveToFront(data []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(data))
	for k, b := range data {
		var pos int
		if order[0] == b {
			pos = 0
		} else {
			j := 1
			for order[j] != b {
				j++
			}
			copy(order[1:j+1], order[:j])
			order[0] = b
			pos = j
		}
		out[k] = byte(pos)
	}
	return out
}

// InverseMoveToFront reverses MoveToFront.
func InverseMoveToFront(data []byte) []byte {
	var order [256]byte
	for i := range order {
		order[i] = byte(i)
	}
	out := make([]byte, len(data))
	for k, p := range data {
		b := order[p]
		copy(order[1:int(p)+1], order[:p])
		order[0] = b
		out[k] = b
	}
	return out
}
