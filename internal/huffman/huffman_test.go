package huffman

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"atc/internal/bitio"
)

func roundTrip(t *testing.T, data []byte, maxBits int) {
	t.Helper()
	freqs := make([]int64, 256)
	for _, b := range data {
		freqs[b]++
	}
	lengths, err := BuildLengths(freqs, maxBits)
	if err != nil {
		t.Fatalf("BuildLengths: %v", err)
	}
	cb, err := NewCodebook(lengths)
	if err != nil {
		t.Fatalf("NewCodebook: %v", err)
	}
	var buf bytes.Buffer
	bw := bitio.NewWriter(&buf)
	enc := NewEncoder(cb, bw)
	for _, b := range data {
		if err := enc.WriteSymbol(int(b)); err != nil {
			t.Fatalf("WriteSymbol: %v", err)
		}
	}
	if err := bw.Close(); err != nil {
		t.Fatal(err)
	}
	br := bitio.NewReader(&buf)
	dec, err := NewDecoder(lengths, br)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	for i, want := range data {
		got, err := dec.ReadSymbol()
		if err != nil {
			t.Fatalf("ReadSymbol %d: %v", i, err)
		}
		if got != int(want) {
			t.Fatalf("symbol %d = %d, want %d", i, got, want)
		}
	}
}

func TestRoundTripSimple(t *testing.T) {
	roundTrip(t, []byte("abracadabra, the quick brown fox jumps over the lazy dog"), MaxBits)
}

func TestRoundTripSingleSymbol(t *testing.T) {
	roundTrip(t, bytes.Repeat([]byte{42}, 100), MaxBits)
}

func TestRoundTripTwoSymbols(t *testing.T) {
	roundTrip(t, []byte{0, 1, 0, 0, 1, 0, 0, 0, 1}, MaxBits)
}

func TestRoundTripAllBytes(t *testing.T) {
	data := make([]byte, 256)
	for i := range data {
		data[i] = byte(i)
	}
	roundTrip(t, data, MaxBits)
}

func TestRoundTripSkewed(t *testing.T) {
	// Exponentially skewed frequencies force deep codes.
	var data []byte
	for i := 0; i < 20; i++ {
		data = append(data, bytes.Repeat([]byte{byte(i)}, 1<<uint(i%18))...)
	}
	roundTrip(t, data, MaxBits)
}

func TestLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies make unconstrained Huffman deep.
	freqs := make([]int64, 32)
	a, b := int64(1), int64(1)
	for i := range freqs {
		freqs[i] = a
		a, b = b, a+b
	}
	for _, limit := range []int{5, 8, 10, MaxBits} {
		lengths, err := BuildLengths(freqs, limit)
		if err != nil {
			t.Fatalf("BuildLengths(limit=%d): %v", limit, err)
		}
		var kraft float64
		for sym, l := range lengths {
			if freqs[sym] > 0 && l == 0 {
				t.Fatalf("limit %d: symbol %d lost its code", limit, sym)
			}
			if int(l) > limit {
				t.Fatalf("limit %d: length %d exceeds limit", limit, l)
			}
			if l > 0 {
				kraft += 1 / float64(uint64(1)<<l)
			}
		}
		if kraft > 1.0000001 {
			t.Fatalf("limit %d: Kraft sum %v > 1", limit, kraft)
		}
		if _, err := NewCodebook(lengths); err != nil {
			t.Fatalf("limit %d: codebook rejected: %v", limit, err)
		}
	}
}

func TestNoSymbols(t *testing.T) {
	if _, err := BuildLengths(make([]int64, 256), MaxBits); err == nil {
		t.Fatal("BuildLengths on empty frequencies should fail")
	}
}

func TestBadMaxBits(t *testing.T) {
	freqs := []int64{1, 2, 3}
	if _, err := BuildLengths(freqs, 0); err == nil {
		t.Fatal("maxBits=0 should fail")
	}
	if _, err := BuildLengths(freqs, 64); err == nil {
		t.Fatal("maxBits=64 should fail")
	}
}

func TestOverfullLengthsRejected(t *testing.T) {
	// Three codes of length 1 violate Kraft.
	if _, err := NewCodebook([]uint8{1, 1, 1}); err == nil {
		t.Fatal("overfull length table accepted")
	}
}

func TestCanonicalCodeOrder(t *testing.T) {
	// lengths: a=2 b=1 c=3 d=3 -> canonical: b=0, a=10, c=110, d=111
	lengths := []uint8{2, 1, 3, 3}
	cb, err := NewCodebook(lengths)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{0b10, 0b0, 0b110, 0b111}
	for sym, w := range want {
		if cb.Codes[sym] != w {
			t.Errorf("code[%d] = %b, want %b", sym, cb.Codes[sym], w)
		}
	}
}

func TestEncoderRejectsUncodedSymbol(t *testing.T) {
	cb, err := NewCodebook([]uint8{1, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	enc := NewEncoder(cb, bitio.NewWriter(&bytes.Buffer{}))
	if err := enc.WriteSymbol(2); err == nil {
		t.Fatal("encoding a symbol without a code should fail")
	}
}

func TestOptimalityOrdering(t *testing.T) {
	// More frequent symbols must never get longer codes.
	freqs := []int64{100, 50, 25, 12, 6, 3, 1, 1}
	lengths, err := BuildLengths(freqs, MaxBits)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i-1] > freqs[i] && lengths[i-1] > lengths[i] {
			t.Fatalf("freq %d > %d but length %d > %d", freqs[i-1], freqs[i], lengths[i-1], lengths[i])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%2048) + 1
		data := make([]byte, size)
		// Mix of skewed and uniform distributions.
		nSyms := rng.Intn(255) + 1
		for i := range data {
			data[i] = byte(rng.Intn(nSyms))
		}
		freqs := make([]int64, 256)
		for _, b := range data {
			freqs[b]++
		}
		lengths, err := BuildLengths(freqs, MaxBits)
		if err != nil {
			return false
		}
		cb, err := NewCodebook(lengths)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		enc := NewEncoder(cb, bw)
		for _, b := range data {
			if err := enc.WriteSymbol(int(b)); err != nil {
				return false
			}
		}
		if err := bw.Close(); err != nil {
			return false
		}
		dec, err := NewDecoder(lengths, bitio.NewReader(&buf))
		if err != nil {
			return false
		}
		for _, want := range data {
			got, err := dec.ReadSymbol()
			if err != nil || got != int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(rng.Intn(32))
	}
	freqs := make([]int64, 256)
	for _, v := range data {
		freqs[v]++
	}
	lengths, _ := BuildLengths(freqs, MaxBits)
	cb, _ := NewCodebook(lengths)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		bw := bitio.NewWriter(&buf)
		enc := NewEncoder(cb, bw)
		for _, v := range data {
			_ = enc.WriteSymbol(int(v))
		}
		_ = bw.Close()
	}
}
