// Package huffman implements length-limited canonical Huffman coding.
//
// It is used by the bsc block compressor as the entropy-coding stage. Code
// lengths are computed with a standard Huffman construction and then, if
// necessary, rebalanced to respect a maximum code length while keeping the
// Kraft inequality satisfied (the same strategy used by zlib). Codes are
// canonical: within a length, codes are assigned in increasing symbol order,
// so a decoder needs only the length table.
package huffman

import (
	"errors"
	"fmt"
	"sort"

	"atc/internal/bitio"
)

// MaxBits is the default maximum code length supported by this package.
const MaxBits = 20

var (
	errNoSymbols  = errors.New("huffman: no symbols with nonzero frequency")
	errBadLengths = errors.New("huffman: invalid code length table")
)

// BuildLengths computes a length-limited Huffman code-length table from
// symbol frequencies. Symbols with zero frequency get length 0 (no code).
// If exactly one symbol has nonzero frequency it is assigned length 1.
// maxBits must be in [1, 57]; lengths never exceed it.
func BuildLengths(freqs []int64, maxBits int) ([]uint8, error) {
	if maxBits < 1 || maxBits > 57 {
		return nil, fmt.Errorf("huffman: maxBits %d out of range", maxBits)
	}
	n := len(freqs)
	lengths := make([]uint8, n)
	type node struct {
		freq        int64
		sym         int // >= 0 for leaf, -1 for internal
		left, right int // indexes into nodes
	}
	var live []int // heap of node indexes
	nodes := make([]node, 0, 2*n)
	for sym, f := range freqs {
		if f > 0 {
			nodes = append(nodes, node{freq: f, sym: sym, left: -1, right: -1})
			live = append(live, len(nodes)-1)
		}
	}
	switch len(live) {
	case 0:
		return nil, errNoSymbols
	case 1:
		lengths[nodes[live[0]].sym] = 1
		return lengths, nil
	}
	// Simple heap ordered by frequency (ties by node index for determinism).
	less := func(a, b int) bool {
		if nodes[a].freq != nodes[b].freq {
			return nodes[a].freq < nodes[b].freq
		}
		return a < b
	}
	down := func(h []int, i int) {
		for {
			l, r := 2*i+1, 2*i+2
			m := i
			if l < len(h) && less(h[l], h[m]) {
				m = l
			}
			if r < len(h) && less(h[r], h[m]) {
				m = r
			}
			if m == i {
				return
			}
			h[i], h[m] = h[m], h[i]
			i = m
		}
	}
	for i := len(live)/2 - 1; i >= 0; i-- {
		down(live, i)
	}
	pop := func() int {
		top := live[0]
		live[0] = live[len(live)-1]
		live = live[:len(live)-1]
		down(live, 0)
		return top
	}
	push := func(idx int) {
		live = append(live, idx)
		i := len(live) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !less(live[i], live[p]) {
				break
			}
			live[i], live[p] = live[p], live[i]
			i = p
		}
	}
	for len(live) > 1 {
		a := pop()
		b := pop()
		nodes = append(nodes, node{freq: nodes[a].freq + nodes[b].freq, sym: -1, left: a, right: b})
		push(len(nodes) - 1)
	}
	// Depth-first walk assigning depths.
	root := live[0]
	type frame struct{ idx, depth int }
	stack := []frame{{root, 0}}
	maxSeen := 0
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := nodes[f.idx]
		if nd.sym >= 0 {
			d := f.depth
			if d == 0 {
				d = 1 // cannot happen for >=2 symbols, defensive
			}
			lengths[nd.sym] = uint8(d)
			if d > maxSeen {
				maxSeen = d
			}
			continue
		}
		stack = append(stack, frame{nd.left, f.depth + 1}, frame{nd.right, f.depth + 1})
	}
	if maxSeen > maxBits {
		limitLengths(freqs, lengths, maxBits)
	}
	return lengths, nil
}

// limitLengths rebalances an over-deep code to respect maxBits. It clamps
// all lengths to maxBits, then restores the Kraft inequality by deepening
// the shallowest available codes, and finally reassigns lengths to symbols
// in frequency order so frequent symbols keep the short codes.
func limitLengths(freqs []int64, lengths []uint8, maxBits int) {
	blCount := make([]int, maxBits+1)
	var syms []int
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		if int(l) > maxBits {
			l = uint8(maxBits)
		}
		blCount[l]++
		syms = append(syms, sym)
	}
	// Kraft sum in units of 2^-maxBits.
	var kraft int64
	for l := 1; l <= maxBits; l++ {
		kraft += int64(blCount[l]) << uint(maxBits-l)
	}
	limit := int64(1) << uint(maxBits)
	for kraft > limit {
		// Move one code from the deepest length < maxBits down one level.
		l := maxBits - 1
		for l > 0 && blCount[l] == 0 {
			l--
		}
		blCount[l]--
		blCount[l+1]++
		kraft -= int64(1) << uint(maxBits-l-1)
	}
	// Reassign: most frequent symbols get shortest lengths.
	sort.Slice(syms, func(i, j int) bool {
		if freqs[syms[i]] != freqs[syms[j]] {
			return freqs[syms[i]] > freqs[syms[j]]
		}
		return syms[i] < syms[j]
	})
	idx := 0
	for l := 1; l <= maxBits; l++ {
		for k := 0; k < blCount[l]; k++ {
			lengths[syms[idx]] = uint8(l)
			idx++
		}
	}
}

// Codebook holds canonical codes derived from a length table.
type Codebook struct {
	Lengths []uint8
	Codes   []uint32
	maxLen  int
}

// NewCodebook builds canonical codes from a length table. It validates that
// the lengths satisfy the Kraft inequality with equality allowed (over-full
// tables are rejected; under-full tables are permitted, as produced by the
// single-symbol case).
func NewCodebook(lengths []uint8) (*Codebook, error) {
	maxLen := 0
	for _, l := range lengths {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	if maxLen == 0 || maxLen > 57 {
		return nil, errBadLengths
	}
	blCount := make([]int, maxLen+1)
	for _, l := range lengths {
		if l > 0 {
			blCount[l]++
		}
	}
	var kraft int64
	for l := 1; l <= maxLen; l++ {
		kraft += int64(blCount[l]) << uint(maxLen-l)
	}
	if kraft > int64(1)<<uint(maxLen) {
		return nil, errBadLengths
	}
	nextCode := make([]uint32, maxLen+2)
	code := uint32(0)
	for l := 1; l <= maxLen; l++ {
		code = (code + uint32(blCount[l-1])) << 1
		nextCode[l] = code
	}
	codes := make([]uint32, len(lengths))
	for sym, l := range lengths {
		if l == 0 {
			continue
		}
		codes[sym] = nextCode[l]
		nextCode[l]++
	}
	return &Codebook{Lengths: append([]uint8(nil), lengths...), Codes: codes, maxLen: maxLen}, nil
}

// MaxLen reports the longest code length in the book.
func (cb *Codebook) MaxLen() int { return cb.maxLen }

// Encoder writes symbols as canonical Huffman codes to a bit stream.
type Encoder struct {
	cb *Codebook
	w  *bitio.Writer
}

// NewEncoder returns an Encoder using codebook cb on bit writer w.
func NewEncoder(cb *Codebook, w *bitio.Writer) *Encoder {
	return &Encoder{cb: cb, w: w}
}

// WriteSymbol emits the code for sym.
func (e *Encoder) WriteSymbol(sym int) error {
	l := e.cb.Lengths[sym]
	if l == 0 {
		return fmt.Errorf("huffman: symbol %d has no code", sym)
	}
	return e.w.WriteBits(uint64(e.cb.Codes[sym]), uint(l))
}

// Decoder reads canonical Huffman codes from a bit stream.
type Decoder struct {
	r *bitio.Reader
	// Canonical decode tables indexed by code length.
	firstCode []uint32 // first canonical code of each length
	count     []int    // number of codes of each length
	offset    []int    // index into symOrder of first symbol of each length
	symOrder  []int    // symbols sorted by (length, symbol)
	maxLen    int
}

// NewDecoder builds a Decoder for the given length table reading from r.
func NewDecoder(lengths []uint8, r *bitio.Reader) (*Decoder, error) {
	d := &Decoder{}
	if err := d.Reset(lengths, r); err != nil {
		return nil, err
	}
	return d, nil
}

// Reset re-initialises d for a new length table and bit reader, reusing
// its internal decode tables — equivalent to NewDecoder but, once the
// decoder has seen a table of equal or greater depth and symbol count,
// allocation-free. It validates the table the same way (the Kraft check
// NewCodebook performs, without materialising codes); on error d is left
// unusable until a successful Reset.
func (d *Decoder) Reset(lengths []uint8, r *bitio.Reader) error {
	maxLen := 0
	for _, l := range lengths {
		if int(l) > maxLen {
			maxLen = int(l)
		}
	}
	if maxLen == 0 || maxLen > 57 {
		d.maxLen = 0
		return errBadLengths
	}
	if cap(d.count) < maxLen+1 {
		d.count = make([]int, maxLen+1)
		d.firstCode = make([]uint32, maxLen+1)
		d.offset = make([]int, maxLen+1)
	} else {
		d.count = d.count[:maxLen+1]
		d.firstCode = d.firstCode[:maxLen+1]
		d.offset = d.offset[:maxLen+1]
		for i := range d.count {
			d.count[i] = 0
		}
	}
	for _, l := range lengths {
		if l > 0 {
			d.count[l]++
		}
	}
	var kraft int64
	for l := 1; l <= maxLen; l++ {
		kraft += int64(d.count[l]) << uint(maxLen-l)
	}
	if kraft > int64(1)<<uint(maxLen) {
		d.maxLen = 0
		return errBadLengths
	}
	code := uint32(0)
	total := 0
	for l := 1; l <= maxLen; l++ {
		if l > 1 {
			code = (code + uint32(d.count[l-1])) << 1
		}
		d.firstCode[l] = code
		d.offset[l] = total
		total += d.count[l]
	}
	if cap(d.symOrder) < total {
		d.symOrder = make([]int, 0, total)
	}
	d.symOrder = d.symOrder[:0]
	for l := 1; l <= maxLen; l++ {
		for sym, sl := range lengths {
			if int(sl) == l {
				d.symOrder = append(d.symOrder, sym)
			}
		}
	}
	d.r = r
	d.maxLen = maxLen
	return nil
}

// ReadSymbol decodes and returns the next symbol.
func (d *Decoder) ReadSymbol() (int, error) {
	code := uint32(0)
	for l := 1; l <= d.maxLen; l++ {
		bit, err := d.r.ReadBit()
		if err != nil {
			return 0, err
		}
		code = code<<1 | uint32(bit)
		if d.count[l] > 0 {
			idx := int(code) - int(d.firstCode[l])
			if idx >= 0 && idx < d.count[l] {
				return d.symOrder[d.offset[l]+idx], nil
			}
		}
	}
	return 0, errBadLengths
}
