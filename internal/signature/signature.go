// Package signature implements working-set signatures, the classic online
// phase-detection mechanism of Dhodapkar & Smith ("Managing multi-
// configuration hardware via dynamic working set analysis") that the paper
// cites among prior online phase-analysis methods [19, 27]. A signature is
// a lossy bit-vector summary of the blocks touched in an interval; the
// relative signature distance detects phase changes.
//
// The package exists for the ablation in internal/experiment: comparing
// working-set signatures against the paper's sorted byte-histograms as the
// interval-matching criterion. Signatures detect *which blocks* are
// touched, so two intervals with the same temporal structure in different
// regions look maximally different — precisely the case the paper's
// region-invariant sorted histograms (plus byte translation) are designed
// to catch.
package signature

import (
	"fmt"
	"math/bits"
)

// Signature is a working-set bit vector. Create one with New.
type Signature struct {
	bits []uint64
	n    int // number of bits
	pop  int // set-bit count (cached)
}

// New returns an empty signature of n bits (rounded up to a multiple of
// 64; n must be positive).
func New(n int) (*Signature, error) {
	if n <= 0 {
		return nil, fmt.Errorf("signature: nonpositive size %d", n)
	}
	words := (n + 63) / 64
	return &Signature{bits: make([]uint64, words), n: words * 64}, nil
}

// MustNew is New but panics on error.
func MustNew(n int) *Signature {
	s, err := New(n)
	if err != nil {
		panic(err)
	}
	return s
}

// Bits reports the signature size in bits.
func (s *Signature) Bits() int { return s.n }

// Add hashes a block address into the signature.
func (s *Signature) Add(block uint64) {
	// splitmix64 finalizer: full avalanche, so blocks differing only in
	// their high bytes (different memory regions) hash to different bits.
	h := block
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	bit := int(h % uint64(s.n))
	w, m := bit/64, uint64(1)<<(uint(bit)%64)
	if s.bits[w]&m == 0 {
		s.bits[w] |= m
		s.pop++
	}
}

// AddSlice hashes many blocks.
func (s *Signature) AddSlice(blocks []uint64) {
	for _, b := range blocks {
		s.Add(b)
	}
}

// Reset clears the signature for the next interval.
func (s *Signature) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
	s.pop = 0
}

// PopCount reports the number of set bits.
func (s *Signature) PopCount() int { return s.pop }

// Clone returns an independent copy.
func (s *Signature) Clone() *Signature {
	c := &Signature{bits: append([]uint64(nil), s.bits...), n: s.n, pop: s.pop}
	return c
}

// Distance computes the relative working-set distance
// |A xor B| / |A or B| ∈ [0,1] (0 = identical working sets, 1 = disjoint).
// Both signatures must have the same size.
func Distance(a, b *Signature) float64 {
	if a.n != b.n {
		panic("signature: size mismatch")
	}
	var xor, or int
	for i := range a.bits {
		xor += bits.OnesCount64(a.bits[i] ^ b.bits[i])
		or += bits.OnesCount64(a.bits[i] | b.bits[i])
	}
	if or == 0 {
		return 0
	}
	return float64(xor) / float64(or)
}

// Entry pairs a chunk ID with its signature, mirroring phase.Entry.
type Entry struct {
	ChunkID int
	Sig     *Signature
}

// Table is an online phase table keyed by working-set signatures, the
// drop-in alternative to the paper's histogram table for the detector
// ablation. Eviction is FIFO, like the paper's.
type Table struct {
	threshold float64
	cap       int
	entries   []Entry
}

// NewTable returns a Table matching signatures at the given relative
// distance threshold (Dhodapkar & Smith use ~0.5).
func NewTable(capacity int, threshold float64) *Table {
	if capacity <= 0 {
		capacity = 256
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	return &Table{threshold: threshold, cap: capacity}
}

// Match returns the stored chunk with the smallest signature distance
// below the threshold.
func (t *Table) Match(sig *Signature) (chunkID int, dist float64, ok bool) {
	best := -1
	bestDist := 0.0
	for i := range t.entries {
		d := Distance(t.entries[i].Sig, sig)
		if d < t.threshold && (best < 0 || d < bestDist) {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		return 0, 0, false
	}
	return t.entries[best].ChunkID, bestDist, true
}

// Insert records a new chunk's signature, evicting the oldest when full.
func (t *Table) Insert(chunkID int, sig *Signature) {
	if len(t.entries) == t.cap {
		copy(t.entries, t.entries[1:])
		t.entries = t.entries[:t.cap-1]
	}
	t.entries = append(t.entries, Entry{ChunkID: chunkID, Sig: sig.Clone()})
}

// Len reports the number of resident signatures.
func (t *Table) Len() int { return len(t.entries) }
