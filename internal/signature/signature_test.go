package signature

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Fatal("size 0 accepted")
	}
	s := MustNew(100)
	if s.Bits() != 128 {
		t.Fatalf("bits = %d, want rounded to 128", s.Bits())
	}
}

func TestAddAndPopCount(t *testing.T) {
	s := MustNew(1024)
	s.Add(42)
	s.Add(42) // duplicate: popcount unchanged
	if s.PopCount() != 1 {
		t.Fatalf("popcount = %d", s.PopCount())
	}
	s.Add(43)
	if s.PopCount() > 2 || s.PopCount() < 1 {
		t.Fatalf("popcount = %d", s.PopCount())
	}
}

func TestDistanceIdentity(t *testing.T) {
	a, b := MustNew(1024), MustNew(1024)
	blocks := []uint64{1, 5, 9, 1000, 77}
	a.AddSlice(blocks)
	b.AddSlice(blocks)
	if Distance(a, b) != 0 {
		t.Fatalf("identical sets distance = %v", Distance(a, b))
	}
}

func TestDistanceDisjoint(t *testing.T) {
	a, b := MustNew(4096), MustNew(4096)
	for i := uint64(0); i < 20; i++ {
		a.Add(i)
		b.Add(i + 1000000)
	}
	if d := Distance(a, b); d < 0.9 {
		t.Fatalf("disjoint sets distance = %v, want near 1", d)
	}
}

func TestDistanceEmpty(t *testing.T) {
	a, b := MustNew(64), MustNew(64)
	if Distance(a, b) != 0 {
		t.Fatal("two empty signatures should have distance 0")
	}
}

func TestDistanceSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Distance(MustNew(64), MustNew(128))
}

func TestDistanceBoundsProperty(t *testing.T) {
	f := func(seedA, seedB int64, na, nb uint8) bool {
		a, b := MustNew(2048), MustNew(2048)
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		for i := 0; i < int(na); i++ {
			a.Add(ra.Uint64())
		}
		for i := 0; i < int(nb); i++ {
			b.Add(rb.Uint64())
		}
		d := Distance(a, b)
		if d < 0 || d > 1 {
			return false
		}
		// Symmetry.
		return Distance(b, a) == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndClone(t *testing.T) {
	s := MustNew(256)
	s.Add(1)
	c := s.Clone()
	s.Reset()
	if s.PopCount() != 0 {
		t.Fatal("reset did not clear")
	}
	if c.PopCount() != 1 {
		t.Fatal("clone shares storage with original")
	}
}

func TestRegionShiftLooksDifferent(t *testing.T) {
	// The key contrast with sorted byte-histograms: the same access
	// pattern moved to a different region is maximally distant for
	// working-set signatures (they hash identities, not structure).
	a, b := MustNew(4096), MustNew(4096)
	for i := uint64(0); i < 500; i++ {
		a.Add(i)
		b.Add(i + (1 << 40))
	}
	if d := Distance(a, b); d < 0.9 {
		t.Fatalf("region-shifted signature distance = %v; expected near-disjoint", d)
	}
}

func TestTableMatchAndEvict(t *testing.T) {
	tab := NewTable(2, 0.5)
	s1, s2, s3 := MustNew(1024), MustNew(1024), MustNew(1024)
	for i := uint64(0); i < 100; i++ {
		s1.Add(i)
		s2.Add(i + 200)
		s3.Add(i + 400)
	}
	tab.Insert(1, s1)
	tab.Insert(2, s2)
	if id, d, ok := tab.Match(s1); !ok || id != 1 || d != 0 {
		t.Fatalf("match = %d, %v, %v", id, d, ok)
	}
	tab.Insert(3, s3) // evicts 1
	if _, _, ok := tab.Match(s1); ok {
		t.Fatal("evicted signature still matches")
	}
	if tab.Len() != 2 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestTableMatchPrefersClosest(t *testing.T) {
	tab := NewTable(8, 1.1) // threshold above everything
	near, far, probe := MustNew(1024), MustNew(1024), MustNew(1024)
	for i := uint64(0); i < 100; i++ {
		probe.Add(i)
		near.Add(i + uint64(i%10)*1000) // overlaps probe heavily
		far.Add(i + 1<<30)
	}
	tab.Insert(1, far)
	tab.Insert(2, near)
	id, _, ok := tab.Match(probe)
	if !ok || id != 2 {
		t.Fatalf("matched %d, want the closer signature 2", id)
	}
}

func TestDefaults(t *testing.T) {
	tab := NewTable(0, 0)
	if tab.Len() != 0 {
		t.Fatal("fresh table not empty")
	}
	// Defaults applied: no panic on insert/match.
	s := MustNew(64)
	tab.Insert(1, s)
	if _, _, ok := tab.Match(s); !ok {
		t.Fatal("self match failed with default threshold")
	}
}
