package obs

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text-format output for a small
// registry: family ordering, HELP/TYPE lines, label rendering, histogram
// bucket expansion with cumulative counts, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("atc_requests_total", "requests served",
		Label{Key: "route", Value: "addrs"})
	c.Add(7)
	g := r.Gauge("atc_in_flight", "requests in flight")
	g.Set(2)
	h := r.Histogram("atc_request_seconds", "request latency", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(3)
	r.CounterFunc("atc_reads_total", "reads", func() int64 { return 11 },
		Label{Key: "trace", Value: `ha"rd\n`})

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP atc_requests_total requests served
# TYPE atc_requests_total counter
atc_requests_total{route="addrs"} 7
# HELP atc_in_flight requests in flight
# TYPE atc_in_flight gauge
atc_in_flight 2
# HELP atc_request_seconds request latency
# TYPE atc_request_seconds histogram
atc_request_seconds_bucket{le="0.01"} 1
atc_request_seconds_bucket{le="0.1"} 3
atc_request_seconds_bucket{le="+Inf"} 4
atc_request_seconds_sum 3.105
atc_request_seconds_count 4
# HELP atc_reads_total reads
# TYPE atc_reads_total counter
atc_reads_total{trace="ha\"rd\\n"} 11
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

// sampleLine matches a valid Prometheus text-format sample:
// name{labels} value — with an int or float value.
var sampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

// TestExpositionParses validates every non-comment line of a registry
// with all metric kinds against the text-format grammar.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("p_total", "h", Label{Key: "a", Value: "b"}).Add(3)
	r.Gauge("p_gauge", "h").Set(-4)
	h := r.Histogram("p_seconds", "h", DurationBuckets, Label{Key: "stage", Value: "fetch"})
	h.Observe(0.25)
	h.Observe(1e-6)
	r.GaugeFunc("p_fn", "h", func() int64 { return 9 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("invalid sample line: %q", line)
		}
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "h").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "h_total 1") {
		t.Fatalf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("d_total", "help here", Label{Key: "route", Value: "meta"}).Add(5)
	h := r.Histogram("d_seconds", "h", []float64{1})
	h.Observe(0.5)
	rec := httptest.NewRecorder()
	r.DebugHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/obs", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var out map[string]struct {
		Type    string `json:"type"`
		Help    string `json:"help"`
		Metrics []struct {
			Labels map[string]string `json:"labels"`
			Value  int64             `json:"value"`
			Sum    float64           `json:"sum"`
			Count  int64             `json:"count"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatalf("debug dump not JSON: %v\n%s", err, rec.Body.String())
	}
	d := out["d_total"]
	if d.Type != "counter" || d.Help != "help here" ||
		len(d.Metrics) != 1 || d.Metrics[0].Value != 5 ||
		d.Metrics[0].Labels["route"] != "meta" {
		t.Fatalf("d_total dump = %+v", d)
	}
	hs := out["d_seconds"]
	if hs.Type != "histogram" || len(hs.Metrics) != 1 ||
		hs.Metrics[0].Sum != 0.5 || hs.Metrics[0].Count != 1 {
		t.Fatalf("d_seconds dump = %+v", hs)
	}
}
