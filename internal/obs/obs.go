// Package obs is the serving stack's observability layer: a process-wide
// metrics registry (atomic counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition, and a per-request decode trace
// recorder (trace.go).
//
// The package is stdlib-only and dependency-free so every layer — core,
// store, the commands — can import it without cycles. All mutation ops on
// the hot path (Counter.Inc/Add, Gauge ops, Histogram.Observe, Trace.Add)
// are allocation-free and annotated //atc:hotpath so the repo's atcvet
// suite enforces that property; registration and exposition are not hot
// and may allocate freely.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key=value metric dimension. Labels are sorted by key at
// registration, so the same set in any order names the same series.
type Label struct {
	Key, Value string
}

// Counter is a monotonically increasing int64 metric. The zero value is
// usable standalone; Registry.Counter returns one registered for
// exposition.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
//
//atc:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters are monotonic: n must be >= 0 (not checked on the
// hot path).
//
//atc:hotpath
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an int64 metric that can go up and down. The zero value is
// usable standalone.
type Gauge struct {
	v atomic.Int64
}

// Inc adds 1.
//
//atc:hotpath
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
//
//atc:hotpath
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (which may be negative).
//
//atc:hotpath
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set replaces the current value.
//
//atc:hotpath
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// instrument is one labeled series within a family. Exactly one of
// counter/gauge/hist/fn is set (fn doubles for CounterFunc and GaugeFunc).
type instrument struct {
	labels   []Label // sorted by key
	labelStr string  // pre-rendered `k1="v1",k2="v2"`, "" when unlabeled
	counter  *Counter
	gauge    *Gauge
	hist     *Histogram
	fn       func() int64
}

func (in *instrument) value() int64 {
	switch {
	case in.fn != nil:
		return in.fn()
	case in.counter != nil:
		return in.counter.Value()
	case in.gauge != nil:
		return in.gauge.Value()
	}
	return 0
}

// family groups every series sharing a metric name. All members have the
// same kind, help text and (for histograms) bucket bounds.
type family struct {
	name     string
	help     string
	kind     metricKind
	bounds   []float64 // histogram families only
	insts    []*instrument
	byLabels map[string]*instrument
}

// Registry holds metric families and renders them in Prometheus text
// format. Families appear in registration order, series within a family
// in registration order. The zero Registry is not usable; call
// NewRegistry, or use the process-wide Default registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry. Most code should use Default;
// fresh registries exist for tests and per-scope exposition.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that package-level metrics in
// core, store and the commands register into.
func Default() *Registry { return defaultRegistry }

// Counter returns the registered counter for name+labels, creating it on
// first use. Repeat calls with the same name and label set return the
// same *Counter, so package-level registration is idempotent across
// instances. Panics if name is already registered with a different kind,
// or if name/labels are not valid Prometheus identifiers.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	in := r.register(kindCounter, name, help, nil, nil, labels)
	if in.counter == nil {
		panic(fmt.Sprintf("obs: %s registered as a func metric", name))
	}
	return in.counter
}

// Gauge returns the registered gauge for name+labels, creating it on
// first use (same identity rules as Counter).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	in := r.register(kindGauge, name, help, nil, nil, labels)
	if in.gauge == nil {
		panic(fmt.Sprintf("obs: %s registered as a func metric", name))
	}
	return in.gauge
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — the bridge for pre-existing instance counters
// (pool chunk reads, shared-cache stats) that stay authoritative.
// Re-registering the same name+labels replaces the callback (last one
// wins), so re-opening a trace under the same name is safe.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	in := r.register(kindCounter, name, help, nil, fn, labels)
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at exposition
// time (same replacement semantics as CounterFunc).
func (r *Registry) GaugeFunc(name, help string, fn func() int64, labels ...Label) {
	in := r.register(kindGauge, name, help, nil, fn, labels)
	r.mu.Lock()
	in.fn = fn
	r.mu.Unlock()
}

// Histogram returns the registered histogram for name+labels, creating
// it on first use with the given upper bucket bounds (which must be
// sorted ascending; a final +Inf bucket is implicit). Every series in a
// family shares one bounds slice — registering the same name with
// different bounds panics.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	in := r.register(kindHistogram, name, help, bounds, nil, labels)
	return in.hist
}

// register finds or creates the family and the labeled series within it.
// The kind-specific slot is created under r.mu, so concurrent first
// registrations of the same series return the same instrument state.
func (r *Registry) register(kind metricKind, name, help string, bounds []float64, fn func() int64, labels []Label) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	labels = append([]Label(nil), labels...)
	sort.Slice(labels, func(i, j int) bool { return labels[i].Key < labels[j].Key })
	for _, l := range labels {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label key %q on %s", l.Key, name))
		}
	}
	ls := renderLabels(labels)

	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{
			name:     name,
			help:     help,
			kind:     kind,
			bounds:   bounds,
			byLabels: make(map[string]*instrument),
		}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: %s already registered as %s, not %s", name, f.kind, kind))
	}
	if kind == kindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("obs: %s already registered with different buckets", name))
	}
	in := f.byLabels[ls]
	if in == nil {
		in = &instrument{labels: labels, labelStr: ls, fn: fn}
		switch {
		case kind == kindHistogram:
			in.hist = newHistogram(f.bounds)
		case fn != nil:
		case kind == kindCounter:
			in.counter = &Counter{}
		case kind == kindGauge:
			in.gauge = &Gauge{}
		}
		f.byLabels[ls] = in
		f.insts = append(f.insts, in)
	}
	return in
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// validName reports whether s is a legal Prometheus metric/label name:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// renderLabels produces the canonical `k="v",…` form used both as the
// series identity key and verbatim in exposition.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabelValue escapes backslash, double-quote and newline per the
// Prometheus text format.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}
