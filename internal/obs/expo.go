package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): `# HELP` / `# TYPE` comments, then
// one sample line per series, with histogram families expanded into
// cumulative `_bucket{le=...}` samples plus `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	// Snapshot the family list; sample values are read from atomics (or
	// callbacks) outside the lock so a slow func metric can't block
	// registration.
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	// Series slices only ever grow; copy the headers under the lock.
	type famSnap struct {
		f     *family
		insts []*instrument
	}
	snaps := make([]famSnap, len(fams))
	for i, f := range fams {
		snaps[i] = famSnap{f: f, insts: append([]*instrument(nil), f.insts...)}
	}
	r.mu.Unlock()

	for _, s := range snaps {
		f := s.f
		if f.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(f.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(f.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(f.name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, in := range s.insts {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, in)
				continue
			}
			bw.WriteString(f.name)
			if in.labelStr != "" {
				bw.WriteByte('{')
				bw.WriteString(in.labelStr)
				bw.WriteByte('}')
			}
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(in.value(), 10))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

func writeHistogram(bw *bufio.Writer, name string, in *instrument) {
	bounds, cum := in.hist.Buckets()
	for i, ub := range bounds {
		writeBucketLine(bw, name, in.labelStr, formatBound(ub), cum[i])
	}
	writeBucketLine(bw, name, in.labelStr, "+Inf", cum[len(cum)-1])

	bw.WriteString(name)
	bw.WriteString("_sum")
	if in.labelStr != "" {
		bw.WriteByte('{')
		bw.WriteString(in.labelStr)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(in.hist.Sum(), 'g', -1, 64))
	bw.WriteByte('\n')

	bw.WriteString(name)
	bw.WriteString("_count")
	if in.labelStr != "" {
		bw.WriteByte('{')
		bw.WriteString(in.labelStr)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatInt(in.hist.Count(), 10))
	bw.WriteByte('\n')
}

func writeBucketLine(bw *bufio.Writer, name, labelStr, le string, cum int64) {
	bw.WriteString(name)
	bw.WriteString(`_bucket{`)
	if labelStr != "" {
		bw.WriteString(labelStr)
		bw.WriteByte(',')
	}
	bw.WriteString(`le="`)
	bw.WriteString(le)
	bw.WriteString(`"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

func formatBound(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler serves the registry in Prometheus text format (a /metrics
// endpoint).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// debugSample is one series in the /debug/obs JSON dump.
type debugSample struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	Count  int64             `json:"count,omitempty"`
}

type debugFamily struct {
	Type    string        `json:"type"`
	Help    string        `json:"help,omitempty"`
	Metrics []debugSample `json:"metrics"`
}

// DebugHandler serves a JSON dump of the registry (a /debug/obs
// endpoint): family name → {type, help, metrics:[{labels, value|sum+count}]}.
func (r *Registry) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.mu.Lock()
		out := make(map[string]debugFamily, len(r.order))
		type pending struct {
			name  string
			insts []*instrument
			fam   *family
		}
		pend := make([]pending, 0, len(r.order))
		for _, name := range r.order {
			f := r.families[name]
			pend = append(pend, pending{name: name, insts: append([]*instrument(nil), f.insts...), fam: f})
		}
		r.mu.Unlock()

		for _, p := range pend {
			df := debugFamily{Type: p.fam.kind.String(), Help: p.fam.help}
			for _, in := range p.insts {
				s := debugSample{}
				if len(in.labels) > 0 {
					s.Labels = make(map[string]string, len(in.labels))
					for _, l := range in.labels {
						s.Labels[l.Key] = l.Value
					}
				}
				if p.fam.kind == kindHistogram {
					s.Sum = in.hist.Sum()
					s.Count = in.hist.Count()
				} else {
					s.Value = in.value()
				}
				df.Metrics = append(df.Metrics, s)
			}
			out[p.name] = df
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}
