package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default upper-bound set for latency histograms:
// 50µs to 30s, roughly geometric. Values are seconds.
var DurationBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// SizeBuckets is the default upper-bound set for byte-size histograms:
// 1 KiB to 256 MiB in powers of four.
var SizeBuckets = []float64{
	1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// CountBuckets is the default upper-bound set for small-cardinality
// histograms (blocks per fetch run, chunks per request).
var CountBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics: counts[i] holds observations <= bounds[i], counts[len(bounds)]
// the +Inf overflow. Observe is lock-free and allocation-free; the bucket
// scan is linear, which beats binary search at the ~20-bucket sizes used
// here. Create via Registry.Histogram (or newHistogram in tests).
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; per-bucket, not cumulative
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be sorted ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. Bucket upper bounds are inclusive
// (v <= bound), matching Prometheus `le` semantics.
//
//atc:hotpath
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
//
//atc:hotpath
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Buckets returns the upper bounds and the cumulative count at each
// bound, Prometheus-style (the final +Inf count equals Count()). The
// snapshot is not atomic across buckets — counts read during concurrent
// Observes may be momentarily short — which is fine for monitoring.
func (h *Histogram) Buckets() (bounds []float64, cumulative []int64) {
	cumulative = make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return h.bounds, cumulative
}
