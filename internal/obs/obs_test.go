package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h", Label{Key: "x", Value: "1"})
	b := r.Counter("dup_total", "h", Label{Key: "x", Value: "1"})
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	other := r.Counter("dup_total", "h", Label{Key: "x", Value: "2"})
	if a == other {
		t.Fatal("different labels returned the same counter")
	}
	// Label order must not matter for identity.
	h1 := r.Histogram("hist", "h", CountBuckets,
		Label{Key: "a", Value: "1"}, Label{Key: "b", Value: "2"})
	h2 := r.Histogram("hist", "h", CountBuckets,
		Label{Key: "b", Value: "2"}, Label{Key: "a", Value: "1"})
	if h1 != h2 {
		t.Fatal("label order changed series identity")
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	r := NewRegistry()
	r.Counter("kind_total", "h")
	mustPanic("kind mismatch", func() { r.Gauge("kind_total", "h") })
	mustPanic("invalid name", func() { r.Counter("9starts_with_digit", "h") })
	mustPanic("invalid name chars", func() { r.Counter("has space", "h") })
	mustPanic("invalid label key", func() {
		r.Counter("lbl_total", "h", Label{Key: "bad-key", Value: "v"})
	})
	r.Histogram("hb", "h", []float64{1, 2})
	mustPanic("bounds mismatch", func() { r.Histogram("hb", "h", []float64{1, 3}) })
	mustPanic("unsorted bounds", func() { r.Histogram("hu", "h", []float64{2, 1}) })
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 5, 10})
	// Upper bounds are inclusive, per Prometheus `le` semantics.
	for _, v := range []float64{0.5, 1} { // -> bucket le=1
		h.Observe(v)
	}
	h.Observe(1.01) // -> le=5
	h.Observe(5)    // -> le=5
	h.Observe(10)   // -> le=10
	h.Observe(10.5) // -> +Inf
	bounds, cum := h.Buckets()
	if len(bounds) != 3 || len(cum) != 4 {
		t.Fatalf("bounds=%d cum=%d, want 3/4", len(bounds), len(cum))
	}
	want := []int64{2, 4, 5, 6} // cumulative
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	var wantSum float64
	for _, v := range []float64{0.5, 1, 1.01, 5, 10, 10.5} {
		wantSum += v // same rounding order as the CAS adds
	}
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
}

func TestConcurrentIncrement(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "h")
	g := r.Gauge("race_gauge", "h")
	h := r.Histogram("race_hist", "h", []float64{1, 2, 3})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(w % 4))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("hist count = %d, want %d", h.Count(), workers*per)
	}
	// Sum of integer observations must be exact despite the CAS float add.
	var wantSum float64
	for w := 0; w < workers; w++ {
		wantSum += float64(w%4) * per
	}
	if h.Sum() != wantSum {
		t.Fatalf("hist sum = %v, want %v", h.Sum(), wantSum)
	}
}

func TestFuncMetricReplace(t *testing.T) {
	r := NewRegistry()
	v := int64(3)
	r.CounterFunc("fn_total", "h", func() int64 { return v })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_total 3") {
		t.Fatalf("missing fn_total 3 in:\n%s", sb.String())
	}
	// Re-registration replaces the callback (last one wins), so
	// re-opening a pool under the same trace name is safe.
	r.CounterFunc("fn_total", "h", func() int64 { return 42 })
	sb.Reset()
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "fn_total 42") {
		t.Fatalf("replacement callback not used:\n%s", sb.String())
	}
}

func TestTraceSummary(t *testing.T) {
	tr := &Trace{}
	tr.Add(StageWait, 2*time.Millisecond)
	tr.AddNS(StageFetch, 1_000_000)
	tr.ChunkLoad()
	tr.ChunkLoad()
	tr.CacheHit()
	if tr.StageNS(StageWait) != 2_000_000 {
		t.Fatalf("wait = %d", tr.StageNS(StageWait))
	}
	if tr.TotalNS() != 3_000_000 {
		t.Fatalf("total = %d", tr.TotalNS())
	}
	s := tr.Summary()
	if len(s.Stages) != int(NumStages) || s.TotalNS != 3_000_000 ||
		s.ChunkLoads != 2 || s.CacheHits != 1 {
		t.Fatalf("summary = %+v", s)
	}
	hdr := tr.Header()
	for _, want := range []string{"wait=2ms", "fetch=1ms", "decompress=0s", "chunks=2", "hits=1"} {
		if !strings.Contains(hdr, want) {
			t.Fatalf("header %q missing %q", hdr, want)
		}
	}
}

func TestStageString(t *testing.T) {
	want := []string{"wait", "index", "fetch", "decompress", "translate", "deliver"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Fatalf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage should stringify as unknown")
	}
}

// TestObsAllocationFree is the hard guarantee behind BenchmarkObsOverhead:
// hot-path mutation ops must not allocate.
func TestObsAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_hist", "h", DurationBuckets)
	tr := &Trace{}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Inc()
		g.Dec()
		g.Set(7)
		h.Observe(0.004)
		h.ObserveDuration(3 * time.Millisecond)
		tr.Add(StageFetch, time.Microsecond)
		tr.AddNS(StageDeliver, 100)
		tr.ChunkLoad()
		tr.CacheHit()
	}); n != 0 {
		t.Fatalf("hot-path ops allocated %v times per run, want 0", n)
	}
}
