package obs

import (
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Stage identifies one phase of serving a decode request. The order here
// is the order stages run in; it is also the order they render in the
// ATC-Trace header and the JSON summary.
type Stage uint8

const (
	// StageWait is admission wait: time spent acquiring a pooled reader.
	StageWait Stage = iota
	// StageIndex is the chunk-index walk locating spans for the range.
	StageIndex
	// StageFetch is store/remote blob read time (I/O under decompress).
	StageFetch
	// StageDecompress is backend decompression of chunk blobs, net of
	// fetch time.
	StageDecompress
	// StageTranslate is imitation translation (ApplySlice) on lossy
	// records.
	StageTranslate
	// StageDeliver is copying decoded addresses out: the range-append in
	// core plus response serialization in the server.
	StageDeliver

	// NumStages is the number of Stage values; usable as an array length.
	NumStages
)

var stageNames = [NumStages]string{
	"wait", "index", "fetch", "decompress", "translate", "deliver",
}

func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Trace accumulates per-stage wall time and chunk-touch counts for one
// decode request. Add/AddNS may be called from concurrent goroutines; a
// Trace is attached to a Decompressor via SetTrace for the duration of
// one request and read once the request is done. The zero value is ready
// to use.
type Trace struct {
	ns         [NumStages]atomic.Int64
	chunkLoads atomic.Int64
	cacheHits  atomic.Int64
}

// Add accumulates d into stage s.
//
//atc:hotpath
func (t *Trace) Add(s Stage, d time.Duration) { t.ns[s].Add(int64(d)) }

// AddNS accumulates ns nanoseconds into stage s.
//
//atc:hotpath
func (t *Trace) AddNS(s Stage, ns int64) { t.ns[s].Add(ns) }

// ChunkLoad records one chunk blob read and decompressed for this
// request.
//
//atc:hotpath
func (t *Trace) ChunkLoad() { t.chunkLoads.Add(1) }

// CacheHit records one chunk served from a chunk cache for this request.
//
//atc:hotpath
func (t *Trace) CacheHit() { t.cacheHits.Add(1) }

// StageNS returns the accumulated nanoseconds for stage s.
func (t *Trace) StageNS(s Stage) int64 { return t.ns[s].Load() }

// ChunkLoads returns the number of chunk blobs loaded.
func (t *Trace) ChunkLoads() int64 { return t.chunkLoads.Load() }

// CacheHits returns the number of chunk-cache hits.
func (t *Trace) CacheHits() int64 { return t.cacheHits.Load() }

// TotalNS returns the sum over all stages. Stages are timed sections of
// one request, so the total is bounded by the request's wall time.
func (t *Trace) TotalNS() int64 {
	var sum int64
	for s := Stage(0); s < NumStages; s++ {
		sum += t.ns[s].Load()
	}
	return sum
}

// Header renders the compact ATC-Trace response-header summary, e.g.
//
//	wait=12µs index=3µs fetch=1.2ms decompress=8.4ms translate=0s deliver=410µs chunks=3 hits=1
//
// Every stage is present (zero stages render as 0s) so the header shape
// is stable for log scrapers.
func (t *Trace) Header() string {
	var b strings.Builder
	for s := Stage(0); s < NumStages; s++ {
		if s > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(stageNames[s])
		b.WriteByte('=')
		b.WriteString(time.Duration(t.ns[s].Load()).String())
	}
	b.WriteString(" chunks=")
	b.WriteString(strconv.FormatInt(t.chunkLoads.Load(), 10))
	b.WriteString(" hits=")
	b.WriteString(strconv.FormatInt(t.cacheHits.Load(), 10))
	return b.String()
}

// StageTiming is one stage's accumulated time in a TraceSummary.
type StageTiming struct {
	Stage string `json:"stage"`
	NS    int64  `json:"ns"`
}

// TraceSummary is the JSON form of a Trace, embedded in ?trace=1
// responses. All stages are present, in execution order.
type TraceSummary struct {
	Stages     []StageTiming `json:"stages"`
	ChunkLoads int64         `json:"chunkLoads"`
	CacheHits  int64         `json:"cacheHits"`
	TotalNS    int64         `json:"totalNs"`
}

// Summary snapshots the trace for JSON serialization.
func (t *Trace) Summary() TraceSummary {
	s := TraceSummary{
		Stages:     make([]StageTiming, NumStages),
		ChunkLoads: t.chunkLoads.Load(),
		CacheHits:  t.cacheHits.Load(),
	}
	for st := Stage(0); st < NumStages; st++ {
		ns := t.ns[st].Load()
		s.Stages[st] = StageTiming{Stage: stageNames[st], NS: ns}
		s.TotalNS += ns
	}
	return s
}
