package obs

import (
	"testing"
	"time"
)

// BenchmarkObsOverhead is the acceptance gate for hot-path
// instrumentation cost: every mutation op the decode/encode paths call
// must run in a handful of ns with 0 B/op. TestObsAllocationFree
// enforces the allocation half as a hard test; this benchmark records
// the cycle cost for BENCH_prN.json.
func BenchmarkObsOverhead(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "h")
	g := r.Gauge("bench_gauge", "h")
	h := r.Histogram("bench_seconds", "h", DurationBuckets)
	tr := &Trace{}
	b.Run("CounterInc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("GaugeSet", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Set(int64(i))
		}
	})
	b.Run("HistogramObserve", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(0.003)
		}
	})
	b.Run("HistogramObserveDuration", func(b *testing.B) {
		b.ReportAllocs()
		d := 250 * time.Microsecond
		for i := 0; i < b.N; i++ {
			h.ObserveDuration(d)
		}
	})
	b.Run("TraceAdd", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.AddNS(StageFetch, 100)
		}
	})
	b.Run("ParallelCounter", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("ParallelHistogram", func(b *testing.B) {
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				h.Observe(0.01)
			}
		})
	})
}
