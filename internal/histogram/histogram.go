// Package histogram implements the sorted byte-histograms of Section 5.1 of
// the paper: per-byte-position value histograms over an interval of 64-bit
// addresses, their sorted forms, the stable-sort permutations, the interval
// distance D, and the byte translations t[j] used to imitate one interval
// with another.
//
// For an interval of L addresses, h[j](i) counts addresses whose byte of
// order j equals i (j=0 is the least-significant byte, matching the paper's
// Σ b[j]·2^(8j) convention). The sorted histogram h′[j] lists the 256 counts
// in decreasing order; the permutation p[j] satisfies h′[j](i) = h[j](p[j](i))
// and breaks ties by increasing byte value (a stable sort). The distance
// between intervals is D(A,B) = max_j d(h′A[j], h′B[j]) with
// d(h1,h2) = (1/L)·Σ|h1(i)−h2(i)| ∈ [0,2]. The translation from A to B is
// the permutation t[j] with t[j](pA[j](i)) = pB[j](i): it maps the k-th most
// frequent byte value of A at position j to the k-th most frequent byte
// value of B.
package histogram

import "sort"

// Positions is the number of byte positions in a 64-bit address.
const Positions = 8

// Set holds the per-position histograms of one interval, plus the sorted
// forms and permutations required for distance and translation computation.
// Build one incrementally with Add and call Finalize before comparing.
type Set struct {
	N      int64                 // number of addresses accumulated
	H      [Positions][256]int64 // unsorted histograms
	Sorted [Positions][256]int64 // histograms sorted in decreasing order
	Perm   [Positions][256]uint8 // Perm[j][rank] = byte value at that rank
	final  bool
}

// Add accumulates one address into the histograms.
func (s *Set) Add(addr uint64) {
	for j := 0; j < Positions; j++ {
		s.H[j][byte(addr>>(8*uint(j)))]++
	}
	s.N++
	s.final = false
}

// AddSlice accumulates many addresses. The eight byte positions are
// unrolled so the per-address cost is eight increments, not a counted
// loop of shifts — this is the serial section of the lossy front end, so
// it runs once per coded address.
//
//atc:hotpath
func (s *Set) AddSlice(addrs []uint64) {
	h := &s.H
	for _, a := range addrs {
		h[0][byte(a)]++
		h[1][byte(a>>8)]++
		h[2][byte(a>>16)]++
		h[3][byte(a>>24)]++
		h[4][byte(a>>32)]++
		h[5][byte(a>>40)]++
		h[6][byte(a>>48)]++
		h[7][byte(a>>56)]++
	}
	s.N += int64(len(addrs))
	s.final = false
}

// Finalize computes the sorted histograms and permutations. It is
// idempotent and must be called after the last Add and before Distance,
// UnsortedDistance or Translation are used with this Set.
func (s *Set) Finalize() {
	if s.final {
		return
	}
	for j := 0; j < Positions; j++ {
		var idx [256]int
		for i := range idx {
			idx[i] = i
		}
		h := &s.H[j]
		sort.SliceStable(idx[:], func(a, b int) bool {
			return h[idx[a]] > h[idx[b]]
		})
		for rank, v := range idx {
			s.Perm[j][rank] = uint8(v)
			s.Sorted[j][rank] = h[v]
		}
	}
	s.final = true
}

// Compute builds a finalized Set from a slice of addresses.
func Compute(addrs []uint64) *Set {
	s := &Set{}
	s.AddSlice(addrs)
	s.Finalize()
	return s
}

// ComputeInto builds a finalized Set from addrs into s, reusing its
// storage: a caller recycling Sets (the compressor's front end keeps a
// small pool, refilled by phase-table evictions) computes per-interval
// histograms with zero allocation. Equivalent to *s = *Compute(addrs).
//
//atc:hotpath
func ComputeInto(s *Set, addrs []uint64) {
	s.Reset()
	s.AddSlice(addrs)
	s.Finalize()
}

// Reset clears the Set for reuse.
func (s *Set) Reset() {
	*s = Set{}
}

// SummaryBuckets is the number of rank buckets a Summary condenses each
// sorted 256-entry histogram into (32 consecutive ranks per bucket).
const SummaryBuckets = 8

// summaryBucketShift converts a rank in [0,256) to its bucket: 256/8 = 32
// ranks per bucket = rank >> 5.
const summaryBucketShift = 5

// Summary condenses a finalized Set into Positions × SummaryBuckets
// normalised bucket masses: Summary[j][k] is the fraction of the interval's
// addresses whose byte-j value has sorted rank in bucket k. Because each
// bucket mass is a partial sum of the normalised sorted histogram, the
// triangle inequality gives, for any two intervals A and B and every
// position j,
//
//	d(h′A[j], h′B[j]) = Σ_i |a_i/N_A − b_i/N_B|
//	                  ≥ Σ_k |Σ_{i∈bucket k} (a_i/N_A − b_i/N_B)|
//	                  = Σ_k |S_A[j][k] − S_B[j][k]|
//
// so SummaryDistance is a lower bound on the per-position sorted-histogram
// distance, and the interval distance D(A,B) = max_j d_j is bounded below
// by max_j Σ_k |S_A[j][k] − S_B[j][k]|. phase.Table uses this to reject
// non-matching candidates with 64 float operations instead of 2048.
type Summary [Positions][SummaryBuckets]float64

// Summarize fills sum from a finalized Set. An empty Set (N == 0)
// summarises to all zeros.
func Summarize(s *Set, sum *Summary) {
	if s.N == 0 {
		*sum = Summary{}
		return
	}
	f := 1 / float64(s.N)
	for j := 0; j < Positions; j++ {
		h := &s.Sorted[j]
		b := &sum[j]
		*b = [SummaryBuckets]float64{}
		for i := 0; i < 256; i++ {
			b[i>>summaryBucketShift] += float64(h[i]) * f
		}
	}
}

// SummaryDistance returns the bucket-mass L1 distance at byte position j:
// Σ_k |a[j][k] − b[j][k]|, a lower bound on PositionDistance of the
// underlying sets (see Summary). The zero-N edge case is covered too: an
// empty interval's summary is all zeros, so the bound is Σ_k b[j][k] ≤ 1,
// below the 2 that histDistance reports for an empty-vs-nonempty pair.
//
//atc:hotpath
func SummaryDistance(a, b *Summary, j int) float64 {
	sum := 0.0
	for k := 0; k < SummaryBuckets; k++ {
		d := a[j][k] - b[j][k]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// histDistance computes Σ|a(i)/na − b(i)/nb| over the 256 entries, which is
// the paper's d with each histogram normalised by its own interval length.
// For equal lengths this is exactly (1/L)·Σ|a−b|. Result in [0,2].
func histDistance(a, b *[256]int64, na, nb int64) float64 {
	if na == 0 || nb == 0 {
		if na == nb {
			return 0
		}
		return 2
	}
	fa, fb := 1/float64(na), 1/float64(nb)
	sum := 0.0
	for i := 0; i < 256; i++ {
		d := float64(a[i])*fa - float64(b[i])*fb
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum
}

// Distance computes the interval distance D(A,B): the maximum over byte
// positions of the sorted-histogram distance. Both sets must be finalized.
func Distance(a, b *Set) float64 {
	max := 0.0
	for j := 0; j < Positions; j++ {
		d := histDistance(&a.Sorted[j], &b.Sorted[j], a.N, b.N)
		if d > max {
			max = d
		}
	}
	return max
}

// PositionDistance computes d(h′A[j], h′B[j]) on the sorted histograms at
// byte position j — one of the eight terms whose maximum is Distance. Both
// sets must be finalized. phase.Table evaluates positions one at a time so
// a candidate whose running maximum already disqualifies it is abandoned
// without touching the remaining positions; a fully-evaluated candidate's
// maximum is bit-identical to Distance.
//
//atc:hotpath
func PositionDistance(a, b *Set, j int) float64 {
	return histDistance(&a.Sorted[j], &b.Sorted[j], a.N, b.N)
}

// UnsortedDistance computes d(hA[j], hB[j]) on the raw (unsorted)
// histograms at byte position j. The paper uses it to decide whether byte
// position j needs translation at all.
func UnsortedDistance(a, b *Set, j int) float64 {
	return histDistance(&a.H[j], &b.H[j], a.N, b.N)
}

// Translation returns the byte translation t at position j mapping interval
// a's byte values onto interval b's: t[pA[j](i)] = pB[j](i).
// Both sets must be finalized. The result is always a permutation of
// [0,255].
func Translation(a, b *Set, j int) (t [256]uint8) {
	for i := 0; i < 256; i++ {
		t[a.Perm[j][i]] = b.Perm[j][i]
	}
	return t
}

// TranslationMask returns a bitmask of byte positions j for which the
// unsorted histogram distance between a and b exceeds eps — exactly the
// positions the paper translates ("we translate bytes only for values of j
// for which this is necessary").
func TranslationMask(a, b *Set, eps float64) uint8 {
	var mask uint8
	for j := 0; j < Positions; j++ {
		if UnsortedDistance(a, b, j) > eps {
			mask |= 1 << uint(j)
		}
	}
	return mask
}

// Translations bundles the per-position byte translations of one imitation.
type Translations struct {
	Mask uint8                 // positions to translate
	T    [Positions][256]uint8 // translation tables (identity where unused)
}

// BuildTranslations computes the translations needed to make interval a
// imitate interval b at threshold eps.
func BuildTranslations(a, b *Set, eps float64) *Translations {
	tr := &Translations{Mask: TranslationMask(a, b, eps)}
	for j := 0; j < Positions; j++ {
		if tr.Mask&(1<<uint(j)) != 0 {
			tr.T[j] = Translation(a, b, j)
		} else {
			for i := 0; i < 256; i++ {
				tr.T[j][i] = uint8(i)
			}
		}
	}
	return tr
}

// Apply rewrites one address through the translations.
func (tr *Translations) Apply(addr uint64) uint64 {
	if tr.Mask == 0 {
		return addr
	}
	var out uint64
	for j := 0; j < Positions; j++ {
		b := byte(addr >> (8 * uint(j)))
		if tr.Mask&(1<<uint(j)) != 0 {
			b = tr.T[j][b]
		}
		out |= uint64(b) << (8 * uint(j))
	}
	return out
}

// ApplySlice rewrites addresses in place.
func (tr *Translations) ApplySlice(addrs []uint64) {
	if tr.Mask == 0 {
		return
	}
	for i, a := range addrs {
		addrs[i] = tr.Apply(a)
	}
}

// IsPermutation reports whether table t is a permutation of [0,255];
// translations always are, and property tests rely on this check.
func IsPermutation(t *[256]uint8) bool {
	var seen [256]bool
	for _, v := range t {
		if seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}
