package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// paperIntervalA / paperIntervalB reproduce the §5.1 worked example:
// A = F200..F2FF, B = F300..F3FF (16-bit addresses).
func paperIntervalA() []uint64 {
	out := make([]uint64, 256)
	for i := range out {
		out[i] = 0xF200 + uint64(i)
	}
	return out
}

func paperIntervalB() []uint64 {
	out := make([]uint64, 256)
	for i := range out {
		out[i] = 0xF300 + uint64(i)
	}
	return out
}

func TestPaperExampleDistanceZero(t *testing.T) {
	a := Compute(paperIntervalA())
	b := Compute(paperIntervalB())
	if d := Distance(a, b); d != 0 {
		t.Fatalf("D(A,B) = %v, want 0 (sorted histograms identical)", d)
	}
}

func TestPaperExampleUnsortedDistances(t *testing.T) {
	a := Compute(paperIntervalA())
	b := Compute(paperIntervalB())
	// Byte 0: both uniform over 00..FF -> d = 0.
	if d := UnsortedDistance(a, b, 0); d != 0 {
		t.Fatalf("d(hA[0],hB[0]) = %v, want 0", d)
	}
	// Byte 1: A all F2, B all F3 -> d = 2 (maximum).
	if d := UnsortedDistance(a, b, 1); d != 2 {
		t.Fatalf("d(hA[1],hB[1]) = %v, want 2", d)
	}
}

func TestPaperExampleTranslation(t *testing.T) {
	a := Compute(paperIntervalA())
	b := Compute(paperIntervalB())
	tr := Translation(a, b, 1)
	if tr[0xF2] != 0xF3 {
		t.Fatalf("t[1](F2) = %#x, want F3", tr[0xF2])
	}
	if !IsPermutation(&tr) {
		t.Fatal("translation is not a permutation")
	}
	// The full imitation must be perfect on this example (paper: "the
	// imitation is perfect").
	full := BuildTranslations(a, b, 0.1)
	if full.Mask != 1<<1 {
		t.Fatalf("translation mask = %08b, want only byte 1", full.Mask)
	}
	addrs := paperIntervalA()
	full.ApplySlice(addrs)
	want := paperIntervalB()
	for i := range addrs {
		if addrs[i] != want[i] {
			t.Fatalf("imitated addr %d = %#x, want %#x", i, addrs[i], want[i])
		}
	}
}

func TestPermIsStableOnTies(t *testing.T) {
	// All byte values equally frequent: permutation must be the identity.
	addrs := make([]uint64, 256)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	s := Compute(addrs)
	for i := 0; i < 256; i++ {
		if s.Perm[0][i] != uint8(i) {
			t.Fatalf("tie-broken perm[0][%d] = %d, want %d", i, s.Perm[0][i], i)
		}
	}
}

func TestSortedIsDecreasing(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 5000)
	for i := range addrs {
		addrs[i] = rng.Uint64() >> uint(rng.Intn(40))
	}
	s := Compute(addrs)
	for j := 0; j < Positions; j++ {
		for i := 1; i < 256; i++ {
			if s.Sorted[j][i] > s.Sorted[j][i-1] {
				t.Fatalf("Sorted[%d] not decreasing at %d", j, i)
			}
		}
	}
}

func TestSortedMatchesPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	addrs := make([]uint64, 1000)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	s := Compute(addrs)
	for j := 0; j < Positions; j++ {
		var total int64
		for i := 0; i < 256; i++ {
			if s.Sorted[j][i] != s.H[j][s.Perm[j][i]] {
				t.Fatalf("Sorted[%d][%d] != H[%d][Perm[%d][%d]]", j, i, j, j, i)
			}
			total += s.Sorted[j][i]
		}
		if total != s.N {
			t.Fatalf("histogram %d sums to %d, want %d", j, total, s.N)
		}
	}
}

func TestDistanceMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func() *Set {
		addrs := make([]uint64, 500)
		for i := range addrs {
			addrs[i] = rng.Uint64() & 0xFFFFFF
		}
		return Compute(addrs)
	}
	a, b, c := mk(), mk(), mk()
	// Identity: D(x,x) = 0.
	if Distance(a, a) != 0 {
		t.Fatal("D(a,a) != 0")
	}
	// Symmetry.
	if math.Abs(Distance(a, b)-Distance(b, a)) > 1e-12 {
		t.Fatal("distance not symmetric")
	}
	// Bounds.
	for _, pair := range [][2]*Set{{a, b}, {b, c}, {a, c}} {
		d := Distance(pair[0], pair[1])
		if d < 0 || d > 2 {
			t.Fatalf("distance %v outside [0,2]", d)
		}
	}
	// Triangle inequality (holds per position for L1, and max of sums
	// bounds sum of maxes the right way).
	if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-12 {
		t.Fatal("triangle inequality violated")
	}
}

func TestDistanceEmptySets(t *testing.T) {
	a, b := &Set{}, &Set{}
	a.Finalize()
	b.Finalize()
	if Distance(a, b) != 0 {
		t.Fatal("two empty sets should have distance 0")
	}
	c := Compute([]uint64{1, 2, 3})
	if Distance(a, c) != 2 {
		t.Fatalf("empty-vs-nonempty distance = %v, want 2", Distance(a, c))
	}
}

func TestDistanceDifferentLengthsNormalised(t *testing.T) {
	// The same uniform structure at different lengths should be close.
	short := make([]uint64, 256)
	long := make([]uint64, 1024)
	for i := range short {
		short[i] = uint64(i)
	}
	for i := range long {
		long[i] = uint64(i % 256)
	}
	d := Distance(Compute(short), Compute(long))
	if d > 1e-9 {
		t.Fatalf("distance between scaled-identical intervals = %v", d)
	}
}

func TestTranslationIsPermutationProperty(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		as := make([]uint64, 300)
		bs := make([]uint64, 300)
		for i := range as {
			as[i] = ra.Uint64()
			bs[i] = rb.Uint64()
		}
		a, b := Compute(as), Compute(bs)
		for j := 0; j < Positions; j++ {
			tr := Translation(a, b, j)
			if !IsPermutation(&tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranslationMapsMostFrequentToMostFrequent(t *testing.T) {
	// Paper: "the most frequent byte of order j in interval A is replaced
	// with the most frequent byte of order j in interval B."
	as := []uint64{0x11, 0x11, 0x11, 0x22}
	bs := []uint64{0x77, 0x77, 0x77, 0x88}
	a, b := Compute(as), Compute(bs)
	tr := Translation(a, b, 0)
	if tr[0x11] != 0x77 {
		t.Fatalf("t(0x11) = %#x, want 0x77", tr[0x11])
	}
	if tr[0x22] != 0x88 {
		t.Fatalf("t(0x22) = %#x, want 0x88", tr[0x22])
	}
}

func TestTranslationPreservesSortedHistograms(t *testing.T) {
	// After translating A by t = Translation(A,B), the translated interval
	// must have exactly B's byte-value ranking structure wherever
	// histograms are "compatible"; at minimum its sorted histograms equal
	// A's (translation is a bijection on byte values).
	rng := rand.New(rand.NewSource(9))
	as := make([]uint64, 2000)
	bs := make([]uint64, 2000)
	for i := range as {
		as[i] = uint64(rng.Intn(1 << 20))
		bs[i] = uint64(rng.Intn(1<<20)) + (1 << 30)
	}
	a, b := Compute(as), Compute(bs)
	tr := BuildTranslations(a, b, 0.0) // translate every position
	translated := append([]uint64(nil), as...)
	tr.ApplySlice(translated)
	ta := Compute(translated)
	for j := 0; j < Positions; j++ {
		for i := 0; i < 256; i++ {
			if ta.Sorted[j][i] != a.Sorted[j][i] {
				t.Fatalf("translation changed sorted histogram at j=%d rank=%d", j, i)
			}
		}
	}
	// And the translated interval is now close to B in D-distance terms
	// whenever A and B were close in sorted-histogram terms.
	if Distance(ta, a) != 0 {
		t.Fatal("translated interval should keep A's sorted histograms")
	}
}

func TestTemporalStructurePreserved(t *testing.T) {
	// Translation is a per-byte bijection, so equal addresses stay equal
	// and distinct addresses stay distinct (the paper's argument for why
	// imitation preserves temporal structure).
	rng := rand.New(rand.NewSource(10))
	as := make([]uint64, 1000)
	for i := range as {
		as[i] = uint64(rng.Intn(64)) * 0x10001 // few distinct values, repeats
	}
	bs := make([]uint64, 1000)
	for i := range bs {
		bs[i] = uint64(rng.Intn(64))*0x10001 + 0x4200000000
	}
	a, b := Compute(as), Compute(bs)
	tr := BuildTranslations(a, b, 0.1)
	translated := append([]uint64(nil), as...)
	tr.ApplySlice(translated)
	for i := range as {
		for k := i + 1; k < len(as); k++ {
			if (as[i] == as[k]) != (translated[i] == translated[k]) {
				t.Fatalf("equality pattern broken at (%d,%d)", i, k)
			}
		}
	}
}

func TestIdentityTranslationWhenMaskZero(t *testing.T) {
	a := Compute(paperIntervalA())
	tr := BuildTranslations(a, a, 0.1)
	if tr.Mask != 0 {
		t.Fatalf("self-imitation mask = %08b, want 0", tr.Mask)
	}
	if got := tr.Apply(0xDEADBEEF); got != 0xDEADBEEF {
		t.Fatalf("identity translation changed address: %#x", got)
	}
}

func TestAddMatchesCompute(t *testing.T) {
	addrs := []uint64{1, 5, 5, 9, 1 << 40}
	var s Set
	for _, a := range addrs {
		s.Add(a)
	}
	s.Finalize()
	c := Compute(addrs)
	if Distance(&s, c) != 0 || s.N != c.N {
		t.Fatal("incremental and batch construction disagree")
	}
}

func TestResetClears(t *testing.T) {
	s := Compute([]uint64{1, 2, 3})
	s.Reset()
	if s.N != 0 || s.H[0][1] != 0 {
		t.Fatal("Reset did not clear")
	}
}

func BenchmarkAdd(b *testing.B) {
	var s Set
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i) * 0x9E3779B97F4A7C15)
	}
}

func BenchmarkDistance(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	as := make([]uint64, 10000)
	bs := make([]uint64, 10000)
	for i := range as {
		as[i], bs[i] = rng.Uint64(), rng.Uint64()
	}
	x, y := Compute(as), Compute(bs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

// TestComputeIntoMatchesCompute: reuse of a dirty Set must be equivalent
// to a fresh Compute, including the AddSlice bulk path.
func TestComputeIntoMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]uint64, 5000)
	b := make([]uint64, 3000)
	for i := range a {
		a[i] = rng.Uint64()
	}
	for i := range b {
		b[i] = rng.Uint64() & 0xffff
	}
	s := Compute(a) // dirty it
	ComputeInto(s, b)
	want := Compute(b)
	if *s != *want {
		t.Fatal("ComputeInto on a dirty Set differs from a fresh Compute")
	}
}

// TestAddSliceMatchesAdd pins the unrolled bulk accumulate against the
// per-address path.
func TestAddSliceMatchesAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	addrs := make([]uint64, 4000)
	for i := range addrs {
		addrs[i] = rng.Uint64()
	}
	var bulk, single Set
	bulk.AddSlice(addrs)
	for _, a := range addrs {
		single.Add(a)
	}
	bulk.Finalize()
	single.Finalize()
	if bulk != single {
		t.Fatal("AddSlice diverges from per-address Add")
	}
}
