package cachefilter

import (
	"testing"

	"atc/internal/cache"
)

func TestMissProducesBlockAddress(t *testing.T) {
	f := NewL1()
	blk, ok := f.Access(Access{Addr: 0x12345, Kind: Load})
	if !ok {
		t.Fatal("cold access did not miss")
	}
	if blk != 0x12345>>6 {
		t.Fatalf("block = %#x, want %#x", blk, 0x12345>>6)
	}
}

func TestHitProducesNothing(t *testing.T) {
	f := NewL1()
	f.Access(Access{Addr: 0x1000, Kind: Load})
	if _, ok := f.Access(Access{Addr: 0x1008, Kind: Load}); ok {
		t.Fatal("same-block access missed")
	}
}

func TestTopSixBitsNull(t *testing.T) {
	// The paper: block addresses have their 6 most significant bits null.
	f := NewL1()
	blk, ok := f.Access(Access{Addr: ^uint64(0), Kind: Load})
	if !ok {
		t.Fatal("no miss")
	}
	if blk>>58 != 0 {
		t.Fatalf("block address %#x has nonzero top 6 bits", blk)
	}
}

func TestInstructionAndDataStreamsSeparate(t *testing.T) {
	f := NewL1()
	// Same address through both kinds: each cache takes its own cold miss.
	if _, ok := f.Access(Access{Addr: 0x4000, Kind: Instr}); !ok {
		t.Fatal("I-stream cold miss missing")
	}
	if _, ok := f.Access(Access{Addr: 0x4000, Kind: Load}); !ok {
		t.Fatal("D-stream cold miss missing (streams must be independent)")
	}
	if _, ok := f.Access(Access{Addr: 0x4000, Kind: Instr}); ok {
		t.Fatal("I-stream re-access missed")
	}
	if _, ok := f.Access(Access{Addr: 0x4000, Kind: Store}); ok {
		t.Fatal("D-stream re-access (store) missed")
	}
	if f.ICacheStats().Accesses != 2 || f.DCacheStats().Accesses != 2 {
		t.Fatalf("stream accounting: I=%+v D=%+v", f.ICacheStats(), f.DCacheStats())
	}
}

func TestSequentialStreamMissesOncePerBlock(t *testing.T) {
	f := NewL1()
	misses := 0
	// Stream 64 KB (beyond L1) of sequential 8-byte loads: one miss per
	// 64-byte block.
	for a := uint64(0); a < 64<<10; a += 8 {
		if _, ok := f.Access(Access{Addr: a, Kind: Load}); ok {
			misses++
		}
	}
	if misses != 1024 {
		t.Fatalf("sequential stream misses = %d, want 1024", misses)
	}
}

func TestCollect(t *testing.T) {
	f := NewL1()
	src := &stride{stride: 8}
	got := Collect(f, src, 100)
	if len(got) != 100 {
		t.Fatalf("collected %d blocks", len(got))
	}
	// A pure sequential stream yields consecutive block addresses.
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("blocks not consecutive at %d: %d -> %d", i, got[i-1], got[i])
		}
	}
}

type stride struct {
	next   uint64
	stride uint64
}

func (s *stride) Next() Access {
	a := Access{Addr: s.next, Kind: Load}
	s.next += s.stride
	return a
}

func TestCustomConfigs(t *testing.T) {
	small := cache.Config{SizeBytes: 1 << 10, Ways: 2, BlockBytes: 64}
	f, err := New(small, small)
	if err != nil {
		t.Fatal(err)
	}
	// A 2 KB loop footprint misses forever in a 1 KB cache.
	misses := 0
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < 2<<10; a += 64 {
			if _, ok := f.Access(Access{Addr: a, Kind: Load}); ok {
				misses++
			}
		}
	}
	if misses != 4*32 {
		t.Fatalf("thrash misses = %d, want %d", misses, 4*32)
	}
}

func TestBadConfigRejected(t *testing.T) {
	bad := cache.Config{SizeBytes: 100, Ways: 3, BlockBytes: 60}
	if _, err := New(bad, cache.L1Config); err == nil {
		t.Fatal("bad I-cache config accepted")
	}
	if _, err := New(cache.L1Config, bad); err == nil {
		t.Fatal("bad D-cache config accepted")
	}
}
