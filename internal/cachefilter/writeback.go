package cachefilter

import (
	"atc/internal/cache"
	"atc/internal/trace"
)

// TaggedFilter is a Filter variant that also reports write-backs: dirty
// blocks evicted from the data cache are emitted as records tagged
// trace.TagWriteBack, demand misses as trace.TagDemandMiss — using the 6
// spare top bits exactly as the paper suggests. Instruction fetches never
// dirty a line, so the instruction cache produces demand misses only.
type TaggedFilter struct {
	icache *cache.Cache
	dcache *cache.Cache
	out    []uint64 // reusable record buffer returned by Access
}

// NewTagged returns a TaggedFilter with the given cache configurations.
func NewTagged(icfg, dcfg cache.Config) (*TaggedFilter, error) {
	ic, err := cache.New(icfg)
	if err != nil {
		return nil, err
	}
	dc, err := cache.New(dcfg)
	if err != nil {
		return nil, err
	}
	return &TaggedFilter{icache: ic, dcache: dc}, nil
}

// NewTaggedL1 returns a TaggedFilter with the paper's L1 configuration.
func NewTaggedL1() *TaggedFilter {
	f, err := NewTagged(cache.L1Config, cache.L1Config)
	if err != nil {
		panic(err) // L1Config is known good
	}
	return f
}

// Access performs one reference and returns 0, 1 or 2 tagged trace
// records: a demand miss for the access itself (if it missed) followed by
// a write-back for the victim (if a dirty block was evicted). The slice
// aliases an internal buffer valid until the next call.
func (f *TaggedFilter) Access(a Access) []uint64 {
	c := f.dcache
	if a.Kind == Instr {
		c = f.icache
	}
	blk := c.BlockAddr(a.Addr)
	hit, victim, wb := c.AccessBlockWrite(blk, a.Kind == Store)
	f.out = f.out[:0]
	if !hit {
		f.out = append(f.out, trace.WithTag(blk, trace.TagDemandMiss))
	}
	if wb {
		f.out = append(f.out, trace.WithTag(victim, trace.TagWriteBack))
	}
	return f.out
}

// ICacheStats returns the instruction cache counters.
func (f *TaggedFilter) ICacheStats() cache.Stats { return f.icache.Stats() }

// DCacheStats returns the data cache counters.
func (f *TaggedFilter) DCacheStats() cache.Stats { return f.dcache.Stats() }

// CollectTagged drives a Source through the filter until n tagged records
// have been produced.
func CollectTagged(f *TaggedFilter, src Source, n int) []uint64 {
	out := make([]uint64, 0, n)
	for len(out) < n {
		for _, rec := range f.Access(src.Next()) {
			out = append(out, rec)
			if len(out) == n {
				break
			}
		}
	}
	return out
}
