// Package cachefilter produces cache-filtered address traces: the sequence
// of block addresses that miss in a level-1 instruction cache or a level-1
// data cache, in program order. This is the trace format the ATC compressor
// takes as input and matches the paper's setup (§4.2): both caches 32 KB,
// 4-way set-associative, LRU, 64-byte blocks. Because block addresses are
// byte addresses shifted right by 6, the 6 most significant bits of every
// trace record are zero, as the paper requires.
package cachefilter

import (
	"atc/internal/cache"
)

// Kind distinguishes the access streams feeding the two L1 caches.
type Kind uint8

const (
	// Instr is an instruction fetch (filtered by the L1I).
	Instr Kind = iota
	// Load is a data read (filtered by the L1D).
	Load
	// Store is a data write (filtered by the L1D; write-allocate).
	Store
)

// Access is one memory reference by byte address.
type Access struct {
	Addr uint64
	Kind Kind
}

// Filter runs accesses through the two L1 caches and collects the block
// addresses of misses.
type Filter struct {
	icache *cache.Cache
	dcache *cache.Cache
}

// New returns a Filter with the given I and D cache configurations.
func New(icfg, dcfg cache.Config) (*Filter, error) {
	ic, err := cache.New(icfg)
	if err != nil {
		return nil, err
	}
	dc, err := cache.New(dcfg)
	if err != nil {
		return nil, err
	}
	return &Filter{icache: ic, dcache: dc}, nil
}

// NewL1 returns a Filter with the paper's L1 configuration for both caches.
func NewL1() *Filter {
	f, err := New(cache.L1Config, cache.L1Config)
	if err != nil {
		panic(err) // L1Config is known good
	}
	return f
}

// Access performs one reference. If it misses its cache, the missing block
// address is returned with ok=true.
func (f *Filter) Access(a Access) (block uint64, ok bool) {
	c := f.dcache
	if a.Kind == Instr {
		c = f.icache
	}
	blk := c.BlockAddr(a.Addr)
	if c.AccessBlock(blk) {
		return 0, false
	}
	return blk, true
}

// ICacheStats returns the instruction cache counters.
func (f *Filter) ICacheStats() cache.Stats { return f.icache.Stats() }

// DCacheStats returns the data cache counters.
func (f *Filter) DCacheStats() cache.Stats { return f.dcache.Stats() }

// Source produces an unbounded stream of raw accesses.
type Source interface {
	Next() Access
}

// Collect drives a Source through the filter until n filtered (missing)
// block addresses have been produced, and returns them.
func Collect(f *Filter, src Source, n int) []uint64 {
	out := make([]uint64, 0, n)
	for len(out) < n {
		if blk, ok := f.Access(src.Next()); ok {
			out = append(out, blk)
		}
	}
	return out
}
