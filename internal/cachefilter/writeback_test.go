package cachefilter

import (
	"testing"

	"atc/internal/cache"
	"atc/internal/trace"
)

func TestWriteBackEmittedOnDirtyEviction(t *testing.T) {
	// Single-set, 2-way data cache: write block 1, write block 2, then
	// read blocks 3 and 4: evictions of 1 and 2 must surface write-backs.
	small := cache.Config{SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64}
	f, err := NewTagged(small, small)
	if err != nil {
		t.Fatal(err)
	}
	recs := f.Access(Access{Addr: 1 * 64, Kind: Store})
	if len(recs) != 1 {
		t.Fatalf("first store records = %v", recs)
	}
	f.Access(Access{Addr: 2 * 64, Kind: Store})
	recs = append([]uint64(nil), f.Access(Access{Addr: 3 * 64, Kind: Load})...)
	if len(recs) != 2 {
		t.Fatalf("eviction records = %d, want miss + writeback", len(recs))
	}
	blk, tag := trace.SplitTag(recs[0])
	if tag != trace.TagDemandMiss || blk != 3 {
		t.Fatalf("record 0 = (%d, %d)", blk, tag)
	}
	blk, tag = trace.SplitTag(recs[1])
	if tag != trace.TagWriteBack || blk != 1 {
		t.Fatalf("record 1 = (%d, %d), want write-back of block 1", blk, tag)
	}
}

func TestCleanEvictionNoWriteBack(t *testing.T) {
	small := cache.Config{SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64}
	f, err := NewTagged(small, small)
	if err != nil {
		t.Fatal(err)
	}
	f.Access(Access{Addr: 1 * 64, Kind: Load})
	f.Access(Access{Addr: 2 * 64, Kind: Load})
	recs := f.Access(Access{Addr: 3 * 64, Kind: Load})
	if len(recs) != 1 {
		t.Fatalf("clean eviction emitted %d records, want 1 (demand miss only)", len(recs))
	}
}

func TestWriteHitDirtiesLine(t *testing.T) {
	small := cache.Config{SizeBytes: 2 * 64, Ways: 2, BlockBytes: 64}
	f, err := NewTagged(small, small)
	if err != nil {
		t.Fatal(err)
	}
	f.Access(Access{Addr: 1 * 64, Kind: Load})  // clean fill
	f.Access(Access{Addr: 1 * 64, Kind: Store}) // dirty on hit
	f.Access(Access{Addr: 2 * 64, Kind: Load})
	recs := f.Access(Access{Addr: 3 * 64, Kind: Load}) // evicts block 1
	found := false
	for _, r := range recs {
		if blk, tag := trace.SplitTag(r); tag == trace.TagWriteBack && blk == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("store-hit-dirtied line evicted without a write-back record")
	}
}

func TestInstructionStreamNeverWritesBack(t *testing.T) {
	f := NewTaggedL1()
	src := &stride{stride: 4}
	for i := 0; i < 500_000; i++ {
		a := src.Next()
		a.Kind = Instr
		for _, r := range f.Access(a) {
			if _, tag := trace.SplitTag(r); tag == trace.TagWriteBack {
				t.Fatal("instruction stream produced a write-back")
			}
		}
	}
}

func TestCollectTagged(t *testing.T) {
	f := NewTaggedL1()
	// Store-heavy stream over > L1 footprint: write-backs must appear.
	src := &storeStride{}
	recs := CollectTagged(f, src, 10_000)
	if len(recs) != 10_000 {
		t.Fatalf("collected %d records", len(recs))
	}
	wb := 0
	for _, r := range recs {
		blk, tag := trace.SplitTag(r)
		if blk>>58 != 0 {
			t.Fatal("address leaked into tag bits")
		}
		if tag == trace.TagWriteBack {
			wb++
		}
	}
	if wb == 0 {
		t.Fatal("store-thrash produced no write-backs")
	}
	// Steady-state thrash with all stores: roughly one write-back per
	// demand miss.
	if wb < len(recs)/4 {
		t.Fatalf("only %d write-backs of %d records", wb, len(recs))
	}
}

// storeStride streams stores over a 2x-L1 footprint, wrapping.
type storeStride struct {
	next uint64
}

func (s *storeStride) Next() Access {
	a := Access{Addr: s.next, Kind: Store}
	s.next = (s.next + 64) % (64 << 10)
	return a
}

func TestTagsRoundTrip(t *testing.T) {
	cases := []struct {
		block uint64
		tag   trace.Tag
	}{
		{0, trace.TagDemandMiss},
		{0x3FF_FFFF_FFFF_FFFF, trace.TagWriteBack},
		{12345, trace.TagWriteBack},
	}
	for _, c := range cases {
		rec := trace.WithTag(c.block, c.tag)
		blk, tag := trace.SplitTag(rec)
		if blk != c.block || tag != c.tag {
			t.Fatalf("round trip (%#x,%d) -> (%#x,%d)", c.block, c.tag, blk, tag)
		}
	}
	// Untagged records read back as demand misses.
	if _, tag := trace.SplitTag(999); tag != trace.TagDemandMiss {
		t.Fatal("untagged record not a demand miss")
	}
}
