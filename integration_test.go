package atc_test

// Integration tests across the whole pipeline: workload generation → L1
// filtering → ATC compression → decompression → cache and predictor
// simulation. These check the end-to-end invariants the paper's evaluation
// rests on, not individual modules.

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"atc"
	"atc/internal/cdc"
	"atc/internal/cheetah"
	"atc/internal/histogram"
	"atc/internal/workload"
)

func generate(t testing.TB, model string, n int) []uint64 {
	t.Helper()
	addrs, err := workload.GenerateFiltered(model, n, 2009)
	if err != nil {
		t.Fatal(err)
	}
	return addrs
}

func TestIntegrationLosslessEveryModel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 20_000
	for _, m := range workload.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			addrs := generate(t, m.Name, n)
			dir := t.TempDir()
			if _, err := atc.Compress(dir, addrs, atc.WithBufferAddrs(n/10)); err != nil {
				t.Fatal(err)
			}
			got, err := atc.Decompress(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != n {
				t.Fatalf("decoded %d addrs", len(got))
			}
			for i := range addrs {
				if got[i] != addrs[i] {
					t.Fatalf("lossless mismatch at %d", i)
				}
			}
		})
	}
}

func TestIntegrationLossyInvariantsEveryModel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const n = 30_000
	for _, m := range workload.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			addrs := generate(t, m.Name, n)
			dir := t.TempDir()
			if _, err := atc.Compress(dir, addrs,
				atc.WithMode(atc.Lossy),
				atc.WithIntervalLen(n/20),
				atc.WithBufferAddrs(n/100),
			); err != nil {
				t.Fatal(err)
			}
			got, err := atc.Decompress(dir)
			if err != nil {
				t.Fatal(err)
			}
			// Invariant 1: sequence length preserved (paper §5: "it is
			// important to preserve the sequence length").
			if len(got) != n {
				t.Fatalf("lossy decode length %d, want %d", len(got), n)
			}
			// Invariant 2: per-interval sorted byte-histograms within 2ε of
			// the originals (matched intervals are within ε by construction;
			// chunks are exact).
			const L = 30_000 / 20
			for p := 0; p*L < n; p++ {
				ho := histogram.Compute(addrs[p*L : (p+1)*L])
				hd := histogram.Compute(got[p*L : (p+1)*L])
				if d := histogram.Distance(ho, hd); d > 0.2+1e-9 {
					t.Fatalf("interval %d: histogram distance %v > 2eps", p, d)
				}
			}
		})
	}
}

func TestIntegrationMissRatioPreservation(t *testing.T) {
	// The paper's core fidelity claim (Figure 3): miss-ratio curves from
	// the lossy trace track the exact ones.
	const n = 100_000
	for _, model := range []string{"462.libquantum", "453.povray", "429.mcf"} {
		exact := generate(t, model, n)
		dir := t.TempDir()
		if _, err := atc.Compress(dir, exact,
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(n/50),
			atc.WithBufferAddrs(n/500),
		); err != nil {
			t.Fatal(err)
		}
		approx, err := atc.Decompress(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, sets := range []int{256, 1024} {
			se := cheetah.MustNew(sets, 16)
			sa := cheetah.MustNew(sets, 16)
			se.AccessAll(exact)
			sa.AccessAll(approx)
			for _, a := range []int{1, 4, 16} {
				d := math.Abs(se.MissRatio(a) - sa.MissRatio(a))
				if d > 0.15 {
					t.Errorf("%s sets=%d assoc=%d: miss ratio distortion %.3f", model, sets, a, d)
				}
			}
		}
	}
}

func TestIntegrationPredictabilityPreservation(t *testing.T) {
	// Figure 5's claim: the C/DC outcome mix carries over to lossy traces.
	// Check the coarse property on the two extremes: a fully predictable
	// stream stays predictable, a random one stays unpredictable.
	const n = 100_000
	cases := []struct {
		model       string
		wantCorrect bool
	}{
		{"462.libquantum", true},
		{"458.sjeng", false},
	}
	for _, c := range cases {
		exact := generate(t, c.model, n)
		dir := t.TempDir()
		if _, err := atc.Compress(dir, exact,
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(n/50),
			atc.WithBufferAddrs(n/500),
		); err != nil {
			t.Fatal(err)
		}
		approx, err := atc.Decompress(dir)
		if err != nil {
			t.Fatal(err)
		}
		p := cdc.MustNew(cdc.PaperConfig)
		p.AccessAll(approx)
		_, correct, _ := p.Counts().Fractions()
		if c.wantCorrect && correct < 0.7 {
			t.Errorf("%s: lossy trace only %.2f correct; predictability lost", c.model, correct)
		}
		if !c.wantCorrect && correct > 0.3 {
			t.Errorf("%s: lossy trace %.2f correct; spurious predictability introduced", c.model, correct)
		}
	}
}

func TestIntegrationCorruptChunkPayloadDetected(t *testing.T) {
	// Flip bytes inside a chunk file: decoding must fail (CRC or framing),
	// never silently return wrong data of the right length.
	const n = 20_000
	addrs := generate(t, "429.mcf", n)
	dir := t.TempDir()
	if _, err := atc.Compress(dir, addrs, atc.WithBufferAddrs(n/10)); err != nil {
		t.Fatal(err)
	}
	chunk := filepath.Join(dir, "1.bsc")
	data, err := os.ReadFile(chunk)
	if err != nil {
		t.Fatal(err)
	}
	mutated := append([]byte(nil), data...)
	for i := len(mutated) / 3; i < len(mutated)/3+20 && i < len(mutated); i++ {
		mutated[i] ^= 0x5A
	}
	if err := os.WriteFile(chunk, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := atc.Decompress(dir)
	if err == nil {
		same := len(got) == len(addrs)
		if same {
			for i := range addrs {
				if got[i] != addrs[i] {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatal("corrupt chunk decoded silently to wrong data")
		}
	}
}

func TestIntegrationLosslessAndLossyAgreeOnFirstChunk(t *testing.T) {
	// The first interval always becomes a chunk, so its decode must be
	// bit-exact even in lossy mode.
	const n = 50_000
	const L = 10_000
	addrs := generate(t, "483.xalancbmk", n)
	dir := t.TempDir()
	if _, err := atc.Compress(dir, addrs,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(L),
		atc.WithBufferAddrs(L/10),
	); err != nil {
		t.Fatal(err)
	}
	got, err := atc.Decompress(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < L; i++ {
		if got[i] != addrs[i] {
			t.Fatalf("first interval not exact at %d", i)
		}
	}
}

func TestIntegrationDeterministicOutput(t *testing.T) {
	// Same input, same options => byte-identical compressed directories
	// (required for reproducible experiments).
	const n = 30_000
	addrs := generate(t, "450.soplex", n)
	dirs := [2]string{t.TempDir(), t.TempDir()}
	for _, dir := range dirs {
		if _, err := atc.Compress(dir, addrs,
			atc.WithMode(atc.Lossy),
			atc.WithIntervalLen(n/20),
			atc.WithBufferAddrs(n/100),
		); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dirs[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		a, err := os.ReadFile(filepath.Join(dirs[0], e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirs[1], e.Name()))
		if err != nil {
			t.Fatalf("file %s missing from second run: %v", e.Name(), err)
		}
		if string(a) != string(b) {
			t.Fatalf("file %s differs between identical runs", e.Name())
		}
	}
}

func TestIntegrationArchiveMatchesDirectory(t *testing.T) {
	// The PR 3 acceptance bound on a real workload: the archive layout
	// decodes to the identical stream as the directory layout and costs
	// less than 1% extra bits per address (header + TOC only).
	const n = 60_000
	addrs := generate(t, "429.mcf", n)
	opts := []atc.Option{
		atc.WithMode(atc.Lossy), atc.WithIntervalLen(n / 10), atc.WithBufferAddrs(n / 50),
	}
	dir := t.TempDir()
	if _, err := atc.Compress(dir, addrs, opts...); err != nil {
		t.Fatal(err)
	}
	arc := filepath.Join(t.TempDir(), "trace.atc")
	w, err := atc.CreateArchive(arc, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fromDir, err := atc.Decompress(dir)
	if err != nil {
		t.Fatal(err)
	}
	fromArc, err := atc.Decompress(arc)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromDir) != len(fromArc) {
		t.Fatalf("decode lengths: dir %d, archive %d", len(fromDir), len(fromArc))
	}
	for i := range fromDir {
		if fromDir[i] != fromArc[i] {
			t.Fatalf("decoded streams diverge at %d", i)
		}
	}
	dirBPA, err := atc.BitsPerAddress(dir, n)
	if err != nil {
		t.Fatal(err)
	}
	arcBPA, err := atc.BitsPerAddress(arc, n)
	if err != nil {
		t.Fatal(err)
	}
	if overhead := arcBPA/dirBPA - 1; overhead < 0 || overhead > 0.01 {
		t.Fatalf("archive BPA overhead %.3f%% outside [0%%, 1%%] (dir %.4f, archive %.4f)",
			overhead*100, dirBPA, arcBPA)
	}
}
