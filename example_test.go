package atc_test

import (
	"fmt"
	"io"
	"os"

	"atc"
)

// ExampleCompress demonstrates the one-shot helpers.
func ExampleCompress() {
	dir, _ := os.MkdirTemp("", "atc-example")
	defer os.RemoveAll(dir)

	trace := []uint64{0x1000, 0x1001, 0x1002, 0x1000, 0x1003}
	stats, err := atc.Compress(dir, trace)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("mode:", stats.Mode)
	fmt.Println("addresses:", stats.TotalAddrs)

	back, _ := atc.Decompress(dir)
	fmt.Println("round trip exact:", fmt.Sprint(back) == fmt.Sprint(trace))
	// Output:
	// mode: lossless
	// addresses: 5
	// round trip exact: true
}

// ExampleNewWriter shows the streaming interface, mirroring the paper's
// bin2atc tool (Figure 6).
func ExampleNewWriter() {
	dir, _ := os.MkdirTemp("", "atc-example")
	defer os.RemoveAll(dir)

	w, err := atc.NewWriter(dir,
		atc.WithMode(atc.Lossy),
		atc.WithIntervalLen(100),
		atc.WithBufferAddrs(50),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i := uint64(0); i < 1000; i++ {
		if err := w.Code(i % 100); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	if err := w.Close(); err != nil {
		fmt.Println("error:", err)
		return
	}
	s := w.Stats()
	fmt.Println("intervals:", s.Intervals)
	fmt.Println("chunks:", s.Chunks)
	// Output:
	// intervals: 10
	// chunks: 1
}

// ExampleWithSegmentAddrs shows segmented lossless mode: the stream is cut
// into fixed-size segments, each compressed as an independent chunk by the
// worker pool (format v2), and decoded segments stream back in order.
func ExampleWithSegmentAddrs() {
	dir, _ := os.MkdirTemp("", "atc-example")
	defer os.RemoveAll(dir)

	trace := make([]uint64, 1000)
	for i := range trace {
		trace[i] = uint64(i) * 64
	}
	stats, err := atc.Compress(dir, trace,
		atc.WithSegmentAddrs(250), // four segments
		atc.WithWorkers(4),
	)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("segments:", stats.Chunks)

	back, _ := atc.Decompress(dir)
	fmt.Println("round trip exact:", fmt.Sprint(back) == fmt.Sprint(trace))
	// Output:
	// segments: 4
	// round trip exact: true
}

// ExampleNewReader shows streaming decode, mirroring atc2bin (Figure 7).
func ExampleNewReader() {
	dir, _ := os.MkdirTemp("", "atc-example")
	defer os.RemoveAll(dir)
	if _, err := atc.Compress(dir, []uint64{7, 8, 9}); err != nil {
		fmt.Println("error:", err)
		return
	}

	r, err := atc.NewReader(dir)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer r.Close()
	for {
		v, err := r.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(v)
	}
	// Output:
	// 7
	// 8
	// 9
}

// ExampleReader_DecodeRange shows random access: an arbitrary window of
// the trace is decoded without consuming the stream front to back.
func ExampleReader_DecodeRange() {
	dir, err := os.MkdirTemp("", "atc-example-range")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer os.RemoveAll(dir)

	addrs := make([]uint64, 10_000)
	for i := range addrs {
		addrs[i] = uint64(i) * 64
	}
	if _, err := atc.Compress(dir, addrs, atc.WithSegmentAddrs(2500), atc.WithBufferAddrs(500)); err != nil {
		fmt.Println("error:", err)
		return
	}

	r, err := atc.NewReader(dir)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer r.Close()
	// Only the segment covering [6000, 6003) is decompressed.
	window, err := r.DecodeRange(6000, 6003)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(window, r.ChunkReads(), "chunk read")
	// Output:
	// [384000 384064 384128] 1 chunk read
}
