// Command atcpack converts a compressed trace between the directory
// layout and the single-file .atc archive layout. Blobs are copied
// verbatim — no recompression — so the trace encoding is byte-identical
// on both sides and the conversion is loss-free in both directions.
//
// Usage:
//
//	atcpack trace-dir trace.atc          # pack a directory into an archive
//	atcpack -unpack trace.atc trace-dir  # expand an archive into a directory
//	atcpack -verify src dst              # either direction, then re-compare
//
// The -unpack source may also be an http(s) URL: the archive is then read
// in place over HTTP Range requests (read-only), so a trace parked in
// object storage can be expanded locally without an explicit download
// step. URLs are refused as destinations — atcpack never writes remotely.
//
// The destination must not already hold a trace (a non-empty archive file
// or a directory with a MANIFEST is refused).
package main

import (
	"flag"
	"fmt"
	"os"

	"atc/internal/store"
)

func main() {
	unpack := flag.Bool("unpack", false, "expand an archive into a directory (default packs a directory into an archive)")
	verify := flag.Bool("verify", false, "after converting, re-open both sides and compare every blob byte for byte")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcpack [-unpack] [-verify] <src> <dst>\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	src, dst := flag.Arg(0), flag.Arg(1)
	if store.IsRemoteURL(dst) {
		fatal(fmt.Errorf("destination %s is a URL; atcpack only writes locally", dst))
	}
	if store.IsRemoteURL(src) && !*unpack {
		fatal(fmt.Errorf("source %s is a URL; remote archives can only be unpacked (-unpack)", src))
	}

	if *unpack {
		if err := convert(openArchiveSrc(src), createDirDst(dst), *verify); err != nil {
			fatal(err)
		}
	} else {
		if err := convert(openDirSrc(src), createArchiveDst(dst), *verify); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "atcpack: %s -> %s\n", src, dst)
}

// opener defers store construction so convert owns the open/close order.
type opener func() (store.Store, error)

func openDirSrc(dir string) opener {
	return func() (store.Store, error) { return store.OpenDir(dir), nil }
}

func openArchiveSrc(path string) opener {
	if store.IsRemoteURL(path) {
		return func() (store.Store, error) { return store.OpenRemote(path, store.RemoteOptions{}) }
	}
	return func() (store.Store, error) { return store.OpenArchive(path) }
}

func createDirDst(dir string) opener {
	return func() (store.Store, error) { return store.CreateDir(dir) }
}

func createArchiveDst(path string) opener {
	return func() (store.Store, error) { return store.CreateArchive(path) }
}

func convert(srcOpen, dstOpen opener, verify bool) error {
	src, err := srcOpen()
	if err != nil {
		return err
	}
	defer src.Close()
	// Refuse to "pack" something that is not a compressed trace, and
	// refuse a destination that already holds one.
	if _, err := store.ReadBlob(src, "MANIFEST"); err != nil {
		return fmt.Errorf("source is not a compressed trace (no MANIFEST): %w", err)
	}
	dst, err := dstOpen()
	if err != nil {
		return err
	}
	if b, err := dst.Open("MANIFEST"); err == nil {
		b.Close()
		dst.Close()
		return fmt.Errorf("destination already contains a compressed trace")
	}
	if err := store.CopyAll(dst, src); err != nil {
		// Remove whatever was already copied so a repaired re-run is not
		// blocked by a half-populated destination; Abort then cleans up
		// the container itself (archive file, or a directory we created).
		if names, lerr := src.List(); lerr == nil {
			for _, name := range names {
				dst.Remove(name)
			}
		}
		store.Abort(dst)
		return err
	}
	if err := dst.Close(); err != nil {
		return err
	}
	if !verify {
		return nil
	}
	// Re-open the destination read-only so the comparison exercises the
	// same path a consumer will: for an archive that includes TOC
	// validation and per-blob CRC checks.
	check, err := reopen(dst)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	defer check.Close()
	equal, err := store.Equal(src, check)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if !equal {
		return fmt.Errorf("verify: destination does not match source")
	}
	fmt.Fprintln(os.Stderr, "atcpack: verified, all blobs byte-identical")
	return nil
}

func reopen(dst store.Store) (store.Store, error) {
	switch s := dst.(type) {
	case *store.ArchiveStore:
		return store.OpenArchive(s.Path())
	case *store.DirStore:
		return store.OpenDir(s.Dir()), nil
	default:
		return nil, fmt.Errorf("unsupported destination store %T", dst)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atcpack:", err)
	os.Exit(1)
}
