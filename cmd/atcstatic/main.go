// Command atcstatic serves a directory of files over HTTP with full
// Range-request support — the minimal S3-stand-in origin a RemoteStore
// needs. net/http's file server answers ranged GETs with 206 and honors
// If-Match/If-None-Match preconditions against strong validators, which
// is exactly the contract atcserve -remote, atcinfo and atcpack rely on;
// generic one-line static servers (python3 -m http.server) serve whole
// files only and cannot back a remote store.
//
// It exists for local development and CI smoke tests of the remote read
// path; production traces belong behind real object storage or a CDN.
//
// Usage:
//
//	atcstatic [-addr 127.0.0.1:8406] [dir]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8406", "listen address")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcstatic [-addr host:port] [dir]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	dir := "."
	switch flag.NArg() {
	case 0:
	case 1:
		dir = flag.Arg(0)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		log.Fatalf("atcstatic: %s is not a directory", dir)
	}
	log.Printf("serving %s on %s (ranged reads supported)", dir, *addr)
	log.Fatal(http.ListenAndServe(*addr, http.FileServer(http.Dir(dir))))
}
