// Command atc2bin decompresses an ATC trace — a directory or a
// single-file .atc archive, auto-detected — to standard output as raw
// 64-bit little-endian values, mirroring the example program of the
// paper's Figure 7.
//
// Usage:
//
//	atc2bin <directory | file.atc> | cachesim -sets 4096
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"atc"
	"atc/internal/trace"
)

func main() {
	noTranslate := flag.Bool("no-translation", false, "disable byte translation (the Figure 4 ablation)")
	readahead := flag.Int("readahead", 0, "decoded batches buffered ahead of consumption (default 2; negative = synchronous)")
	archive := flag.Bool("archive", false, "require a single-file .atc archive (no directory fallback)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atc2bin [flags] <directory | file.atc>\nwrites 64-bit LE values to stdout\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var opts []atc.ReadOption
	if *noTranslate {
		opts = append(opts, atc.WithoutTranslations())
	}
	if *readahead != 0 {
		opts = append(opts, atc.WithReadahead(*readahead))
	}
	newReader := atc.NewReader
	if *archive {
		newReader = atc.OpenArchive
	}
	r, err := newReader(flag.Arg(0), opts...)
	if err != nil {
		fatal(err)
	}
	defer r.Close()
	w := trace.NewWriter(os.Stdout)
	for {
		x, err := r.Decode()
		if err == io.EOF {
			break
		}
		if err != nil {
			fatal(err)
		}
		if err := w.Write(x); err != nil {
			fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "atc2bin: %d addresses (%s, format v%d)\n",
		w.Count(), r.Mode(), r.FormatVersion())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atc2bin:", err)
	os.Exit(1)
}
