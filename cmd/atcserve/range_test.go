package main

// Tests of inbound HTTP Range support on binary /addrs responses and of
// the process-wide byte-budgeted chunk cache wired through the serving
// stack.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"atc"
	"atc/internal/obs"
)

// fetchWithRange issues a GET with optional Range/If-Range/If-None-Match
// headers and returns the response with its body read.
func fetchWithRange(t *testing.T, url string, hdrs map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdrs {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestServeAddrsByteRangeProperty cross-checks ~30 random byte ranges —
// deliberately not 8-byte aligned — against the corresponding slice of
// the full binary payload.
func TestServeAddrsByteRangeProperty(t *testing.T) {
	_, srv := serveTestTrace(t, 2, 1<<20)
	url := srv.URL + "/traces/unit/addrs?from=100&to=2100"
	full := fetchBytes(t, url)
	byteLen := int64(len(full))
	if byteLen != 2000*8 {
		t.Fatalf("full payload = %d bytes, want %d", byteLen, 2000*8)
	}
	rng := rand.New(rand.NewSource(206))
	type tc struct {
		header     string
		start, end int64 // expected inclusive window
	}
	cases := []tc{
		{"bytes=0-15999", 0, 15999},            // exact full range is still a 206
		{"bytes=0-0", 0, 0},                    // single byte
		{"bytes=15999-15999", 15999, 15999},    // last byte
		{"bytes=8000-", 8000, 15999},           // open-ended
		{"bytes=-72", 15928, 15999},            // suffix
		{"bytes=-1000000", 0, 15999},           // oversized suffix clamps to everything
		{"bytes=15000-99999999", 15000, 15999}, // last-byte position clamps
		{"bytes=3-20", 3, 20},                  // unaligned head and tail
		{"bytes= 40-80", 40, 80},               // optional whitespace
	}
	for i := 0; i < 30; i++ {
		a := rng.Int63n(byteLen)
		b := a + rng.Int63n(byteLen-a)
		cases = append(cases, tc{fmt.Sprintf("bytes=%d-%d", a, b), a, b})
	}
	for _, c := range cases {
		resp, body := fetchWithRange(t, url, map[string]string{"Range": c.header})
		if resp.StatusCode != http.StatusPartialContent {
			t.Fatalf("Range %q: status %d, want 206", c.header, resp.StatusCode)
		}
		wantCR := fmt.Sprintf("bytes %d-%d/%d", c.start, c.end, byteLen)
		if got := resp.Header.Get("Content-Range"); got != wantCR {
			t.Fatalf("Range %q: Content-Range %q, want %q", c.header, got, wantCR)
		}
		if resp.Header.Get("Accept-Ranges") != "bytes" {
			t.Fatalf("Range %q: missing Accept-Ranges: bytes", c.header)
		}
		if cl := resp.ContentLength; cl != c.end-c.start+1 {
			t.Fatalf("Range %q: Content-Length %d, want %d", c.header, cl, c.end-c.start+1)
		}
		if !bytes.Equal(body, full[c.start:c.end+1]) {
			t.Fatalf("Range %q: body (%d bytes) differs from full[%d:%d]", c.header, len(body), c.start, c.end+1)
		}
		if resp.Header.Get("Etag") == "" {
			t.Fatalf("Range %q: partial response lost its ETag", c.header)
		}
	}
}

// TestServeAddrsRangeIgnoredAndUnsatisfiable covers the RFC 9110 "ignore
// the header" cases (full 200) versus the 416 cases, plus the
// conditional-request interactions.
func TestServeAddrsRangeIgnoredAndUnsatisfiable(t *testing.T) {
	_, srv := serveTestTrace(t, 2, 1<<20)
	url := srv.URL + "/traces/unit/addrs?from=0&to=1000"
	const byteLen = 1000 * 8
	full := fetchBytes(t, url)

	// Ignored: serve the full representation with a 200.
	for _, h := range []string{
		"bytes=5-2",     // inverted
		"bytes=2-4,6-9", // multiple ranges
		"chunks=0-99",   // non-bytes unit
		"bytes=abc-def", // garbage
		"bytes=12",      // no dash
		"bytes=-0x10",   // non-decimal suffix
	} {
		resp, body := fetchWithRange(t, url, map[string]string{"Range": h})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("Range %q: status %d, want 200 (header ignored)", h, resp.StatusCode)
		}
		if !bytes.Equal(body, full) {
			t.Fatalf("Range %q: ignored-range body differs from full payload", h)
		}
	}

	// Unsatisfiable: 416 with the current length in Content-Range.
	for _, h := range []string{
		fmt.Sprintf("bytes=%d-", byteLen),        // first byte at the end
		fmt.Sprintf("bytes=%d-99999", byteLen+5), // past the end with a last byte
		"bytes=-0",                               // empty suffix
	} {
		resp, _ := fetchWithRange(t, url, map[string]string{"Range": h})
		if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
			t.Fatalf("Range %q: status %d, want 416", h, resp.StatusCode)
		}
		if got, want := resp.Header.Get("Content-Range"), fmt.Sprintf("bytes */%d", byteLen); got != want {
			t.Fatalf("Range %q: Content-Range %q, want %q", h, got, want)
		}
	}

	// If-Range with the current ETag keeps the partial; any other
	// validator falls back to the full representation.
	etagResp, _ := fetchWithRange(t, url, nil)
	etag := etagResp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("binary /addrs response has no ETag")
	}
	resp, body := fetchWithRange(t, url, map[string]string{"Range": "bytes=16-79", "If-Range": etag})
	if resp.StatusCode != http.StatusPartialContent || !bytes.Equal(body, full[16:80]) {
		t.Fatalf("If-Range match: status %d, %d bytes; want 206 with 64 bytes", resp.StatusCode, len(body))
	}
	resp, body = fetchWithRange(t, url, map[string]string{"Range": "bytes=16-79", "If-Range": `"stale"`})
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, full) {
		t.Fatalf("If-Range mismatch: status %d, %d bytes; want 200 full", resp.StatusCode, len(body))
	}

	// If-None-Match wins over Range: a cached client revalidates to 304.
	resp, _ = fetchWithRange(t, url, map[string]string{"Range": "bytes=0-7", "If-None-Match": etag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match + Range: status %d, want 304", resp.StatusCode)
	}

	// JSON is not the byte-addressable representation: Range is ignored.
	resp, body = fetchWithRange(t, url+"&format=json", map[string]string{"Range": "bytes=0-7"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("JSON + Range: status %d, want 200", resp.StatusCode)
	}
	var payload struct {
		Addrs []uint64 `json:"addrs"`
	}
	if err := json.Unmarshal(body, &payload); err != nil || len(payload.Addrs) != 1000 {
		t.Fatalf("JSON + Range: %d addrs, err %v; want full 1000", len(payload.Addrs), err)
	}
}

// TestServeAddrsRangeDecodesSubWindow proves the byte range maps to an
// address sub-window before decoding: a small range inside a large
// requested window touches one segment, not all of them.
func TestServeAddrsRangeDecodesSubWindow(t *testing.T) {
	addrs, srv := serveTestTrace(t, 1, 1<<20)
	url := srv.URL + fmt.Sprintf("/traces/unit/addrs?from=0&to=%d", len(addrs))
	// Bytes of addresses [6000, 6100): inside segment 1 of the 5000-address
	// segmented archive.
	resp, body := fetchWithRange(t, url, map[string]string{"Range": "bytes=48000-48799"})
	if resp.StatusCode != http.StatusPartialContent || len(body) != 800 {
		t.Fatalf("status %d, %d bytes; want 206 with 800", resp.StatusCode, len(body))
	}
	for i := 0; i < 100; i++ {
		want := addrs[6000+i]
		var got uint64
		for b := 0; b < 8; b++ {
			got |= uint64(body[i*8+b]) << (8 * b)
		}
		if got != want {
			t.Fatalf("addr %d = %#x, want %#x", 6000+i, got, want)
		}
	}
	meta := fetchMeta(t, srv.URL+"/traces/unit/meta")
	if meta.ChunkReads != 1 {
		t.Fatalf("chunkReads = %d after one single-segment byte range, want 1", meta.ChunkReads)
	}
}

// TestServeByteBudgetAcrossTraces is the serving-stack acceptance check
// for -cache-bytes: three traces decode through one byte-budgeted cache
// under concurrent load (run with -race), residency never exceeds the
// budget, and /meta surfaces the per-trace byte accounting.
func TestServeByteBudgetAcrossTraces(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	shared := atc.NewSharedChunkCacheBytes(96 << 10) // deliberately tight: forces cross-trace eviction
	pools := map[string]*tracePool{}
	total := 0
	for _, name := range []string{"alpha", "beta", "gamma"} {
		addrs := make([]uint64, 30_000)
		for i := range addrs {
			addrs[i] = uint64(rng.Intn(1 << 26))
		}
		path := filepath.Join(t.TempDir(), name+".atc")
		w, err := atc.CreateArchive(path,
			atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(2000), atc.WithBufferAddrs(1000))
		if err != nil {
			t.Fatal(err)
		}
		if err := w.CodeSlice(addrs); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		pool, err := openTrace(name, path, poolConfig{readers: 2, sharedBytes: shared})
		if err != nil {
			t.Fatal(err)
		}
		defer pool.close()
		pools[name] = pool
		total = len(addrs)
	}
	srv := httptest.NewServer((&server{pools: pools, maxRange: 1 << 20, maxWait: 5 * time.Second}).handler())
	defer srv.Close()

	stop := make(chan struct{})
	violations := make(chan int64, 1)
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if st := shared.Stats(); st.ResidentBytes > st.Budget {
				select {
				case violations <- st.ResidentBytes:
				default:
				}
				return
			}
		}
	}()
	var wg sync.WaitGroup
	for _, name := range []string{"alpha", "beta", "gamma"} {
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(name string, g int) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					from := ((g*20 + i) * 1700) % (total - 2000)
					url := srv.URL + fmt.Sprintf("/traces/%s/addrs?from=%d&to=%d", name, from, from+2000)
					resp, err := http.Get(url)
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := io.Copy(io.Discard, resp.Body); err != nil {
						t.Error(err)
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s: status %d", url, resp.StatusCode)
						return
					}
				}
			}(name, g)
		}
	}
	wg.Wait()
	close(stop)
	<-obsDone
	select {
	case over := <-violations:
		t.Fatalf("resident bytes reached %d, budget %d", over, shared.Stats().Budget)
	default:
	}
	st := shared.Stats()
	if st.ResidentBytes > st.Budget {
		t.Fatalf("final resident bytes %d exceed budget %d", st.ResidentBytes, st.Budget)
	}
	if st.Evictions == 0 {
		t.Fatal("tight budget across 3 traces produced no evictions; test lost its teeth")
	}
	// /meta surfaces the per-trace byte accounting, and the views sum to
	// the global occupancy.
	var viewBytes int64
	for _, name := range []string{"alpha", "beta", "gamma"} {
		meta := fetchMeta(t, srv.URL+"/traces/"+name+"/meta")
		if meta.SharedCacheLoads == 0 {
			t.Fatalf("%s: sharedCacheLoads = 0 after serving traffic", name)
		}
		viewBytes += meta.SharedCacheBytes
	}
	if viewBytes != st.ResidentBytes {
		t.Fatalf("per-trace byte sums = %d, global resident = %d", viewBytes, st.ResidentBytes)
	}
}

// TestTraceRegistrarCardinalityCap verifies -metric-traces: pools past
// the cap fold into one summed trace="other" series set instead of
// growing the registry per trace.
func TestTraceRegistrarCardinalityCap(t *testing.T) {
	reg := obs.NewRegistry()
	tr := newTraceRegistrar(reg, 2)
	shared := atc.NewSharedChunkCacheBytes(1 << 20)
	mk := func(name string, chunks int) *tracePool {
		p := &tracePool{name: name, sharedBytes: shared.ForTrace(name)}
		for id := 0; id < chunks; id++ {
			p.sharedBytes.Put(id, make([]uint64, 10)) // 80 bytes each
		}
		return p
	}
	tr.add(mk("a", 1))
	tr.add(mk("b", 2))
	tr.add(mk("c", 3))
	tr.add(mk("d", 5))
	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	out := rec.Body.String()
	for _, want := range []string{
		`atc_chunk_cache_resident_bytes{trace="a"} 80`,
		`atc_chunk_cache_resident_bytes{trace="b"} 160`,
		`atc_chunk_cache_resident_bytes{trace="other"} 640`, // c and d summed
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `trace="c"`) || strings.Contains(out, `trace="d"`) {
		t.Fatalf("capped traces leaked their own series:\n%s", out)
	}
}
