package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"atc"
	"atc/internal/store"
	"atc/internal/trace"
)

// serveTestTrace compresses a deterministic segmented archive and returns
// its raw addresses plus an httptest server over it.
func serveTestTrace(t *testing.T, readers int, maxRange int64) ([]uint64, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, 40_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool, err := openTrace("unit", path, poolConfig{readers: readers})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: maxRange, maxWait: 5 * time.Second}).handler())
	t.Cleanup(func() {
		srv.Close()
		pool.close()
	})
	return addrs, srv
}

func TestServeMeta(t *testing.T) {
	addrs, srv := serveTestTrace(t, 2, 1<<20)
	resp, err := http.Get(srv.URL + "/traces/unit/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta status %d", resp.StatusCode)
	}
	var meta traceMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.TotalAddrs != int64(len(addrs)) || meta.Mode != "lossless" || meta.Records != 8 {
		t.Fatalf("meta = %+v", meta)
	}
	if resp, err := http.Get(srv.URL + "/traces/nope/meta"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace status %d", resp.StatusCode)
		}
	}
}

func TestServeConcurrentRanges(t *testing.T) {
	// More in-flight requests than pooled readers: correctness under
	// contention, and the race detector watches the sharing.
	addrs, srv := serveTestTrace(t, 3, 1<<20)
	n := int64(len(addrs))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			from := rng.Int63n(n)
			to := from + rng.Int63n(min64(n-from, 9000))
			resp, err := http.Get(fmt.Sprintf("%s/traces/unit/addrs?from=%d&to=%d", srv.URL, from, to))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("range [%d,%d): status %d", from, to, resp.StatusCode)
				return
			}
			got, err := trace.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if int64(len(got)) != to-from {
				errs <- fmt.Errorf("range [%d,%d): %d addrs", from, to, len(got))
				return
			}
			for j, v := range got {
				if v != addrs[from+int64(j)] {
					errs <- fmt.Errorf("range [%d,%d): diverges at %d", from, to, j)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeMetaChunkReads covers the per-trace metrics hook: meta reports
// the pooled readers' cumulative chunk decompressions, range requests
// advance it by exactly the chunks their window overlaps, and re-reading
// a cached window leaves it unchanged.
func TestServeMetaChunkReads(t *testing.T) {
	_, srv := serveTestTrace(t, 1, 1<<20)
	readsNow := func() int64 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/traces/unit/meta")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var meta traceMeta
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		return meta.ChunkReads
	}
	if n := readsNow(); n != 0 {
		t.Fatalf("chunkReads before any range = %d, want 0", n)
	}
	fetch := func() {
		t.Helper()
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("range status %d", resp.StatusCode)
		}
	}
	// The window [4000, 7000) straddles segments 0 and 1 (5000 addresses
	// each): the first fetch decompresses exactly those two chunks.
	fetch()
	if n := readsNow(); n != 2 {
		t.Fatalf("chunkReads after first range = %d, want 2", n)
	}
	// Both chunks are pinned in the single pooled reader's cache: the
	// same window again is served from memory.
	fetch()
	if n := readsNow(); n != 2 {
		t.Fatalf("chunkReads after cached re-read = %d, want 2", n)
	}
}

func TestServeJSONFormat(t *testing.T) {
	addrs, srv := serveTestTrace(t, 1, 1<<20)
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=100&to=110&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		From  int64    `json:"from"`
		To    int64    `json:"to"`
		Addrs []uint64 `json:"addrs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.From != 100 || body.To != 110 || len(body.Addrs) != 10 {
		t.Fatalf("json body = %+v", body)
	}
	for i, v := range body.Addrs {
		if v != addrs[100+i] {
			t.Fatalf("json addrs diverge at %d", i)
		}
	}
}

func TestServeRangeErrors(t *testing.T) {
	_, srv := serveTestTrace(t, 1, 1<<20)
	cases := []struct {
		query string
		want  int
	}{
		{"from=10&to=5", http.StatusRequestedRangeNotSatisfiable},
		{"from=-1&to=5", http.StatusRequestedRangeNotSatisfiable},
		{"from=0&to=40001", http.StatusRequestedRangeNotSatisfiable},
		{"from=abc&to=5", http.StatusBadRequest},
		{"from=0&to=xyz", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.query, resp.StatusCode, c.want)
		}
	}
	// Default from/to serve the whole trace (within max-range).
	resp, err := http.Get(srv.URL + "/traces/unit/addrs")
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != 40_000 {
		t.Fatalf("full-trace fetch: %d addrs, err %v", len(got), err)
	}
}

func TestServeMaxRangeCap(t *testing.T) {
	// Windows above the per-request cap are refused with 413; windows at
	// the cap pass.
	_, srv := serveTestTrace(t, 1, 500)
	for _, c := range []struct {
		query string
		want  int
	}{
		{"from=0&to=501", http.StatusRequestEntityTooLarge},
		{"from=0&to=500", http.StatusOK},
	} {
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.query, resp.StatusCode, c.want)
		}
	}
}

func TestOpenTraceErrors(t *testing.T) {
	if _, err := openTrace("missing", filepath.Join(t.TempDir(), "missing.atc"), poolConfig{readers: 1}); err == nil {
		t.Fatal("openTrace on a missing path succeeded")
	}
	if _, err := openTrace("dir", t.TempDir(), poolConfig{readers: 1, mem: true}); err == nil {
		t.Fatal("openTrace -mem on a directory succeeded")
	}
	if _, err := openTrace("rem", "http://127.0.0.1:1/x.atc", poolConfig{readers: 1, mem: true}); err == nil {
		t.Fatal("openTrace -mem on a URL succeeded")
	}
}

// TestWriteDecodeErrorTaxonomy pins the decode-failure status mapping:
// corruption in the backing trace is a 502, a stale out-of-range window is
// a 416, anything unclassified stays a 500.
func TestWriteDecodeErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("%w: chunk 3: blob CRC mismatch", atc.ErrCorrupt), http.StatusBadGateway},
		{fmt.Errorf("%w: range [9, 12) outside trace [0, 10)", atc.ErrOutOfRange), http.StatusRequestedRangeNotSatisfiable},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeDecodeError(rec, "unit", c.err)
		if rec.Code != c.want {
			t.Errorf("writeDecodeError(%v): status %d, want %d", c.err, rec.Code, c.want)
		}
	}
}

// TestServeCorruptTrace502 damages one chunk blob of a directory trace and
// asserts the range endpoint reports 502 Bad Gateway — the request was
// valid; the stored data is not — rather than a generic 500 or a
// client-error status.
func TestServeCorruptTrace502(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	dir := t.TempDir()
	w, err := atc.NewWriter(dir,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	chunks, err := filepath.Glob(filepath.Join(dir, "[0-9]*.*"))
	if err != nil || len(chunks) == 0 {
		t.Fatalf("no chunk blobs found in %s (err %v)", dir, err)
	}
	victim := chunks[len(chunks)/2]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	pool, err := openTrace("unit", dir, poolConfig{readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: 1 << 20, maxWait: time.Second}).handler())
	defer func() {
		srv.Close()
		pool.close()
	}()

	resp, err := http.Get(srv.URL + "/traces/unit/addrs?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("corrupt chunk: status %d, want 502; body: %s", resp.StatusCode, body)
	}
}

// TestServeCacheHeaders pins the HTTP caching contract: /addrs payloads
// are immutable (strong per-range ETag, public max-age, 304 on
// revalidation without touching the pool), /meta and /traces revalidate
// on every use (no-cache), with /meta's identity-only ETag answering 304.
func TestServeCacheHeaders(t *testing.T) {
	_, srv := serveTestTrace(t, 1, 1<<20)
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=100&to=200")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("Etag")
	if etag == "" {
		t.Fatal("addrs response has no ETag")
	}
	if cc := resp.Header.Get("Cache-Control"); cc != addrsCacheControl {
		t.Fatalf("addrs Cache-Control = %q, want %q", cc, addrsCacheControl)
	}
	// A different range must carry a different validator.
	resp2, err := http.Get(srv.URL + "/traces/unit/addrs?from=100&to=201")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if other := resp2.Header.Get("Etag"); other == etag {
		t.Fatalf("distinct ranges share ETag %q", etag)
	}
	// Revalidation with the validator: 304, empty body.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/traces/unit/addrs?from=100&to=200", nil)
	req.Header.Set("If-None-Match", etag)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusNotModified || len(body) != 0 {
		t.Fatalf("revalidation: status %d, %d body bytes, want 304 and none", resp3.StatusCode, len(body))
	}

	for _, path := range []string{"/traces", "/traces/unit/meta"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
			t.Fatalf("%s Cache-Control = %q, want no-cache", path, cc)
		}
	}
	req, _ = http.NewRequest(http.MethodGet, srv.URL+"/traces/unit/meta", nil)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	metaTag := resp4.Header.Get("Etag")
	io.Copy(io.Discard, resp4.Body)
	resp4.Body.Close()
	if metaTag == "" {
		t.Fatal("meta response has no ETag")
	}
	req.Header.Set("If-None-Match", metaTag)
	resp5, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp5.Body.Close()
	if resp5.StatusCode != http.StatusNotModified {
		t.Fatalf("meta revalidation: status %d, want 304", resp5.StatusCode)
	}
}

// TestServeBusy429 pins pool admission: with the only pooled reader held
// and a tiny max-wait, a range request is refused with 429 + Retry-After
// instead of queueing unboundedly, and succeeds again once the reader
// returns.
func TestServeBusy429(t *testing.T) {
	addrs := make([]uint64, 2_000)
	for i := range addrs {
		addrs[i] = uint64(i)
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(1000), atc.WithBufferAddrs(500))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool, err := openTrace("unit", path, poolConfig{readers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: 1 << 20, maxWait: 10 * time.Millisecond}).handler())
	defer func() {
		srv.Close()
		pool.close()
	}()
	held := <-pool.readers // every reader is now busy
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=0&to=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("busy pool: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	pool.readers <- held
	resp, err = http.Get(srv.URL + "/traces/unit/addrs?from=0&to=10")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
}

// TestServeRemoteByteIdentity is the tentpole's end-to-end guarantee: the
// same archive served locally and through a RemoteStore (over a real
// Range-speaking HTTP server) yields byte-identical /addrs responses,
// and the remote pool's meta reports origin fetch counters.
func TestServeRemoteByteIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	addrs := make([]uint64, 40_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeFile(w, r, path)
	}))
	defer origin.Close()

	localPool, err := openTrace("unit", path, poolConfig{readers: 2, sharedCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	remotePool, err := openTrace("unit", origin.URL+"/unit.atc", poolConfig{
		readers: 2, sharedCache: 16,
		remote: store.RemoteOptions{BlockSize: 32 << 10, CacheBlocks: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	local := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": localPool}, maxRange: 1 << 20, maxWait: time.Second}).handler())
	remote := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": remotePool}, maxRange: 1 << 20, maxWait: time.Second}).handler())
	defer func() {
		local.Close()
		remote.Close()
		localPool.close()
		remotePool.close()
	}()

	for _, q := range []string{
		"from=0&to=1000", "from=4990&to=5010", "from=17000&to=23000", "from=39000&to=40000",
	} {
		want := fetchBytes(t, local.URL+"/traces/unit/addrs?"+q)
		got := fetchBytes(t, remote.URL+"/traces/unit/addrs?"+q)
		if !bytes.Equal(got, want) {
			t.Fatalf("range %s: remote bytes diverge from local (%d vs %d bytes)", q, len(got), len(want))
		}
	}
	meta := fetchMeta(t, remote.URL+"/traces/unit/meta")
	if meta.RemoteFetches == 0 || meta.RemoteBytes == 0 {
		t.Fatalf("remote meta counters = %+v, want nonzero origin traffic", meta)
	}
}

func fetchBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func fetchMeta(t *testing.T, url string) traceMeta {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta traceMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	return meta
}

// TestServeSharedCacheExactlyOnce wires the shared chunk cache through the
// whole serving stack: many concurrent requests for one hot window across
// a multi-reader pool decompress each covered chunk exactly once
// process-wide, observable through /meta's chunkReads.
func TestServeSharedCacheExactlyOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	addrs := make([]uint64, 40_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool, err := openTrace("unit", path, poolConfig{readers: 4, sharedCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: 1 << 20, maxWait: 5 * time.Second}).handler())
	defer func() {
		srv.Close()
		pool.close()
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The hot window [4000, 7000) straddles segments 0 and 1.
			resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
			if err != nil {
				errs <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	meta := fetchMeta(t, srv.URL+"/traces/unit/meta")
	if meta.ChunkReads != 2 {
		t.Fatalf("chunkReads = %d, want 2 (exactly one decompression per covered chunk across 16 requests x 4 readers)", meta.ChunkReads)
	}
	if meta.SharedCacheLoads != 2 || meta.SharedCacheHits == 0 {
		t.Fatalf("shared cache stats = loads %d hits %d, want 2 loads and nonzero hits", meta.SharedCacheLoads, meta.SharedCacheHits)
	}
}
