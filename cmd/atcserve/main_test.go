package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"atc"
	"atc/internal/trace"
)

// serveTestTrace compresses a deterministic segmented archive and returns
// its raw addresses plus an httptest server over it.
func serveTestTrace(t *testing.T, readers int, maxRange int64) ([]uint64, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(2009))
	addrs := make([]uint64, 40_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	path := filepath.Join(t.TempDir(), "unit.atc")
	w, err := atc.CreateArchive(path,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	pool, err := openTrace("unit", path, false, readers, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: maxRange}).handler())
	t.Cleanup(func() {
		srv.Close()
		pool.close()
	})
	return addrs, srv
}

func TestServeMeta(t *testing.T) {
	addrs, srv := serveTestTrace(t, 2, 1<<20)
	resp, err := http.Get(srv.URL + "/traces/unit/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("meta status %d", resp.StatusCode)
	}
	var meta traceMeta
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	if meta.TotalAddrs != int64(len(addrs)) || meta.Mode != "lossless" || meta.Records != 8 {
		t.Fatalf("meta = %+v", meta)
	}
	if resp, err := http.Get(srv.URL + "/traces/nope/meta"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown trace status %d", resp.StatusCode)
		}
	}
}

func TestServeConcurrentRanges(t *testing.T) {
	// More in-flight requests than pooled readers: correctness under
	// contention, and the race detector watches the sharing.
	addrs, srv := serveTestTrace(t, 3, 1<<20)
	n := int64(len(addrs))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(i)))
			from := rng.Int63n(n)
			to := from + rng.Int63n(min64(n-from, 9000))
			resp, err := http.Get(fmt.Sprintf("%s/traces/unit/addrs?from=%d&to=%d", srv.URL, from, to))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("range [%d,%d): status %d", from, to, resp.StatusCode)
				return
			}
			got, err := trace.ReadAll(resp.Body)
			if err != nil {
				errs <- err
				return
			}
			if int64(len(got)) != to-from {
				errs <- fmt.Errorf("range [%d,%d): %d addrs", from, to, len(got))
				return
			}
			for j, v := range got {
				if v != addrs[from+int64(j)] {
					errs <- fmt.Errorf("range [%d,%d): diverges at %d", from, to, j)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeMetaChunkReads covers the per-trace metrics hook: meta reports
// the pooled readers' cumulative chunk decompressions, range requests
// advance it by exactly the chunks their window overlaps, and re-reading
// a cached window leaves it unchanged.
func TestServeMetaChunkReads(t *testing.T) {
	_, srv := serveTestTrace(t, 1, 1<<20)
	readsNow := func() int64 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/traces/unit/meta")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var meta traceMeta
		if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
			t.Fatal(err)
		}
		return meta.ChunkReads
	}
	if n := readsNow(); n != 0 {
		t.Fatalf("chunkReads before any range = %d, want 0", n)
	}
	fetch := func() {
		t.Helper()
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=4000&to=7000")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("range status %d", resp.StatusCode)
		}
	}
	// The window [4000, 7000) straddles segments 0 and 1 (5000 addresses
	// each): the first fetch decompresses exactly those two chunks.
	fetch()
	if n := readsNow(); n != 2 {
		t.Fatalf("chunkReads after first range = %d, want 2", n)
	}
	// Both chunks are pinned in the single pooled reader's cache: the
	// same window again is served from memory.
	fetch()
	if n := readsNow(); n != 2 {
		t.Fatalf("chunkReads after cached re-read = %d, want 2", n)
	}
}

func TestServeJSONFormat(t *testing.T) {
	addrs, srv := serveTestTrace(t, 1, 1<<20)
	resp, err := http.Get(srv.URL + "/traces/unit/addrs?from=100&to=110&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		From  int64    `json:"from"`
		To    int64    `json:"to"`
		Addrs []uint64 `json:"addrs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.From != 100 || body.To != 110 || len(body.Addrs) != 10 {
		t.Fatalf("json body = %+v", body)
	}
	for i, v := range body.Addrs {
		if v != addrs[100+i] {
			t.Fatalf("json addrs diverge at %d", i)
		}
	}
}

func TestServeRangeErrors(t *testing.T) {
	_, srv := serveTestTrace(t, 1, 1<<20)
	cases := []struct {
		query string
		want  int
	}{
		{"from=10&to=5", http.StatusRequestedRangeNotSatisfiable},
		{"from=-1&to=5", http.StatusRequestedRangeNotSatisfiable},
		{"from=0&to=40001", http.StatusRequestedRangeNotSatisfiable},
		{"from=abc&to=5", http.StatusBadRequest},
		{"from=0&to=xyz", http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.query, resp.StatusCode, c.want)
		}
	}
	// Default from/to serve the whole trace (within max-range).
	resp, err := http.Get(srv.URL + "/traces/unit/addrs")
	if err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || len(got) != 40_000 {
		t.Fatalf("full-trace fetch: %d addrs, err %v", len(got), err)
	}
}

func TestServeMaxRangeCap(t *testing.T) {
	// Windows above the per-request cap are refused with 413; windows at
	// the cap pass.
	_, srv := serveTestTrace(t, 1, 500)
	for _, c := range []struct {
		query string
		want  int
	}{
		{"from=0&to=501", http.StatusRequestEntityTooLarge},
		{"from=0&to=500", http.StatusOK},
	} {
		resp, err := http.Get(srv.URL + "/traces/unit/addrs?" + c.query)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d", c.query, resp.StatusCode, c.want)
		}
	}
}

func TestOpenTraceErrors(t *testing.T) {
	if _, err := openTrace("missing", filepath.Join(t.TempDir(), "missing.atc"), false, 1, 0); err == nil {
		t.Fatal("openTrace on a missing path succeeded")
	}
	if _, err := openTrace("dir", t.TempDir(), true, 1, 0); err == nil {
		t.Fatal("openTrace -mem on a directory succeeded")
	}
}

// TestWriteDecodeErrorTaxonomy pins the decode-failure status mapping:
// corruption in the backing trace is a 502, a stale out-of-range window is
// a 416, anything unclassified stays a 500.
func TestWriteDecodeErrorTaxonomy(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{fmt.Errorf("%w: chunk 3: blob CRC mismatch", atc.ErrCorrupt), http.StatusBadGateway},
		{fmt.Errorf("%w: range [9, 12) outside trace [0, 10)", atc.ErrOutOfRange), http.StatusRequestedRangeNotSatisfiable},
		{errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeDecodeError(rec, "unit", c.err)
		if rec.Code != c.want {
			t.Errorf("writeDecodeError(%v): status %d, want %d", c.err, rec.Code, c.want)
		}
	}
}

// TestServeCorruptTrace502 damages one chunk blob of a directory trace and
// asserts the range endpoint reports 502 Bad Gateway — the request was
// valid; the stored data is not — rather than a generic 500 or a
// client-error status.
func TestServeCorruptTrace502(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	addrs := make([]uint64, 20_000)
	for i := range addrs {
		addrs[i] = uint64(rng.Intn(1 << 26))
	}
	dir := t.TempDir()
	w, err := atc.NewWriter(dir,
		atc.WithMode(atc.Lossless), atc.WithSegmentAddrs(5000), atc.WithBufferAddrs(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.CodeSlice(addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	chunks, err := filepath.Glob(filepath.Join(dir, "[0-9]*.*"))
	if err != nil || len(chunks) == 0 {
		t.Fatalf("no chunk blobs found in %s (err %v)", dir, err)
	}
	victim := chunks[len(chunks)/2]
	fi, err := os.Stat(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(victim, fi.Size()/2); err != nil {
		t.Fatal(err)
	}

	pool, err := openTrace("unit", dir, false, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer((&server{pools: map[string]*tracePool{"unit": pool}, maxRange: 1 << 20}).handler())
	defer func() {
		srv.Close()
		pool.close()
	}()

	resp, err := http.Get(srv.URL + "/traces/unit/addrs?format=json")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("corrupt chunk: status %d, want 502; body: %s", resp.StatusCode, body)
	}
}
