// Command atcserve is an HTTP daemon serving random-access reads over
// compressed address traces — the serving tier the chunk-index decoder
// and the archive store's O(1) blob lookup were built for. Each trace
// (a directory, a single-file .atc archive, or an archive loaded into
// memory with -mem) is registered under its base name and served through
// a pool of pre-opened Readers, so concurrent range requests never share
// decoder state while sharing one open store per trace.
//
// Usage:
//
//	atcserve [-addr :8405] [-readers 4] [-mem] <trace>...
//
// Endpoints:
//
//	GET /traces                          JSON list of the served traces
//	GET /traces/{name}/meta              JSON metadata (?index=1 adds the
//	                                     chunk index)
//	GET /traces/{name}/addrs?from=&to=   the addresses at trace positions
//	                                     [from, to): raw 64-bit
//	                                     little-endian values by default
//	                                     (the bin2atc/atc2bin wire format),
//	                                     or JSON with ?format=json
//
// Example session:
//
//	tracegen -model 429.mcf -n 1000000 | bin2atc -archive -lossless mcf.atc
//	atcserve mcf.atc &
//	curl localhost:8405/traces/mcf/meta
//	curl "localhost:8405/traces/mcf/addrs?from=500000&to=500100&format=json"
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"atc"
	"atc/internal/store"
	"atc/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8405", "listen address")
	readers := flag.Int("readers", 4, "pooled readers per trace (max concurrent range decodes)")
	cache := flag.Int("cache", 0, "decompressed-chunk cache size per reader (default 8)")
	mem := flag.Bool("mem", false, "load .atc archives fully into memory and serve from RAM")
	maxRange := flag.Int64("max-range", 16<<20, "largest [from, to) window served per request, in addresses")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: atcserve [flags] <directory | file.atc>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	srv := &server{pools: map[string]*tracePool{}, maxRange: *maxRange}
	for _, path := range flag.Args() {
		name := traceName(path)
		if _, dup := srv.pools[name]; dup {
			log.Fatalf("atcserve: duplicate trace name %q (from %s)", name, path)
		}
		pool, err := openTrace(name, path, *mem, *readers, *cache)
		if err != nil {
			log.Fatalf("atcserve: %s: %v", path, err)
		}
		srv.pools[name] = pool
		log.Printf("serving %q: %s, %d addresses, %d records (%s)",
			name, pool.meta.Mode, pool.meta.TotalAddrs, pool.meta.Records, path)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s", *addr)
	select {
	case err := <-errc:
		log.Fatalf("atcserve: %v", err)
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// release every pooled reader and its backing store.
	log.Printf("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("atcserve: shutdown: %v", err)
	}
	for _, pool := range srv.pools {
		pool.close()
	}
}

// traceName derives the registration name from a path: the base name,
// with a .atc extension stripped.
func traceName(path string) string {
	name := filepath.Base(filepath.Clean(path))
	return strings.TrimSuffix(name, ".atc")
}

// traceMeta is the JSON shape of GET /traces/{name}/meta.
type traceMeta struct {
	Name          string  `json:"name"`
	Mode          string  `json:"mode"`
	FormatVersion int     `json:"formatVersion"`
	TotalAddrs    int64   `json:"totalAddrs"`
	Records       int     `json:"records"`
	Chunks        int     `json:"chunks"`
	IntervalLen   int     `json:"intervalLen,omitempty"`
	SegmentAddrs  int     `json:"segmentAddrs,omitempty"`
	Epsilon       float64 `json:"epsilon,omitempty"`
	// ChunkReads counts chunk-blob decompressions across the trace's
	// pooled readers since startup (chunk-cache hits do not count) — the
	// serving tier's cache-effectiveness observable: requests served
	// from pooled readers' chunk caches leave it unchanged.
	ChunkReads int64 `json:"chunkReads"`
}

// indexEntry is the JSON shape of one chunk-index span (?index=1).
type indexEntry struct {
	Start     int64 `json:"start"`
	End       int64 `json:"end"`
	ChunkID   int   `json:"chunkId"`
	Imitation bool  `json:"imitation,omitempty"`
}

// tracePool serves one trace: a shared open store plus a fixed pool of
// Readers. A request borrows a Reader for the duration of its decode, so
// at most cap(readers) range decodes run concurrently per trace and no
// decoder state is ever shared between requests.
type tracePool struct {
	name    string
	meta    traceMeta
	index   []atc.ChunkSpan
	st      atc.Store
	readers chan *atc.Reader
	// all references every pooled reader for metrics: Reader.ChunkReads
	// is an atomic counter, safe to sum while a reader is borrowed.
	all []*atc.Reader
}

// chunkReads sums chunk-blob decompressions across the pool's readers.
func (p *tracePool) chunkReads() int64 {
	var n int64
	for _, r := range p.all {
		n += r.ChunkReads()
	}
	return n
}

// openTrace opens the store once (directory, archive, or archive bytes in
// RAM) and pre-opens n pooled readers against it, failing fast on a trace
// that does not decode.
func openTrace(name, path string, mem bool, n, cache int) (*tracePool, error) {
	if n < 1 {
		n = 1
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var st atc.Store
	switch {
	case fi.IsDir():
		if mem {
			return nil, fmt.Errorf("-mem serves single-file archives, not directories (pack %s with atcpack first)", path)
		}
		st = store.OpenDir(path)
	case mem:
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		ast, err := store.OpenArchiveReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return nil, err
		}
		st = ast
	default:
		ast, err := store.OpenArchive(path)
		if err != nil {
			return nil, err
		}
		st = ast
	}
	p := &tracePool{name: name, st: st, readers: make(chan *atc.Reader, n)}
	for i := 0; i < n; i++ {
		// Readahead is disabled: a range server decodes exactly the chunks
		// a request asks for, and prefetch past the window would be waste.
		r, err := atc.NewReader(path,
			atc.WithReadStore(st), atc.WithReadahead(-1), atc.WithChunkCache(cache))
		if err != nil {
			p.close()
			return nil, err
		}
		p.all = append(p.all, r)
		p.readers <- r
	}
	r := <-p.readers
	p.index = r.ChunkIndex()
	chunks := map[int]bool{}
	for _, sp := range p.index {
		chunks[sp.ChunkID] = true
	}
	p.meta = traceMeta{
		Name:          name,
		Mode:          r.Mode().String(),
		FormatVersion: r.FormatVersion(),
		TotalAddrs:    r.TotalAddrs(),
		Records:       r.Records(),
		Chunks:        len(chunks),
		SegmentAddrs:  r.SegmentAddrs(),
	}
	if r.Mode() == atc.Lossy {
		p.meta.IntervalLen = r.IntervalLen()
		p.meta.Epsilon = r.Epsilon()
	}
	p.readers <- r
	return p, nil
}

// acquire borrows a pooled reader, honoring request cancellation while
// every reader is busy.
func (p *tracePool) acquire(ctx context.Context) (*atc.Reader, error) {
	select {
	case r := <-p.readers:
		return r, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (p *tracePool) release(r *atc.Reader) { p.readers <- r }

// close drains and closes every pooled reader, then the shared store.
func (p *tracePool) close() {
	for {
		select {
		case r := <-p.readers:
			r.Close()
		default:
			p.st.Close()
			return
		}
	}
}

// server routes trace requests to pools.
type server struct {
	pools    map[string]*tracePool
	maxRange int64
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /traces", s.handleList)
	mux.HandleFunc("GET /traces/{name}/meta", s.handleMeta)
	mux.HandleFunc("GET /traces/{name}/addrs", s.handleAddrs)
	return mux
}

func (s *server) pool(w http.ResponseWriter, r *http.Request) *tracePool {
	p, ok := s.pools[r.PathValue("name")]
	if !ok {
		http.Error(w, "unknown trace", http.StatusNotFound)
		return nil
	}
	return p
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// metaNow snapshots the pool's static metadata plus its live counters.
func (p *tracePool) metaNow() traceMeta {
	m := p.meta
	m.ChunkReads = p.chunkReads()
	return m
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	metas := make([]traceMeta, 0, len(s.pools))
	for _, p := range s.pools {
		metas = append(metas, p.metaNow())
	}
	writeJSON(w, map[string]any{"traces": metas})
}

func (s *server) handleMeta(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w, r)
	if p == nil {
		return
	}
	if v := r.URL.Query().Get("index"); v == "" || v == "0" || v == "false" {
		writeJSON(w, p.metaNow())
		return
	}
	index := make([]indexEntry, len(p.index))
	for i, sp := range p.index {
		index[i] = indexEntry{Start: sp.Start, End: sp.End, ChunkID: sp.ChunkID, Imitation: sp.Imitation}
	}
	writeJSON(w, map[string]any{"meta": p.metaNow(), "index": index})
}

// parseAddr reads one query parameter as a trace position, with a default
// for the empty string.
func parseAddr(q, def string) (int64, error) {
	if q == "" {
		q = def
	}
	return strconv.ParseInt(q, 10, 64)
}

// writeDecodeError maps a DecodeRange failure to an HTTP status by error
// class. Corruption in the stored trace means the request was fine but the
// server's backing data is not: 502 Bad Gateway plus an operator log line,
// never a client-error status. An out-of-range window gets the same 416 as
// the pre-decode bounds check (reachable when a trace is swapped under a
// cached total). Everything else stays 500.
func writeDecodeError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, atc.ErrCorrupt):
		log.Printf("atcserve: %s: corrupt trace: %v", name, err)
		http.Error(w, "corrupt trace: "+err.Error(), http.StatusBadGateway)
	case errors.Is(err, atc.ErrOutOfRange):
		http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleAddrs(w http.ResponseWriter, r *http.Request) {
	p := s.pool(w, r)
	if p == nil {
		return
	}
	total := p.meta.TotalAddrs
	from, err := parseAddr(r.URL.Query().Get("from"), "0")
	if err != nil {
		http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
		return
	}
	to, err := parseAddr(r.URL.Query().Get("to"), strconv.FormatInt(total, 10))
	if err != nil {
		http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
		return
	}
	if from < 0 || to < from || to > total {
		http.Error(w, fmt.Sprintf("range [%d, %d) outside trace [0, %d)", from, to, total),
			http.StatusRequestedRangeNotSatisfiable)
		return
	}
	if to-from > s.maxRange {
		http.Error(w, fmt.Sprintf("window of %d addresses exceeds the per-request limit %d",
			to-from, s.maxRange), http.StatusRequestEntityTooLarge)
		return
	}
	rd, err := p.acquire(r.Context())
	if err != nil {
		http.Error(w, "busy: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	defer p.release(rd)
	w.Header().Set("X-Atc-From", strconv.FormatInt(from, 10))
	w.Header().Set("X-Atc-To", strconv.FormatInt(to, 10))
	w.Header().Set("X-Atc-Count", strconv.FormatInt(to-from, 10))
	if r.URL.Query().Get("format") == "json" {
		addrs, err := rd.DecodeRange(from, to)
		if err != nil {
			writeDecodeError(w, p.name, err)
			return
		}
		writeJSON(w, map[string]any{"name": p.name, "from": from, "to": to, "addrs": addrs})
		return
	}
	// Binary: raw 64-bit little-endian values, the bin2atc/atc2bin wire
	// format, so curl output diffs directly against atc2bin output. The
	// window is decoded and written in bounded batches through one reused
	// buffer, so a -max-range request costs serveBatchAddrs of transient
	// memory, not the whole window. The first batch decodes before any
	// header is written, keeping decode failures a clean 500; a later
	// failure truncates the body short of Content-Length, which clients
	// detect.
	buf, err := rd.DecodeRange(from, min64(from+serveBatchAddrs, to))
	if err != nil {
		writeDecodeError(w, p.name, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt((to-from)*8, 10))
	tw := trace.NewWriter(w)
	for pos := from; ; {
		if err := tw.WriteSlice(buf); err != nil {
			return // client went away; nothing useful to report mid-body
		}
		pos += int64(len(buf))
		if pos >= to {
			break
		}
		if buf, err = rd.DecodeRangeAppend(buf[:0], pos, min64(pos+serveBatchAddrs, to)); err != nil {
			return
		}
	}
	tw.Flush()
}

// serveBatchAddrs is the binary response's per-batch decode size: 256 Ki
// addresses, 2 MB on the wire.
const serveBatchAddrs = 256 << 10

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
